#!/usr/bin/env python3
"""Parallel-domain gate: stat-identity plus a parallel-vs-sequenced
events/sec record.

PR 10 moved bandwidth resolution out of issue time and onto the memory
*response* path, so every cross-slice access bears at least the local
network latency and the PIUMA model gained a positive conservative
lookahead bound (piuma::MemorySystem::modelLookaheadNs, DESIGN.md
S15). That makes `--domain-mode=parallel` legal for the model: one
host thread per event domain instead of the single-threaded sequenced
merge. This tool distils the contract into BENCH_PR10.json:

  1. GATE — identity: at every domain count, the checkpoint JSONL and
     consolidated sweep JSON of the parallel run must be byte-identical
     to the sequenced run (which is itself byte-identical to serial,
     bench_pr9.py's gate). Parallel execution may only change wall
     clock, never a single output byte.

  2. RECORD — events/sec for sequenced vs parallel at domains 1, 2
     and 4. Deliberately *not* gated on a speedup: parallel mode's win
     is one host thread per domain, and CI runners (and the recording
     container, which has a single core) cannot demonstrate it — the
     barrier rotation then costs a little instead. The numbers are
     recorded so multi-core hosts have a baseline, and so a regression
     that *slows the sequenced path* still shows up in bench_pr9's
     record next to this one.

  3. RECORD — the large-calendar pair: one full-machine-scale point
     (fig8 --mega) run sequenced and parallel at the same domain
     count, byte-compared and timed. This is where the mode actually
     matters — the stock sweep's calendars are tiny, the mega point
     keeps millions of events in flight and parallel mode beats the
     sequenced K-way merge even on a single host core (EXPERIMENTS.md
     "big machines" table). --mega 0 skips it.

Usage: bench_pr10.py --fig8 <fig8_strong_scaling binary>
                     --out <BENCH_PR10.json>
                     [--domains 1 2 4] [--workdir DIR]
                     [--mega 1024] [--mega-domains 16]
"""

import argparse
import filecmp
import json
import os
import subprocess
import sys


def run_fig8(binary, workdir, mode, domains, mega=0):
    """Run one fig8 sweep in the given domain mode; return paths."""
    tag = f"pr10_{'mega%d_' % mega if mega else ''}{mode}_d{domains}"
    paths = {
        "throughput": os.path.join(workdir, f"{tag}_throughput.json"),
        "checkpoint": os.path.join(workdir, f"{tag}.jsonl"),
        "sweep": os.path.join(workdir, f"{tag}.json"),
    }
    # Bare leaf CSV name (the bench prefixes it per table); run from
    # the workdir so everything lands together.
    # --no-monitors on every run: an attached MonitorHub shares
    # single-threaded timeline geometry with the simulation, so its
    # presence downgrades parallel mode to sequenced (domainPlan).
    # The sequenced runs drop them too, keeping the byte-compare and
    # the events/sec comparison apples-to-apples.
    cmd = [
        os.path.abspath(binary),
        f"{tag}.csv",
        f"{tag}_throughput.json",
        f"--domain-mode={mode}",
        f"--domains={domains}",
        "--no-monitors",
        f"--checkpoint={tag}.jsonl",
        f"--sweep-json={tag}.json",
    ]
    if mega:
        cmd.append(f"--mega={mega}")
    print(f"+ (cd {workdir}) {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True, cwd=workdir)
    return paths


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--fig8", required=True,
                        help="fig8_strong_scaling binary (Release)")
    parser.add_argument("--out", required=True,
                        help="BENCH_PR10.json output path")
    parser.add_argument("--domains", type=int, nargs="+",
                        default=[1, 2, 4],
                        help="domain counts to compare at")
    parser.add_argument("--workdir", default=".",
                        help="where the per-run artefacts land")
    parser.add_argument("--mega", type=int, default=1024,
                        help="simulated cores for the large-calendar "
                             "pair (0 skips it)")
    parser.add_argument("--mega-domains", type=int, default=16,
                        help="domain count for the large-calendar pair")
    args = parser.parse_args(argv[1:])

    os.makedirs(args.workdir, exist_ok=True)
    failures = []
    record = {}
    reference = None
    for domains in args.domains:
        for mode in ("sequenced", "parallel"):
            paths = run_fig8(args.fig8, args.workdir, mode, domains)
            with open(paths["throughput"]) as f:
                throughput = json.load(f)
            record[f"{mode}_d{domains}"] = {
                "events": throughput["events"],
                "wall_seconds": throughput["wall_seconds"],
                "events_per_sec": throughput["events_per_sec"],
                "runs": throughput["runs"],
            }
            if reference is None:
                reference = paths
                continue
            for kind in ("checkpoint", "sweep"):
                if not filecmp.cmp(reference[kind], paths[kind],
                                   shallow=False):
                    failures.append(
                        f"--domain-mode={mode} --domains {domains}: "
                        f"{kind} file differs from the sequenced "
                        f"--domains {args.domains[0]} reference "
                        f"({paths[kind]} vs {reference[kind]})")

    # Parallel-vs-sequenced at the SAME domain count: the apples-to-
    # apples number (both pay the sharded calendar; only the execution
    # strategy differs).
    speedup = {}
    for domains in args.domains:
        seq = record[f"sequenced_d{domains}"]["events_per_sec"]
        par = record[f"parallel_d{domains}"]["events_per_sec"]
        speedup[str(domains)] = par / seq if seq > 0.0 else 0.0

    events = {v["events"] for v in record.values()}
    if len(events) != 1:
        failures.append(f"event counts diverge across runs: "
                        f"{sorted(events)}")

    # Large-calendar pair: the full-machine-scale point where the
    # execution mode actually moves the needle.
    mega_record = {}
    if args.mega:
        mega_ref = None
        for mode in ("sequenced", "parallel"):
            paths = run_fig8(args.fig8, args.workdir, mode,
                             args.mega_domains, mega=args.mega)
            with open(paths["throughput"]) as f:
                throughput = json.load(f)
            mega_record[mode] = {
                "events": throughput["events"],
                "wall_seconds": throughput["wall_seconds"],
                "events_per_sec": throughput["events_per_sec"],
            }
            if mega_ref is None:
                mega_ref = paths
                continue
            for kind in ("checkpoint", "sweep"):
                if not filecmp.cmp(mega_ref[kind], paths[kind],
                                   shallow=False):
                    failures.append(
                        f"mega --domain-mode={mode}: {kind} file "
                        f"differs from sequenced "
                        f"({paths[kind]} vs {mega_ref[kind]})")
        seq = mega_record["sequenced"]["events_per_sec"]
        par = mega_record["parallel"]["events_per_sec"]
        mega_record["cores"] = args.mega
        mega_record["domains"] = args.mega_domains
        mega_record["parallel_speedup"] = par / seq if seq > 0.0 else 0.0

    report = {
        "bit_identical": not any("differs" in f for f in failures),
        "runs": record,
        "mega": mega_record,
        "parallel_speedup_vs_sequenced": speedup,
        "gate": "byte-identity across modes and domain counts (hard); "
                "events/sec recorded, not gated: the parallel win "
                "needs one host core per domain and CI runners are "
                "core-starved — see DESIGN.md S15",
        "pass": not failures,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    for domains in args.domains:
        seq = record[f"sequenced_d{domains}"]
        par = record[f"parallel_d{domains}"]
        print(f"--domains {domains}: sequenced "
              f"{seq['events_per_sec'] / 1e6:.2f} M ev/s, parallel "
              f"{par['events_per_sec'] / 1e6:.2f} M ev/s "
              f"({speedup[str(domains)]:.2f}x)")
    if mega_record:
        print(f"--mega={args.mega} --domains {args.mega_domains}: "
              f"sequenced "
              f"{mega_record['sequenced']['events_per_sec'] / 1e6:.2f} "
              f"M ev/s, parallel "
              f"{mega_record['parallel']['events_per_sec'] / 1e6:.2f} "
              f"M ev/s ({mega_record['parallel_speedup']:.2f}x)")
    if failures:
        print("\ngate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(1)
    print("\ngate passed: parallel runs byte-identical to sequenced")


if __name__ == "__main__":
    main(sys.argv)
