#!/usr/bin/env python3
"""Distil micro_kernels google-benchmark JSON into BENCH_PR5.json.

Pairs the pre-existing baseline kernels against the vectorized
replacements and records items/s plus the speedup ratio for each pair:

  spmm:  BM_SpmmReference/14/128      vs  BM_SpmmNnzBalanced/14/128
  gemm:  BM_DenseMmBlockedScalar/256  vs  BM_DenseMmBlocked/256

Median aggregates are preferred when the run used repetitions; the
plain iteration entry is used otherwise.

Usage: bench_pr5.py <benchmark_out.json> <BENCH_PR5.json>
"""

import json
import sys

PAIRS = {
    "spmm_scale14_k128": ("BM_SpmmReference/14/128",
                          "BM_SpmmNnzBalanced/14/128"),
    "gemm_256cubed": ("BM_DenseMmBlockedScalar/256",
                      "BM_DenseMmBlocked/256"),
}


def items_per_second(benchmarks, name):
    """items/s for `name`, preferring the median aggregate."""
    plain = None
    for b in benchmarks:
        if b.get("run_name", b["name"]) != name:
            continue
        if b.get("aggregate_name") == "median":
            return b["items_per_second"]
        if b.get("run_type") != "aggregate":
            plain = b["items_per_second"]
    if plain is None:
        raise KeyError(f"benchmark {name!r} missing from input")
    return plain


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    with open(argv[1]) as f:
        data = json.load(f)

    ctx = data["context"]
    out = {
        "build_assertions": ctx.get("build_assertions", "unknown"),
        "simd_tier": ctx.get("simd_tier", "unknown"),
        "num_cpus": ctx.get("num_cpus"),
        "pairs": {},
    }
    for key, (old, new) in PAIRS.items():
        old_ips = items_per_second(data["benchmarks"], old)
        new_ips = items_per_second(data["benchmarks"], new)
        out["pairs"][key] = {
            "old": old,
            "new": new,
            "old_items_per_second": old_ips,
            "new_items_per_second": new_ips,
            "speedup": new_ips / old_ips,
        }

    with open(argv[2], "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    for key, p in out["pairs"].items():
        print(f"{key}: {p['old_items_per_second']:.3e} -> "
              f"{p['new_items_per_second']:.3e} items/s "
              f"({p['speedup']:.2f}x)")


if __name__ == "__main__":
    main(sys.argv)
