#!/usr/bin/env python3
"""Gate the reorder_sweep output and distil it into BENCH_PR6.json.

Input is the consolidated sweep JSON written by

  reorder_sweep --checkpoint=... --sweep-json=<in.json>

with point keys

  host/<graph>/order=<o>/kernel=<tiled|nnz>   {gflops, seconds}
  locality/<graph>/order=<o>                  {avg_neighbor_distance, ...}
  sim/<graph>/order=<o>/placement=<hashed|blocked>
                                              {remote_access_fraction, ...}

The CI gate, per graph:

  1. host: for each kernel, the best of {island, rcm} GF/s must beat
     the shuffled baseline (reordering pays on the wall clock), and
  2. model: the best of {island, rcm} remote-access fraction under
     blocked placement must be below shuffle's (reordering pays in
     the DES locality model).

Hashed-placement points are recorded but not gated: hashed placement
is order-blind by design, so gating on it would be noise.

Usage: bench_pr6.py <sweep.json> <BENCH_PR6.json>
"""

import json
import sys

CANDIDATES = ("island", "rcm")
BASELINE = "shuffle"


def parse_key(key):
    """Split 'a/b/k=v/k2=v2' into (prefix_parts, dict_of_kv)."""
    parts = key.split("/")
    fixed = [p for p in parts if "=" not in p]
    kv = dict(p.split("=", 1) for p in parts if "=" in p)
    return fixed, kv


def collect(points):
    """Nest the flat point map: kind -> graph -> order -> values."""
    out = {"host": {}, "locality": {}, "sim": {}}
    for key, values in points.items():
        fixed, kv = parse_key(key)
        kind, graph = fixed[0], fixed[1]
        order = kv["order"]
        node = out[kind].setdefault(graph, {}).setdefault(order, {})
        if kind == "host":
            node[kv["kernel"]] = values
        elif kind == "sim":
            node[kv["placement"]] = values
        else:
            node.update(values)
    return out


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    with open(argv[1]) as f:
        points = json.load(f)["points"]
    data = collect(points)

    failures = []
    report = {"graphs": {}, "gate": {}}
    graphs = sorted(set(data["sim"]) | set(data["host"]))
    for graph in graphs:
        host = data["host"].get(graph, {})
        sim = data["sim"].get(graph, {})
        entry = {"host": host, "sim": sim,
                 "locality": data["locality"].get(graph, {})}
        report["graphs"][graph] = entry

        if host:
            for kernel in ("tiled", "nnz"):
                base = host[BASELINE][kernel]["gflops"]
                best_order, best = max(
                    ((o, host[o][kernel]["gflops"])
                     for o in CANDIDATES if o in host),
                    key=lambda p: p[1])
                ok = best > base
                report["gate"][f"{graph}/{kernel}"] = {
                    "baseline_gflops": base,
                    "best_order": best_order,
                    "best_gflops": best,
                    "speedup": best / base,
                    "pass": ok,
                }
                if not ok:
                    failures.append(
                        f"{graph}/{kernel}: best reorder "
                        f"({best_order}, {best:.2f} GF/s) does not "
                        f"beat {BASELINE} ({base:.2f} GF/s)")

        if sim:
            base = sim[BASELINE]["blocked"]["remote_access_fraction"]
            best_order, best = min(
                ((o, sim[o]["blocked"]["remote_access_fraction"])
                 for o in CANDIDATES if o in sim),
                key=lambda p: p[1])
            ok = best < base
            report["gate"][f"{graph}/remote_fraction"] = {
                "baseline": base,
                "best_order": best_order,
                "best": best,
                "reduction": 1.0 - best / base if base else 0.0,
                "pass": ok,
            }
            if not ok:
                failures.append(
                    f"{graph}: best blocked remote fraction "
                    f"({best_order}, {best:.3f}) not below "
                    f"{BASELINE} ({base:.3f})")

    report["pass"] = not failures
    with open(argv[2], "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for name, g in sorted(report["gate"].items()):
        verdict = "ok" if g["pass"] else "FAIL"
        if "best_gflops" in g:
            print(f"{name}: {g['baseline_gflops']:.2f} -> "
                  f"{g['best_gflops']:.2f} GF/s via {g['best_order']} "
                  f"({g['speedup']:.2f}x) [{verdict}]")
        else:
            print(f"{name}: remote {g['baseline']:.3f} -> "
                  f"{g['best']:.3f} via {g['best_order']} "
                  f"(-{100 * g['reduction']:.1f}%) [{verdict}]")
    if failures:
        print("\ngate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(1)
    print("\ngate passed")


if __name__ == "__main__":
    main(sys.argv)
