#!/usr/bin/env python3
"""Sharded-event-domain gate: bit-identity plus an events/sec record.

Runs the fig8 strong-scaling sweep at --domains 1, 2 and 4 (the PR 9
sharded DES core, sim/domain.hpp) and distils the result into
BENCH_PR9.json:

  1. GATE — bit-identity: the checkpoint JSONL and consolidated sweep
     JSON of every sharded run must be byte-identical to the
     --domains 1 run. This is the sharded engine's entire contract:
     `--domains N` may only change how the event calendar is
     partitioned, never a single output byte.

  2. RECORD — events/sec per domain count, from the simulator
     throughput JSON each run writes. Deliberately *not* gated on a
     speedup: the PIUMA model runs the domains in sequenced-merge
     mode because its memory system reserves slice/port bandwidth
     synchronously at issue time — a zero-lookahead coupling that
     parallel windows cannot split without breaking bit-identity (see
     DESIGN.md §15) — and CI runners are too core-starved and noisy
     for wall-clock assertions anyway. The numbers are recorded so a
     future lookahead-bearing memory model has a baseline to beat.

Usage: bench_pr9.py --fig8 <fig8_strong_scaling binary>
                    --out <BENCH_PR9.json>
                    [--domains 1 2 4] [--workdir DIR]
"""

import argparse
import filecmp
import json
import os
import subprocess
import sys


def run_fig8(binary, workdir, domains):
    """Run one fig8 sweep; return its per-file output paths."""
    tag = f"pr9_d{domains}"
    paths = {
        "throughput": os.path.join(workdir, f"{tag}_throughput.json"),
        "checkpoint": os.path.join(workdir, f"{tag}.jsonl"),
        "sweep": os.path.join(workdir, f"{tag}.json"),
    }
    # The CSV positional must stay a bare leaf name: the bench prefixes
    # it per table ("left_<csv>"), so a path would break. Run from the
    # workdir instead.
    cmd = [
        os.path.abspath(binary),
        f"{tag}.csv",
        f"{tag}_throughput.json",
        f"--domains={domains}",
        f"--checkpoint={tag}.jsonl",
        f"--sweep-json={tag}.json",
    ]
    print(f"+ (cd {workdir}) {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True, cwd=workdir)
    return paths


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--fig8", required=True,
                        help="fig8_strong_scaling binary (Release)")
    parser.add_argument("--out", required=True,
                        help="BENCH_PR9.json output path")
    parser.add_argument("--domains", type=int, nargs="+",
                        default=[1, 2, 4],
                        help="domain counts to sweep (first is the "
                             "serial reference)")
    parser.add_argument("--workdir", default=".",
                        help="where the per-run artefacts land")
    args = parser.parse_args(argv[1:])

    os.makedirs(args.workdir, exist_ok=True)
    failures = []
    record = {}
    reference = None
    for domains in args.domains:
        paths = run_fig8(args.fig8, args.workdir, domains)
        with open(paths["throughput"]) as f:
            throughput = json.load(f)
        record[str(domains)] = {
            "events": throughput["events"],
            "wall_seconds": throughput["wall_seconds"],
            "events_per_sec": throughput["events_per_sec"],
            "peak_queue_depth": throughput["peak_queue_depth"],
            "runs": throughput["runs"],
        }
        if reference is None:
            reference = paths
            continue
        for kind in ("checkpoint", "sweep"):
            if not filecmp.cmp(reference[kind], paths[kind],
                               shallow=False):
                failures.append(
                    f"--domains {domains}: {kind} file differs from "
                    f"--domains {args.domains[0]} "
                    f"({paths[kind]} vs {reference[kind]})")

    base = record[str(args.domains[0])]["events_per_sec"]
    speedup = {d: (v["events_per_sec"] / base if base > 0.0 else 0.0)
               for d, v in record.items()}
    # Simulated events must agree exactly across domain counts — the
    # same property as the file compare, visible in the record too.
    events = {v["events"] for v in record.values()}
    if len(events) != 1:
        failures.append(f"event counts diverge across domain counts: "
                        f"{sorted(events)}")

    report = {
        "bit_identical": not any("differs" in f for f in failures),
        "domains": record,
        "speedup_vs_serial": speedup,
        "gate": "bit-identity (hard); events/sec recorded, not gated: "
                "sequenced merge mode has zero-lookahead coupling and "
                "CI cores are scarce — see DESIGN.md §15",
        "pass": not failures,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    for d in sorted(record, key=int):
        v = record[d]
        print(f"--domains {d}: {v['events_per_sec'] / 1e6:.2f} M "
              f"events/s ({v['events']} events, "
              f"{v['wall_seconds']:.2f} s, {speedup[d]:.2f}x vs serial)")
    if failures:
        print("\ngate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(1)
    print("\ngate passed: sharded runs byte-identical to serial")


if __name__ == "__main__":
    main(sys.argv)
