#!/usr/bin/env python3
"""Gate the fault_envelope output and distil it into BENCH_PR8.json.

Input is the consolidated sweep JSON written by

  fault_envelope --checkpoint=... --sweep-json=<in.json>

with point keys

  <graph>/<policy>/rate=<r>   {makespan_ns, goodput_bytes,
                               retried_bytes, bytes_served, retries,
                               timeouts, stuck_resets, recovery_ns,
                               latency_hiding, exposed_stall_ns}

plus an optional "quarantined" section for points whose drop schedule
exhausted the retry budget (the envelope edge — expected, not a gate
failure).

The CI gate, per (graph, policy):

  1. the fault-free baseline (rate=0) delivers goodput > 0 and fires
     zero timeouts (faults off must mean faults off),
  2. conservation holds at every surviving point:
     bytes_served == goodput_bytes + retried_bytes,
  3. every surviving point with rate > 0 records retries > 0
     (injection is live, not silently disabled), and
  4. globally: at least one (graph, policy) reaches the knee where
     makespan inflation exceeds 2x — the degradation envelope the PR
     exists to measure is actually visible.

Usage: bench_pr8.py <sweep.json> <BENCH_PR8.json>
"""

import json
import sys

KNEE_INFLATION = 2.0


def parse_key(key):
    parts = key.split("/")
    kv = dict(p.split("=", 1) for p in parts if "=" in p)
    fixed = [p for p in parts if "=" not in p]
    return fixed, kv


def collect(points):
    """Nest the flat point map: graph -> policy -> rate -> values."""
    out = {}
    for key, values in points.items():
        fixed, kv = parse_key(key)
        if fixed[0] == "poison":
            continue  # poisoned points never succeed; see quarantined
        graph, policy = fixed[0], fixed[1]
        out.setdefault(graph, {}).setdefault(policy, {})[
            float(kv["rate"])] = values
    return out


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    with open(argv[1]) as f:
        sweep = json.load(f)
    data = collect(sweep["points"])
    quarantined = sweep.get("quarantined", {})

    failures = []
    knees = {}
    report = {"graphs": {}, "gate": {}, "knees": knees,
              "quarantined": quarantined}
    for graph, policies in sorted(data.items()):
        report["graphs"][graph] = policies
        for policy, by_rate in sorted(policies.items()):
            name = f"{graph}/{policy}"
            rates = sorted(by_rate)
            if 0.0 not in by_rate:
                failures.append(f"{name}: no fault-free baseline point")
                continue
            base = by_rate[0.0]
            base_makespan = base["makespan_ns"]
            goodput_gbs = (base["goodput_bytes"] / base_makespan
                           if base_makespan else 0.0)
            entry = {"baseline_goodput_gbs": goodput_gbs,
                     "baseline_timeouts": base["timeouts"],
                     "points": len(rates), "pass": True}
            if goodput_gbs <= 0.0:
                failures.append(f"{name}: baseline goodput is zero")
                entry["pass"] = False
            if base["timeouts"] != 0 or base["retries"] != 0:
                failures.append(
                    f"{name}: fault-free baseline fired "
                    f"{base['timeouts']:.0f} timeouts / "
                    f"{base['retries']:.0f} retries")
                entry["pass"] = False

            knee = None
            for rate in rates:
                v = by_rate[rate]
                served = v["bytes_served"]
                expect = v["goodput_bytes"] + v["retried_bytes"]
                if abs(served - expect) > 1e-6 * max(served, 1.0):
                    failures.append(
                        f"{name}/rate={rate:g}: conservation violated "
                        f"(served {served:.0f} != demanded+retried "
                        f"{expect:.0f})")
                    entry["pass"] = False
                if rate > 0.0 and v["retries"] <= 0:
                    failures.append(
                        f"{name}/rate={rate:g}: rate > 0 but zero "
                        f"retries recorded — injection inactive?")
                    entry["pass"] = False
                inflation = (v["makespan_ns"] / base_makespan
                             if base_makespan else 0.0)
                if knee is None and rate > 0.0 and \
                        inflation > KNEE_INFLATION:
                    knee = {"rate": rate, "inflation": inflation}
            knees[name] = knee
            report["gate"][name] = entry

    if not any(k is not None for k in knees.values()):
        failures.append(
            f"no (graph, policy) reached the {KNEE_INFLATION:g}x "
            f"makespan-inflation knee in the swept range")

    report["pass"] = not failures
    with open(argv[2], "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    for name, g in sorted(report["gate"].items()):
        verdict = "ok" if g["pass"] else "FAIL"
        knee = knees.get(name)
        where = (f"knee at rate {knee['rate']:g} "
                 f"({knee['inflation']:.2f}x)" if knee
                 else "knee not reached")
        print(f"{name}: baseline {g['baseline_goodput_gbs']:.2f} GB/s, "
              f"{g['points']} rates, {where} [{verdict}]")
    for key, cause in sorted(quarantined.items()):
        print(f"{key}: quarantined ({cause.splitlines()[0]})")
    if failures:
        print("\ngate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(1)
    print("\ngate passed")


if __name__ == "__main__":
    main(sys.argv)
