#!/usr/bin/env python3
"""Fold results/history.jsonl run manifests into reports and CI gates.

Every bench invoked with --history=<jsonl> appends one RunManifest
line (provenance + per-point metrics, see src/common/manifest.hpp).
This tool is the consumer:

  report  render a markdown scalability report from the newest
          manifest of a bench: provenance header, strong-scaling
          table with stall attribution and critical-path columns,
          and (with --occupancy) a per-core-count occupancy heatmap.

  diff    compare the two newest manifests of a bench metric by
          metric, flagging provenance changes (git SHA, SIMD tier,
          build type) alongside the numeric drift.

  check   CI regression gate: compare the newest manifest against a
          committed baseline (results/BENCH_PR7.json). Deterministic
          simulation metrics (gflops, makespans, stall counters) must
          stay within --tolerance (default 10%); the host-dependent
          events/sec throughput within --events-tolerance (default
          60%, machines differ). Writes the gate verdict JSON, exits
          non-zero on failure. --update-baseline rewrites the
          baseline from the newest manifest instead of checking.

Usage:
  pgcn_report.py report <history.jsonl> [--bench B] [--occupancy CSV]
                 [--out report.md]
  pgcn_report.py diff <history.jsonl> [--bench B]
  pgcn_report.py check <history.jsonl> --baseline BASE.json
                 [--bench B] [--out GATE.json] [--tolerance 0.10]
                 [--events-tolerance 0.60] [--update-baseline]
"""

import argparse
import csv
import json
import sys

HEAT_BLOCKS = " ▁▂▃▄▅▆▇█"


def load_history(path, bench=None):
    """All manifests in file order, optionally filtered by bench name.

    Degrades gracefully on the failure modes a crash-interrupted bench
    leaves behind: a missing or empty history file reads as "no runs
    recorded", and a torn (or otherwise unparsable) record — most
    commonly the last line of a run killed mid-append — is skipped
    with a warning instead of aborting the whole report.
    """
    entries = []
    try:
        f = open(path)
    except OSError:
        sys.exit(f"{path}: no runs recorded (history file missing)")
    with f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                print(f"warning: {path}:{lineno}: skipping torn/invalid "
                      f"record", file=sys.stderr)
                continue
            missing = [field for field in
                       ("bench", "git_sha", "metrics", "counter_digest")
                       if field not in entry]
            if missing:
                print(f"warning: {path}:{lineno}: skipping manifest "
                      f"missing {missing} (schema drift?)",
                      file=sys.stderr)
                continue
            if bench is None or entry["bench"] == bench:
                entries.append(entry)
    if not entries:
        target = f"bench '{bench}'" if bench else "any bench"
        sys.exit(f"{path}: no runs recorded for {target}")
    return entries


def split_metrics(metrics):
    """Group 'point/metric' keys: point -> {metric: value}."""
    points = {}
    for key, value in metrics.items():
        point, _, metric = key.rpartition("/")
        if not point:
            point = "(run)"
        points.setdefault(point, {})[metric] = value
    return points


def point_sort_key(point):
    """Order sweep points numerically on their k=v suffixes."""
    parts = []
    for part in point.split("/"):
        if "=" in part:
            name, _, val = part.partition("=")
            try:
                parts.append((name, float(val)))
                continue
            except ValueError:
                pass
        parts.append((part, 0.0))
    return parts


def is_deterministic(name):
    """Host-independent metric? Mirrors bench_util's manifest digest."""
    return not any(s in name for s in ("wall", "per_sec", "host"))


def run_domains(entry):
    """Event-domain count a manifest's run was sharded into.

    Recorded in the manifest's "extra" section (bench_util). Manifests
    predating the sharded engine carry no record and ran serially.
    """
    return str(entry.get("extra", {}).get("domains", "1"))


def fmt(value):
    if value is None:
        return "-"
    if abs(value) >= 1e6 or (value != 0 and abs(value) < 1e-3):
        return f"{value:.3e}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


# ---------------------------------------------------------------- report

def load_occupancy(path):
    """occ.csv -> point -> core index -> list of (bucket, busy_frac)."""
    heat = {}
    with open(path) as f:
        for row in csv.DictReader(f):
            if row["kind"] != "issue":
                continue
            bucket_ns = float(row["bucket_ns"])
            frac = float(row["busy_ns"]) / bucket_ns if bucket_ns else 0.0
            heat.setdefault(row["point"], {}).setdefault(
                int(row["index"]), []).append((int(row["bucket"]), frac))
    return heat


def heat_line(buckets, width=64):
    """Render sparse (bucket, frac) samples as a block-char strip."""
    if not buckets:
        return ""
    n = max(b for b, _ in buckets) + 1
    dense = [0.0] * n
    for b, frac in buckets:
        dense[b] = frac
    peak = max(dense) or 1.0
    cells = dense[:width]
    return "".join(
        HEAT_BLOCKS[min(len(HEAT_BLOCKS) - 1,
                        int(f / peak * (len(HEAT_BLOCKS) - 1) + 0.5))]
        for f in cells)


def md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def cmd_report(args):
    entry = load_history(args.history, args.bench)[-1]
    points = split_metrics(entry["metrics"])
    lines = [f"# Scalability report: {entry['bench']}", ""]

    prov = [("timestamp", entry.get("timestamp", "-")),
            ("git", entry["git_sha"] +
             (" (dirty)" if entry.get("git_dirty") else "")),
            ("build", f"{entry.get('build_type', '-')} / "
                      f"{entry.get('compiler', '-')}"),
            ("simd tier", entry.get("simd_tier", "-")),
            ("numa nodes / host threads",
             f"{entry.get('numa_nodes', '-')} / "
             f"{entry.get('host_threads', '-')}"),
            ("config / graph hash",
             f"{entry.get('config_hash', '-')} / "
             f"{entry.get('graph_hash', '-')}"),
            ("sweep jobs / event domains",
             f"{entry.get('extra', {}).get('jobs', '-')} / "
             f"{run_domains(entry)}"),
            ("counter digest", entry["counter_digest"])]
    lines.append(md_table(["provenance", "value"],
                          [[k, str(v)] for k, v in prov]))
    lines += ["", "## Sweep points", ""]

    # Columns: union of per-point metric names, scaling ones first.
    preferred = ["gflops", "issue_util", "stall_mem_ns", "stall_net_ns",
                 "latency_hiding", "exposed_stall_ns", "cp_parallelism",
                 "cp_events", "makespan_ns"]
    names = sorted({n for vals in points.values() for n in vals})
    cols = [n for n in preferred if n in names] + \
           [n for n in names if n not in preferred]
    rows = []
    for point in sorted(points, key=point_sort_key):
        rows.append([point] +
                    [fmt(points[point].get(n)) for n in cols])
    lines.append(md_table(["point"] + cols, rows))

    # Stall-attribution shares, where the fig8-style counters exist.
    stall_rows = []
    for point in sorted(points, key=point_sort_key):
        vals = points[point]
        mem = vals.get("stall_mem_ns")
        net = vals.get("stall_net_ns")
        if mem is None or net is None:
            continue
        total = mem + net
        stall_rows.append(
            [point,
             fmt(100.0 * mem / total if total else 0.0),
             fmt(100.0 * net / total if total else 0.0),
             fmt(vals.get("latency_hiding")),
             fmt(vals.get("cp_parallelism"))])
    if stall_rows:
        lines += ["", "## Stall attribution", "",
                  md_table(["point", "memory wait %", "network wait %",
                            "latency hiding", "critical-path parallelism"],
                           stall_rows)]

    if args.occupancy:
        heat = load_occupancy(args.occupancy)
        lines += ["", "## Issue-slot occupancy heatmap",
                  "", "One strip per core; darker = busier bucket "
                      "(normalised per point).", ""]
        for point in sorted(heat, key=point_sort_key):
            lines.append(f"### {point}")
            lines.append("```")
            for core in sorted(heat[point]):
                lines.append(f"core {core:3d} "
                             f"|{heat_line(heat[point][core])}|")
            lines.append("```")

    text = "\n".join(lines) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"report written to {args.out}")
    else:
        print(text, end="")


# ------------------------------------------------------------------ diff

def cmd_diff(args):
    entries = load_history(args.history, args.bench)
    if len(entries) < 2:
        sys.exit("diff needs at least two manifests for the bench")
    old, new = entries[-2], entries[-1]

    for field in ("git_sha", "build_type", "compiler", "simd_tier",
                  "config_hash", "graph_hash", "counter_digest"):
        if old.get(field) != new.get(field):
            print(f"{field}: {old.get(field)} -> {new.get(field)}")

    names = sorted(set(old["metrics"]) | set(new["metrics"]))
    changed = 0
    for name in names:
        a, b = old["metrics"].get(name), new["metrics"].get(name)
        if a is None or b is None:
            print(f"{name}: {'added' if a is None else 'removed'} "
                  f"({fmt(b if a is None else a)})")
            changed += 1
        elif a != b:
            pct = (b - a) / a * 100.0 if a else float("inf")
            print(f"{name}: {fmt(a)} -> {fmt(b)} ({pct:+.2f}%)")
            changed += 1
    if not changed:
        print("metrics identical "
              f"(counter digest {new['counter_digest']})")


# ----------------------------------------------------------------- check

def cmd_check(args):
    entry = load_history(args.history, args.bench)[-1]

    if args.update_baseline:
        with open(args.baseline, "w") as f:
            json.dump({"bench": entry["bench"],
                       "git_sha": entry["git_sha"],
                       "config_hash": entry.get("config_hash", ""),
                       "graph_hash": entry.get("graph_hash", ""),
                       "domains": run_domains(entry),
                       "counter_digest": entry["counter_digest"],
                       "metrics": entry["metrics"]}, f, indent=2,
                      sort_keys=True)
            f.write("\n")
        print(f"baseline updated from {entry['git_sha']} "
              f"-> {args.baseline}")
        return

    try:
        with open(args.baseline) as f:
            base = json.load(f)
    except OSError:
        print(f"{args.baseline}: baseline not found — record one with "
              f"--update-baseline before gating", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"{args.baseline}: baseline is not valid JSON ({e})",
              file=sys.stderr)
        sys.exit(2)

    digest_match = base["counter_digest"] == entry["counter_digest"]

    # Cross-domain-count throughput comparisons are suspect: sharding
    # changes host events/sec (never simulated output), so a baseline
    # recorded at one --domains count doesn't trivially gate a run at
    # another. But the domain count is only a *proxy* for "same
    # simulated work" — the counter digest is the ground truth. If the
    # digests match, the two runs simulated bit-identical results and
    # the loose events-tolerance already absorbs the host-side skew,
    # so warn and proceed. Only refuse (exit 2, like a missing
    # baseline) when the digests differ too: then we can't tell
    # model drift from sharding skew.
    base_domains = str(base.get("domains", "1"))
    entry_domains = run_domains(entry)
    if base_domains != entry_domains:
        if digest_match:
            print(f"warning: baseline recorded at --domains "
                  f"{base_domains}, this run used --domains "
                  f"{entry_domains}; counter digests match, so the "
                  f"simulated results are identical — gating anyway "
                  f"(events/sec floors may be skewed by sharding).",
                  file=sys.stderr)
        else:
            print(f"{args.baseline}: baseline was recorded at "
                  f"--domains {base_domains} but this run used "
                  f"--domains {entry_domains} and the counter digests "
                  f"differ; host-throughput floors are not comparable "
                  f"across event-domain counts. Re-run with "
                  f"--domains {base_domains}, or refresh the "
                  f"baseline with --update-baseline.", file=sys.stderr)
            sys.exit(2)

    failures, checks = [], []
    if base.get("config_hash") and entry.get("config_hash") and \
            base["config_hash"] != entry["config_hash"]:
        print(f"note: config hash changed "
              f"({base['config_hash']} -> {entry['config_hash']}); "
              f"comparing the overlapping metrics")

    for name, ref in sorted(base["metrics"].items()):
        now = entry["metrics"].get(name)
        deterministic = is_deterministic(name)
        # Gate throughputs (bigger = better): simulated GF/s strictly,
        # host events/sec loosely. Other counters are informational —
        # the digest plus the gflops gate already catch drift, and
        # "stall ns went down" must not fail CI.
        gated = name.endswith("gflops") or name.endswith("per_sec")
        if not gated:
            continue
        tol = args.tolerance if deterministic else args.events_tolerance
        if now is None:
            failures.append(f"{name}: missing from current run")
            checks.append({"metric": name, "baseline": ref,
                           "current": None, "pass": False})
            continue
        ok = now >= ref * (1.0 - tol)
        checks.append({"metric": name, "baseline": ref, "current": now,
                       "tolerance": tol, "pass": ok})
        verdict = "ok" if ok else "FAIL"
        print(f"{name}: {fmt(ref)} -> {fmt(now)} "
              f"(floor {fmt(ref * (1.0 - tol))}) [{verdict}]")
        if not ok:
            failures.append(
                f"{name}: {fmt(now)} below baseline {fmt(ref)} "
                f"- {tol:.0%} tolerance")

    if not digest_match:
        print(f"note: counter digest changed "
              f"({base['counter_digest']} -> {entry['counter_digest']})"
              f" — simulated numerics moved; refresh the baseline if "
              f"intentional")

    result = {"bench": entry["bench"],
              "baseline_sha": base.get("git_sha", ""),
              "current_sha": entry["git_sha"],
              "digest_match": digest_match,
              "checks": checks,
              "pass": not failures}
    if args.out:
        with open(args.out, "w") as f:
            json.dump(result, f, indent=2)
            f.write("\n")
        print(f"gate verdict written to {args.out}")

    if failures:
        print("\ngate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(1)
    print("\ngate passed")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("report")
    p.add_argument("history")
    p.add_argument("--bench")
    p.add_argument("--occupancy")
    p.add_argument("--out")

    p = sub.add_parser("diff")
    p.add_argument("history")
    p.add_argument("--bench")

    p = sub.add_parser("check")
    p.add_argument("history")
    p.add_argument("--baseline", required=True)
    p.add_argument("--bench")
    p.add_argument("--out")
    p.add_argument("--tolerance", type=float, default=0.10)
    p.add_argument("--events-tolerance", type=float, default=0.60)
    p.add_argument("--update-baseline", action="store_true")

    args = parser.parse_args(argv[1:])
    {"report": cmd_report, "diff": cmd_diff, "check": cmd_check}[args.cmd](args)


if __name__ == "__main__":
    main(sys.argv)
