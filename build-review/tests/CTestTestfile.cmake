# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_graph[1]_include.cmake")
include("/root/repo/build-review/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-review/tests/test_parallel[1]_include.cmake")
include("/root/repo/build-review/tests/test_kernels[1]_include.cmake")
include("/root/repo/build-review/tests/test_model[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_piuma[1]_include.cmake")
include("/root/repo/build-review/tests/test_determinism[1]_include.cmake")
include("/root/repo/build-review/tests/test_xeon[1]_include.cmake")
include("/root/repo/build-review/tests/test_gpu[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
