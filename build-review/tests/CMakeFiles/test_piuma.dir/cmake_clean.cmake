file(REMOVE_RECURSE
  "CMakeFiles/test_piuma.dir/test_piuma.cpp.o"
  "CMakeFiles/test_piuma.dir/test_piuma.cpp.o.d"
  "test_piuma"
  "test_piuma.pdb"
  "test_piuma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
