# Empty compiler generated dependencies file for test_piuma.
# This may be replaced when dependencies are built.
