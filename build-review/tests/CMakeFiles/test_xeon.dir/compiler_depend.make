# Empty compiler generated dependencies file for test_xeon.
# This may be replaced when dependencies are built.
