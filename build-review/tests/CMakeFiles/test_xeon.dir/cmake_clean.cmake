file(REMOVE_RECURSE
  "CMakeFiles/test_xeon.dir/test_xeon.cpp.o"
  "CMakeFiles/test_xeon.dir/test_xeon.cpp.o.d"
  "test_xeon"
  "test_xeon.pdb"
  "test_xeon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
