# Empty compiler generated dependencies file for pgcn_kernels.
# This may be replaced when dependencies are built.
