file(REMOVE_RECURSE
  "libpgcn_kernels.a"
)
