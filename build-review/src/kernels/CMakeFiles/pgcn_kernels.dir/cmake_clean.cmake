file(REMOVE_RECURSE
  "CMakeFiles/pgcn_kernels.dir/spmm.cpp.o"
  "CMakeFiles/pgcn_kernels.dir/spmm.cpp.o.d"
  "CMakeFiles/pgcn_kernels.dir/tiled_spmm.cpp.o"
  "CMakeFiles/pgcn_kernels.dir/tiled_spmm.cpp.o.d"
  "libpgcn_kernels.a"
  "libpgcn_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
