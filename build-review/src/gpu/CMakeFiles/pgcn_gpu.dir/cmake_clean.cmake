file(REMOVE_RECURSE
  "CMakeFiles/pgcn_gpu.dir/timing.cpp.o"
  "CMakeFiles/pgcn_gpu.dir/timing.cpp.o.d"
  "libpgcn_gpu.a"
  "libpgcn_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
