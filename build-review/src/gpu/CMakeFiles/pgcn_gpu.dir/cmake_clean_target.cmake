file(REMOVE_RECURSE
  "libpgcn_gpu.a"
)
