# Empty dependencies file for pgcn_gpu.
# This may be replaced when dependencies are built.
