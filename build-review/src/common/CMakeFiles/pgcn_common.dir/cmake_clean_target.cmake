file(REMOVE_RECURSE
  "libpgcn_common.a"
)
