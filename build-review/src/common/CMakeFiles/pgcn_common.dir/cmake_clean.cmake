file(REMOVE_RECURSE
  "CMakeFiles/pgcn_common.dir/logging.cpp.o"
  "CMakeFiles/pgcn_common.dir/logging.cpp.o.d"
  "CMakeFiles/pgcn_common.dir/stats.cpp.o"
  "CMakeFiles/pgcn_common.dir/stats.cpp.o.d"
  "CMakeFiles/pgcn_common.dir/table.cpp.o"
  "CMakeFiles/pgcn_common.dir/table.cpp.o.d"
  "libpgcn_common.a"
  "libpgcn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
