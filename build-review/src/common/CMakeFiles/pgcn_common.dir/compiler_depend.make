# Empty compiler generated dependencies file for pgcn_common.
# This may be replaced when dependencies are built.
