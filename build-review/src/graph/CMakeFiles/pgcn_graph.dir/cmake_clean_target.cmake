file(REMOVE_RECURSE
  "libpgcn_graph.a"
)
