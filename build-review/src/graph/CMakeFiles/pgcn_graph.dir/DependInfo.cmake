
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/coo.cpp" "src/graph/CMakeFiles/pgcn_graph.dir/coo.cpp.o" "gcc" "src/graph/CMakeFiles/pgcn_graph.dir/coo.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/pgcn_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/pgcn_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/graph/CMakeFiles/pgcn_graph.dir/datasets.cpp.o" "gcc" "src/graph/CMakeFiles/pgcn_graph.dir/datasets.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/pgcn_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/pgcn_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph_stats.cpp" "src/graph/CMakeFiles/pgcn_graph.dir/graph_stats.cpp.o" "gcc" "src/graph/CMakeFiles/pgcn_graph.dir/graph_stats.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/pgcn_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/pgcn_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/normalize.cpp" "src/graph/CMakeFiles/pgcn_graph.dir/normalize.cpp.o" "gcc" "src/graph/CMakeFiles/pgcn_graph.dir/normalize.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/graph/CMakeFiles/pgcn_graph.dir/partition.cpp.o" "gcc" "src/graph/CMakeFiles/pgcn_graph.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pgcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
