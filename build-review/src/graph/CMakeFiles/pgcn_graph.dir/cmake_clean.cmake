file(REMOVE_RECURSE
  "CMakeFiles/pgcn_graph.dir/coo.cpp.o"
  "CMakeFiles/pgcn_graph.dir/coo.cpp.o.d"
  "CMakeFiles/pgcn_graph.dir/csr.cpp.o"
  "CMakeFiles/pgcn_graph.dir/csr.cpp.o.d"
  "CMakeFiles/pgcn_graph.dir/datasets.cpp.o"
  "CMakeFiles/pgcn_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/pgcn_graph.dir/generators.cpp.o"
  "CMakeFiles/pgcn_graph.dir/generators.cpp.o.d"
  "CMakeFiles/pgcn_graph.dir/graph_stats.cpp.o"
  "CMakeFiles/pgcn_graph.dir/graph_stats.cpp.o.d"
  "CMakeFiles/pgcn_graph.dir/io.cpp.o"
  "CMakeFiles/pgcn_graph.dir/io.cpp.o.d"
  "CMakeFiles/pgcn_graph.dir/normalize.cpp.o"
  "CMakeFiles/pgcn_graph.dir/normalize.cpp.o.d"
  "CMakeFiles/pgcn_graph.dir/partition.cpp.o"
  "CMakeFiles/pgcn_graph.dir/partition.cpp.o.d"
  "libpgcn_graph.a"
  "libpgcn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
