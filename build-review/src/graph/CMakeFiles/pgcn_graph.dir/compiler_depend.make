# Empty compiler generated dependencies file for pgcn_graph.
# This may be replaced when dependencies are built.
