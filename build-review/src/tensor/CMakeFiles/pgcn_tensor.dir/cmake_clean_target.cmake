file(REMOVE_RECURSE
  "libpgcn_tensor.a"
)
