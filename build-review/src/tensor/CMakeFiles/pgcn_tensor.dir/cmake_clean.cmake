file(REMOVE_RECURSE
  "CMakeFiles/pgcn_tensor.dir/dense_matrix.cpp.o"
  "CMakeFiles/pgcn_tensor.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/pgcn_tensor.dir/dense_mm.cpp.o"
  "CMakeFiles/pgcn_tensor.dir/dense_mm.cpp.o.d"
  "CMakeFiles/pgcn_tensor.dir/ops.cpp.o"
  "CMakeFiles/pgcn_tensor.dir/ops.cpp.o.d"
  "libpgcn_tensor.a"
  "libpgcn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
