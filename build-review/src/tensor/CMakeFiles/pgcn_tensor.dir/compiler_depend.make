# Empty compiler generated dependencies file for pgcn_tensor.
# This may be replaced when dependencies are built.
