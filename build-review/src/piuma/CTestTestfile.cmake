# CMake generated Testfile for 
# Source directory: /root/repo/src/piuma
# Build directory: /root/repo/build-review/src/piuma
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
