
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/piuma/dense_programs.cpp" "src/piuma/CMakeFiles/pgcn_piuma.dir/dense_programs.cpp.o" "gcc" "src/piuma/CMakeFiles/pgcn_piuma.dir/dense_programs.cpp.o.d"
  "/root/repo/src/piuma/dma.cpp" "src/piuma/CMakeFiles/pgcn_piuma.dir/dma.cpp.o" "gcc" "src/piuma/CMakeFiles/pgcn_piuma.dir/dma.cpp.o.d"
  "/root/repo/src/piuma/gcn_sim.cpp" "src/piuma/CMakeFiles/pgcn_piuma.dir/gcn_sim.cpp.o" "gcc" "src/piuma/CMakeFiles/pgcn_piuma.dir/gcn_sim.cpp.o.d"
  "/root/repo/src/piuma/memory.cpp" "src/piuma/CMakeFiles/pgcn_piuma.dir/memory.cpp.o" "gcc" "src/piuma/CMakeFiles/pgcn_piuma.dir/memory.cpp.o.d"
  "/root/repo/src/piuma/node_model.cpp" "src/piuma/CMakeFiles/pgcn_piuma.dir/node_model.cpp.o" "gcc" "src/piuma/CMakeFiles/pgcn_piuma.dir/node_model.cpp.o.d"
  "/root/repo/src/piuma/spmm_programs.cpp" "src/piuma/CMakeFiles/pgcn_piuma.dir/spmm_programs.cpp.o" "gcc" "src/piuma/CMakeFiles/pgcn_piuma.dir/spmm_programs.cpp.o.d"
  "/root/repo/src/piuma/walk_programs.cpp" "src/piuma/CMakeFiles/pgcn_piuma.dir/walk_programs.cpp.o" "gcc" "src/piuma/CMakeFiles/pgcn_piuma.dir/walk_programs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pgcn_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/pgcn_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/pgcn_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
