file(REMOVE_RECURSE
  "libpgcn_piuma.a"
)
