# Empty compiler generated dependencies file for pgcn_piuma.
# This may be replaced when dependencies are built.
