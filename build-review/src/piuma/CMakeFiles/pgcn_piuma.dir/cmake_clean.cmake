file(REMOVE_RECURSE
  "CMakeFiles/pgcn_piuma.dir/dense_programs.cpp.o"
  "CMakeFiles/pgcn_piuma.dir/dense_programs.cpp.o.d"
  "CMakeFiles/pgcn_piuma.dir/dma.cpp.o"
  "CMakeFiles/pgcn_piuma.dir/dma.cpp.o.d"
  "CMakeFiles/pgcn_piuma.dir/gcn_sim.cpp.o"
  "CMakeFiles/pgcn_piuma.dir/gcn_sim.cpp.o.d"
  "CMakeFiles/pgcn_piuma.dir/memory.cpp.o"
  "CMakeFiles/pgcn_piuma.dir/memory.cpp.o.d"
  "CMakeFiles/pgcn_piuma.dir/node_model.cpp.o"
  "CMakeFiles/pgcn_piuma.dir/node_model.cpp.o.d"
  "CMakeFiles/pgcn_piuma.dir/spmm_programs.cpp.o"
  "CMakeFiles/pgcn_piuma.dir/spmm_programs.cpp.o.d"
  "CMakeFiles/pgcn_piuma.dir/walk_programs.cpp.o"
  "CMakeFiles/pgcn_piuma.dir/walk_programs.cpp.o.d"
  "libpgcn_piuma.a"
  "libpgcn_piuma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_piuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
