file(REMOVE_RECURSE
  "CMakeFiles/pgcn_model.dir/spmm_model.cpp.o"
  "CMakeFiles/pgcn_model.dir/spmm_model.cpp.o.d"
  "libpgcn_model.a"
  "libpgcn_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
