# Empty dependencies file for pgcn_model.
# This may be replaced when dependencies are built.
