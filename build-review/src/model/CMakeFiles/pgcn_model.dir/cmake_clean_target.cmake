file(REMOVE_RECURSE
  "libpgcn_model.a"
)
