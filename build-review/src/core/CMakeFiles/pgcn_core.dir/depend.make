# Empty dependencies file for pgcn_core.
# This may be replaced when dependencies are built.
