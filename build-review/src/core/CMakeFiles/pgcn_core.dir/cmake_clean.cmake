file(REMOVE_RECURSE
  "CMakeFiles/pgcn_core.dir/gcn.cpp.o"
  "CMakeFiles/pgcn_core.dir/gcn.cpp.o.d"
  "CMakeFiles/pgcn_core.dir/platforms.cpp.o"
  "CMakeFiles/pgcn_core.dir/platforms.cpp.o.d"
  "libpgcn_core.a"
  "libpgcn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
