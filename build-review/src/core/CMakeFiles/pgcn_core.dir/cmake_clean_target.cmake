file(REMOVE_RECURSE
  "libpgcn_core.a"
)
