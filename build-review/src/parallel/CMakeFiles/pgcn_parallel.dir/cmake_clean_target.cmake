file(REMOVE_RECURSE
  "libpgcn_parallel.a"
)
