# Empty compiler generated dependencies file for pgcn_parallel.
# This may be replaced when dependencies are built.
