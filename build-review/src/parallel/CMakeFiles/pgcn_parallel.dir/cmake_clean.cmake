file(REMOVE_RECURSE
  "CMakeFiles/pgcn_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/pgcn_parallel.dir/thread_pool.cpp.o.d"
  "libpgcn_parallel.a"
  "libpgcn_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
