# Empty dependencies file for pgcn_xeon.
# This may be replaced when dependencies are built.
