file(REMOVE_RECURSE
  "CMakeFiles/pgcn_xeon.dir/timing.cpp.o"
  "CMakeFiles/pgcn_xeon.dir/timing.cpp.o.d"
  "libpgcn_xeon.a"
  "libpgcn_xeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgcn_xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
