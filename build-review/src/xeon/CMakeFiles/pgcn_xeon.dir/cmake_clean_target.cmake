file(REMOVE_RECURSE
  "libpgcn_xeon.a"
)
