# Empty compiler generated dependencies file for platform_advisor.
# This may be replaced when dependencies are built.
