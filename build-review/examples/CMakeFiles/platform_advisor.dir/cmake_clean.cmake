file(REMOVE_RECURSE
  "CMakeFiles/platform_advisor.dir/platform_advisor.cpp.o"
  "CMakeFiles/platform_advisor.dir/platform_advisor.cpp.o.d"
  "platform_advisor"
  "platform_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
