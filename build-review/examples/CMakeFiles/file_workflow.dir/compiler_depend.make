# Empty compiler generated dependencies file for file_workflow.
# This may be replaced when dependencies are built.
