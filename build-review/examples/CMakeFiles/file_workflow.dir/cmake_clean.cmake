file(REMOVE_RECURSE
  "CMakeFiles/file_workflow.dir/file_workflow.cpp.o"
  "CMakeFiles/file_workflow.dir/file_workflow.cpp.o.d"
  "file_workflow"
  "file_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
