# Empty compiler generated dependencies file for embedding_sweep.
# This may be replaced when dependencies are built.
