file(REMOVE_RECURSE
  "CMakeFiles/embedding_sweep.dir/embedding_sweep.cpp.o"
  "CMakeFiles/embedding_sweep.dir/embedding_sweep.cpp.o.d"
  "embedding_sweep"
  "embedding_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
