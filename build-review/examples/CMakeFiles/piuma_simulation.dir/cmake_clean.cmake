file(REMOVE_RECURSE
  "CMakeFiles/piuma_simulation.dir/piuma_simulation.cpp.o"
  "CMakeFiles/piuma_simulation.dir/piuma_simulation.cpp.o.d"
  "piuma_simulation"
  "piuma_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piuma_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
