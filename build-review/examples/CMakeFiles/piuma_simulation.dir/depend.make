# Empty dependencies file for piuma_simulation.
# This may be replaced when dependencies are built.
