file(REMOVE_RECURSE
  "CMakeFiles/ablation_dgas.dir/ablation_dgas.cpp.o"
  "CMakeFiles/ablation_dgas.dir/ablation_dgas.cpp.o.d"
  "ablation_dgas"
  "ablation_dgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
