# Empty compiler generated dependencies file for ablation_dgas.
# This may be replaced when dependencies are built.
