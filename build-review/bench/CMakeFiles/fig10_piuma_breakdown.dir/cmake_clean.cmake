file(REMOVE_RECURSE
  "CMakeFiles/fig10_piuma_breakdown.dir/fig10_piuma_breakdown.cpp.o"
  "CMakeFiles/fig10_piuma_breakdown.dir/fig10_piuma_breakdown.cpp.o.d"
  "fig10_piuma_breakdown"
  "fig10_piuma_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_piuma_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
