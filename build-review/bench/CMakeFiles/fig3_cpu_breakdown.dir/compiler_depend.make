# Empty compiler generated dependencies file for fig3_cpu_breakdown.
# This may be replaced when dependencies are built.
