file(REMOVE_RECURSE
  "CMakeFiles/fig3_cpu_breakdown.dir/fig3_cpu_breakdown.cpp.o"
  "CMakeFiles/fig3_cpu_breakdown.dir/fig3_cpu_breakdown.cpp.o.d"
  "fig3_cpu_breakdown"
  "fig3_cpu_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cpu_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
