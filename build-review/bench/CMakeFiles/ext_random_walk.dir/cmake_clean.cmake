file(REMOVE_RECURSE
  "CMakeFiles/ext_random_walk.dir/ext_random_walk.cpp.o"
  "CMakeFiles/ext_random_walk.dir/ext_random_walk.cpp.o.d"
  "ext_random_walk"
  "ext_random_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_random_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
