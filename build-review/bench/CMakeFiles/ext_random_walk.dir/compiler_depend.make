# Empty compiler generated dependencies file for ext_random_walk.
# This may be replaced when dependencies are built.
