# Empty compiler generated dependencies file for fig6_bw_latency.
# This may be replaced when dependencies are built.
