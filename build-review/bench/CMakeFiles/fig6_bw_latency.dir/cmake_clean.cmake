file(REMOVE_RECURSE
  "CMakeFiles/fig6_bw_latency.dir/fig6_bw_latency.cpp.o"
  "CMakeFiles/fig6_bw_latency.dir/fig6_bw_latency.cpp.o.d"
  "fig6_bw_latency"
  "fig6_bw_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bw_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
