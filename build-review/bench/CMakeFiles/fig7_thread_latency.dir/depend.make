# Empty dependencies file for fig7_thread_latency.
# This may be replaced when dependencies are built.
