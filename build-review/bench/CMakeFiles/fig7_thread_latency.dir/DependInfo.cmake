
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_thread_latency.cpp" "bench/CMakeFiles/fig7_thread_latency.dir/fig7_thread_latency.cpp.o" "gcc" "bench/CMakeFiles/fig7_thread_latency.dir/fig7_thread_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/pgcn_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernels/CMakeFiles/pgcn_kernels.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/pgcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/pgcn_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/piuma/CMakeFiles/pgcn_piuma.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/pgcn_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xeon/CMakeFiles/pgcn_xeon.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gpu/CMakeFiles/pgcn_gpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/pgcn_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/pgcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
