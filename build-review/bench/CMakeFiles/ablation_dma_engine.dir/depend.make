# Empty dependencies file for ablation_dma_engine.
# This may be replaced when dependencies are built.
