file(REMOVE_RECURSE
  "CMakeFiles/ablation_dma_engine.dir/ablation_dma_engine.cpp.o"
  "CMakeFiles/ablation_dma_engine.dir/ablation_dma_engine.cpp.o.d"
  "ablation_dma_engine"
  "ablation_dma_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dma_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
