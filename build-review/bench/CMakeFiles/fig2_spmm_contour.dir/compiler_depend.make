# Empty compiler generated dependencies file for fig2_spmm_contour.
# This may be replaced when dependencies are built.
