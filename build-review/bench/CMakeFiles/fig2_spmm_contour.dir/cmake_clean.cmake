file(REMOVE_RECURSE
  "CMakeFiles/fig2_spmm_contour.dir/fig2_spmm_contour.cpp.o"
  "CMakeFiles/fig2_spmm_contour.dir/fig2_spmm_contour.cpp.o.d"
  "fig2_spmm_contour"
  "fig2_spmm_contour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_spmm_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
