file(REMOVE_RECURSE
  "CMakeFiles/fig5_spmm_algorithms.dir/fig5_spmm_algorithms.cpp.o"
  "CMakeFiles/fig5_spmm_algorithms.dir/fig5_spmm_algorithms.cpp.o.d"
  "fig5_spmm_algorithms"
  "fig5_spmm_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_spmm_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
