# Empty compiler generated dependencies file for fig5_spmm_algorithms.
# This may be replaced when dependencies are built.
