file(REMOVE_RECURSE
  "CMakeFiles/ablation_hetero_soc.dir/ablation_hetero_soc.cpp.o"
  "CMakeFiles/ablation_hetero_soc.dir/ablation_hetero_soc.cpp.o.d"
  "ablation_hetero_soc"
  "ablation_hetero_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hetero_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
