# Empty compiler generated dependencies file for ablation_hetero_soc.
# This may be replaced when dependencies are built.
