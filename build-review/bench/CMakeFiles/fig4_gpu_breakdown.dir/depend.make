# Empty dependencies file for fig4_gpu_breakdown.
# This may be replaced when dependencies are built.
