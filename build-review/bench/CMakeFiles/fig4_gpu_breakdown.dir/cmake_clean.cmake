file(REMOVE_RECURSE
  "CMakeFiles/fig4_gpu_breakdown.dir/fig4_gpu_breakdown.cpp.o"
  "CMakeFiles/fig4_gpu_breakdown.dir/fig4_gpu_breakdown.cpp.o.d"
  "fig4_gpu_breakdown"
  "fig4_gpu_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_gpu_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
