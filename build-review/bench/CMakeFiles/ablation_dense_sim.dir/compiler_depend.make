# Empty compiler generated dependencies file for ablation_dense_sim.
# This may be replaced when dependencies are built.
