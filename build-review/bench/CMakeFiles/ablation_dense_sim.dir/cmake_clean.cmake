file(REMOVE_RECURSE
  "CMakeFiles/ablation_dense_sim.dir/ablation_dense_sim.cpp.o"
  "CMakeFiles/ablation_dense_sim.dir/ablation_dense_sim.cpp.o.d"
  "ablation_dense_sim"
  "ablation_dense_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dense_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
