/**
 * @file
 * Platform-selection example — the question the paper's introduction
 * motivates: given a graph workload and a GCN architecture, which
 * system should run it? Projects the workload onto the calibrated
 * Xeon / A100 / PIUMA-node models and prints the predicted breakdown
 * and winner.
 *
 * Build & run:  ./build/examples/platform_advisor [dataset] [hidden]
 * Datasets: ddi proteins arxiv collab ppa mag products citation2
 *           papers power-16 power-22
 */
#include <cstdlib>
#include <iostream>

#include "core/platforms.hpp"

int
main(int argc, char **argv)
{
    using namespace pgcn;

    const std::string name = argc > 1 ? argv[1] : "products";
    const uint64_t hidden =
        argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 128;

    const auto &dataset = graph::datasetByName(name);
    core::GcnModelConfig model;
    model.inputDim = dataset.inputDim;
    model.hiddenDim = hidden;
    model.outputDim = dataset.numClasses;
    model.numLayers = 3;

    std::cout << "workload: " << dataset.name << " (|V|="
              << dataset.numVertices << ", |E|=" << dataset.numEdges
              << "), 3-layer GCN, hidden dim " << hidden << "\n\n";

    core::XeonPlatform cpu;
    core::GpuPlatform gpu;
    core::PiumaPlatform piuma_node;

    const core::Platform *best = nullptr;
    double best_ns = 0.0;
    for (const core::Platform *p :
         {static_cast<const core::Platform *>(&cpu),
          static_cast<const core::Platform *>(&gpu),
          static_cast<const core::Platform *>(&piuma_node)}) {
        const auto bd = p->timeGcn(dataset, model);
        std::cout << p->name() << ": total " << bd.totalNs() / 1e6
                  << " ms | SpMM " << 100.0 * bd.spmmFraction()
                  << "% dense " << 100.0 * bd.denseFraction()
                  << "% glue " << 100.0 * bd.glueFraction()
                  << "% offload " << 100.0 * bd.offloadFraction()
                  << "% sampling " << 100.0 * bd.samplingFraction()
                  << "%\n";
        if (best == nullptr || bd.totalNs() < best_ns) {
            best = p;
            best_ns = bd.totalNs();
        }
    }

    std::cout << "\nrecommended platform: " << best->name() << " ("
              << best_ns / 1e6 << " ms per inference)\n";
    if (name == "papers") {
        std::cout << "note: papers exceeds the A100's 40 GB, forcing "
                     "host-side sampling — the paper's headline case "
                     "for PIUMA's DGAS.\n";
    }
    return 0;
}
