/**
 * @file
 * Architecture-exploration example: drive the PIUMA discrete-event
 * simulator directly, the way Section IV of the paper does — compare
 * the two SpMM implementations on a configurable system and probe a
 * what-if (here: what if the optical network were twice as slow?).
 *
 * Build & run:  ./build/examples/piuma_simulation [cores] [K]
 */
#include <cstdlib>
#include <iostream>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "model/spmm_model.hpp"
#include "piuma/gcn_sim.hpp"
#include "piuma/spmm_programs.hpp"

int
main(int argc, char **argv)
{
    using namespace pgcn;
    using piuma::SpmmAlgorithm;

    const unsigned cores =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
    const unsigned k =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 64;

    const graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(13, 1u << 17, graph::rmatSkewed(), 7));
    std::cout << "workload: SpMM over |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << " K=" << k << "\n\n";

    piuma::PiumaConfig cfg;
    cfg.numCores = cores;

    const double bw = cfg.aggregateBandwidth();
    const auto bound = model::estimateSpmm(
        model::SpmmWorkload{csr.numVertices(), csr.numEdges(), k}, bw,
        bw);
    std::cout << "bandwidth-bound model: " << bound.timeNs / 1e3
              << " us (" << bound.gflops << " GFLOP/s)\n\n";

    for (auto alg :
         {SpmmAlgorithm::Dma, SpmmAlgorithm::LoopUnrolled}) {
        const auto s = piuma::simulateSpmm(csr, k, cfg, alg);
        std::cout << piuma::spmmAlgorithmName(alg) << ":\n"
                  << "  makespan       " << s.makespanNs / 1e3
                  << " us (" << s.gflops << " GFLOP/s, "
                  << 100.0 * bound.timeNs / s.makespanNs
                  << "% of model)\n"
                  << "  DRAM util      " << 100.0 * s.memUtilization
                  << "% avg, " << 100.0 * s.maxMemUtilization
                  << "% max; network " << 100.0 * s.netUtilization
                  << "%\n"
                  << "  avg NNZ latency " << s.avgNnzLatencyNs
                  << " ns over " << s.nnzReads << " line reads\n"
                  << "  sim events     " << s.simEvents << "\n";
    }

    // What-if: double the cross-die optical latency.
    piuma::PiumaConfig slow_net = cfg;
    slow_net.netCrossDieNs *= 2.0;
    const auto base =
        piuma::simulateSpmm(csr, k, cfg, SpmmAlgorithm::Dma);
    const auto slowed =
        piuma::simulateSpmm(csr, k, slow_net, SpmmAlgorithm::Dma);
    std::cout << "\nwhat-if (2x cross-die latency): DMA slowdown "
              << slowed.makespanNs / base.makespanNs
              << "x — the DMA engines pipeline the latency away.\n";

    // A whole 3-layer GCN on the simulator (aggregation + update).
    const auto gcn = piuma::simulateGcn(
        csr, {{128, k}, {k, k}, {k, 40}}, cfg);
    std::cout << "\n3-layer GCN on the DES: total "
              << gcn.totalNs / 1e3 << " us, SpMM "
              << 100.0 * gcn.spmmFraction() << "%, Dense "
              << 100.0 * gcn.denseFraction()
              << "% (the paper's Fig. 10 balance, simulated).\n";
    return 0;
}
