/**
 * @file
 * Quickstart: the minimal end-to-end use of the library.
 *
 *  1. Generate a graph (stand-in for loading your own edge list).
 *  2. Build the GCN-normalised adjacency A~ = D^-1/2 (A+I) D^-1/2.
 *  3. Run a 3-layer GCN inference with the real CPU kernels.
 *  4. Inspect the execution-time breakdown (SpMM / Dense MM / Glue).
 *
 * Build & run:  ./build/examples/quickstart [rmat_scale]
 */
#include <cstdlib>
#include <iostream>

#include "core/gcn.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/normalize.hpp"

int
main(int argc, char **argv)
{
    using namespace pgcn;

    const uint32_t scale =
        argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 12;

    // 1. A synthetic social-network-like graph: 2^scale vertices,
    //    average degree 16, heavy-tailed (Graph500 RMAT parameters).
    graph::Coo edges = graph::generateRmat(
        scale, (graph::EdgeId{1} << scale) * 16, graph::rmatSkewed(),
        /*seed=*/1);

    // 2. Kipf-Welling renormalisation: symmetrize, add self loops,
    //    scale by inverse-sqrt degrees.
    graph::Csr adjacency = graph::normalizedAdjacency(edges);
    const auto stats = graph::degreeStats(adjacency);
    std::cout << "graph: |V|=" << adjacency.numVertices()
              << " |E|=" << adjacency.numEdges()
              << " avg degree=" << stats.mean
              << " gini=" << stats.gini << "\n";

    // 3. A 3-layer GCN: 64-dim inputs -> 32 hidden -> 8 classes.
    core::GcnModelConfig config;
    config.inputDim = 64;
    config.hiddenDim = 32;
    config.outputDim = 8;
    config.numLayers = 3;
    core::GcnModel model(config);

    tensor::DenseMatrix features(adjacency.numVertices(),
                                 config.inputDim);
    features.fillRandom(/*seed=*/2, /*scale=*/0.5f);

    parallel::ThreadPool pool; // all hardware threads
    core::KernelBreakdown breakdown;
    const tensor::DenseMatrix logits =
        model.infer(adjacency, features, pool,
                    core::CpuSpmmKind::VertexParallel, &breakdown);

    // 4. Results.
    std::cout << "logits: " << logits.rows() << " x " << logits.cols()
              << "\n"
              << "breakdown: SpMM " << breakdown.spmmNs / 1e6
              << " ms (" << 100.0 * breakdown.spmmFraction() << "%), "
              << "Dense MM " << breakdown.denseNs / 1e6 << " ms ("
              << 100.0 * breakdown.denseFraction() << "%), "
              << "Glue " << breakdown.glueNs / 1e6 << " ms\n";
    return 0;
}
