/**
 * @file
 * Embedding-dimension sweep example: the architectural experiment at
 * the heart of the paper, run end-to-end on a real (proxy) graph with
 * the functional CPU kernels, then projected onto the three platform
 * models. Shows how the sparse/dense balance shifts as the hidden
 * dimension grows — measured, not just modelled.
 *
 * Build & run:  ./build/examples/embedding_sweep [dataset]
 */
#include <iostream>

#include "core/gcn.hpp"
#include "core/platforms.hpp"
#include "graph/datasets.hpp"

int
main(int argc, char **argv)
{
    using namespace pgcn;

    const std::string name = argc > 1 ? argv[1] : "arxiv";
    const auto &dataset = graph::datasetByName(name);

    // Down-scaled proxy for functional execution on this machine.
    const auto proxy = graph::buildProxy(dataset, 1u << 17);
    std::cout << "dataset " << dataset.name << ", proxy |V|="
              << proxy.adjacency.numVertices() << " |E|="
              << proxy.adjacency.numEdges() << " (scale factor "
              << proxy.scaleFactor << ")\n\n";

    parallel::ThreadPool pool;
    std::cout << "measured on this machine (functional kernels):\n";
    std::cout << "K      %SpMM   %Dense  %Glue   total(ms)\n";
    for (uint64_t k : {8u, 32u, 128u}) {
        core::GcnModelConfig cfg;
        cfg.inputDim = dataset.inputDim;
        cfg.hiddenDim = k;
        cfg.outputDim = dataset.numClasses;
        core::GcnModel model(cfg);
        tensor::DenseMatrix features(proxy.adjacency.numVertices(),
                                     cfg.inputDim);
        features.fillRandom(3, 0.5f);
        core::KernelBreakdown bd;
        model.infer(proxy.adjacency, features, pool,
                    core::CpuSpmmKind::VertexParallel, &bd);
        std::printf("%-6lu %-7.1f %-7.1f %-7.1f %.2f\n",
                    static_cast<unsigned long>(k),
                    100.0 * bd.spmmFraction(),
                    100.0 * bd.denseFraction(),
                    100.0 * bd.glueFraction(), bd.totalNs() / 1e6);
    }

    std::cout << "\nprojected at published scale (platform models):\n";
    core::XeonPlatform cpu;
    core::PiumaPlatform piuma_node;
    std::cout << "K      xeon %SpMM   piuma %Dense   piuma speedup\n";
    for (uint64_t k : core::GcnModelConfig::embeddingSweep()) {
        core::GcnModelConfig cfg;
        cfg.inputDim = dataset.inputDim;
        cfg.hiddenDim = k;
        cfg.outputDim = dataset.numClasses;
        const auto cpu_bd = cpu.timeGcn(dataset, cfg);
        const auto piuma_bd = piuma_node.timeGcn(dataset, cfg);
        std::printf("%-6lu %-11.1f %-14.1f %.2fx\n",
                    static_cast<unsigned long>(k),
                    100.0 * cpu_bd.spmmFraction(),
                    100.0 * piuma_bd.denseFraction(),
                    cpu_bd.totalNs() / piuma_bd.totalNs());
    }
    std::cout << "\nreading: the update (dense) share on PIUMA grows "
                 "with K while its advantage over the CPU shrinks — "
                 "the paper's key takeaway 2 of Section V.\n";
    return 0;
}
