/**
 * @file
 * Persistence workflow example: the path a downstream user takes with
 * their own data.
 *
 *  1. Export a graph as a portable edge-list text file.
 *  2. Reload it, build the normalised adjacency, cache it as binary
 *     CSR (fast to reload).
 *  3. Run GCN inference and turn logits into predicted labels.
 *
 * Build & run:  ./build/examples/file_workflow [work_dir]
 */
#include <cstdio>
#include <iostream>
#include <map>

#include "core/gcn.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/normalize.hpp"
#include "tensor/ops.hpp"

int
main(int argc, char **argv)
{
    using namespace pgcn;

    const std::string dir = argc > 1 ? argv[1] : "/tmp";
    const std::string edges_path = dir + "/pgcn_example_edges.txt";
    const std::string csr_path = dir + "/pgcn_example_graph.csr";

    // 1. Export: in real use this file comes from your own pipeline.
    graph::Coo coo = graph::generateRmat(
        11, 1u << 15, graph::rmatSkewed(), /*seed=*/4);
    graph::saveEdgeListText(coo, edges_path);
    std::cout << "wrote " << coo.numEdges() << " edges to "
              << edges_path << "\n";

    // 2. Reload + normalise + cache.
    graph::Coo reloaded = graph::loadEdgeListText(edges_path);
    graph::Csr adjacency = graph::normalizedAdjacency(reloaded);
    graph::saveCsrBinary(adjacency, csr_path);
    graph::Csr cached = graph::loadCsrBinary(csr_path);
    std::cout << "cached normalised adjacency (|V|="
              << cached.numVertices() << ", |E|=" << cached.numEdges()
              << ") at " << csr_path << "\n";

    // 3. Inference + labels.
    core::GcnModelConfig cfg;
    cfg.inputDim = 32;
    cfg.hiddenDim = 16;
    cfg.outputDim = 5;
    core::GcnModel model(cfg);
    tensor::DenseMatrix features(cached.numVertices(), cfg.inputDim);
    features.fillRandom(6, 0.5f);

    parallel::ThreadPool pool;
    tensor::DenseMatrix logits =
        model.infer(cached, features, pool);
    tensor::softmaxRowsInPlace(logits);
    const auto labels = tensor::argmaxRows(logits);

    std::map<uint64_t, uint64_t> histogram;
    for (uint64_t label : labels)
        ++histogram[label];
    std::cout << "predicted label histogram:";
    for (const auto &[label, count] : histogram)
        std::cout << "  class " << label << ": " << count;
    std::cout << "\n";

    std::remove(edges_path.c_str());
    std::remove(csr_path.c_str());
    return 0;
}
