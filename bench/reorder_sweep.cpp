/**
 * @file
 * Reordering ablation: how much locality can a vertex relabeling buy,
 * measured in BOTH worlds from one sweep —
 *
 *  - host: wall-clock GF/s of the tiled and nnz-balanced SpMM kernels
 *    on Table-I proxies under every reordering pass (graph/reorder.hpp),
 *  - model: the PIUMA DES remote-access fraction and slice-traffic
 *    skew for the same orderings, under both row placements (hashed =
 *    the paper's order-blind DGAS; blocked + interleave off = the
 *    placement that lets order matter, with owner-computes work
 *    division).
 *
 * The honest baseline is a seeded SHUFFLE of each proxy, not the raw
 * generator output: RMAT emits vertices in a near-sorted order that
 * already flatters locality, so "identity" here means "shuffled ids",
 * and every pass has to earn its locality back from that.
 *
 * CI gates on this bench via tools/bench_pr6.py: on every graph, the
 * best of {island, rcm} must beat shuffle on host SpMM GF/s AND
 * reduce the modeled remote-access fraction under blocked placement.
 *
 * Runs on the shared sweep driver (--jobs N / --checkpoint= /
 * --resume / --sweep-json=). --model-only skips the host wall-clock
 * points (sanitizer CI).
 */
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "graph/graph_stats.hpp"
#include "graph/reorder.hpp"
#include "kernels/spmm.hpp"
#include "kernels/tiled_spmm.hpp"
#include "parallel/thread_pool.hpp"
#include "piuma/spmm_programs.hpp"
#include "tensor/dense_matrix.hpp"

using namespace pgcn;

namespace {

constexpr unsigned kHostDim = 128; ///< host kernel feature width
constexpr unsigned kSimDim = 32;   ///< DES feature width (cheaper)
constexpr double kTileBudget = 2.0 * 1024 * 1024; ///< tiled-SpMM LLC share

/** One reordered view of a proxy graph, built once on the caller. */
struct OrderedGraph
{
    graph::ReorderPass pass;
    graph::Csr csr;                         ///< relabeled adjacency
    std::vector<graph::VertexId> boundaries;///< island boundaries (new ids)
};

/**
 * All reordering passes applied to the shuffled base graph. Identity
 * is applied to the SHUFFLED graph (see file comment), so it and
 * Shuffle bracket the honest do-nothing range.
 */
std::vector<OrderedGraph>
orderedViews(const graph::Csr &base, graph::VertexId island_vertices)
{
    std::vector<OrderedGraph> views;
    for (const graph::ReorderPass pass : graph::allReorderPasses()) {
        auto isl = graph::makeOrder(pass, base, /*seed=*/1234,
                                    island_vertices);
        views.push_back(OrderedGraph{pass, isl.perm.applyToCsr(base),
                                     std::move(isl.boundaries)});
    }
    return views;
}

/** Best-of-3 wall-clock seconds of @p fn after one warmup call. */
template <typename Fn>
double
bestSeconds(Fn &&fn)
{
    fn(); // warmup: faults pages, warms caches
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::SweepDriver driver(args);

    struct GraphCase
    {
        std::string name;
        std::vector<OrderedGraph> hostViews; ///< host-scale proxy
        std::vector<OrderedGraph> simViews;  ///< DES-scale proxy
    };
    std::vector<GraphCase> cases;
    for (const char *name : {"arxiv", "products"}) {
        const auto &info = graph::datasetByName(name);
        // Host-scale proxy, shuffled so the generator's near-sorted
        // vertex order cannot masquerade as locality.
        // Big enough that the baseline's feature gather spills the
        // LLC — a cache-resident proxy would measure noise, not
        // locality (and the CI gate would flap).
        const auto host_proxy =
            graph::buildProxy(info, graph::EdgeId{1} << 19, 42);
        const graph::Csr host_base =
            graph::shuffleOrder(host_proxy.adjacency.numVertices(), 7)
                .applyToCsr(host_proxy.adjacency);
        const auto sim_proxy =
            graph::buildProxy(info, graph::EdgeId{1} << 15, 42);
        const graph::Csr sim_base =
            graph::shuffleOrder(sim_proxy.adjacency.numVertices(), 7)
                .applyToCsr(sim_proxy.adjacency);

        GraphCase c;
        c.name = name;
        c.hostViews = orderedViews(
            host_base,
            graph::islandCapacity(kTileBudget, kHostDim));
        // DES islands sized so a few islands fit one blocked slice.
        c.simViews = orderedViews(
            sim_base,
            std::max<graph::VertexId>(
                1, sim_base.numVertices() / 32));
        cases.push_back(std::move(c));
        std::cout << name << ": host |V|=" << host_base.numVertices()
                  << " |E|=" << host_base.numEdges()
                  << ", sim |V|=" << sim_base.numVertices()
                  << " |E|=" << sim_base.numEdges() << "\n";
    }
    std::cout << "\n";

    struct PointRef
    {
        size_t graphIdx;
        graph::ReorderPass pass;
        size_t idx;
    };
    std::vector<std::vector<PointRef>> hostTiled(cases.size()),
        hostNnz(cases.size()), locality(cases.size()),
        simHashed(cases.size()), simBlocked(cases.size());

    for (size_t g = 0; g < cases.size(); ++g) {
        const GraphCase &c = cases[g];
        for (const OrderedGraph &view : c.hostViews) {
            const std::string order = graph::reorderPassName(view.pass);

            if (!args.modelOnly) {
                // Host kernels, single-threaded for stable CI numbers:
                // the gate compares orderings, not thread scaling.
                for (const char *kernel : {"tiled", "nnz"}) {
                    const bool tiled = std::string(kernel) == "tiled";
                    const std::string key = "host/" + c.name +
                                            "/order=" + order +
                                            "/kernel=" + kernel;
                    const size_t idx = driver.add(
                        key,
                        [&view, tiled](const parallel::SweepContext &) {
                            const graph::Csr &a = view.csr;
                            parallel::ThreadPool pool(1);
                            tensor::DenseMatrix h(a.numVertices(),
                                                  kHostDim);
                            h.fillRandom(99);
                            tensor::DenseMatrix out;
                            double secs = 0.0;
                            if (tiled) {
                                const bool island =
                                    view.pass ==
                                    graph::ReorderPass::Island;
                                const kernels::TiledSpmm op =
                                    island
                                        ? kernels::TiledSpmm(
                                              a, kHostDim,
                                              view.boundaries)
                                        : kernels::TiledSpmm(
                                              a, kHostDim,
                                              kTileBudget);
                                secs = bestSeconds([&] {
                                    op.apply(h, out, pool);
                                });
                            } else {
                                secs = bestSeconds([&] {
                                    kernels::spmmIslandBalanced(
                                        a, view.boundaries, h, out,
                                        pool);
                                });
                            }
                            const double flop =
                                2.0 * static_cast<double>(a.numEdges()) *
                                kHostDim;
                            return JsonlCheckpoint::Values{
                                {"gflops", flop / secs / 1e9},
                                {"seconds", secs}};
                        });
                    (tiled ? hostTiled : hostNnz)[g].push_back(
                        PointRef{g, view.pass, idx});
                }
            }

            // Locality metrics (order-dependent, cheap, deterministic).
            const std::string lkey =
                "locality/" + c.name + "/order=" + order;
            const size_t lidx = driver.add(
                lkey, [&view](const parallel::SweepContext &) {
                    const auto stats = graph::localityStats(
                        view.csr,
                        graph::islandCapacity(kTileBudget, kHostDim));
                    const double conductance = graph::islandConductance(
                        view.csr, view.boundaries);
                    return JsonlCheckpoint::Values{
                        {"avg_neighbor_distance",
                         stats.avgNeighborDistance},
                        {"avg_tile_working_set",
                         stats.avgTileWorkingSet},
                        {"island_conductance", conductance}};
                });
            locality[g].push_back(PointRef{g, view.pass, lidx});
        }

        for (const OrderedGraph &view : c.simViews) {
            const std::string order = graph::reorderPassName(view.pass);
            for (const char *placement : {"hashed", "blocked"}) {
                const bool blocked =
                    std::string(placement) == "blocked";
                const std::string key = "sim/" + c.name +
                                        "/order=" + order +
                                        "/placement=" + placement;
                const size_t idx = driver.add(
                    key,
                    [&driver, &view,
                     blocked](const parallel::SweepContext &ctx) {
                        piuma::PiumaConfig cfg;
                        cfg.numCores = 8;
                        if (blocked) {
                            cfg.rowPlacement =
                                piuma::RowPlacement::Blocked;
                            cfg.dgasFineInterleave = false;
                        }
                        const auto sim = piuma::simulateSpmm(
                            view.csr, kSimDim, cfg,
                            piuma::SpmmAlgorithm::Dma, ctx.session,
                            ctx.controls);
                        driver.throughput(ctx).add(sim);
                        return JsonlCheckpoint::Values{
                            {"remote_access_fraction",
                             sim.remoteAccessFraction},
                            {"max_slice_bytes_fraction",
                             sim.maxSliceBytesFraction},
                            {"makespan_ns", sim.makespanNs},
                            {"gflops", sim.gflops}};
                    });
                (blocked ? simBlocked : simHashed)[g].push_back(
                    PointRef{g, view.pass, idx});
            }
        }
    }

    driver.run();

    Table table("Reordering: host kernels and modeled locality",
                {"graph", "order", "tiled GF/s", "nnz GF/s",
                 "nbr dist", "tile WS", "conduct",
                 "remote% hash", "remote% blk", "slice skew blk"});
    for (size_t g = 0; g < cases.size(); ++g) {
        for (size_t i = 0; i < locality[g].size(); ++i) {
            const graph::ReorderPass pass = locality[g][i].pass;
            auto value = [&](const std::vector<PointRef> &refs,
                             const char *name) {
                if (i >= refs.size())
                    return 0.0;
                const auto *v = driver.result(refs[i].idx);
                return v ? v->at(name) : 0.0;
            };
            table.row()
                .cell(cases[g].name)
                .cell(graph::reorderPassName(pass))
                .cell(value(hostTiled[g], "gflops"), 2)
                .cell(value(hostNnz[g], "gflops"), 2)
                .cell(value(locality[g], "avg_neighbor_distance"), 0)
                .cell(value(locality[g], "avg_tile_working_set"), 0)
                .cell(value(locality[g], "island_conductance"), 3)
                .cell(100.0 * value(simHashed[g],
                                    "remote_access_fraction"), 1)
                .cell(100.0 * value(simBlocked[g],
                                    "remote_access_fraction"), 1)
                .cell(value(simBlocked[g],
                            "max_slice_bytes_fraction"), 2);
        }
    }
    bench::emit(table, args.csvPath);
    std::cout
        << "Reading: hashed placement is order-blind (remote% flat "
           "across rows) — the paper's DGAS argument. Blocked "
           "placement + owner-computes lets islandization and RCM "
           "keep neighbourhoods slice-local: remote% drops vs the "
           "shuffled baseline, and the host kernels see the same "
           "story as cache-resident tiles (tile WS down, GF/s up).\n";
    driver.finish();
    return driver.failed() == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
