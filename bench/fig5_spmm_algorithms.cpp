/**
 * @file
 * Fig. 5: comparing the two SpMM implementations on PIUMA against the
 * bandwidth-bound analytical model, strong-scaling 1..32 cores,
 * normalised to single-core DMA performance.
 *
 * Expected shape: the DMA implementation stays within 10-20% of the
 * model across the sweep; the loop-unrolled implementation tracks at
 * small core counts but falls below ~50% of the model past 8 cores as
 * remote latency lands on the stall-on-use pipelines. Trends hold for
 * K = 8, 64 and 256 (the paper highlights 256).
 */
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "model/spmm_model.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);

    // Down-scaled proxy (methodology of [18]): 2^14 vertices, avg
    // degree 16 -> ~440k non-zeros after normalisation. argv[2]
    // overrides the scale for quicker runs.
    const uint32_t scale =
        argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 14;
    const graph::Csr csr = bench::desProxy(scale);
    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << "\n\n";

    Table table("Fig 5: SpMM algorithms vs bandwidth model "
                "(normalised to 1-core DMA)",
                {"K", "cores", "model", "dma", "loop-unrolled",
                 "dma GF/s", "lu GF/s", "dma/model", "lu/model"});

    for (unsigned k : {8u, 64u, 256u}) {
        double base_gflops = 0.0;
        for (unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
            piuma::PiumaConfig cfg;
            cfg.numCores = cores;
            const auto dma =
                simulateSpmm(csr, k, cfg, SpmmAlgorithm::Dma);
            const auto lu =
                simulateSpmm(csr, k, cfg, SpmmAlgorithm::LoopUnrolled);
            const double bw = cfg.aggregateBandwidth();
            const auto est = model::estimateSpmm(
                model::SpmmWorkload{csr.numVertices(), csr.numEdges(),
                                    k},
                bw, bw);
            if (cores == 1)
                base_gflops = dma.gflops;
            table.row()
                .cell(static_cast<uint64_t>(k))
                .cell(static_cast<uint64_t>(cores))
                .cell(est.gflops / base_gflops, 2)
                .cell(dma.gflops / base_gflops, 2)
                .cell(lu.gflops / base_gflops, 2)
                .cell(dma.gflops, 2)
                .cell(lu.gflops, 2)
                .cell(est.timeNs / dma.makespanNs, 2)
                .cell(est.timeNs / lu.makespanNs, 2);
        }
    }
    bench::emit(table, csv);
    return 0;
}
