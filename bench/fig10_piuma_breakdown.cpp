/**
 * @file
 * Fig. 10: execution-time breakdown for a PIUMA node, complementing
 * the CPU (Fig. 3) and GPU (Fig. 4) breakdowns.
 *
 * Expected shape: PIUMA accelerates SpMM so effectively that Dense MM
 * becomes the bottleneck as the embedding dimension grows — >75% of
 * time for arxiv/collab/mag/citation2/papers at K=256, and ~50-60%
 * even for the SpMM-heavy ppa/products.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/platforms.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);
    core::PiumaPlatform piuma_node;

    Table table("Fig 10: PIUMA node GCN breakdown",
                {"dataset", "K", "%SpMM", "%Dense", "%Glue",
                 "SpMM (ms)", "Dense (ms)", "total (ms)"});
    for (const auto &d : graph::ogbDatasets()) {
        for (uint64_t k : core::GcnModelConfig::embeddingSweep()) {
            const auto bd =
                piuma_node.timeGcn(d, bench::sweepModel(d, k));
            table.row()
                .cell(d.name)
                .cell(static_cast<uint64_t>(k))
                .cell(100.0 * bd.spmmFraction(), 1)
                .cell(100.0 * bd.denseFraction(), 1)
                .cell(100.0 * bd.glueFraction(), 1)
                .cell(bd.spmmNs / 1e6, 2)
                .cell(bd.denseNs / 1e6, 2)
                .cell(bd.totalNs() / 1e6, 2);
        }
    }
    bench::emit(table, csv);
    return 0;
}
