/**
 * @file
 * Fig. 10: execution-time breakdown for a PIUMA node, complementing
 * the CPU (Fig. 3) and GPU (Fig. 4) breakdowns.
 *
 * The per-kernel times are sourced from the telemetry counter
 * registry: the node model is attached to a registry and every
 * spmm/dense/glue evaluation accumulates into the
 * piuma.model.*_ns counters, so the table reads counter deltas around
 * each timeGcn() evaluation. This exercises the same path an external
 * metrics consumer would use, and cross-checks that the model
 * instrumentation accounts for every nanosecond timeGcn() reports.
 *
 * Expected shape: PIUMA accelerates SpMM so effectively that Dense MM
 * becomes the bottleneck as the embedding dimension grows — >75% of
 * time for arxiv/collab/mag/citation2/papers at K=256, and ~50-60%
 * even for the SpMM-heavy ppa/products.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/platforms.hpp"
#include "piuma/node_model.hpp"
#include "telemetry/registry.hpp"

using namespace pgcn;

namespace {

/** Counter snapshot of the three model kernels. */
struct ModelCounters
{
    double spmmNs;
    double denseNs;
    double glueNs;

    static ModelCounters
    snapshot(const telemetry::Registry &reg)
    {
        return ModelCounters{
            reg.counterValue("piuma.model.spmm_ns"),
            reg.counterValue("piuma.model.dense_ns"),
            reg.counterValue("piuma.model.glue_ns"),
        };
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    core::PiumaPlatform piuma_node;

    telemetry::Registry registry;
    piuma::setNodeModelTelemetry(&registry);

    Table table("Fig 10: PIUMA node GCN breakdown",
                {"dataset", "K", "%SpMM", "%Dense", "%Glue",
                 "SpMM (ms)", "Dense (ms)", "total (ms)"});
    for (const auto &d : graph::ogbDatasets()) {
        for (uint64_t k : core::GcnModelConfig::embeddingSweep()) {
            const auto before = ModelCounters::snapshot(registry);
            piuma_node.timeGcn(d, bench::sweepModel(d, k));
            const auto after = ModelCounters::snapshot(registry);
            const double spmm = after.spmmNs - before.spmmNs;
            const double dense = after.denseNs - before.denseNs;
            const double glue = after.glueNs - before.glueNs;
            const double total = spmm + dense + glue;
            table.row()
                .cell(d.name)
                .cell(static_cast<uint64_t>(k))
                .cell(100.0 * spmm / total, 1)
                .cell(100.0 * dense / total, 1)
                .cell(100.0 * glue / total, 1)
                .cell(spmm / 1e6, 2)
                .cell(dense / 1e6, 2)
                .cell(total / 1e6, 2);
        }
    }
    piuma::setNodeModelTelemetry(nullptr);
    bench::emit(table, args.csvPath);
    std::cout << "(breakdown sourced from the telemetry counter "
                 "registry: piuma.model.{spmm,dense,glue}_ns, "
              << registry.counterValue("piuma.model.spmm_calls") +
                     registry.counterValue("piuma.model.dense_calls") +
                     registry.counterValue("piuma.model.glue_calls")
              << " model evaluations)\n";
    return 0;
}
