/**
 * @file
 * Ablation: DMA-engine memory-level parallelism and queue depth.
 * The latency tolerance of the DMA SpMM comes from (a) the bounded
 * descriptor queue decoupling producers from the engine and (b) the
 * engine keeping many transfers in flight. This bench sweeps both,
 * showing that a single-outstanding-transfer engine (inflight=1)
 * throws away most of the bandwidth at scale, and that a very shallow
 * descriptor queue re-couples the NNZ-read latency to the engine.
 *
 * Runs on the shared sweep driver: --jobs N parallelises the
 * simulations, --checkpoint=/--resume/--sweep-json= make the sweep
 * restartable.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);
    const graph::Csr csr = bench::desProxy(13);
    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << "\n\n";

    const std::vector<unsigned> windows{256u, 64u, 16u, 4u, 1u};
    std::vector<size_t> inflight_idx;
    for (unsigned window : windows) {
        piuma::PiumaConfig cfg;
        cfg.numCores = 16;
        cfg.dmaMaxInflight = window;
        inflight_idx.push_back(driver.add(
            "inflight/window=" + std::to_string(window),
            [&driver, &csr, cfg](const parallel::SweepContext &ctx) {
                const auto s =
                    simulateSpmm(csr, 64, cfg, SpmmAlgorithm::Dma,
                                 ctx.session, ctx.controls);
                driver.throughput(ctx).add(s);
                return JsonlCheckpoint::Values{
                    {"gflops", s.gflops},
                    {"mem_util", s.memUtilization}};
            }));
    }

    const std::vector<unsigned> depths{64u, 16u, 4u, 1u};
    std::vector<size_t> queue_idx;
    for (unsigned depth : depths) {
        piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
        cfg.dmaQueueDepth = depth;
        cfg.dramLatencyScale = 4.0;
        queue_idx.push_back(driver.add(
            "queue/depth=" + std::to_string(depth),
            [&driver, &csr, cfg](const parallel::SweepContext &ctx) {
                const auto s =
                    simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma,
                                 ctx.session, ctx.controls);
                driver.throughput(ctx).add(s);
                return JsonlCheckpoint::Values{
                    {"dma_queue_stall_ns", s.dmaQueueStallNs},
                    {"gflops", s.gflops}};
            }));
    }

    driver.run();

    Table inflight("Ablation: DMA in-flight transfer window "
                   "(16 cores, K=64)",
                   {"max inflight", "GF/s", "mem util",
                    "vs inflight=256"});
    double base = 0.0;
    for (size_t i = 0; i < windows.size(); ++i) {
        const auto *v = driver.result(inflight_idx[i]);
        if (!v)
            continue;
        if (windows[i] == 256)
            base = v->at("gflops");
        inflight.row()
            .cell(static_cast<uint64_t>(windows[i]))
            .cell(v->at("gflops"), 2)
            .cell(v->at("mem_util"), 2)
            .cell(v->at("gflops") / base, 2);
    }
    bench::emit(inflight, csv.empty() ? csv : "inflight_" + csv);

    Table queue("Ablation: DMA descriptor queue depth "
                "(8 cores, K=8, 4x DRAM latency)",
                {"queue depth", "GF/s", "queue stall/thr us",
                 "vs depth=64"});
    base = 0.0;
    for (size_t i = 0; i < depths.size(); ++i) {
        const auto *v = driver.result(queue_idx[i]);
        if (!v)
            continue;
        piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
        if (depths[i] == 64)
            base = v->at("gflops");
        queue.row()
            .cell(static_cast<uint64_t>(depths[i]))
            .cell(v->at("gflops"), 2)
            .cell(v->at("dma_queue_stall_ns") / cfg.totalThreads() / 1e3,
                  2)
            .cell(v->at("gflops") / base, 2);
    }
    bench::emit(queue, csv.empty() ? csv : "queue_" + csv);
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
