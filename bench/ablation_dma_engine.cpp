/**
 * @file
 * Ablation: DMA-engine memory-level parallelism and queue depth.
 * The latency tolerance of the DMA SpMM comes from (a) the bounded
 * descriptor queue decoupling producers from the engine and (b) the
 * engine keeping many transfers in flight. This bench sweeps both,
 * showing that a single-outstanding-transfer engine (inflight=1)
 * throws away most of the bandwidth at scale, and that a very shallow
 * descriptor queue re-couples the NNZ-read latency to the engine.
 */
#include <iostream>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);
    const graph::Csr csr = bench::desProxy(13);
    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << "\n\n";

    Table inflight("Ablation: DMA in-flight transfer window "
                   "(16 cores, K=64)",
                   {"max inflight", "GF/s", "mem util",
                    "vs inflight=256"});
    double base = 0.0;
    for (unsigned window : {256u, 64u, 16u, 4u, 1u}) {
        piuma::PiumaConfig cfg;
        cfg.numCores = 16;
        cfg.dmaMaxInflight = window;
        const auto s = simulateSpmm(csr, 64, cfg, SpmmAlgorithm::Dma);
        if (window == 256)
            base = s.gflops;
        inflight.row()
            .cell(static_cast<uint64_t>(window))
            .cell(s.gflops, 2)
            .cell(s.memUtilization, 2)
            .cell(s.gflops / base, 2);
    }
    bench::emit(inflight, csv.empty() ? csv : "inflight_" + csv);

    Table queue("Ablation: DMA descriptor queue depth "
                "(8 cores, K=8, 4x DRAM latency)",
                {"queue depth", "GF/s", "queue stall/thr us",
                 "vs depth=64"});
    base = 0.0;
    for (unsigned depth : {64u, 16u, 4u, 1u}) {
        piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
        cfg.dmaQueueDepth = depth;
        cfg.dramLatencyScale = 4.0;
        const auto s = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
        if (depth == 64)
            base = s.gflops;
        queue.row()
            .cell(static_cast<uint64_t>(depth))
            .cell(s.gflops, 2)
            .cell(s.dmaQueueStallNs / cfg.totalThreads() / 1e3, 2)
            .cell(s.gflops / base, 2);
    }
    bench::emit(queue, csv.empty() ? csv : "queue_" + csv);
    return 0;
}
