/**
 * @file
 * Fig. 7: consequences of MTP thread count on latency insensitivity.
 * An 8-core (1-die) PIUMA system, DRAM latency swept 45..720 ns,
 * threads per MTP swept 1..16, for embedding dimensions 8 and 256;
 * plus the execution-time breakdown for K=8 (bottom) explaining the
 * effect via NNZ reads on the critical path.
 *
 * Expected shape: with 16 threads/MTP even extreme latency is
 * tolerated; with 1 thread/MTP the insensitivity is lost for K=8 but
 * largely retained for K=256 (each NNZ read feeds 256/8 = 32x more
 * DMA traffic, shrinking its relative window).
 *
 * This is the longest DES sweep in the bench suite (60 simulations),
 * so it supports --checkpoint=<jsonl> / --resume / --sweep-json=<path>
 * for crash-resilient restarts.
 */
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    const std::string &json = args.jsonPath;
    const auto session = bench::makeSession(args);
    JsonlCheckpoint ckpt = bench::makeCheckpoint(args);
    bench::SimThroughput throughput;
    const graph::Csr csr = bench::desProxy(12);
    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << "\n\n";

    Table top("Fig 7 (top): latency sweep x threads/MTP, 8-core PIUMA",
              {"K", "threads/MTP", "latency ns", "GF/s",
               "vs 45ns baseline"});
    for (unsigned k : {8u, 256u}) {
        for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
            double base = 0.0;
            for (double scale : {1.0, 2.0, 4.0, 8.0, 16.0}) {
                piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
                cfg.threadsPerMtp = threads;
                cfg.dramLatencyScale = scale;
                const std::string key =
                    "top/k=" + std::to_string(k) +
                    "/threads=" + std::to_string(threads) + "/lat-scale=" +
                    std::to_string(static_cast<unsigned>(scale));
                const auto point = bench::sweepPoint(ckpt, key, [&] {
                    const auto s = simulateSpmm(csr, k, cfg,
                                                SpmmAlgorithm::Dma,
                                                session.get());
                    throughput.add(s);
                    return JsonlCheckpoint::Values{{"gflops", s.gflops}};
                });
                if (!point)
                    continue;
                const double gflops = point->at("gflops");
                if (scale == 1.0)
                    base = gflops;
                top.row()
                    .cell(static_cast<uint64_t>(k))
                    .cell(static_cast<uint64_t>(threads))
                    .cell(cfg.effectiveDramLatencyNs(), 0)
                    .cell(gflops, 2)
                    .cell(gflops / base, 3);
            }
        }
    }
    bench::emit(top, csv.empty() ? csv : "top_" + csv);

    Table bottom("Fig 7 (bottom): K=8 thread-time breakdown, 8-core "
                 "PIUMA (per-thread averages)",
                 {"threads/MTP", "latency ns", "nnz stall us",
                  "dma-queue stall us", "row-offset stall us",
                  "makespan us"});
    for (unsigned threads : {1u, 16u}) {
        for (double scale : {1.0, 8.0}) {
            piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
            cfg.threadsPerMtp = threads;
            cfg.dramLatencyScale = scale;
            const std::string key =
                "bottom/threads=" + std::to_string(threads) +
                "/lat-scale=" +
                std::to_string(static_cast<unsigned>(scale));
            const auto point = bench::sweepPoint(ckpt, key, [&] {
                const auto s = simulateSpmm(csr, 8, cfg,
                                            SpmmAlgorithm::Dma,
                                            session.get());
                throughput.add(s);
                return JsonlCheckpoint::Values{
                    {"dma_queue_stall_ns", s.dmaQueueStallNs},
                    {"makespan_ns", s.makespanNs},
                    {"nnz_stall_ns", s.nnzStallNs},
                    {"row_offset_stall_ns", s.rowOffsetStallNs},
                };
            });
            if (!point)
                continue;
            const double t = cfg.totalThreads();
            bottom.row()
                .cell(static_cast<uint64_t>(threads))
                .cell(cfg.effectiveDramLatencyNs(), 0)
                .cell(point->at("nnz_stall_ns") / t / 1e3, 2)
                .cell(point->at("dma_queue_stall_ns") / t / 1e3, 2)
                .cell(point->at("row_offset_stall_ns") / t / 1e3, 2)
                .cell(point->at("makespan_ns") / 1e3, 2);
        }
    }
    bench::emit(bottom, csv.empty() ? csv : "bottom_" + csv);

    std::cout << "Reading: at 1 thread/MTP the NNZ stall grows with "
                 "latency and starves the DMA engine; at 16 threads "
                 "another thread always has a descriptor ready.\n";
    throughput.print(std::cout);
    if (!json.empty())
        throughput.writeJson(json);
    bench::finishSweep(ckpt, args);
    if (session)
        bench::finishSession(*session, args);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
