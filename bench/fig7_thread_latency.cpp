/**
 * @file
 * Fig. 7: consequences of MTP thread count on latency insensitivity.
 * An 8-core (1-die) PIUMA system, DRAM latency swept 45..720 ns,
 * threads per MTP swept 1..16, for embedding dimensions 8 and 256;
 * plus the execution-time breakdown for K=8 (bottom) explaining the
 * effect via NNZ reads on the critical path.
 *
 * Expected shape: with 16 threads/MTP even extreme latency is
 * tolerated; with 1 thread/MTP the insensitivity is lost for K=8 but
 * largely retained for K=256 (each NNZ read feeds 256/8 = 32x more
 * DMA traffic, shrinking its relative window).
 */
#include <iostream>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    const std::string &json = args.jsonPath;
    const auto session = bench::makeSession(args);
    bench::SimThroughput throughput;
    const graph::Csr csr = bench::desProxy(12);
    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << "\n\n";

    Table top("Fig 7 (top): latency sweep x threads/MTP, 8-core PIUMA",
              {"K", "threads/MTP", "latency ns", "GF/s",
               "vs 45ns baseline"});
    for (unsigned k : {8u, 256u}) {
        for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
            double base = 0.0;
            for (double scale : {1.0, 2.0, 4.0, 8.0, 16.0}) {
                piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
                cfg.threadsPerMtp = threads;
                cfg.dramLatencyScale = scale;
                const auto s = simulateSpmm(csr, k, cfg,
                                            SpmmAlgorithm::Dma,
                                            session.get());
                throughput.add(s);
                if (scale == 1.0)
                    base = s.gflops;
                top.row()
                    .cell(static_cast<uint64_t>(k))
                    .cell(static_cast<uint64_t>(threads))
                    .cell(cfg.effectiveDramLatencyNs(), 0)
                    .cell(s.gflops, 2)
                    .cell(s.gflops / base, 3);
            }
        }
    }
    bench::emit(top, csv.empty() ? csv : "top_" + csv);

    Table bottom("Fig 7 (bottom): K=8 thread-time breakdown, 8-core "
                 "PIUMA (per-thread averages)",
                 {"threads/MTP", "latency ns", "nnz stall us",
                  "dma-queue stall us", "row-offset stall us",
                  "makespan us"});
    for (unsigned threads : {1u, 16u}) {
        for (double scale : {1.0, 8.0}) {
            piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
            cfg.threadsPerMtp = threads;
            cfg.dramLatencyScale = scale;
            const auto s = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma,
                                        session.get());
            throughput.add(s);
            const double t = cfg.totalThreads();
            bottom.row()
                .cell(static_cast<uint64_t>(threads))
                .cell(cfg.effectiveDramLatencyNs(), 0)
                .cell(s.nnzStallNs / t / 1e3, 2)
                .cell(s.dmaQueueStallNs / t / 1e3, 2)
                .cell(s.rowOffsetStallNs / t / 1e3, 2)
                .cell(s.makespanNs / 1e3, 2);
        }
    }
    bench::emit(bottom, csv.empty() ? csv : "bottom_" + csv);

    std::cout << "Reading: at 1 thread/MTP the NNZ stall grows with "
                 "latency and starves the DMA engine; at 16 threads "
                 "another thread always has a descriptor ready.\n";
    throughput.print(std::cout);
    if (!json.empty())
        throughput.writeJson(json);
    if (session)
        bench::finishSession(*session, args);
    return 0;
}
