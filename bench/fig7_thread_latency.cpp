/**
 * @file
 * Fig. 7: consequences of MTP thread count on latency insensitivity.
 * An 8-core (1-die) PIUMA system, DRAM latency swept 45..720 ns,
 * threads per MTP swept 1..16, for embedding dimensions 8 and 256;
 * plus the execution-time breakdown for K=8 (bottom) explaining the
 * effect via NNZ reads on the critical path.
 *
 * Expected shape: with 16 threads/MTP even extreme latency is
 * tolerated; with 1 thread/MTP the insensitivity is lost for K=8 but
 * largely retained for K=256 (each NNZ read feeds 256/8 = 32x more
 * DMA traffic, shrinking its relative window).
 *
 * This is the longest DES sweep in the bench suite (60 simulations),
 * so it supports --checkpoint=<jsonl> / --resume / --sweep-json=<path>
 * for crash-resilient restarts and --jobs N to spread the independent
 * points across worker threads (identical output, see
 * bench::SweepDriver). --domains N additionally shards each simulated
 * machine into per-node event domains (sim::DomainSet); output stays
 * byte-identical for any count — the two knobs compose.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);
    const graph::Csr csr = bench::desProxy(12);
    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << "\n\n";

    // Phase 1: enqueue every simulation point (configs captured by
    // value; the callbacks run on sweep workers).
    struct TopPoint
    {
        unsigned k;
        unsigned threads;
        double scale;
        size_t idx;
    };
    std::vector<TopPoint> top_points;
    for (unsigned k : {8u, 256u}) {
        for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
            for (double scale : {1.0, 2.0, 4.0, 8.0, 16.0}) {
                piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
                cfg.threadsPerMtp = threads;
                cfg.dramLatencyScale = scale;
                const std::string key =
                    "top/k=" + std::to_string(k) +
                    "/threads=" + std::to_string(threads) + "/lat-scale=" +
                    std::to_string(static_cast<unsigned>(scale));
                const size_t idx = driver.add(
                    key,
                    [&driver, &csr, k,
                     cfg](const parallel::SweepContext &ctx) {
                        const auto s = simulateSpmm(
                            csr, k, cfg, SpmmAlgorithm::Dma, ctx.session,
                            ctx.controls);
                        driver.throughput(ctx).add(s);
                        return JsonlCheckpoint::Values{
                            {"gflops", s.gflops}};
                    });
                top_points.push_back(TopPoint{k, threads, scale, idx});
            }
        }
    }

    struct BottomPoint
    {
        unsigned threads;
        double scale;
        size_t idx;
    };
    std::vector<BottomPoint> bottom_points;
    for (unsigned threads : {1u, 16u}) {
        for (double scale : {1.0, 8.0}) {
            piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
            cfg.threadsPerMtp = threads;
            cfg.dramLatencyScale = scale;
            const std::string key =
                "bottom/threads=" + std::to_string(threads) +
                "/lat-scale=" +
                std::to_string(static_cast<unsigned>(scale));
            const size_t idx = driver.add(
                key,
                [&driver, &csr, cfg](const parallel::SweepContext &ctx) {
                    const auto s =
                        simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma,
                                     ctx.session, ctx.controls);
                    driver.throughput(ctx).add(s);
                    return JsonlCheckpoint::Values{
                        {"dma_queue_stall_ns", s.dmaQueueStallNs},
                        {"makespan_ns", s.makespanNs},
                        {"nnz_stall_ns", s.nnzStallNs},
                        {"row_offset_stall_ns", s.rowOffsetStallNs},
                    };
                });
            bottom_points.push_back(BottomPoint{threads, scale, idx});
        }
    }

    driver.run();

    // Phase 2: render both tables in submission order on this thread.
    Table top("Fig 7 (top): latency sweep x threads/MTP, 8-core PIUMA",
              {"K", "threads/MTP", "latency ns", "GF/s",
               "vs 45ns baseline"});
    double base = 0.0;
    for (const TopPoint &p : top_points) {
        const auto *point = driver.result(p.idx);
        if (!point)
            continue;
        piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
        cfg.threadsPerMtp = p.threads;
        cfg.dramLatencyScale = p.scale;
        const double gflops = point->at("gflops");
        if (p.scale == 1.0)
            base = gflops;
        top.row()
            .cell(static_cast<uint64_t>(p.k))
            .cell(static_cast<uint64_t>(p.threads))
            .cell(cfg.effectiveDramLatencyNs(), 0)
            .cell(gflops, 2)
            .cell(gflops / base, 3);
    }
    bench::emit(top, csv.empty() ? csv : "top_" + csv);

    Table bottom("Fig 7 (bottom): K=8 thread-time breakdown, 8-core "
                 "PIUMA (per-thread averages)",
                 {"threads/MTP", "latency ns", "nnz stall us",
                  "dma-queue stall us", "row-offset stall us",
                  "makespan us"});
    for (const BottomPoint &p : bottom_points) {
        const auto *point = driver.result(p.idx);
        if (!point)
            continue;
        piuma::PiumaConfig cfg = piuma::PiumaConfig::singleDie();
        cfg.threadsPerMtp = p.threads;
        cfg.dramLatencyScale = p.scale;
        const double t = cfg.totalThreads();
        bottom.row()
            .cell(static_cast<uint64_t>(p.threads))
            .cell(cfg.effectiveDramLatencyNs(), 0)
            .cell(point->at("nnz_stall_ns") / t / 1e3, 2)
            .cell(point->at("dma_queue_stall_ns") / t / 1e3, 2)
            .cell(point->at("row_offset_stall_ns") / t / 1e3, 2)
            .cell(point->at("makespan_ns") / 1e3, 2);
    }
    bench::emit(bottom, csv.empty() ? csv : "bottom_" + csv);

    std::cout << "Reading: at 1 thread/MTP the NNZ stall grows with "
                 "latency and starves the DMA engine; at 16 threads "
                 "another thread always has a descriptor ready.\n";
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
