/**
 * @file
 * Discussion study (paper Section VI, "Graph Partitioning"):
 * distributed GNN systems cut the graph across nodes and pay
 * ghost-vertex exchange every layer; PIUMA's DGAS needs none of it.
 * This bench partitions proxy graphs 2..64 ways with the two standard
 * 1D strategies and prices the per-layer ghost exchange at a typical
 * cluster interconnect bandwidth, next to the PIUMA node-model SpMM
 * time for the same (proxy-scaled) workload.
 *
 * Runs on the shared sweep driver (--jobs N / --checkpoint= /
 * --resume / --sweep-json=); partitioning the 2^14 proxy 64 ways is
 * the closest thing this bench has to an expensive point.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "graph/partition.hpp"
#include "graph/reorder.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);
    const graph::Csr csr = bench::desProxy(14);
    constexpr uint64_t kDim = 128;
    // 200 Gb/s InfiniBand-class per-node injection bandwidth.
    constexpr double kNetBytesPerNs = 25.0;

    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << ", K=" << kDim << "\n\n";

    const double feature_matrix_bytes =
        static_cast<double>(csr.numVertices()) * kDim * 4.0;

    struct Point
    {
        const char *strategy;
        unsigned parts;
        size_t idx;
    };
    std::vector<Point> points;
    for (const char *strategy : {"hash", "range"}) {
        for (unsigned parts : {2u, 4u, 8u, 16u, 32u, 64u}) {
            const bool hash = std::string(strategy) == "hash";
            const std::string key = "partition/" +
                                    std::string(strategy) +
                                    "/parts=" + std::to_string(parts);
            const size_t idx = driver.add(
                key, [&csr, hash, parts](const parallel::SweepContext &) {
                    const auto assignment =
                        hash ? graph::hashPartition(csr.numVertices(),
                                                    parts)
                             : graph::rangePartitionByEdges(csr, parts);
                    const auto stats = graph::evaluatePartition(
                        csr, assignment, parts);
                    const double ghost_bytes =
                        graph::ghostExchangeBytes(
                            stats, csr.numVertices(), kDim);
                    return JsonlCheckpoint::Values{
                        {"cut_fraction", stats.cutFraction},
                        {"ghost_bytes", ghost_bytes},
                        {"max_load_imbalance", stats.maxLoadImbalance},
                        {"replication_factor",
                         stats.replicationFactor}};
                });
            points.push_back(Point{strategy, parts, idx});
        }
    }

    // --- Reordering x partitioning grid -----------------------------
    // Does a locality-aware relabeling change what the 1D partitioners
    // can do? Hash partitioning is order-blind by construction; range
    // partitioning follows vertex ids, so a clustered order directly
    // lowers its cut. Baseline is a seeded shuffle of the same proxy
    // (the generator's near-sorted order would flatter "identity").
    const graph::Csr shuffled_base =
        graph::shuffleOrder(csr.numVertices(), 7).applyToCsr(csr);
    const std::vector<graph::ReorderPass> grid_passes = {
        graph::ReorderPass::Shuffle, graph::ReorderPass::Identity,
        graph::ReorderPass::DegreeSort, graph::ReorderPass::Rcm,
        graph::ReorderPass::Island};
    struct OrderView
    {
        graph::ReorderPass pass;
        graph::Csr csr;
    };
    std::vector<OrderView> views;
    for (const graph::ReorderPass pass : grid_passes) {
        auto isl = graph::makeOrder(
            pass, shuffled_base, /*seed=*/11,
            std::max<graph::VertexId>(
                1, shuffled_base.numVertices() / 64));
        views.push_back(
            OrderView{pass, isl.perm.applyToCsr(shuffled_base)});
    }

    struct GridPoint
    {
        const char *order;
        const char *strategy;
        unsigned parts;
        size_t idx;
    };
    std::vector<GridPoint> grid;
    for (const OrderView &view : views) {
        const char *order = graph::reorderPassName(view.pass);
        for (const char *strategy : {"hash", "range"}) {
            const bool hash = std::string(strategy) == "hash";
            for (unsigned parts : {4u, 16u, 64u}) {
                const std::string key =
                    "reorder/" + std::string(order) + "/" + strategy +
                    "/parts=" + std::to_string(parts);
                const size_t idx = driver.add(
                    key,
                    [&view, hash,
                     parts](const parallel::SweepContext &) {
                        const auto assignment =
                            hash ? graph::hashPartition(
                                       view.csr.numVertices(), parts)
                                 : graph::rangePartitionByEdges(
                                       view.csr, parts);
                        const auto stats = graph::evaluatePartition(
                            view.csr, assignment, parts);
                        return JsonlCheckpoint::Values{
                            {"cut_fraction", stats.cutFraction},
                            {"replication_factor",
                             stats.replicationFactor},
                            {"max_load_imbalance",
                             stats.maxLoadImbalance}};
                    });
                grid.push_back(GridPoint{order, strategy, parts, idx});
            }
        }
    }

    // --- Reordering x placement on the DES --------------------------
    // Same orderings on a DES-scale proxy: hashed placement must be
    // order-blind; blocked placement (+ owner-computes, interleave
    // off) turns the clustered orders into a lower remote-access
    // fraction at the price of slice-traffic skew.
    const graph::Csr des_csr = bench::desProxy(12);
    const graph::Csr des_base =
        graph::shuffleOrder(des_csr.numVertices(), 7)
            .applyToCsr(des_csr);
    std::vector<OrderView> des_views;
    for (const graph::ReorderPass pass : grid_passes) {
        auto isl = graph::makeOrder(
            pass, des_base, /*seed=*/11,
            std::max<graph::VertexId>(1,
                                      des_base.numVertices() / 32));
        des_views.push_back(
            OrderView{pass, isl.perm.applyToCsr(des_base)});
    }
    struct SimPoint
    {
        const char *order;
        const char *placement;
        size_t idx;
    };
    std::vector<SimPoint> sims;
    for (const OrderView &view : des_views) {
        const char *order = graph::reorderPassName(view.pass);
        for (const char *placement : {"hashed", "blocked"}) {
            const bool blocked = std::string(placement) == "blocked";
            const std::string key = "reorder_sim/" +
                                    std::string(order) +
                                    "/placement=" + placement;
            const size_t idx = driver.add(
                key,
                [&driver, &view,
                 blocked](const parallel::SweepContext &ctx) {
                    piuma::PiumaConfig cfg;
                    cfg.numCores = 8;
                    if (blocked) {
                        cfg.rowPlacement = piuma::RowPlacement::Blocked;
                        cfg.dgasFineInterleave = false;
                    }
                    const auto sim = piuma::simulateSpmm(
                        view.csr, 32, cfg, piuma::SpmmAlgorithm::Dma,
                        ctx.session, ctx.controls);
                    driver.throughput(ctx).add(sim);
                    return JsonlCheckpoint::Values{
                        {"remote_access_fraction",
                         sim.remoteAccessFraction},
                        {"max_slice_bytes_fraction",
                         sim.maxSliceBytesFraction},
                        {"makespan_ns", sim.makespanNs}};
                });
            sims.push_back(SimPoint{order, placement, idx});
        }
    }

    driver.run();

    Table table("Partitioned distributed SpMM vs DGAS",
                {"strategy", "parts", "cut %", "replication",
                 "imbalance", "ghost MiB/layer", "ghost / |H|",
                 "exchange (us)"});
    for (const Point &p : points) {
        const auto *v = driver.result(p.idx);
        if (!v)
            continue;
        const double ghost_bytes = v->at("ghost_bytes");
        // All-to-all exchange limited by the busiest node's
        // injection bandwidth (ghost bytes / parts per node).
        const double exchange_ns =
            ghost_bytes / p.parts / kNetBytesPerNs;
        table.row()
            .cell(p.strategy)
            .cell(static_cast<uint64_t>(p.parts))
            .cell(100.0 * v->at("cut_fraction"), 1)
            .cell(v->at("replication_factor"), 2)
            .cell(v->at("max_load_imbalance"), 2)
            .cell(ghost_bytes / (1024.0 * 1024.0), 1)
            .cell(ghost_bytes / feature_matrix_bytes, 2)
            .cell(exchange_ns / 1e3, 1);
    }
    bench::emit(table, csv);
    std::cout << "Reading: by 16 parts >90% of edges are cut on the "
                 "skewed proxy and every layer ships >5x the entire "
                 "feature matrix between nodes as ghost copies — "
                 "traffic (and partitioning cost) PIUMA's shared "
                 "address space avoids entirely (Section VI).\n\n";

    Table grid_table("Reordering x 1D partitioning (2^14 proxy)",
                     {"order", "strategy", "parts", "cut %",
                      "replication", "imbalance"});
    for (const GridPoint &p : grid) {
        const auto *v = driver.result(p.idx);
        if (!v)
            continue;
        grid_table.row()
            .cell(p.order)
            .cell(p.strategy)
            .cell(static_cast<uint64_t>(p.parts))
            .cell(100.0 * v->at("cut_fraction"), 1)
            .cell(v->at("replication_factor"), 2)
            .cell(v->at("max_load_imbalance"), 2);
    }
    bench::emit(grid_table, std::string{});
    std::cout << "Reading: hash partitioning is order-blind (cut "
                 "identical across orderings); range partitioning "
                 "inherits whatever locality the relabeling built, so "
                 "rcm/island cut less than the shuffled baseline.\n\n";

    Table sim_table("Reordering x row placement on the DES (2^12 "
                    "proxy, 8 cores, DMA)",
                    {"order", "placement", "remote %", "slice skew",
                     "makespan (us)"});
    for (const SimPoint &p : sims) {
        const auto *v = driver.result(p.idx);
        if (!v)
            continue;
        sim_table.row()
            .cell(p.order)
            .cell(p.placement)
            .cell(100.0 * v->at("remote_access_fraction"), 1)
            .cell(v->at("max_slice_bytes_fraction"), 2)
            .cell(v->at("makespan_ns") / 1e3, 1);
    }
    bench::emit(sim_table, std::string{});
    std::cout << "Reading: with hashed placement the remote-access "
                 "fraction is flat across orderings — the DGAS "
                 "trade-off the paper describes. Blocked placement "
                 "plus owner-computes rewards the clustered orders "
                 "with fewer remote transactions, paying with "
                 "slice-traffic skew on the hubs.\n";
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
