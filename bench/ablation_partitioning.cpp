/**
 * @file
 * Discussion study (paper Section VI, "Graph Partitioning"):
 * distributed GNN systems cut the graph across nodes and pay
 * ghost-vertex exchange every layer; PIUMA's DGAS needs none of it.
 * This bench partitions proxy graphs 2..64 ways with the two standard
 * 1D strategies and prices the per-layer ghost exchange at a typical
 * cluster interconnect bandwidth, next to the PIUMA node-model SpMM
 * time for the same (proxy-scaled) workload.
 */
#include <iostream>

#include "bench_util.hpp"
#include "graph/partition.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);
    const graph::Csr csr = bench::desProxy(14);
    constexpr uint64_t kDim = 128;
    // 200 Gb/s InfiniBand-class per-node injection bandwidth.
    constexpr double kNetBytesPerNs = 25.0;

    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << ", K=" << kDim << "\n\n";

    const double feature_matrix_bytes =
        static_cast<double>(csr.numVertices()) * kDim * 4.0;

    Table table("Partitioned distributed SpMM vs DGAS",
                {"strategy", "parts", "cut %", "replication",
                 "imbalance", "ghost MiB/layer", "ghost / |H|",
                 "exchange (us)"});
    for (const char *strategy : {"hash", "range"}) {
        for (unsigned parts : {2u, 4u, 8u, 16u, 32u, 64u}) {
            const auto assignment =
                std::string(strategy) == "hash"
                    ? graph::hashPartition(csr.numVertices(), parts)
                    : graph::rangePartitionByEdges(csr, parts);
            const auto stats =
                graph::evaluatePartition(csr, assignment, parts);
            const double ghost_bytes = graph::ghostExchangeBytes(
                stats, csr.numVertices(), kDim);
            // All-to-all exchange limited by the busiest node's
            // injection bandwidth (ghost bytes / parts per node).
            const double exchange_ns =
                ghost_bytes / parts / kNetBytesPerNs;
            table.row()
                .cell(strategy)
                .cell(static_cast<uint64_t>(parts))
                .cell(100.0 * stats.cutFraction, 1)
                .cell(stats.replicationFactor, 2)
                .cell(stats.maxLoadImbalance, 2)
                .cell(ghost_bytes / (1024.0 * 1024.0), 1)
                .cell(ghost_bytes / feature_matrix_bytes, 2)
                .cell(exchange_ns / 1e3, 1);
        }
    }
    bench::emit(table, csv);
    std::cout << "Reading: by 16 parts >90% of edges are cut on the "
                 "skewed proxy and every layer ships >5x the entire "
                 "feature matrix between nodes as ghost copies — "
                 "traffic (and partitioning cost) PIUMA's shared "
                 "address space avoids entirely (Section VI).\n";
    return 0;
}
