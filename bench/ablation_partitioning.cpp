/**
 * @file
 * Discussion study (paper Section VI, "Graph Partitioning"):
 * distributed GNN systems cut the graph across nodes and pay
 * ghost-vertex exchange every layer; PIUMA's DGAS needs none of it.
 * This bench partitions proxy graphs 2..64 ways with the two standard
 * 1D strategies and prices the per-layer ghost exchange at a typical
 * cluster interconnect bandwidth, next to the PIUMA node-model SpMM
 * time for the same (proxy-scaled) workload.
 *
 * Runs on the shared sweep driver (--jobs N / --checkpoint= /
 * --resume / --sweep-json=); partitioning the 2^14 proxy 64 ways is
 * the closest thing this bench has to an expensive point.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "graph/partition.hpp"

using namespace pgcn;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);
    const graph::Csr csr = bench::desProxy(14);
    constexpr uint64_t kDim = 128;
    // 200 Gb/s InfiniBand-class per-node injection bandwidth.
    constexpr double kNetBytesPerNs = 25.0;

    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << ", K=" << kDim << "\n\n";

    const double feature_matrix_bytes =
        static_cast<double>(csr.numVertices()) * kDim * 4.0;

    struct Point
    {
        const char *strategy;
        unsigned parts;
        size_t idx;
    };
    std::vector<Point> points;
    for (const char *strategy : {"hash", "range"}) {
        for (unsigned parts : {2u, 4u, 8u, 16u, 32u, 64u}) {
            const bool hash = std::string(strategy) == "hash";
            const std::string key = "partition/" +
                                    std::string(strategy) +
                                    "/parts=" + std::to_string(parts);
            const size_t idx = driver.add(
                key, [&csr, hash, parts](const parallel::SweepContext &) {
                    const auto assignment =
                        hash ? graph::hashPartition(csr.numVertices(),
                                                    parts)
                             : graph::rangePartitionByEdges(csr, parts);
                    const auto stats = graph::evaluatePartition(
                        csr, assignment, parts);
                    const double ghost_bytes =
                        graph::ghostExchangeBytes(
                            stats, csr.numVertices(), kDim);
                    return JsonlCheckpoint::Values{
                        {"cut_fraction", stats.cutFraction},
                        {"ghost_bytes", ghost_bytes},
                        {"max_load_imbalance", stats.maxLoadImbalance},
                        {"replication_factor",
                         stats.replicationFactor}};
                });
            points.push_back(Point{strategy, parts, idx});
        }
    }

    driver.run();

    Table table("Partitioned distributed SpMM vs DGAS",
                {"strategy", "parts", "cut %", "replication",
                 "imbalance", "ghost MiB/layer", "ghost / |H|",
                 "exchange (us)"});
    for (const Point &p : points) {
        const auto *v = driver.result(p.idx);
        if (!v)
            continue;
        const double ghost_bytes = v->at("ghost_bytes");
        // All-to-all exchange limited by the busiest node's
        // injection bandwidth (ghost bytes / parts per node).
        const double exchange_ns =
            ghost_bytes / p.parts / kNetBytesPerNs;
        table.row()
            .cell(p.strategy)
            .cell(static_cast<uint64_t>(p.parts))
            .cell(100.0 * v->at("cut_fraction"), 1)
            .cell(v->at("replication_factor"), 2)
            .cell(v->at("max_load_imbalance"), 2)
            .cell(ghost_bytes / (1024.0 * 1024.0), 1)
            .cell(ghost_bytes / feature_matrix_bytes, 2)
            .cell(exchange_ns / 1e3, 1);
    }
    bench::emit(table, csv);
    std::cout << "Reading: by 16 parts >90% of edges are cut on the "
                 "skewed proxy and every layer ships >5x the entire "
                 "feature matrix between nodes as ghost copies — "
                 "traffic (and partitioning cost) PIUMA's shared "
                 "address space avoids entirely (Section VI).\n";
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
