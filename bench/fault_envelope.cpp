/**
 * @file
 * Degradation-envelope campaign: how gracefully does PIUMA SpMM
 * degrade as hard-fault rates rise, under different recovery policies?
 *
 * Sweeps fault rate x recovery policy on the fig8-style DMA SpMM
 * configuration over two proxy graphs (products, arxiv). Every point
 * injects dropped DRAM transactions, lost remote packets, failed DMA
 * descriptors and stuck cores at the same per-event rate, recovered by
 * the modeled timeout/retry/backoff protocol, and reports:
 *
 *  - goodput (demanded GB/s actually delivered over the makespan),
 *  - makespan inflation relative to the fault-free baseline of the
 *    same (graph, policy),
 *  - retry amplification (served bytes / demanded bytes — dropped
 *    attempts still burned bandwidth),
 *  - timeouts fired and modeled recovery time,
 *  - latency-hiding effectiveness, i.e. whether the MTP thread surplus
 *    still absorbs the retry latency ("hidden" retries) or the stalls
 *    are exposed on the critical path.
 *
 * The *knee* of the envelope — the smallest swept rate whose makespan
 * inflation exceeds 2x — is reported per (graph, policy). Below the
 * knee, latency hiding and spare bandwidth absorb retries; above it,
 * retry amplification compounds with queueing and the run falls off
 * the envelope.
 *
 * Conservation is checked at every point: served == demanded + retried
 * bytes (the retry-conservation invariant the test suite soaks).
 *
 * Flags beyond the shared bench set (see bench_util.hpp):
 *   --small   one small graph, three rates, one policy — the CI chaos
 *             smoke configuration.
 *   --poison  add one poisoned point (drop rate 1.0, tiny retry
 *             budget) whose unrecoverable SimFaultError exercises the
 *             quarantine path: the sweep survives, the point lands in
 *             the checkpoint as quarantined, and --resume never
 *             re-runs it.
 *
 * Determinism: each point's injector is seeded base + pointIndex, so
 * a fixed (seed, config) is bit-reproducible across runs and --jobs
 * widths; two invocations with identical seeds produce byte-identical
 * checkpoint and sweep JSON (the CI smoke asserts this).
 */
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"
#include "sim/monitor.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

namespace {

/** One recovery policy under test. */
struct Policy
{
    const char *name;
    double timeoutNs;
    double backoffNs;
    unsigned maxRetries;
};

/** One swept fault rate, with a stable key spelling. */
struct Rate
{
    const char *label;
    double value;
};

int
benchMain(int argc, char **argv)
{
    // Campaign-specific flags are filtered out before the shared
    // parser sees (and warns about) them.
    bool small = false;
    bool poison = false;
    std::vector<char *> filtered;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i] != nullptr ? argv[i] : "";
        if (a == "--small") {
            small = true;
            continue;
        }
        if (a == "--poison") {
            poison = true;
            continue;
        }
        filtered.push_back(argv[i]);
    }
    const bench::BenchArgs args = bench::parseBenchArgs(
        static_cast<int>(filtered.size()), filtered.data());
    bench::SweepDriver driver(args);

    // Base fault config: --faults= may add jitters or override the
    // seed; the campaign owns the drop rates and policy knobs.
    const sim::FaultConfig base =
        args.faults ? *args.faults : sim::FaultConfig{};

    struct GraphCase
    {
        std::string name;
        graph::Csr csr;
    };
    std::vector<GraphCase> graphs;
    const unsigned cores = small ? 4 : 16;
    const unsigned kDim = small ? 32 : 64;
    if (small) {
        const auto proxy =
            graph::buildProxy(graph::datasetByName("arxiv"), 1u << 15);
        graphs.push_back({"arxiv", proxy.adjacency});
    } else {
        const auto products =
            graph::buildProxy(graph::datasetByName("products"), 1u << 18);
        const auto arxiv =
            graph::buildProxy(graph::datasetByName("arxiv"), 1u << 16);
        graphs.push_back({"products", products.adjacency});
        graphs.push_back({"arxiv", arxiv.adjacency});
    }
    driver.noteGraph(graphs.front().csr);
    driver.noteSeed(base.seed);

    // Rates stop where retry exhaustion becomes near-certain: a
    // combined per-attempt drop probability p survives a budget of R
    // re-issues only while p^(R+1) x #requests << 1, so the swept top
    // rate (0.15 -> remote p ~ 0.28) needs the deep budgets below.
    // The poisoned point (--poison) covers the unrecoverable regime.
    std::vector<Rate> rates;
    if (small) {
        rates = {{"0", 0.0}, {"1e-2", 1e-2}, {"1e-1", 0.1}};
    } else {
        rates = {{"0", 0.0},     {"1e-4", 1e-4}, {"1e-3", 1e-3},
                 {"1e-2", 1e-2}, {"5e-2", 0.05}, {"1.5e-1", 0.15}};
    }
    // Same retry budget, very different per-drop cost: "eager" detects
    // drops fast (cheap retries, shallow envelope), "patient" models a
    // sluggish watchdog whose long timeouts stop being absorbable by
    // latency hiding — that is where the 2x knee comes from.
    std::vector<Policy> policies;
    if (small)
        policies = {{"eager", 300.0, 50.0, 12}};
    else
        policies = {{"eager", 300.0, 50.0, 12},
                    {"patient", 5000.0, 1000.0, 12}};

    for (const auto &g : graphs) {
        std::cout << g.name << " proxy: |V|=" << g.csr.numVertices()
                  << " |E|=" << g.csr.numEdges() << "\n";
    }
    std::cout << "config: " << cores << " cores, K=" << kDim
              << ", DMA SpMM\n\n";

    // One MonitorHub per point (worker threads write disjoint hubs).
    const size_t n_points =
        graphs.size() * policies.size() * rates.size();
    std::vector<sim::MonitorHub> hubs(n_points);

    struct PointRef
    {
        size_t graph, policy, rate; ///< indices into the sweep axes
        size_t index;               ///< submission index
    };
    std::vector<PointRef> refs;
    size_t hub_i = 0;
    for (size_t gi = 0; gi < graphs.size(); ++gi) {
        for (size_t pi = 0; pi < policies.size(); ++pi) {
            for (size_t ri = 0; ri < rates.size(); ++ri) {
                const Policy &pol = policies[pi];
                const Rate &rate = rates[ri];
                const graph::Csr &csr = graphs[gi].csr;
                sim::MonitorHub *hub =
                    args.monitors ? &hubs[hub_i++] : nullptr;
                const std::string key = graphs[gi].name + "/" +
                                        pol.name +
                                        "/rate=" + rate.label;
                const size_t idx = driver.add(
                    key,
                    [&driver, &csr, base, pol, rate, cores, kDim, hub,
                     key](const parallel::SweepContext &ctx) {
                        piuma::PiumaConfig pcfg;
                        pcfg.numCores = cores;
                        // The campaign owns the drop/recovery knobs;
                        // seeding by submission index keeps the point
                        // bit-reproducible across --jobs widths.
                        sim::FaultConfig fc = base;
                        fc.seed = base.seed +
                                  static_cast<uint64_t>(ctx.pointIndex);
                        fc.dramDropRate = rate.value;
                        fc.netDropRate = rate.value;
                        fc.dmaDropRate = rate.value;
                        fc.stuckCoreRate = rate.value;
                        fc.timeoutNs = pol.timeoutNs;
                        fc.backoffNs = pol.backoffNs;
                        fc.maxRetries = pol.maxRetries;
                        sim::FaultInjector inj(fc);
                        sim::SimControls controls = *ctx.controls;
                        controls.faults = &inj;
                        controls.monitor = hub;
                        const auto sim = simulateSpmm(
                            csr, kDim, pcfg, SpmmAlgorithm::Dma,
                            ctx.session, &controls);
                        driver.throughput(ctx).add(sim);
                        // Retry-conservation invariant, checked hot at
                        // every point of every campaign run.
                        const double served = sim.bytesServed;
                        const double expect =
                            sim.goodputBytes + sim.retriedBytes;
                        if (std::abs(served - expect) >
                            1e-6 * std::max(served, 1.0)) {
                            PGCN_THROW(
                                SimError,
                                "conservation violated at "
                                    << key << ": served " << served
                                    << " != demanded+retried "
                                    << expect);
                        }
                        return JsonlCheckpoint::Values{
                            {"makespan_ns", sim.makespanNs},
                            {"goodput_bytes", sim.goodputBytes},
                            {"retried_bytes", sim.retriedBytes},
                            {"bytes_served", sim.bytesServed},
                            {"retries",
                             static_cast<double>(sim.retries)},
                            {"timeouts",
                             static_cast<double>(sim.timeoutsFired)},
                            {"stuck_resets",
                             static_cast<double>(sim.stuckResets)},
                            {"recovery_ns", sim.recoveryNs},
                            {"latency_hiding",
                             sim.latencyHidingEffectiveness},
                            {"exposed_stall_ns", sim.exposedStallNs},
                        };
                    });
                refs.push_back(PointRef{gi, pi, ri, idx});
            }
        }
    }

    // Optional poisoned point: drop rate 1.0 with a tiny retry budget
    // is unrecoverable by construction — SimFaultError, quarantine.
    size_t poison_idx = 0;
    if (poison) {
        const graph::Csr &csr = graphs.front().csr;
        poison_idx = driver.add(
            "poison/rate=1", [&driver, &csr, base, cores,
                              kDim](const parallel::SweepContext &ctx) {
                piuma::PiumaConfig pcfg;
                pcfg.numCores = cores;
                sim::FaultConfig fc = base;
                fc.seed =
                    base.seed + static_cast<uint64_t>(ctx.pointIndex);
                fc.dramDropRate = 1.0;
                fc.maxRetries = 2;
                sim::FaultInjector inj(fc);
                sim::SimControls controls = *ctx.controls;
                controls.faults = &inj;
                const auto sim =
                    simulateSpmm(csr, kDim, pcfg, SpmmAlgorithm::Dma,
                                 ctx.session, &controls);
                driver.throughput(ctx).add(sim);
                return JsonlCheckpoint::Values{
                    {"makespan_ns", sim.makespanNs}};
            });
    }

    driver.run();

    // ---- Render the envelope, one table per graph.
    for (size_t gi = 0; gi < graphs.size(); ++gi) {
        Table table("Degradation envelope: " + graphs[gi].name +
                        " proxy, DMA SpMM, " + std::to_string(cores) +
                        " cores, K=" + std::to_string(kDim),
                    {"policy", "rate", "goodput GB/s", "inflation",
                     "retry amp", "timeouts", "recovery ms", "lat.hide",
                     "exposed ms"});
        for (size_t pi = 0; pi < policies.size(); ++pi) {
            double base_makespan = 0.0;
            double knee = -1.0;
            for (const PointRef &ref : refs) {
                if (ref.graph != gi || ref.policy != pi)
                    continue;
                const auto *point = driver.result(ref.index);
                if (point == nullptr)
                    continue;
                const double makespan = point->at("makespan_ns");
                const double goodput = point->at("goodput_bytes");
                if (rates[ref.rate].value == 0.0)
                    base_makespan = makespan;
                const double inflation =
                    base_makespan > 0.0 ? makespan / base_makespan
                                        : 0.0;
                if (knee < 0.0 && rates[ref.rate].value > 0.0 &&
                    inflation > 2.0)
                    knee = rates[ref.rate].value;
                const double amp =
                    goodput > 0.0 ? point->at("bytes_served") / goodput
                                  : 0.0;
                const double hiding = point->at("latency_hiding");
                auto &row =
                    table.row()
                        .cell(policies[pi].name)
                        .cell(rates[ref.rate].label)
                        .cell(goodput / makespan, 2)
                        .cell(inflation, 2)
                        .cell(amp, 3)
                        .cell(static_cast<uint64_t>(
                            point->at("timeouts")))
                        .cell(point->at("recovery_ns") / 1e6, 2);
                if (hiding >= 0.0)
                    row.cell(hiding, 3);
                else
                    row.cell("-");
                row.cell(point->at("exposed_stall_ns") / 1e6, 2);
            }
            if (knee > 0.0)
                std::cout << "knee(" << graphs[gi].name << ", "
                          << policies[pi].name << "): rate " << knee
                          << " inflates makespan past 2x\n";
            else
                std::cout << "knee(" << graphs[gi].name << ", "
                          << policies[pi].name
                          << "): not reached in swept range\n";
        }
        std::cout << "\n";
        bench::emit(table, args.csvPath.empty()
                               ? args.csvPath
                               : graphs[gi].name + "_" + args.csvPath);
    }

    if (poison) {
        if (driver.result(poison_idx) == nullptr)
            std::cout << "(poison point failed as designed; "
                         "quarantined in the checkpoint)\n";
        else
            std::cerr << "poison point unexpectedly succeeded\n";
    }

    driver.annotate("algorithm", "dma");
    driver.annotate("campaign",
                    small ? "fault-envelope-small" : "fault-envelope");
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
