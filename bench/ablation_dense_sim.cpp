/**
 * @file
 * Validation study: the dense-update kernel simulated on the
 * discrete-event model versus the analytical node model, across the
 * embedding sweep. Shows the two regimes the paper's Dense-MM
 * discussion rests on — bandwidth-bound at small K, scalar-pipeline
 * (issue) bound at large K — and that the analytical model tracks
 * the simulator, justifying its use for the node-scale Figs. 9/10.
 */
#include <iostream>

#include "bench_util.hpp"
#include "piuma/dense_programs.hpp"
#include "piuma/node_model.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);

    Table table("Dense MM: DES vs node model (4 cores, |V|=2^13)",
                {"K", "sim GF/s", "model GF/s", "sim/model",
                 "mem util", "issue util"});
    piuma::PiumaConfig cfg;
    cfg.numCores = 4;
    const uint64_t v = 1u << 13;
    for (uint64_t k : {2u, 8u, 32u, 128u, 256u}) {
        const auto sim = piuma::simulateDenseMm(v, k, k, cfg);
        const double model_ns = piuma::denseMmTimeNs(cfg, v, k, k);
        const double model_gflops = sim.flop / model_ns;
        table.row()
            .cell(static_cast<uint64_t>(k))
            .cell(sim.gflops, 2)
            .cell(model_gflops, 2)
            .cell(sim.gflops / model_gflops, 2)
            .cell(sim.memUtilization, 2)
            .cell(sim.issueUtilization, 2);
    }
    bench::emit(table, csv);
    std::cout << "Reading: at K>=32 the scalar pipelines saturate "
                 "(issue util -> 1) while the memory system idles — "
                 "the paper's explanation for PIUMA losing ground to "
                 "SIMD machines as the embedding dimension grows.\n";
    return 0;
}
