/**
 * @file
 * Validation study: the dense-update kernel simulated on the
 * discrete-event model versus the analytical node model, across the
 * embedding sweep. Shows the two regimes the paper's Dense-MM
 * discussion rests on — bandwidth-bound at small K, scalar-pipeline
 * (issue) bound at large K — and that the analytical model tracks
 * the simulator, justifying its use for the node-scale Figs. 9/10.
 *
 * Runs on the shared sweep driver (--jobs N / --checkpoint= /
 * --resume / --sweep-json=).
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "piuma/dense_programs.hpp"
#include "piuma/node_model.hpp"

using namespace pgcn;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);

    piuma::PiumaConfig cfg;
    cfg.numCores = 4;
    const uint64_t v = 1u << 13;
    const std::vector<uint64_t> dims{2u, 8u, 32u, 128u, 256u};
    std::vector<size_t> idx;
    for (uint64_t k : dims) {
        idx.push_back(driver.add(
            "dense/k=" + std::to_string(k),
            [&driver, cfg, v, k](const parallel::SweepContext &ctx) {
                const auto sim =
                    piuma::simulateDenseMm(v, k, k, cfg, ctx.session);
                driver.throughput(ctx).add(sim);
                return JsonlCheckpoint::Values{
                    {"flop", sim.flop},
                    {"gflops", sim.gflops},
                    {"issue_util", sim.issueUtilization},
                    {"mem_util", sim.memUtilization}};
            }));
    }

    driver.run();

    Table table("Dense MM: DES vs node model (4 cores, |V|=2^13)",
                {"K", "sim GF/s", "model GF/s", "sim/model",
                 "mem util", "issue util"});
    for (size_t i = 0; i < dims.size(); ++i) {
        const uint64_t k = dims[i];
        const auto *p = driver.result(idx[i]);
        if (!p)
            continue;
        const double model_ns = piuma::denseMmTimeNs(cfg, v, k, k);
        const double model_gflops = p->at("flop") / model_ns;
        table.row()
            .cell(k)
            .cell(p->at("gflops"), 2)
            .cell(model_gflops, 2)
            .cell(p->at("gflops") / model_gflops, 2)
            .cell(p->at("mem_util"), 2)
            .cell(p->at("issue_util"), 2);
    }
    bench::emit(table, csv);
    std::cout << "Reading: at K>=32 the scalar pipelines saturate "
                 "(issue util -> 1) while the memory system idles — "
                 "the paper's explanation for PIUMA losing ground to "
                 "SIMD machines as the embedding dimension grows.\n";
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
