/**
 * @file
 * Fig. 6: impact of DRAM bandwidth (top) and latency (bottom) on the
 * DMA SpMM across 2/4/8-core PIUMA systems for embedding dimensions
 * 8 and 256.
 *
 * Expected shape: GFLOPS scale ~linearly with per-slice bandwidth
 * (top); performance is insensitive to DRAM latency up to ~360 ns
 * with the default 16 threads/MTP (bottom).
 */
#include <iostream>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);
    const graph::Csr csr = bench::desProxy(12);
    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << "\n\n";

    Table top("Fig 6 (top): DRAM bandwidth sweep, DMA SpMM GFLOP/s",
              {"K", "cores", "bw scale", "slice GB/s", "GF/s",
               "GF/s per bw"});
    for (unsigned k : {8u, 256u}) {
        for (unsigned cores : {2u, 4u, 8u}) {
            for (double scale : {0.25, 0.5, 1.0, 1.5, 2.0}) {
                piuma::PiumaConfig cfg;
                cfg.numCores = cores;
                cfg.dramBandwidthScale = scale;
                const auto s =
                    simulateSpmm(csr, k, cfg, SpmmAlgorithm::Dma);
                top.row()
                    .cell(static_cast<uint64_t>(k))
                    .cell(static_cast<uint64_t>(cores))
                    .cell(scale, 2)
                    .cell(cfg.effectiveSliceBandwidth(), 1)
                    .cell(s.gflops, 2)
                    .cell(s.gflops / cfg.aggregateBandwidth(), 3);
            }
        }
    }
    bench::emit(top, csv.empty() ? csv : "top_" + csv);

    Table bottom("Fig 6 (bottom): DRAM latency sweep, DMA SpMM GFLOP/s",
                 {"K", "cores", "latency ns", "GF/s",
                  "vs 45ns baseline"});
    for (unsigned k : {8u, 256u}) {
        for (unsigned cores : {2u, 4u, 8u}) {
            double base = 0.0;
            for (double scale : {1.0, 2.0, 4.0, 8.0, 16.0}) {
                piuma::PiumaConfig cfg;
                cfg.numCores = cores;
                cfg.dramLatencyScale = scale;
                const auto s =
                    simulateSpmm(csr, k, cfg, SpmmAlgorithm::Dma);
                if (scale == 1.0)
                    base = s.gflops;
                bottom.row()
                    .cell(static_cast<uint64_t>(k))
                    .cell(static_cast<uint64_t>(cores))
                    .cell(cfg.effectiveDramLatencyNs(), 0)
                    .cell(s.gflops, 2)
                    .cell(s.gflops / base, 3);
            }
        }
    }
    bench::emit(bottom, csv.empty() ? csv : "bottom_" + csv);
    return 0;
}
