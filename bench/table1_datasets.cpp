/**
 * @file
 * Table I: OGB dataset descriptions — the published |V|/|E| plus the
 * degree statistics of the RMAT proxies this library substitutes for
 * the real downloads, demonstrating that each proxy preserves the
 * average degree and skew class of the graph it stands in for.
 */
#include <iostream>

#include "bench_util.hpp"
#include "graph/graph_stats.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);

    Table published("Table I: OGB dataset descriptions",
                    {"name", "|V|", "|E|", "avg deg", "input dim",
                     "classes", "profile"});
    for (const auto &d : graph::ogbDatasets()) {
        published.row()
            .cell(d.name)
            .cell(static_cast<uint64_t>(d.numVertices))
            .cell(static_cast<uint64_t>(d.numEdges))
            .cell(static_cast<double>(d.numEdges) /
                      static_cast<double>(d.numVertices),
                  1)
            .cell(static_cast<uint64_t>(d.inputDim))
            .cell(static_cast<uint64_t>(d.numClasses))
            .cell(d.profile == graph::DegreeProfile::Skewed ? "skewed"
                                                            : "uniform");
    }
    bench::emit(published, csv);

    Table proxies("Down-scaled proxies (functional kernels / DES)",
                  {"name", "proxy |V|", "proxy |E|", "scale factor",
                   "avg deg", "degree CV", "gini"});
    for (const auto &d : graph::ogbDatasets()) {
        const auto proxy = graph::buildProxy(d, 1u << 18);
        const auto stats = graph::degreeStats(proxy.adjacency);
        proxies.row()
            .cell(d.name)
            .cell(static_cast<uint64_t>(proxy.adjacency.numVertices()))
            .cell(static_cast<uint64_t>(proxy.adjacency.numEdges()))
            .cell(proxy.scaleFactor, 1)
            .cell(stats.mean, 1)
            .cell(stats.coefficientOfVariation, 2)
            .cell(stats.gini, 3);
    }
    proxies.print(std::cout);
    return 0;
}
