/**
 * @file
 * Fig. 8: strong scaling of SpMM on PIUMA versus Xeon using the
 * products graph.
 *  - Left: system bandwidth vs core count for both machines; PIUMA
 *    scales linearly and crosses the Xeon at ~16 cores, while the
 *    Xeon saturates at the socket level and *degrades* past 80
 *    threads (hyper-threading).
 *  - Middle: SpMM throughput strong scaling (DES for PIUMA on the
 *    down-scaled products proxy, analytical for Xeon at published
 *    scale, both normalised to 1-core PIUMA).
 *  - Right: execution-time/traffic breakdown of a 16-core PIUMA
 *    system for K in {8, 64, 256}: the NNZ-read share shrinks as K
 *    grows.
 *
 * The DES points support --checkpoint=<jsonl> / --resume /
 * --sweep-json=<path> (a killed sweep recomputes only the missing
 * simulations) and --jobs N (independent points run on worker
 * threads; the checkpoint and consolidated JSON stay byte-identical
 * to a serial run, see bench::SweepDriver). --domains N shards each
 * simulated machine into per-node event domains (sim::DomainSet),
 * again with byte-identical output — the CI smoke `cmp`s the sweep
 * JSON of --domains 4 against --domains 1.
 *
 * Every DES point runs with a sim::MonitorHub attached (disable with
 * --no-monitors), so the middle panel also reports, per core count:
 * issue-slot occupancy, the stall-attribution breakdown (memory vs
 * network wait per thread), latency-hiding effectiveness (fraction of
 * stall time covered by runnable threads), critical-path parallelism,
 * and which bound limits scaling at that point (critical-path vs a
 * saturated resource vs latency). --occupancy=<csv> dumps the raw
 * per-resource occupancy timelines; --history=<jsonl> appends the run
 * manifest consumed by tools/pgcn_report.py.
 *
 * --mega=<cores> replaces the whole figure with ONE full-machine-scale
 * DES point (scale-14 RMAT proxy, K=16, DMA SpMM) at the given core
 * count — the EXPERIMENTS.md big-machine walkthrough, where --domains
 * and --domain-mode=parallel are measured against the paper's 16K-core
 * / 1M-thread configuration instead of the figure's 1-32 core column.
 */
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "model/spmm_model.hpp"
#include "piuma/spmm_programs.hpp"
#include "sim/monitor.hpp"
#include "xeon/timing.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

namespace {

int
benchMain(int argc, char **argv)
{
    // Filter the fig8-specific --mega=<cores> flag before the shared
    // parser (same pattern as fault_envelope's --small/--poison).
    unsigned mega_cores = 0;
    std::vector<char *> filtered;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i] != nullptr ? argv[i] : "";
        if (a.rfind("--mega=", 0) == 0) {
            mega_cores = static_cast<unsigned>(std::stoul(a.substr(7)));
            continue;
        }
        filtered.push_back(argv[i]);
    }
    const bench::BenchArgs args = bench::parseBenchArgs(
        static_cast<int>(filtered.size()), filtered.data());
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);
    const auto xeon_cfg = xeon::XeonConfig::platinum8380();

    if (mega_cores != 0) {
        // One fig8-style point at full-machine scale. The graph is the
        // scale-14 RMAT proxy the sharded-engine measurements have
        // always used (results/BENCH_PR9 narrative), so sequenced
        // numbers stay comparable across runs; monitors are left off —
        // per-core timelines at 16K cores dwarf the simulation itself.
        const graph::Csr big = graph::normalizedAdjacency(
            graph::generateRmat(14, 1u << 18, graph::rmatSkewed(), 99));
        std::cout << "mega proxy: |V|=" << big.numVertices()
                  << " |E|=" << big.numEdges() << " cores=" << mega_cores
                  << "\n\n";
        driver.noteGraph(big);
        driver.add(
            "mega/cores=" + std::to_string(mega_cores),
            [&driver, &big, mega_cores](const parallel::SweepContext &ctx) {
                piuma::PiumaConfig pcfg;
                pcfg.numCores = mega_cores;
                const auto sim =
                    simulateSpmm(big, 16, pcfg, SpmmAlgorithm::Dma,
                                 ctx.session, ctx.controls);
                driver.throughput(ctx).add(sim);
                return JsonlCheckpoint::Values{
                    {"gflops", sim.gflops},
                    {"makespan_ns", sim.makespanNs},
                    {"sim_events", static_cast<double>(sim.simEvents)},
                    {"cp_events",
                     static_cast<double>(sim.criticalPathEvents)},
                };
            });
        driver.run();
        driver.annotate("graph", "rmat14-mega");
        driver.annotate("algorithm", "dma");
        driver.finish();
        return 0;
    }

    // ---- Left: bandwidth comparison (analytical, no sweep points).
    Table left("Fig 8 (left): system bandwidth vs cores (GB/s)",
               {"cores", "xeon", "piuma"});
    for (unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 80u, 120u,
                           160u}) {
        piuma::PiumaConfig pcfg;
        pcfg.numCores = cores;
        left.row()
            .cell(static_cast<uint64_t>(cores))
            .cell(xeon::streamBandwidth(xeon_cfg, cores), 1)
            .cell(pcfg.aggregateBandwidth(), 1);
    }
    bench::emit(left, csv.empty() ? csv : "left_" + csv);

    const auto &products = graph::datasetByName("products");
    const auto proxy = graph::buildProxy(products, 1u << 18);
    std::cout << "products proxy: |V|=" << proxy.adjacency.numVertices()
              << " |E|=" << proxy.adjacency.numEdges()
              << " (scale factor " << proxy.scaleFactor << ")\n\n";

    driver.noteGraph(proxy.adjacency);

    // ---- Enqueue the DES points for the middle and right panels.
    // One MonitorHub per point, preallocated so worker threads write
    // disjoint hubs; the occupancy CSV is then dumped in submission
    // order on the calling thread (resumed points leave empty hubs —
    // their simulations never re-ran).
    constexpr unsigned kDim = 256;
    const std::vector<unsigned> scaling_cores{1u, 2u, 4u, 8u, 16u, 32u};
    const std::vector<unsigned> right_dims{8u, 64u, 256u};
    std::vector<sim::MonitorHub> hubs(scaling_cores.size() +
                                      right_dims.size());

    std::vector<size_t> middle_idx;
    for (size_t i = 0; i < scaling_cores.size(); ++i) {
        const unsigned cores = scaling_cores[i];
        sim::MonitorHub *hub = args.monitors ? &hubs[i] : nullptr;
        middle_idx.push_back(driver.add(
            "middle/cores=" + std::to_string(cores),
            [&driver, &proxy, cores,
             hub](const parallel::SweepContext &ctx) {
                piuma::PiumaConfig pcfg;
                pcfg.numCores = cores;
                sim::SimControls controls = *ctx.controls;
                controls.monitor = hub;
                const auto sim =
                    simulateSpmm(proxy.adjacency, kDim, pcfg,
                                 SpmmAlgorithm::Dma, ctx.session,
                                 &controls);
                driver.throughput(ctx).add(sim);
                return JsonlCheckpoint::Values{
                    {"gflops", sim.gflops},
                    {"makespan_ns", sim.makespanNs},
                    {"issue_util", sim.issueUtilization},
                    {"dma_util", sim.dmaUtilization},
                    {"mem_util", sim.maxMemUtilization},
                    {"net_util", sim.netUtilization},
                    {"stall_mem_ns", sim.stallMemoryNs},
                    {"stall_net_ns", sim.stallNetworkNs},
                    {"cp_events",
                     static_cast<double>(sim.criticalPathEvents)},
                    {"cp_parallelism", sim.criticalPathParallelism},
                    {"latency_hiding", sim.latencyHidingEffectiveness},
                    {"exposed_stall_ns", sim.exposedStallNs},
                };
            }));
    }

    std::vector<size_t> right_idx;
    for (size_t i = 0; i < right_dims.size(); ++i) {
        const unsigned k = right_dims[i];
        sim::MonitorHub *hub =
            args.monitors ? &hubs[scaling_cores.size() + i] : nullptr;
        right_idx.push_back(driver.add(
            "right/k=" + std::to_string(k),
            [&driver, &proxy, k, hub](const parallel::SweepContext &ctx) {
                piuma::PiumaConfig pcfg;
                pcfg.numCores = 16;
                sim::SimControls controls = *ctx.controls;
                controls.monitor = hub;
                const auto sim =
                    simulateSpmm(proxy.adjacency, k, pcfg,
                                 SpmmAlgorithm::Dma, ctx.session,
                                 &controls);
                driver.throughput(ctx).add(sim);
                return JsonlCheckpoint::Values{
                    {"bytes_read", sim.bytesRead},
                    {"dma_queue_stall_ns", sim.dmaQueueStallNs},
                    {"makespan_ns", sim.makespanNs},
                    {"nnz_reads", static_cast<double>(sim.nnzReads)},
                    {"nnz_stall_ns", sim.nnzStallNs},
                    {"stall_mem_ns", sim.stallMemoryNs},
                    {"stall_net_ns", sim.stallNetworkNs},
                };
            }));
    }

    driver.run();

    // ---- Middle: SpMM strong scaling on products, K=256, with the
    // per-core-count observability columns: occupancy, stall
    // attribution, latency hiding, critical-path parallelism, and the
    // scaling bound the run diagnosed.
    Table middle("Fig 8 (middle): SpMM strong scaling on products, "
                 "K=256 (normalised to 1-core PIUMA)",
                 {"cores", "piuma (sim)", "xeon (model)", "occupancy",
                  "mem stall/thr us", "net stall/thr us", "lat.hide",
                  "cp ||ism", "bound"});
    double piuma_base = 0.0;
    const model::SpmmWorkload full{products.numVertices,
                                   products.numEdges, kDim};
    for (size_t i = 0; i < scaling_cores.size(); ++i) {
        const unsigned cores = scaling_cores[i];
        const auto *point = driver.result(middle_idx[i]);
        if (!point)
            continue;
        // Old-checkpoint resumes may lack the observability metrics;
        // degrade those cells instead of aborting the table.
        const auto get = [point](const char *name, double fallback) {
            const auto it = point->find(name);
            return it != point->end() ? it->second : fallback;
        };
        const double gflops = point->at("gflops");
        if (cores == 1)
            piuma_base = gflops;
        // Xeon at the same thread count, full published scale; convert
        // to GFLOP/s with the full-scale FLOP count.
        const double xeon_ns =
            xeon::spmmTimeNs(xeon_cfg, full, cores, true);
        const double xeon_gflops =
            2.0 * static_cast<double>(products.numEdges) * kDim /
            xeon_ns;

        piuma::PiumaConfig pcfg;
        pcfg.numCores = cores;
        const double threads = pcfg.totalThreads();
        piuma::SpmmRunStats bound_stats{};
        bound_stats.criticalPathParallelism =
            get("cp_parallelism", 0.0);
        bound_stats.maxMemUtilization = get("mem_util", 0.0);
        bound_stats.netUtilization = get("net_util", 0.0);
        bound_stats.issueUtilization = get("issue_util", 0.0);
        bound_stats.dmaUtilization = get("dma_util", 0.0);
        const double hiding = get("latency_hiding", -1.0);

        auto &row = middle.row()
            .cell(static_cast<uint64_t>(cores))
            .cell(gflops / piuma_base, 2)
            .cell(xeon_gflops / piuma_base, 2)
            .cell(get("issue_util", 0.0), 3)
            .cell(get("stall_mem_ns", 0.0) / threads / 1e3, 2)
            .cell(get("stall_net_ns", 0.0) / threads / 1e3, 2);
        if (hiding >= 0.0)
            row.cell(hiding, 3);
        else
            row.cell("-");
        row.cell(get("cp_parallelism", 0.0), 1)
            .cell(piuma::scalingBoundName(bound_stats, pcfg.totalThreads()));
    }
    bench::emit(middle, csv.empty() ? csv : "middle_" + csv);

    // ---- Right: 16-core PIUMA breakdown across K.
    Table right("Fig 8 (right): 16-core PIUMA DMA SpMM traffic & stall "
                "breakdown",
                {"K", "%read bytes NNZ", "%read bytes feature",
                 "nnz stall/thr us", "queue stall/thr us",
                 "model fraction"});
    for (size_t i = 0; i < right_dims.size(); ++i) {
        const unsigned k = right_dims[i];
        const auto *point = driver.result(right_idx[i]);
        if (!point)
            continue;
        piuma::PiumaConfig pcfg;
        pcfg.numCores = 16;
        const double nnz_bytes = point->at("nnz_reads") * 64.0;
        const double bytes_read = point->at("bytes_read");
        const double bw = pcfg.aggregateBandwidth();
        const auto est = model::estimateSpmm(
            model::SpmmWorkload{proxy.adjacency.numVertices(),
                                proxy.adjacency.numEdges(), k},
            bw, bw);
        const double threads = pcfg.totalThreads();
        right.row()
            .cell(static_cast<uint64_t>(k))
            .cell(100.0 * nnz_bytes / bytes_read, 1)
            .cell(100.0 * (1.0 - nnz_bytes / bytes_read), 1)
            .cell(point->at("nnz_stall_ns") / threads / 1e3, 2)
            .cell(point->at("dma_queue_stall_ns") / threads / 1e3, 2)
            .cell(est.timeNs / point->at("makespan_ns"), 2);
    }
    bench::emit(right, csv.empty() ? csv : "right_" + csv);

    // ---- Raw occupancy timelines (one row per non-empty bucket per
    // resource, prefixed with the owning sweep point).
    if (!args.occupancyPath.empty() && args.monitors) {
        std::ofstream occ(args.occupancyPath);
        occ << "point," << sim::MonitorHub::csvHeader() << '\n';
        const auto dump = [&](size_t hub_idx, size_t point_idx,
                              const std::string &key) {
            const auto *point = driver.result(point_idx);
            if (point == nullptr)
                return;
            const auto it = point->find("makespan_ns");
            if (it == point->end())
                return;
            hubs[hub_idx].writeCsv(occ, it->second, key + ",");
        };
        for (size_t i = 0; i < scaling_cores.size(); ++i)
            dump(i, middle_idx[i],
                 "middle/cores=" + std::to_string(scaling_cores[i]));
        for (size_t i = 0; i < right_dims.size(); ++i)
            dump(scaling_cores.size() + i, right_idx[i],
                 "right/k=" + std::to_string(right_dims[i]));
        std::cout << "(occupancy csv written to " << args.occupancyPath
                  << ")\n";
    }

    driver.annotate("graph", "products-proxy");
    driver.annotate("algorithm", "dma");
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
