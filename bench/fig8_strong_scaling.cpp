/**
 * @file
 * Fig. 8: strong scaling of SpMM on PIUMA versus Xeon using the
 * products graph.
 *  - Left: system bandwidth vs core count for both machines; PIUMA
 *    scales linearly and crosses the Xeon at ~16 cores, while the
 *    Xeon saturates at the socket level and *degrades* past 80
 *    threads (hyper-threading).
 *  - Middle: SpMM throughput strong scaling (DES for PIUMA on the
 *    down-scaled products proxy, analytical for Xeon at published
 *    scale, both normalised to 1-core PIUMA).
 *  - Right: execution-time/traffic breakdown of a 16-core PIUMA
 *    system for K in {8, 64, 256}: the NNZ-read share shrinks as K
 *    grows.
 *
 * The DES points support --checkpoint=<jsonl> / --resume /
 * --sweep-json=<path>: a killed sweep can be restarted and recomputes
 * only the missing simulations.
 */
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "model/spmm_model.hpp"
#include "piuma/spmm_programs.hpp"
#include "xeon/timing.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    const std::string &json = args.jsonPath;
    const auto session = bench::makeSession(args);
    JsonlCheckpoint ckpt = bench::makeCheckpoint(args);
    bench::SimThroughput throughput;
    const auto xeon_cfg = xeon::XeonConfig::platinum8380();

    // ---- Left: bandwidth comparison.
    Table left("Fig 8 (left): system bandwidth vs cores (GB/s)",
               {"cores", "xeon", "piuma"});
    for (unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 80u, 120u,
                           160u}) {
        piuma::PiumaConfig pcfg;
        pcfg.numCores = cores;
        left.row()
            .cell(static_cast<uint64_t>(cores))
            .cell(xeon::streamBandwidth(xeon_cfg, cores), 1)
            .cell(pcfg.aggregateBandwidth(), 1);
    }
    bench::emit(left, csv.empty() ? csv : "left_" + csv);

    // ---- Middle: SpMM strong scaling on products, K=256.
    const auto &products = graph::datasetByName("products");
    const auto proxy = graph::buildProxy(products, 1u << 18);
    std::cout << "products proxy: |V|=" << proxy.adjacency.numVertices()
              << " |E|=" << proxy.adjacency.numEdges()
              << " (scale factor " << proxy.scaleFactor << ")\n\n";

    constexpr unsigned kDim = 256;
    Table middle("Fig 8 (middle): SpMM strong scaling on products, "
                 "K=256 (normalised to 1-core PIUMA)",
                 {"cores", "piuma (sim)", "xeon (model)"});
    double piuma_base = 0.0;
    const model::SpmmWorkload full{products.numVertices,
                                   products.numEdges, kDim};
    for (unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const auto point = bench::sweepPoint(
            ckpt, "middle/cores=" + std::to_string(cores), [&] {
                piuma::PiumaConfig pcfg;
                pcfg.numCores = cores;
                const auto sim =
                    simulateSpmm(proxy.adjacency, kDim, pcfg,
                                 SpmmAlgorithm::Dma, session.get());
                throughput.add(sim);
                return JsonlCheckpoint::Values{{"gflops", sim.gflops}};
            });
        if (!point)
            continue;
        const double gflops = point->at("gflops");
        if (cores == 1)
            piuma_base = gflops;
        // Xeon at the same thread count, full published scale; convert
        // to GFLOP/s with the full-scale FLOP count.
        const double xeon_ns =
            xeon::spmmTimeNs(xeon_cfg, full, cores, true);
        const double xeon_gflops =
            2.0 * static_cast<double>(products.numEdges) * kDim /
            xeon_ns;
        middle.row()
            .cell(static_cast<uint64_t>(cores))
            .cell(gflops / piuma_base, 2)
            .cell(xeon_gflops / piuma_base, 2);
    }
    bench::emit(middle, csv.empty() ? csv : "middle_" + csv);

    // ---- Right: 16-core PIUMA breakdown across K.
    Table right("Fig 8 (right): 16-core PIUMA DMA SpMM traffic & stall "
                "breakdown",
                {"K", "%read bytes NNZ", "%read bytes feature",
                 "nnz stall/thr us", "queue stall/thr us",
                 "model fraction"});
    for (unsigned k : {8u, 64u, 256u}) {
        const auto point = bench::sweepPoint(
            ckpt, "right/k=" + std::to_string(k), [&] {
                piuma::PiumaConfig pcfg;
                pcfg.numCores = 16;
                const auto sim =
                    simulateSpmm(proxy.adjacency, k, pcfg,
                                 SpmmAlgorithm::Dma, session.get());
                throughput.add(sim);
                return JsonlCheckpoint::Values{
                    {"bytes_read", sim.bytesRead},
                    {"dma_queue_stall_ns", sim.dmaQueueStallNs},
                    {"makespan_ns", sim.makespanNs},
                    {"nnz_reads", static_cast<double>(sim.nnzReads)},
                    {"nnz_stall_ns", sim.nnzStallNs},
                };
            });
        if (!point)
            continue;
        piuma::PiumaConfig pcfg;
        pcfg.numCores = 16;
        const double nnz_bytes = point->at("nnz_reads") * 64.0;
        const double bytes_read = point->at("bytes_read");
        const double bw = pcfg.aggregateBandwidth();
        const auto est = model::estimateSpmm(
            model::SpmmWorkload{proxy.adjacency.numVertices(),
                                proxy.adjacency.numEdges(), k},
            bw, bw);
        const double threads = pcfg.totalThreads();
        right.row()
            .cell(static_cast<uint64_t>(k))
            .cell(100.0 * nnz_bytes / bytes_read, 1)
            .cell(100.0 * (1.0 - nnz_bytes / bytes_read), 1)
            .cell(point->at("nnz_stall_ns") / threads / 1e3, 2)
            .cell(point->at("dma_queue_stall_ns") / threads / 1e3, 2)
            .cell(est.timeNs / point->at("makespan_ns"), 2);
    }
    bench::emit(right, csv.empty() ? csv : "right_" + csv);
    throughput.print(std::cout);
    if (!json.empty())
        throughput.writeJson(json);
    bench::finishSweep(ckpt, args);
    if (session)
        bench::finishSession(*session, args);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
