/**
 * @file
 * Fig. 8: strong scaling of SpMM on PIUMA versus Xeon using the
 * products graph.
 *  - Left: system bandwidth vs core count for both machines; PIUMA
 *    scales linearly and crosses the Xeon at ~16 cores, while the
 *    Xeon saturates at the socket level and *degrades* past 80
 *    threads (hyper-threading).
 *  - Middle: SpMM throughput strong scaling (DES for PIUMA on the
 *    down-scaled products proxy, analytical for Xeon at published
 *    scale, both normalised to 1-core PIUMA).
 *  - Right: execution-time/traffic breakdown of a 16-core PIUMA
 *    system for K in {8, 64, 256}: the NNZ-read share shrinks as K
 *    grows.
 *
 * The DES points support --checkpoint=<jsonl> / --resume /
 * --sweep-json=<path> (a killed sweep recomputes only the missing
 * simulations) and --jobs N (independent points run on worker
 * threads; the checkpoint and consolidated JSON stay byte-identical
 * to a serial run, see bench::SweepDriver).
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "model/spmm_model.hpp"
#include "piuma/spmm_programs.hpp"
#include "xeon/timing.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);
    const auto xeon_cfg = xeon::XeonConfig::platinum8380();

    // ---- Left: bandwidth comparison (analytical, no sweep points).
    Table left("Fig 8 (left): system bandwidth vs cores (GB/s)",
               {"cores", "xeon", "piuma"});
    for (unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 80u, 120u,
                           160u}) {
        piuma::PiumaConfig pcfg;
        pcfg.numCores = cores;
        left.row()
            .cell(static_cast<uint64_t>(cores))
            .cell(xeon::streamBandwidth(xeon_cfg, cores), 1)
            .cell(pcfg.aggregateBandwidth(), 1);
    }
    bench::emit(left, csv.empty() ? csv : "left_" + csv);

    const auto &products = graph::datasetByName("products");
    const auto proxy = graph::buildProxy(products, 1u << 18);
    std::cout << "products proxy: |V|=" << proxy.adjacency.numVertices()
              << " |E|=" << proxy.adjacency.numEdges()
              << " (scale factor " << proxy.scaleFactor << ")\n\n";

    // ---- Enqueue the DES points for the middle and right panels.
    constexpr unsigned kDim = 256;
    const std::vector<unsigned> scaling_cores{1u, 2u, 4u, 8u, 16u, 32u};
    std::vector<size_t> middle_idx;
    for (unsigned cores : scaling_cores) {
        middle_idx.push_back(driver.add(
            "middle/cores=" + std::to_string(cores),
            [&driver, &proxy, cores](const parallel::SweepContext &ctx) {
                piuma::PiumaConfig pcfg;
                pcfg.numCores = cores;
                const auto sim =
                    simulateSpmm(proxy.adjacency, kDim, pcfg,
                                 SpmmAlgorithm::Dma, ctx.session,
                                 ctx.controls);
                driver.throughput(ctx).add(sim);
                return JsonlCheckpoint::Values{{"gflops", sim.gflops}};
            }));
    }

    const std::vector<unsigned> right_dims{8u, 64u, 256u};
    std::vector<size_t> right_idx;
    for (unsigned k : right_dims) {
        right_idx.push_back(driver.add(
            "right/k=" + std::to_string(k),
            [&driver, &proxy, k](const parallel::SweepContext &ctx) {
                piuma::PiumaConfig pcfg;
                pcfg.numCores = 16;
                const auto sim =
                    simulateSpmm(proxy.adjacency, k, pcfg,
                                 SpmmAlgorithm::Dma, ctx.session,
                                 ctx.controls);
                driver.throughput(ctx).add(sim);
                return JsonlCheckpoint::Values{
                    {"bytes_read", sim.bytesRead},
                    {"dma_queue_stall_ns", sim.dmaQueueStallNs},
                    {"makespan_ns", sim.makespanNs},
                    {"nnz_reads", static_cast<double>(sim.nnzReads)},
                    {"nnz_stall_ns", sim.nnzStallNs},
                };
            }));
    }

    driver.run();

    // ---- Middle: SpMM strong scaling on products, K=256.
    Table middle("Fig 8 (middle): SpMM strong scaling on products, "
                 "K=256 (normalised to 1-core PIUMA)",
                 {"cores", "piuma (sim)", "xeon (model)"});
    double piuma_base = 0.0;
    const model::SpmmWorkload full{products.numVertices,
                                   products.numEdges, kDim};
    for (size_t i = 0; i < scaling_cores.size(); ++i) {
        const unsigned cores = scaling_cores[i];
        const auto *point = driver.result(middle_idx[i]);
        if (!point)
            continue;
        const double gflops = point->at("gflops");
        if (cores == 1)
            piuma_base = gflops;
        // Xeon at the same thread count, full published scale; convert
        // to GFLOP/s with the full-scale FLOP count.
        const double xeon_ns =
            xeon::spmmTimeNs(xeon_cfg, full, cores, true);
        const double xeon_gflops =
            2.0 * static_cast<double>(products.numEdges) * kDim /
            xeon_ns;
        middle.row()
            .cell(static_cast<uint64_t>(cores))
            .cell(gflops / piuma_base, 2)
            .cell(xeon_gflops / piuma_base, 2);
    }
    bench::emit(middle, csv.empty() ? csv : "middle_" + csv);

    // ---- Right: 16-core PIUMA breakdown across K.
    Table right("Fig 8 (right): 16-core PIUMA DMA SpMM traffic & stall "
                "breakdown",
                {"K", "%read bytes NNZ", "%read bytes feature",
                 "nnz stall/thr us", "queue stall/thr us",
                 "model fraction"});
    for (size_t i = 0; i < right_dims.size(); ++i) {
        const unsigned k = right_dims[i];
        const auto *point = driver.result(right_idx[i]);
        if (!point)
            continue;
        piuma::PiumaConfig pcfg;
        pcfg.numCores = 16;
        const double nnz_bytes = point->at("nnz_reads") * 64.0;
        const double bytes_read = point->at("bytes_read");
        const double bw = pcfg.aggregateBandwidth();
        const auto est = model::estimateSpmm(
            model::SpmmWorkload{proxy.adjacency.numVertices(),
                                proxy.adjacency.numEdges(), k},
            bw, bw);
        const double threads = pcfg.totalThreads();
        right.row()
            .cell(static_cast<uint64_t>(k))
            .cell(100.0 * nnz_bytes / bytes_read, 1)
            .cell(100.0 * (1.0 - nnz_bytes / bytes_read), 1)
            .cell(point->at("nnz_stall_ns") / threads / 1e3, 2)
            .cell(point->at("dma_queue_stall_ns") / threads / 1e3, 2)
            .cell(est.timeNs / point->at("makespan_ns"), 2);
    }
    bench::emit(right, csv.empty() ? csv : "right_" + csv);
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
