/**
 * @file
 * Fig. 4: execution-time breakdown on GPU (A100-40GB, data imported
 * from [16] in the paper; reproduced here by the analytical model).
 *
 * Expected shape: offload dominates every graph that fits on the
 * device; papers does not fit, is sampled on the host, and sampling
 * plus offload consume nearly all of its execution time.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/platforms.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);
    core::GpuPlatform gpu;

    Table table("Fig 4: GPU (A100-40GB) GCN breakdown",
                {"dataset", "K", "fits", "%Offload", "%Sampling",
                 "%SpMM", "%Dense", "%Glue", "total (ms)"});
    for (const auto &d : graph::ogbDatasets()) {
        for (uint64_t k : core::GcnModelConfig::embeddingSweep()) {
            const auto model = bench::sweepModel(d, k);
            const auto bd = gpu.timeGcn(d, model);
            table.row()
                .cell(d.name)
                .cell(static_cast<uint64_t>(k))
                .cell(gpu.fits(d, model) ? "yes" : "NO")
                .cell(100.0 * bd.offloadFraction(), 1)
                .cell(100.0 * bd.samplingFraction(), 1)
                .cell(100.0 * bd.spmmFraction(), 1)
                .cell(100.0 * bd.denseFraction(), 1)
                .cell(100.0 * bd.glueFraction(), 1)
                .cell(bd.totalNs() / 1e6, 2);
        }
    }
    bench::emit(table, csv);
    return 0;
}
