/**
 * @file
 * Extension (paper Section VI, "Graph Clustering and Sampling"):
 * random-walk neighbourhood sampling on PIUMA versus CPU. The walk is
 * a dependent pointer chase — pure latency, no bandwidth — so CPU
 * throughput is pinned by (cores x overlapped chases / latency) while
 * PIUMA throughput scales with its thousands of hardware threads and
 * barely notices DRAM latency.
 */
#include <iostream>

#include "bench_util.hpp"
#include "piuma/walk_programs.hpp"
#include "xeon/timing.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);
    const graph::Csr csr = bench::desProxy(13);
    std::cout << "proxy: |V|=" << csr.numVertices()
              << " |E|=" << csr.numEdges() << "\n\n";

    const auto xeon_cfg = xeon::XeonConfig::platinum8380();
    const double cpu_rate =
        xeon::randomWalkStepsPerNs(xeon_cfg, xeon_cfg.physicalCores());
    std::cout << "dual-socket Xeon model: " << cpu_rate * 1e3
              << " M steps/s (80 cores, "
              << xeon_cfg.chasesOverlappedPerCore
              << " chases overlapped per core)\n\n";

    Table table("Random walk on PIUMA (DES) vs Xeon (model)",
                {"cores", "threads/MTP", "latency ns", "M steps/s",
                 "vs xeon", "avg step ns"});
    const uint64_t walks = 1u << 13;
    const uint32_t length = 16;
    for (unsigned cores : {2u, 8u}) {
        for (unsigned threads : {1u, 4u, 16u}) {
            for (double lat_scale : {1.0, 8.0}) {
                piuma::PiumaConfig cfg;
                cfg.numCores = cores;
                cfg.threadsPerMtp = threads;
                cfg.dramLatencyScale = lat_scale;
                const auto s =
                    piuma::simulateRandomWalk(csr, walks, length, cfg);
                table.row()
                    .cell(static_cast<uint64_t>(cores))
                    .cell(static_cast<uint64_t>(threads))
                    .cell(cfg.effectiveDramLatencyNs(), 0)
                    .cell(s.stepsPerNs * 1e3, 1)
                    .cell(s.stepsPerNs / cpu_rate, 2)
                    .cell(s.avgStepLatencyNs, 0);
            }
        }
    }
    bench::emit(table, csv);
    std::cout << "Reading: an 8-core PIUMA slice of a node already "
                 "rivals the 80-core Xeon on this latency-bound "
                 "kernel; a full node (32x more cores) leaves it far "
                 "behind — the Section VI argument for sampling-based "
                 "GNNs on PIUMA.\n";
    return 0;
}
