/**
 * @file
 * Future-work study (paper Section VI): a heterogeneous SoC pairing
 * PIUMA dies with dense-compute accelerators, and Graphite-style
 * layer fusion [9]. Sweeps the accelerator's dense throughput and
 * reports how much of the K=256 Dense-MM bottleneck it recovers,
 * and what fusion saves on top.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/platforms.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);

    Table hetero("Heterogeneous SoC: dense accelerator attached to a "
                 "PIUMA node (K=256)",
                 {"dataset", "accel GF/s", "total (ms)", "%Dense",
                  "speedup vs scalar"});
    for (const char *name : {"arxiv", "products", "papers"}) {
        const auto &d = graph::datasetByName(name);
        const auto model = bench::sweepModel(d, 256);
        double base = 0.0;
        for (double accel : {0.0, 2000.0, 8000.0, 32000.0}) {
            piuma::NodeModelParams params;
            params.denseAcceleratorGflops = accel;
            core::PiumaPlatform node(piuma::PiumaConfig::node(), params);
            const auto bd = node.timeGcn(d, model);
            if (accel == 0.0)
                base = bd.totalNs();
            hetero.row()
                .cell(d.name)
                .cell(accel, 0)
                .cell(bd.totalNs() / 1e6, 2)
                .cell(100.0 * bd.denseFraction(), 1)
                .cell(base / bd.totalNs(), 2);
        }
    }
    bench::emit(hetero, csv.empty() ? csv : "hetero_" + csv);

    Table fusion("Graphite-style layer fusion on a PIUMA node",
                 {"dataset", "K", "unfused (ms)", "fused (ms)",
                  "speedup"});
    for (const char *name : {"arxiv", "products", "papers"}) {
        const auto &d = graph::datasetByName(name);
        for (uint64_t k : {uint64_t{8}, uint64_t{256}}) {
            const auto model = bench::sweepModel(d, k);
            piuma::NodeModelParams unfused;
            piuma::NodeModelParams fused;
            fused.fuseAggregationUpdate = true;
            core::PiumaPlatform a(piuma::PiumaConfig::node(), unfused);
            core::PiumaPlatform b(piuma::PiumaConfig::node(), fused);
            const double ta = a.timeGcn(d, model).totalNs();
            const double tb = b.timeGcn(d, model).totalNs();
            fusion.row()
                .cell(d.name)
                .cell(static_cast<uint64_t>(k))
                .cell(ta / 1e6, 2)
                .cell(tb / 1e6, 2)
                .cell(ta / tb, 2);
        }
    }
    bench::emit(fusion, csv.empty() ? csv : "fusion_" + csv);
    std::cout << "Reading: Graphite [9] reported ~1.3x from fusion on "
                 "SpMM-bound workloads; on PIUMA the benefit "
                 "concentrates at small K where aggregation traffic "
                 "dominates.\n";
    return 0;
}
