/**
 * @file
 * Future-work study (paper Section VI): a heterogeneous SoC pairing
 * PIUMA dies with dense-compute accelerators, and Graphite-style
 * layer fusion [9]. Sweeps the accelerator's dense throughput and
 * reports how much of the K=256 Dense-MM bottleneck it recovers,
 * and what fusion saves on top.
 *
 * Runs on the shared sweep driver (--jobs N / --checkpoint= /
 * --resume / --sweep-json=); the points are analytical, so the flags
 * mostly matter for command-line uniformity across benches.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/platforms.hpp"

using namespace pgcn;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);

    struct HeteroPoint
    {
        const graph::DatasetInfo *dataset;
        double accel;
        size_t idx;
    };
    std::vector<HeteroPoint> hetero_points;
    for (const char *name : {"arxiv", "products", "papers"}) {
        const auto &d = graph::datasetByName(name);
        for (double accel : {0.0, 2000.0, 8000.0, 32000.0}) {
            const std::string key =
                "hetero/" + std::string(name) + "/accel=" +
                std::to_string(static_cast<unsigned>(accel));
            const size_t idx = driver.add(
                key, [&d, accel](const parallel::SweepContext &) {
                    const auto model = bench::sweepModel(d, 256);
                    piuma::NodeModelParams params;
                    params.denseAcceleratorGflops = accel;
                    const core::PiumaPlatform node(
                        piuma::PiumaConfig::node(), params);
                    const auto bd = node.timeGcn(d, model);
                    return JsonlCheckpoint::Values{
                        {"dense_fraction", bd.denseFraction()},
                        {"total_ns", bd.totalNs()}};
                });
            hetero_points.push_back(HeteroPoint{&d, accel, idx});
        }
    }

    struct FusionPoint
    {
        const graph::DatasetInfo *dataset;
        uint64_t k;
        size_t idx;
    };
    std::vector<FusionPoint> fusion_points;
    for (const char *name : {"arxiv", "products", "papers"}) {
        const auto &d = graph::datasetByName(name);
        for (uint64_t k : {uint64_t{8}, uint64_t{256}}) {
            const std::string key = "fusion/" + std::string(name) +
                                    "/k=" + std::to_string(k);
            const size_t idx = driver.add(
                key, [&d, k](const parallel::SweepContext &) {
                    const auto model = bench::sweepModel(d, k);
                    piuma::NodeModelParams unfused;
                    piuma::NodeModelParams fused;
                    fused.fuseAggregationUpdate = true;
                    const core::PiumaPlatform a(
                        piuma::PiumaConfig::node(), unfused);
                    const core::PiumaPlatform b(
                        piuma::PiumaConfig::node(), fused);
                    return JsonlCheckpoint::Values{
                        {"fused_ns", b.timeGcn(d, model).totalNs()},
                        {"unfused_ns", a.timeGcn(d, model).totalNs()}};
                });
            fusion_points.push_back(FusionPoint{&d, k, idx});
        }
    }

    driver.run();

    Table hetero("Heterogeneous SoC: dense accelerator attached to a "
                 "PIUMA node (K=256)",
                 {"dataset", "accel GF/s", "total (ms)", "%Dense",
                  "speedup vs scalar"});
    double base = 0.0;
    for (const HeteroPoint &p : hetero_points) {
        const auto *v = driver.result(p.idx);
        if (!v)
            continue;
        if (p.accel == 0.0)
            base = v->at("total_ns");
        hetero.row()
            .cell(p.dataset->name)
            .cell(p.accel, 0)
            .cell(v->at("total_ns") / 1e6, 2)
            .cell(100.0 * v->at("dense_fraction"), 1)
            .cell(base / v->at("total_ns"), 2);
    }
    bench::emit(hetero, csv.empty() ? csv : "hetero_" + csv);

    Table fusion("Graphite-style layer fusion on a PIUMA node",
                 {"dataset", "K", "unfused (ms)", "fused (ms)",
                  "speedup"});
    for (const FusionPoint &p : fusion_points) {
        const auto *v = driver.result(p.idx);
        if (!v)
            continue;
        const double ta = v->at("unfused_ns");
        const double tb = v->at("fused_ns");
        fusion.row()
            .cell(p.dataset->name)
            .cell(p.k)
            .cell(ta / 1e6, 2)
            .cell(tb / 1e6, 2)
            .cell(ta / tb, 2);
    }
    bench::emit(fusion, csv.empty() ? csv : "fusion_" + csv);
    std::cout << "Reading: Graphite [9] reported ~1.3x from fusion on "
                 "SpMM-bound workloads; on PIUMA the benefit "
                 "concentrates at small K where aggregation traffic "
                 "dominates.\n";
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
