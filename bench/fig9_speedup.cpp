/**
 * @file
 * Fig. 9: single-node GCN performance of PIUMA and the A100 GPU
 * against the dual-socket Xeon baseline, across the embedding sweep.
 * Bars in the paper = whole-GCN speedup; diamonds = SpMM-kernel
 * speedup. Includes the synthetic low-locality power-16/power-22
 * graphs.
 *
 * Expected shape: PIUMA > 1x vs CPU everywhere, with the margin
 * shrinking as K grows (dense pressure); the GPU beats the CPU only
 * at higher K and collapses on papers (sampling); PIUMA's SpMM
 * advantage over the GPU is largest on the low-locality power
 * graphs, while the GPU wins small cached graphs (ddi, proteins).
 *
 * The PIUMA node model's SpMM efficiency is calibrated against the
 * discrete-event simulator before the sweep (printed below). The
 * (dataset, K) sweep itself runs on the shared sweep driver, so it
 * accepts --jobs N / --checkpoint= / --resume like the DES benches
 * (the points are cheap analytical evaluations; the flags mostly
 * matter for output-format uniformity).
 */
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/platforms.hpp"

using namespace pgcn;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);

    // Calibrate the node model against the DES on an 8-core die.
    piuma::PiumaConfig calib_cfg = piuma::PiumaConfig::singleDie();
    piuma::NodeModelParams params;
    params.spmmEfficiency = std::min(
        1.0, piuma::calibrateSpmmEfficiency(calib_cfg, 64, 1u << 18));
    std::cout << "calibrated PIUMA SpMM efficiency (DES, 8 cores, "
                 "K=64): "
              << params.spmmEfficiency << "\n\n";

    const core::XeonPlatform cpu;
    const core::GpuPlatform gpu;
    const core::PiumaPlatform piuma_node(piuma::PiumaConfig::node(),
                                         params);

    // Enqueue one point per (dataset, K); the platform models are
    // immutable after construction, so workers share them read-only.
    const auto &datasets = graph::allDatasets();
    struct Point
    {
        const graph::DatasetInfo *dataset;
        uint64_t k;
        size_t idx;
    };
    std::vector<Point> points;
    for (const auto &d : datasets) {
        for (uint64_t k : core::GcnModelConfig::embeddingSweep()) {
            const std::string key = "speedup/" + std::string(d.name) +
                                    "/k=" + std::to_string(k);
            const size_t idx = driver.add(
                key,
                [&cpu, &gpu, &piuma_node, &d,
                 k](const parallel::SweepContext &) {
                    const auto model = bench::sweepModel(d, k);
                    const double cpu_total =
                        cpu.timeGcn(d, model).totalNs();
                    const double cpu_spmm = cpu.spmmOnlyNs(d, model);
                    return JsonlCheckpoint::Values{
                        {"gpu_fits", gpu.fits(d, model) ? 1.0 : 0.0},
                        {"gpu_gcn_x",
                         cpu_total / gpu.timeGcn(d, model).totalNs()},
                        {"gpu_spmm_x",
                         cpu_spmm / gpu.spmmOnlyNs(d, model)},
                        {"piuma_gcn_x",
                         cpu_total /
                             piuma_node.timeGcn(d, model).totalNs()},
                        {"piuma_spmm_x",
                         cpu_spmm / piuma_node.spmmOnlyNs(d, model)},
                    };
                });
            points.push_back(Point{&d, k, idx});
        }
    }

    driver.run();

    Table table("Fig 9: speedup vs dual-socket Xeon "
                "(GCN bars / SpMM diamonds)",
                {"dataset", "K", "piuma GCN x", "gpu GCN x",
                 "piuma SpMM x", "gpu SpMM x", "gpu fits"});
    for (const Point &p : points) {
        const auto *v = driver.result(p.idx);
        if (!v)
            continue;
        table.row()
            .cell(p.dataset->name)
            .cell(p.k)
            .cell(v->at("piuma_gcn_x"), 2)
            .cell(v->at("gpu_gcn_x"), 2)
            .cell(v->at("piuma_spmm_x"), 2)
            .cell(v->at("gpu_spmm_x"), 2)
            .cell(v->at("gpu_fits") != 0.0 ? "yes" : "NO");
    }
    bench::emit(table, csv);
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
