/**
 * @file
 * Fig. 9: single-node GCN performance of PIUMA and the A100 GPU
 * against the dual-socket Xeon baseline, across the embedding sweep.
 * Bars in the paper = whole-GCN speedup; diamonds = SpMM-kernel
 * speedup. Includes the synthetic low-locality power-16/power-22
 * graphs.
 *
 * Expected shape: PIUMA > 1x vs CPU everywhere, with the margin
 * shrinking as K grows (dense pressure); the GPU beats the CPU only
 * at higher K and collapses on papers (sampling); PIUMA's SpMM
 * advantage over the GPU is largest on the low-locality power
 * graphs, while the GPU wins small cached graphs (ddi, proteins).
 *
 * The PIUMA node model's SpMM efficiency is calibrated against the
 * discrete-event simulator before the sweep (printed below).
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/platforms.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);

    // Calibrate the node model against the DES on an 8-core die.
    piuma::PiumaConfig calib_cfg = piuma::PiumaConfig::singleDie();
    piuma::NodeModelParams params;
    params.spmmEfficiency = std::min(
        1.0, piuma::calibrateSpmmEfficiency(calib_cfg, 64, 1u << 18));
    std::cout << "calibrated PIUMA SpMM efficiency (DES, 8 cores, "
                 "K=64): "
              << params.spmmEfficiency << "\n\n";

    core::XeonPlatform cpu;
    core::GpuPlatform gpu;
    core::PiumaPlatform piuma_node(piuma::PiumaConfig::node(), params);

    Table table("Fig 9: speedup vs dual-socket Xeon "
                "(GCN bars / SpMM diamonds)",
                {"dataset", "K", "piuma GCN x", "gpu GCN x",
                 "piuma SpMM x", "gpu SpMM x", "gpu fits"});
    for (const auto &d : graph::allDatasets()) {
        for (uint64_t k : core::GcnModelConfig::embeddingSweep()) {
            const auto model = bench::sweepModel(d, k);
            const double cpu_total = cpu.timeGcn(d, model).totalNs();
            const double cpu_spmm = cpu.spmmOnlyNs(d, model);
            table.row()
                .cell(d.name)
                .cell(static_cast<uint64_t>(k))
                .cell(cpu_total / piuma_node.timeGcn(d, model).totalNs(),
                      2)
                .cell(cpu_total / gpu.timeGcn(d, model).totalNs(), 2)
                .cell(cpu_spmm / piuma_node.spmmOnlyNs(d, model), 2)
                .cell(cpu_spmm / gpu.spmmOnlyNs(d, model), 2)
                .cell(gpu.fits(d, model) ? "yes" : "NO");
        }
    }
    bench::emit(table, csv);
    return 0;
}
