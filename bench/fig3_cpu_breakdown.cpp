/**
 * @file
 * Fig. 3: execution-time breakdown on CPU for the OGB workloads using
 * a 3-layer GCN, hidden embedding dimension swept 8..256. Left axis
 * of the paper's figure: percent time in SpMM / Dense MM / Glue;
 * right axis: absolute SpMM and Dense MM time.
 *
 * Expected shape: SpMM dominates large/dense datasets (ppa, products,
 * ddi, proteins, papers >80%); the SpMM share grows with embedding
 * dimension as caching loses effectiveness; papers shows a growing
 * Glue share (activations evicted between kernels).
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/platforms.hpp"

using namespace pgcn;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);
    core::XeonPlatform cpu;

    Table table("Fig 3: CPU (dual-socket Xeon 8380) GCN breakdown",
                {"dataset", "K", "%SpMM", "%Dense", "%Glue",
                 "SpMM (ms)", "Dense (ms)", "total (ms)"});
    for (const auto &d : graph::ogbDatasets()) {
        for (uint64_t k : core::GcnModelConfig::embeddingSweep()) {
            const auto bd = cpu.timeGcn(d, bench::sweepModel(d, k));
            table.row()
                .cell(d.name)
                .cell(static_cast<uint64_t>(k))
                .cell(100.0 * bd.spmmFraction(), 1)
                .cell(100.0 * bd.denseFraction(), 1)
                .cell(100.0 * bd.glueFraction(), 1)
                .cell(bd.spmmNs / 1e6, 2)
                .cell(bd.denseNs / 1e6, 2)
                .cell(bd.totalNs() / 1e6, 2);
        }
    }
    bench::emit(table, csv);
    return 0;
}
