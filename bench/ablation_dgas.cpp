/**
 * @file
 * Ablation: fine-grained DGAS interleaving. PIUMA distributes the
 * address space across DRAM slices at 8-byte granularity; this bench
 * disables that (each feature row pinned to one slice) and measures
 * the cost on skewed graphs, where hub vertices then turn single
 * memory controllers into hotspots.
 *
 * DESIGN.md design-choice justification: without fine interleaving
 * the DMA SpMM loses a large fraction of its throughput on RMAT
 * graphs while the max-utilisation slice pegs at ~100%.
 */
#include <iostream>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);

    Table table("Ablation: 8-byte DGAS interleave vs row-per-slice "
                "placement (DMA SpMM, K=64)",
                {"graph", "cores", "interleave", "GF/s", "mem util",
                 "max slice util", "slowdown"});
    for (bool skewed : {true, false}) {
        const graph::Csr csr = graph::normalizedAdjacency(
            graph::generateRmat(13, 1u << 17,
                                skewed ? graph::rmatSkewed()
                                       : graph::rmatUniform(),
                                21));
        for (unsigned cores : {4u, 16u}) {
            double base = 0.0;
            for (bool interleave : {true, false}) {
                piuma::PiumaConfig cfg;
                cfg.numCores = cores;
                cfg.dgasFineInterleave = interleave;
                const auto s =
                    simulateSpmm(csr, 64, cfg, SpmmAlgorithm::Dma);
                if (interleave)
                    base = s.makespanNs;
                table.row()
                    .cell(skewed ? "rmat-skewed" : "rmat-uniform")
                    .cell(static_cast<uint64_t>(cores))
                    .cell(interleave ? "8-byte" : "row/slice")
                    .cell(s.gflops, 2)
                    .cell(s.memUtilization, 2)
                    .cell(s.maxMemUtilization, 2)
                    .cell(s.makespanNs / base, 2);
            }
        }
    }
    bench::emit(table, csv);
    return 0;
}
