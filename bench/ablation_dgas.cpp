/**
 * @file
 * Ablation: fine-grained DGAS interleaving. PIUMA distributes the
 * address space across DRAM slices at 8-byte granularity; this bench
 * disables that (each feature row pinned to one slice) and measures
 * the cost on skewed graphs, where hub vertices then turn single
 * memory controllers into hotspots.
 *
 * DESIGN.md design-choice justification: without fine interleaving
 * the DMA SpMM loses a large fraction of its throughput on RMAT
 * graphs while the max-utilisation slice pegs at ~100%.
 *
 * Runs on the shared sweep driver (--jobs N / --checkpoint= /
 * --resume / --sweep-json=).
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "piuma/spmm_programs.hpp"

using namespace pgcn;
using piuma::SpmmAlgorithm;

namespace {

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);

    // Both proxies built once on the calling thread; workers share
    // them read-only.
    const graph::Csr skewed_csr = graph::normalizedAdjacency(
        graph::generateRmat(13, 1u << 17, graph::rmatSkewed(), 21));
    const graph::Csr uniform_csr = graph::normalizedAdjacency(
        graph::generateRmat(13, 1u << 17, graph::rmatUniform(), 21));

    struct Point
    {
        bool skewed;
        unsigned cores;
        bool interleave;
        size_t idx;
    };
    std::vector<Point> points;
    for (bool skewed : {true, false}) {
        const graph::Csr &csr = skewed ? skewed_csr : uniform_csr;
        for (unsigned cores : {4u, 16u}) {
            for (bool interleave : {true, false}) {
                piuma::PiumaConfig cfg;
                cfg.numCores = cores;
                cfg.dgasFineInterleave = interleave;
                const std::string key =
                    std::string("dgas/graph=") +
                    (skewed ? "rmat-skewed" : "rmat-uniform") +
                    "/cores=" + std::to_string(cores) + "/interleave=" +
                    (interleave ? "8-byte" : "row-slice");
                const size_t idx = driver.add(
                    key,
                    [&driver, &csr,
                     cfg](const parallel::SweepContext &ctx) {
                        const auto s = simulateSpmm(
                            csr, 64, cfg, SpmmAlgorithm::Dma,
                            ctx.session, ctx.controls);
                        driver.throughput(ctx).add(s);
                        return JsonlCheckpoint::Values{
                            {"gflops", s.gflops},
                            {"makespan_ns", s.makespanNs},
                            {"max_slice_util", s.maxMemUtilization},
                            {"mem_util", s.memUtilization}};
                    });
                points.push_back(Point{skewed, cores, interleave, idx});
            }
        }
    }

    driver.run();

    Table table("Ablation: 8-byte DGAS interleave vs row-per-slice "
                "placement (DMA SpMM, K=64)",
                {"graph", "cores", "interleave", "GF/s", "mem util",
                 "max slice util", "slowdown"});
    double base = 0.0;
    for (const Point &p : points) {
        const auto *v = driver.result(p.idx);
        if (!v)
            continue;
        if (p.interleave)
            base = v->at("makespan_ns");
        table.row()
            .cell(p.skewed ? "rmat-skewed" : "rmat-uniform")
            .cell(static_cast<uint64_t>(p.cores))
            .cell(p.interleave ? "8-byte" : "row/slice")
            .cell(v->at("gflops"), 2)
            .cell(v->at("mem_util"), 2)
            .cell(v->at("max_slice_util"), 2)
            .cell(v->at("makespan_ns") / base, 2);
    }
    bench::emit(table, csv);
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
