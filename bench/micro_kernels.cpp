/**
 * @file
 * Google-benchmark microbenchmarks for the functional host kernels:
 * SpMM variants, dense GEMM, graph generation and normalisation.
 * These measure real wall-clock throughput of the library's
 * executable kernels on this machine (as opposed to the modelled
 * platforms of the figure benches).
 */
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "kernels/spmm.hpp"
#include "kernels/tiled_spmm.hpp"
#include "tensor/dense_mm.hpp"

namespace {

using namespace pgcn;

graph::Csr
benchGraph(uint32_t scale)
{
    return graph::normalizedAdjacency(graph::generateRmat(
        scale, (graph::EdgeId{1} << scale) * 8, graph::rmatSkewed(), 3));
}

void
BM_SpmmReference(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    for (auto _ : state) {
        kernels::spmmReference(csr, h, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(csr.numEdges()));
}
BENCHMARK(BM_SpmmReference)->Args({12, 32})->Args({14, 32});

void
BM_SpmmVertexParallel(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    parallel::ThreadPool pool;
    for (auto _ : state) {
        kernels::spmmVertexParallel(csr, h, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(csr.numEdges()));
}
BENCHMARK(BM_SpmmVertexParallel)
    ->Args({12, 32})
    ->Args({14, 32})
    ->Args({14, 128});

void
BM_SpmmEdgeParallel(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    parallel::ThreadPool pool;
    for (auto _ : state) {
        kernels::spmmEdgeParallel(csr, h, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(csr.numEdges()));
}
BENCHMARK(BM_SpmmEdgeParallel)->Args({12, 32})->Args({14, 32});

void
BM_SpmmTiled(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    const auto budget_kib = static_cast<double>(state.range(2));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    parallel::ThreadPool pool;
    kernels::TiledSpmm tiled(csr, k, budget_kib * 1024.0);
    for (auto _ : state) {
        tiled.apply(h, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(csr.numEdges()));
    state.counters["tiles"] =
        static_cast<double>(tiled.numTiles());
}
BENCHMARK(BM_SpmmTiled)
    ->Args({14, 128, 1 << 20}) // one tile
    ->Args({14, 128, 256});    // many small tiles

void
BM_DenseMmBlocked(benchmark::State &state)
{
    const auto n = static_cast<uint64_t>(state.range(0));
    tensor::DenseMatrix a(n, n), b(n, n), out;
    a.fillRandom(1);
    b.fillRandom(2);
    for (auto _ : state) {
        tensor::denseMmBlocked(a, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_DenseMmBlocked)->Arg(64)->Arg(256);

void
BM_RmatGeneration(benchmark::State &state)
{
    const auto scale = static_cast<uint32_t>(state.range(0));
    const graph::EdgeId edges = (graph::EdgeId{1} << scale) * 8;
    for (auto _ : state) {
        auto coo =
            graph::generateRmat(scale, edges, graph::rmatSkewed(), 5);
        benchmark::DoNotOptimize(coo.numEdges());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(edges));
}
BENCHMARK(BM_RmatGeneration)->Arg(12)->Arg(16);

void
BM_Normalization(benchmark::State &state)
{
    const auto scale = static_cast<uint32_t>(state.range(0));
    auto coo = graph::generateRmat(
        scale, (graph::EdgeId{1} << scale) * 8, graph::rmatSkewed(), 5);
    for (auto _ : state) {
        auto csr = graph::normalizedAdjacency(coo);
        benchmark::DoNotOptimize(csr.numEdges());
    }
}
BENCHMARK(BM_Normalization)->Arg(12)->Arg(14);

} // namespace
