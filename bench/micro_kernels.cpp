/**
 * @file
 * Google-benchmark microbenchmarks for the functional host kernels:
 * SpMM variants (reference / vertex / edge / NNZ-balanced / tiled),
 * dense GEMM (packed SIMD vs the previous blocked scalar loop), the
 * fused SpMM->GEMM layer, graph generation and normalisation. These
 * measure real wall-clock throughput of the library's executable
 * kernels on this machine (as opposed to the modelled platforms of
 * the figure benches).
 *
 * Every compute bench reports FLOPS (measured) next to roofline_FLOPS
 * — the src/xeon analytical model evaluated for a single core of THIS
 * host — so the gap between achieved and model-predicted throughput
 * is visible in one row (see EXPERIMENTS.md for the walkthrough).
 *
 * The binary refuses to be quoted carelessly: when compiled without
 * NDEBUG (asserts on, no meaningful timings) it prints a loud banner
 * and tags the benchmark context, so results files recorded from a
 * debug build are self-incriminating.
 */
#include <benchmark/benchmark.h>

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "kernels/fused_gcn.hpp"
#include "kernels/simd.hpp"
#include "kernels/spmm.hpp"
#include "kernels/tiled_spmm.hpp"
#include "tensor/dense_mm.hpp"
#include "xeon/config.hpp"
#include "xeon/timing.hpp"

namespace {

using namespace pgcn;

graph::Csr
benchGraph(uint32_t scale)
{
    return graph::normalizedAdjacency(graph::generateRmat(
        scale, (graph::EdgeId{1} << scale) * 8, graph::rmatSkewed(), 3));
}

/**
 * The src/xeon analytical model re-parameterised for one core of this
 * host: single socket/core/thread, no framework overhead (these are
 * raw kernels, not a framework), bandwidth capped at what one thread
 * can extract. This is the roofline the measured numbers are compared
 * against.
 */
xeon::XeonConfig
hostRoofline()
{
    xeon::XeonConfig cfg; // start from the paper machine
    cfg.sockets = 1;
    cfg.coresPerSocket = 1;
    cfg.hyperThreadsPerCore = 1;
    cfg.clockGhz = 2.7;
    cfg.socketStreamBandwidthGBps = cfg.perThreadBandwidthGBps;
    cfg.frameworkOverheadNs = 0.0;
    return cfg;
}

/** Measured FLOPS plus the single-core roofline prediction. */
void
setFlopsCounters(benchmark::State &state, double flops_per_iter,
                 double model_ns)
{
    state.counters["FLOPS"] = benchmark::Counter(
        flops_per_iter, benchmark::Counter::kIsIterationInvariantRate,
        benchmark::Counter::kIs1000);
    if (model_ns > 0) {
        // flop / ns == GFLOP/s; scale to FLOP/s for unit parity with
        // the measured counter.
        state.counters["roofline_FLOPS"] = benchmark::Counter(
            flops_per_iter / model_ns * 1e9,
            benchmark::Counter::kDefaults, benchmark::Counter::kIs1000);
    }
}

void
setSpmmCounters(benchmark::State &state, const graph::Csr &csr,
                uint64_t k)
{
    const auto flops =
        2.0 * static_cast<double>(csr.numEdges()) * static_cast<double>(k);
    const model::SpmmWorkload w{csr.numVertices(), csr.numEdges(), k};
    setFlopsCounters(state, flops,
                     xeon::spmmTimeNs(hostRoofline(), w, 1,
                                      /*skewed=*/true));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(csr.numEdges()));
}

void
BM_SpmmReference(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    for (auto _ : state) {
        kernels::spmmReference(csr, h, out);
        benchmark::DoNotOptimize(out.data());
    }
    setSpmmCounters(state, csr, k);
}
BENCHMARK(BM_SpmmReference)
    ->Args({12, 32})
    ->Args({14, 32})
    ->Args({14, 128});

void
BM_SpmmVertexParallel(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    parallel::ThreadPool pool;
    for (auto _ : state) {
        kernels::spmmVertexParallel(csr, h, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    setSpmmCounters(state, csr, k);
}
BENCHMARK(BM_SpmmVertexParallel)
    ->Args({12, 32})
    ->Args({14, 32})
    ->Args({14, 128});

void
BM_SpmmEdgeParallel(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    parallel::ThreadPool pool;
    for (auto _ : state) {
        kernels::spmmEdgeParallel(csr, h, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    setSpmmCounters(state, csr, k);
}
BENCHMARK(BM_SpmmEdgeParallel)->Args({12, 32})->Args({14, 32});

void
BM_SpmmNnzBalanced(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    parallel::ThreadPool pool;
    for (auto _ : state) {
        kernels::spmmNnzBalanced(csr, h, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    setSpmmCounters(state, csr, k);
}
BENCHMARK(BM_SpmmNnzBalanced)
    ->Args({12, 32})
    ->Args({14, 32})
    ->Args({14, 128});

void
BM_SpmmTiled(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k = static_cast<uint64_t>(state.range(1));
    const auto budget_kib = static_cast<double>(state.range(2));
    tensor::DenseMatrix h(csr.numVertices(), k);
    h.fillRandom(1);
    tensor::DenseMatrix out;
    parallel::ThreadPool pool;
    kernels::TiledSpmm tiled(csr, k, budget_kib * 1024.0);
    for (auto _ : state) {
        tiled.apply(h, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    setSpmmCounters(state, csr, k);
    state.counters["tiles"] = static_cast<double>(tiled.numTiles());
}
BENCHMARK(BM_SpmmTiled)
    ->Args({14, 128, 1 << 20}) // one tile
    ->Args({14, 128, 256});    // many small tiles

void
BM_FusedGcnLayer(benchmark::State &state)
{
    const auto csr = benchGraph(static_cast<uint32_t>(state.range(0)));
    const auto k_in = static_cast<uint64_t>(state.range(1));
    const auto k_out = static_cast<uint64_t>(state.range(2));
    tensor::DenseMatrix h(csr.numVertices(), k_in);
    h.fillRandom(1);
    tensor::DenseMatrix w(k_in, k_out);
    w.fillRandom(2);
    tensor::DenseMatrix out;
    parallel::ThreadPool pool;
    for (auto _ : state) {
        kernels::fusedSpmmGemm(csr, h, w, out, pool,
                               /*apply_relu=*/true);
        benchmark::DoNotOptimize(out.data());
    }
    const double flops =
        2.0 * static_cast<double>(csr.numEdges()) *
            static_cast<double>(k_in) +
        2.0 * static_cast<double>(csr.numVertices()) *
            static_cast<double>(k_in) * static_cast<double>(k_out);
    const auto cfg = hostRoofline();
    const model::SpmmWorkload spmm_w{csr.numVertices(), csr.numEdges(),
                                     k_in};
    const double model_ns =
        xeon::spmmTimeNs(cfg, spmm_w, 1, /*skewed=*/true) +
        xeon::denseMmTimeNs(cfg, csr.numVertices(), k_in, k_out, 1);
    setFlopsCounters(state, flops, model_ns);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(csr.numEdges()));
}
BENCHMARK(BM_FusedGcnLayer)->Args({14, 128, 128})->Args({14, 128, 16});

void
setGemmCounters(benchmark::State &state, uint64_t n)
{
    const double flops = 2.0 * static_cast<double>(n) *
                         static_cast<double>(n) * static_cast<double>(n);
    setFlopsCounters(state, flops,
                     xeon::denseMmTimeNs(hostRoofline(), n, n, n, 1));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(2 * n * n * n));
}

void
BM_DenseMmBlocked(benchmark::State &state)
{
    const auto n = static_cast<uint64_t>(state.range(0));
    tensor::DenseMatrix a(n, n), b(n, n), out;
    a.fillRandom(1);
    b.fillRandom(2);
    for (auto _ : state) {
        tensor::denseMmBlocked(a, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    setGemmCounters(state, n);
}
BENCHMARK(BM_DenseMmBlocked)->Arg(64)->Arg(256);

void
BM_DenseMmBlockedScalar(benchmark::State &state)
{
    const auto n = static_cast<uint64_t>(state.range(0));
    tensor::DenseMatrix a(n, n), b(n, n), out;
    a.fillRandom(1);
    b.fillRandom(2);
    for (auto _ : state) {
        tensor::denseMmBlockedScalar(a, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    setGemmCounters(state, n);
}
BENCHMARK(BM_DenseMmBlockedScalar)->Arg(64)->Arg(256);

void
BM_RmatGeneration(benchmark::State &state)
{
    const auto scale = static_cast<uint32_t>(state.range(0));
    const graph::EdgeId edges = (graph::EdgeId{1} << scale) * 8;
    for (auto _ : state) {
        auto coo =
            graph::generateRmat(scale, edges, graph::rmatSkewed(), 5);
        benchmark::DoNotOptimize(coo.numEdges());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(edges));
}
BENCHMARK(BM_RmatGeneration)->Arg(12)->Arg(16);

void
BM_Normalization(benchmark::State &state)
{
    const auto scale = static_cast<uint32_t>(state.range(0));
    auto coo = graph::generateRmat(
        scale, (graph::EdgeId{1} << scale) * 8, graph::rmatSkewed(), 5);
    for (auto _ : state) {
        auto csr = graph::normalizedAdjacency(coo);
        benchmark::DoNotOptimize(csr.numEdges());
    }
}
BENCHMARK(BM_Normalization)->Arg(12)->Arg(14);

} // namespace

int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("build_assertions", "off (NDEBUG)");
#else
    std::fprintf(
        stderr,
        "\n"
        "*****************************************************\n"
        "*** WARNING: micro_kernels compiled WITHOUT NDEBUG **\n"
        "*** (asserts active). Timings below are NOT valid  **\n"
        "*** performance numbers. Rebuild with              **\n"
        "***   cmake -DCMAKE_BUILD_TYPE=Release             **\n"
        "*** before recording results.                      **\n"
        "*****************************************************\n"
        "\n");
    benchmark::AddCustomContext("build_assertions",
                                "ON -- DEBUG BUILD, DO NOT RECORD");
#endif
    benchmark::AddCustomContext(
        "simd_tier",
        pgcn::kernels::simd::tierName(pgcn::kernels::simd::activeTier()));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
