/**
 * @file
 * Shared helpers for the figure/table bench binaries: proxy-graph
 * construction at DES-friendly scale, sweep-model construction,
 * optional CSV output (pass an output path as argv[1]), a
 * simulator-throughput report (pass a JSON path as argv[2]) so perf
 * regressions in the discrete-event core show up in bench output, and
 * the shared telemetry flags (--trace=<path>, --metrics=<path>,
 * --sample-ns=<ns>, --trace-detail) that turn a figure run into a
 * Perfetto-loadable trace plus a metrics time series, the sweep
 * robustness flags (--checkpoint=<jsonl>, --resume,
 * --sweep-json=<path>) that make long sweeps restartable after a
 * crash with only the missing points recomputed, the parallel
 * sweep driver (--jobs N) that spreads independent sweep points
 * across worker threads while keeping the checkpoint and consolidated
 * JSON byte-identical to a serial run (see parallel/sweep_runner.hpp),
 * the shared fault-injection spec (--faults=dram_drop=1e-5,... — one
 * parser for every sweep driver, see parseFaultSpec) with
 * --retries=N bounding in-process self-healing of transient failures,
 * and run provenance (--history=<jsonl>) that appends one RunManifest
 * line per bench invocation — git SHA, build flags, SIMD tier, NUMA
 * topology, config/graph digests, per-point metrics — which
 * tools/pgcn_report.py turns into scalability reports and regression
 * gates.
 */
#ifndef PGCN_BENCH_BENCH_UTIL_HPP
#define PGCN_BENCH_BENCH_UTIL_HPP

#include <algorithm>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <thread>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/manifest.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "core/gcn_config.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "kernels/simd.hpp"
#include "parallel/numa.hpp"
#include "parallel/sweep_runner.hpp"
#include "sim/fault.hpp"
#include "telemetry/model_bind.hpp"
#include "telemetry/session.hpp"

namespace pgcn::bench {

/**
 * Emit a finished table: aligned text to stdout, and CSV to
 * @p csv_path when non-empty.
 */
inline void
emit(const Table &table, const std::string &csv_path)
{
    table.print(std::cout);
    if (!csv_path.empty()) {
        table.writeCsv(csv_path);
        std::cout << "(csv written to " << csv_path << ")\n\n";
    }
}

/** argv[1] as CSV path, or empty. */
inline std::string
csvPathFromArgs(int argc, char **argv)
{
    return argc > 1 ? argv[1] : std::string{};
}

/** argv[2] as throughput-JSON path, or empty. */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    return argc > 2 ? argv[2] : std::string{};
}

/**
 * Parsed bench command line: the two positional outputs (table CSV,
 * throughput JSON) plus the shared telemetry flags.
 */
struct BenchArgs
{
    std::string benchName;   ///< basename of argv[0] (manifest key)
    std::string csvPath;     ///< positional 1: table CSV
    std::string jsonPath;    ///< positional 2: throughput JSON
    std::string tracePath;   ///< --trace=: Chrome-trace JSON
    std::string metricsPath; ///< --metrics=: time-series CSV
    double samplePeriodNs = 1000.0; ///< --sample-ns=: gauge period
    bool traceDetail = false; ///< --trace-detail: per-descriptor spans
    std::string checkpointPath; ///< --checkpoint=: sweep JSONL file
    bool resume = false; ///< --resume: reuse completed checkpoint points
    std::string sweepJsonPath;  ///< --sweep-json=: consolidated sweep JSON
    unsigned jobs = 1; ///< --jobs: sweep workers (0 = hw concurrency)
    /// --domains=: event domains each simulated point shards its
    /// machine into ("auto" = 0 = pick per point from the simulated
    /// core count and host concurrency). Output is bit-identical for
    /// any value and either domain mode (the CI smoke `cmp`s the
    /// sweep JSON across counts and modes); composes freely with
    /// --jobs (points in parallel × domains within a point).
    unsigned domains = 1;
    /// --domain-mode=sequenced|parallel|auto: how domains execute.
    /// sequenced = single-threaded barrier rotation (the oracle);
    /// parallel = one host thread per domain under the conservative
    /// lookahead bound (rejected when the config makes it illegal);
    /// auto = parallel whenever legal, sequenced otherwise.
    sim::DomainMode domainMode = sim::DomainMode::Sequenced;
    /// --model-only: skip host-kernel (wall-clock) points; record only
    /// analytic/DES model points. For sanitizer CI runs, where host
    /// timings are meaningless and slow.
    bool modelOnly = false;
    /// --history=: append one RunManifest JSONL line per invocation.
    std::string historyPath;
    /// --occupancy=: per-resource occupancy-timeline CSV (benches that
    /// attach a sim::MonitorHub, e.g. fig8).
    std::string occupancyPath;
    /// --no-monitors clears this: skip attaching span monitors even
    /// where the bench supports them (A/B runs, overhead checks).
    bool monitors = true;
    /// --faults=: base fault-injection config for every sweep point
    /// (see parseFaultSpec); unset = no injection.
    std::optional<sim::FaultConfig> faults;
    /// --retries=: in-process attempts per sweep point for transient
    /// failures (SweepOptions::pointAttempts).
    unsigned pointAttempts = 3;

    /** True when any telemetry output was asked for. */
    bool
    telemetryRequested() const
    {
        return !tracePath.empty() || !metricsPath.empty();
    }
};

/**
 * Parse a --faults= specification: comma-separated key=value pairs,
 * e.g. "dram_drop=1e-5,net_drop=1e-4,timeout_ns=500,max_retries=8".
 * One implementation shared by every sweep driver so the vocabulary
 * cannot drift between benches.
 *
 * Keys: seed, dram_jitter, service_jitter, net_jitter, dma_jitter,
 * dram_drop, net_drop, dma_drop, stuck_core, timeout_ns, backoff_ns,
 * max_retries, stuck_reset_ns.
 *
 * @throws ConfigError on an unknown key, a malformed pair, or a value
 *         FaultConfig::validate() rejects.
 */
inline sim::FaultConfig
parseFaultSpec(const std::string &spec)
{
    sim::FaultConfig cfg;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            PGCN_THROW(ConfigError, "--faults item '"
                                        << item << "' is not key=value");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        size_t used = 0;
        double v = 0.0;
        try {
            v = std::stod(value, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        if (used != value.size() || value.empty()) {
            PGCN_THROW(ConfigError, "--faults " << key << ": '" << value
                                                << "' is not a number");
        }
        if (key == "seed")
            cfg.seed = static_cast<uint64_t>(v);
        else if (key == "dram_jitter")
            cfg.dramLatencyJitter = v;
        else if (key == "service_jitter")
            cfg.serviceRateJitter = v;
        else if (key == "net_jitter")
            cfg.networkLatencyJitter = v;
        else if (key == "dma_jitter")
            cfg.dmaOverheadJitter = v;
        else if (key == "dram_drop")
            cfg.dramDropRate = v;
        else if (key == "net_drop")
            cfg.netDropRate = v;
        else if (key == "dma_drop")
            cfg.dmaDropRate = v;
        else if (key == "stuck_core")
            cfg.stuckCoreRate = v;
        else if (key == "timeout_ns")
            cfg.timeoutNs = v;
        else if (key == "backoff_ns")
            cfg.backoffNs = v;
        else if (key == "max_retries")
            cfg.maxRetries = static_cast<unsigned>(v);
        else if (key == "stuck_reset_ns")
            cfg.stuckResetNs = v;
        else {
            PGCN_THROW(ConfigError,
                       "--faults: unknown key '"
                           << key
                           << "' (known: seed, dram_jitter, "
                              "service_jitter, net_jitter, dma_jitter, "
                              "dram_drop, net_drop, dma_drop, "
                              "stuck_core, timeout_ns, backoff_ns, "
                              "max_retries, stuck_reset_ns)");
        }
    }
    // Per-field range validation (check::probability & friends) with
    // the same messages a programmatic misconfiguration would get.
    cfg.validate();
    return cfg;
}

/** Parse a --domains value: a count, or "auto" (= 0 sentinel). */
inline unsigned
parseDomainCount(const std::string &value)
{
    if (value == "auto")
        return 0;
    return static_cast<unsigned>(std::stoul(value));
}

/** Parse a --domain-mode value. @throws ConfigError on junk. */
inline sim::DomainMode
parseDomainMode(const std::string &value)
{
    if (value == "sequenced")
        return sim::DomainMode::Sequenced;
    if (value == "parallel")
        return sim::DomainMode::Parallel;
    if (value == "auto")
        return sim::DomainMode::Auto;
    PGCN_THROW(ConfigError, "--domain-mode: '"
                                << value
                                << "' is not sequenced|parallel|auto");
}

/** Manifest/report spelling of a DomainMode. */
inline const char *
domainModeName(sim::DomainMode mode)
{
    switch (mode) {
    case sim::DomainMode::Parallel:
        return "parallel";
    case sim::DomainMode::Auto:
        return "auto";
    case sim::DomainMode::Sequenced:
        break;
    }
    return "sequenced";
}

/**
 * Parse positionals + telemetry flags. Unknown --flags are reported
 * and skipped so stale CI invocations fail loudly in the log, not
 * silently misroute output.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    if (argc > 0 && argv[0] != nullptr) {
        const std::string self = argv[0];
        const size_t slash = self.find_last_of('/');
        args.benchName =
            slash == std::string::npos ? self : self.substr(slash + 1);
    }
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0) {
            args.tracePath = arg.substr(8);
        } else if (arg.rfind("--metrics=", 0) == 0) {
            args.metricsPath = arg.substr(10);
        } else if (arg.rfind("--sample-ns=", 0) == 0) {
            args.samplePeriodNs = std::stod(arg.substr(12));
        } else if (arg == "--trace-detail") {
            args.traceDetail = true;
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            args.checkpointPath = arg.substr(13);
        } else if (arg == "--resume") {
            args.resume = true;
        } else if (arg.rfind("--sweep-json=", 0) == 0) {
            args.sweepJsonPath = arg.substr(13);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            args.jobs = static_cast<unsigned>(std::stoul(arg.substr(7)));
        } else if (arg == "--jobs" && i + 1 < argc) {
            args.jobs = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg.rfind("--domains=", 0) == 0) {
            args.domains = parseDomainCount(arg.substr(10));
        } else if (arg == "--domains" && i + 1 < argc) {
            args.domains = parseDomainCount(argv[++i]);
        } else if (arg.rfind("--domain-mode=", 0) == 0) {
            args.domainMode = parseDomainMode(arg.substr(14));
        } else if (arg == "--domain-mode" && i + 1 < argc) {
            args.domainMode = parseDomainMode(argv[++i]);
        } else if (arg == "--model-only") {
            args.modelOnly = true;
        } else if (arg.rfind("--history=", 0) == 0) {
            args.historyPath = arg.substr(10);
        } else if (arg.rfind("--occupancy=", 0) == 0) {
            args.occupancyPath = arg.substr(12);
        } else if (arg == "--no-monitors") {
            args.monitors = false;
        } else if (arg.rfind("--faults=", 0) == 0) {
            args.faults = parseFaultSpec(arg.substr(9));
        } else if (arg.rfind("--retries=", 0) == 0) {
            args.pointAttempts =
                static_cast<unsigned>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown flag ignored: " << arg << "\n";
        } else if (positional == 0) {
            args.csvPath = arg;
            ++positional;
        } else if (positional == 1) {
            args.jsonPath = arg;
            ++positional;
        } else {
            std::cerr << "extra positional ignored: " << arg << "\n";
        }
    }
    return args;
}

/**
 * The sweep checkpoint per the parsed flags: a live JsonlCheckpoint
 * when --checkpoint= was given (loading completed points under
 * --resume), a disabled one otherwise.
 */
inline JsonlCheckpoint
makeCheckpoint(const BenchArgs &args)
{
    if (args.checkpointPath.empty()) {
        if (args.resume)
            std::cerr << "--resume ignored: no --checkpoint= given\n";
        return {};
    }
    JsonlCheckpoint ckpt(args.checkpointPath, args.resume);
    if (args.resume)
        std::cout << "(resuming from " << args.checkpointPath << ": "
                  << ckpt.size() << " points already completed)\n";
    return ckpt;
}

/** Write the consolidated sweep JSON when --sweep-json= was given. */
inline void
finishSweep(const JsonlCheckpoint &ckpt, const BenchArgs &args)
{
    if (args.sweepJsonPath.empty())
        return;
    if (!ckpt.enabled()) {
        std::cerr << "--sweep-json ignored: no --checkpoint= given\n";
        return;
    }
    ckpt.writeFinalJson(args.sweepJsonPath);
    std::cout << "(sweep json written to " << args.sweepJsonPath << ", "
              << ckpt.size() << " points)\n";
}

/**
 * Top-level bench harness: run @p body, converting escaped typed
 * errors (and anything else derived from std::exception) into a clean
 * diagnostic and a non-zero exit instead of std::terminate.
 */
template <typename Fn>
inline int
runBenchMain(Fn &&body)
{
    try {
        if constexpr (std::is_void_v<std::invoke_result_t<Fn &>>) {
            body();
            return 0;
        } else {
            return body();
        }
    } catch (const Error &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "fatal (unexpected): " << e.what() << "\n";
        return 1;
    }
}

/**
 * A telemetry session per the parsed flags, or null when none was
 * requested (the null pointer keeps every simulation hook disabled).
 */
inline std::unique_ptr<telemetry::Session>
makeSession(const BenchArgs &args)
{
    if (!args.telemetryRequested())
        return nullptr;
    telemetry::Session::Options opt;
    opt.samplePeriodNs = args.samplePeriodNs;
    opt.detailedTrace = args.traceDetail;
    return std::make_unique<telemetry::Session>(opt);
}

/** Write the session's requested outputs (trace JSON, metrics CSV). */
inline void
finishSession(const telemetry::Session &session, const BenchArgs &args)
{
    if (!args.tracePath.empty()) {
        session.writeTrace(args.tracePath);
        std::cout << "(trace written to " << args.tracePath << ", "
                  << session.trace().eventCount() << " events)\n";
    }
    if (!args.metricsPath.empty()) {
        session.writeMetricsCsv(args.metricsPath);
        std::cout << "(metrics csv written to " << args.metricsPath
                  << ")\n";
    }
}

/**
 * Accumulates simulator (host) throughput over the DES runs a bench
 * binary performs. Feed it every run's stats with add(); print() a
 * one-line summary, and writeJson() the aggregate for CI tracking.
 */
class SimThroughput
{
  public:
    /** Fold in one simulated run (any *RunStats with the sim fields). */
    template <typename Stats>
    void
    add(const Stats &stats)
    {
        events_ += stats.simEvents;
        wallSeconds_ += stats.wallSeconds;
        peakQueueDepth_ =
            std::max<uint64_t>(peakQueueDepth_, stats.peakEventQueueDepth);
        ++runs_;
    }

    /** DES events dispatched across all recorded runs. */
    uint64_t events() const { return events_; }

    /** Host wall-clock spent inside Engine::run() (seconds). */
    double wallSeconds() const { return wallSeconds_; }

    /** Deepest pending-event queue seen in any run. */
    uint64_t peakQueueDepth() const { return peakQueueDepth_; }

    /** Simulated runs recorded so far. */
    uint64_t runs() const { return runs_; }

    /** Aggregate simulator throughput in events per second. */
    double
    eventsPerSec() const
    {
        return wallSeconds_ > 0.0
                   ? static_cast<double>(events_) / wallSeconds_
                   : 0.0;
    }

    /** One-line human-readable summary. */
    void
    print(std::ostream &os) const
    {
        os << "simulator throughput: "
           << eventsPerSec() / 1e6 << " M events/s ("
           << events_ << " events, " << wallSeconds_ << " s, "
           << runs_ << " runs, peak queue depth "
           << peakQueueDepth_ << ")\n";
    }

    /** Write the aggregate as a flat JSON object to @p path. */
    void
    writeJson(const std::string &path) const
    {
        std::ofstream out(path);
        out << "{\n"
            << "  \"events\": " << events_ << ",\n"
            << "  \"wall_seconds\": " << wallSeconds_ << ",\n"
            << "  \"events_per_sec\": " << eventsPerSec() << ",\n"
            << "  \"peak_queue_depth\": " << peakQueueDepth_ << ",\n"
            << "  \"runs\": " << runs_ << "\n"
            << "}\n";
        std::cout << "(throughput json written to " << path << ")\n";
    }

    /** Fold another accumulator in (per-worker totals -> grand total). */
    void
    merge(const SimThroughput &other)
    {
        events_ += other.events_;
        wallSeconds_ += other.wallSeconds_;
        peakQueueDepth_ =
            std::max(peakQueueDepth_, other.peakQueueDepth_);
        runs_ += other.runs_;
    }

  private:
    uint64_t events_ = 0;
    double wallSeconds_ = 0.0;
    uint64_t peakQueueDepth_ = 0;
    uint64_t runs_ = 0;
};

/**
 * True for metric names that measure the host, not the simulation.
 * These are excluded from the manifest's counter digest so that the
 * digest agrees across machines whenever the simulated results do.
 */
inline bool
hostDependentMetric(const std::string &name)
{
    return name.find("wall") != std::string::npos ||
           name.find("per_sec") != std::string::npos ||
           name.find("host") != std::string::npos;
}

/**
 * Structural digest of a CSR graph (hex) for RunManifest::graphHash:
 * vertex/edge counts plus the row-offset and column arrays. Values
 * are omitted — normalisation weights are a function of structure.
 */
inline std::string
graphDigest(const graph::Csr &g)
{
    uint64_t h = fnv1a64(static_cast<uint64_t>(g.numVertices()));
    h = fnv1a64(static_cast<uint64_t>(g.numEdges()), h);
    h = fnv1a64(g.rowOffsets().data(),
                g.rowOffsets().size() * sizeof(g.rowOffsets()[0]), h);
    h = fnv1a64(g.cols().data(), g.cols().size() * sizeof(g.cols()[0]), h);
    return hashHex(h);
}

/**
 * The shared sweep driver every figure/ablation bench runs on: one
 * object wrapping the checkpoint, the parallel sweep runner, the
 * telemetry session and the per-worker simulator-throughput
 * accumulators, all configured from the parsed BenchArgs. Flow:
 *
 *   bench::SweepDriver driver(args);
 *   const size_t idx = driver.add("middle/cores=4",
 *       [&](const parallel::SweepContext &ctx) {
 *           const auto sim = simulateSpmm(csr, k, cfg,
 *                                         SpmmAlgorithm::Dma,
 *                                         ctx.session, ctx.controls);
 *           driver.throughput(ctx).add(sim);
 *           return JsonlCheckpoint::Values{{"gflops", sim.gflops}};
 *       });
 *   driver.run();          // executes all points, --jobs N wide
 *   ...driver.result(idx)  // render tables on the calling thread
 *   driver.finish();       // throughput + sweep JSON + trace/metrics
 *
 * Compute callbacks run on pool workers: they must only touch
 * worker-local state (the SweepContext's session/controls, the
 * ctx-indexed throughput accumulator) and read-only shared inputs
 * (graphs, configs captured by value). Everything order-sensitive —
 * checkpoint commits, error reports, table rendering, telemetry
 * merging — happens in submission order on the calling thread, which
 * is what keeps --jobs N output byte-identical to --jobs 1.
 */
class SweepDriver
{
  public:
    explicit SweepDriver(const BenchArgs &args)
        : args_(args),
          session_(makeSession(args)),
          ckpt_(makeCheckpoint(args)),
          runner_(makeOptions(args)),
          throughput_(runner_.jobs())
    {
        if (args.jobs != 1)
            std::cout << "(sweep running " << runner_.jobs()
                      << " points wide)\n";
        // Calling-thread model evaluations (calibration runs, table
        // rendering that re-queries the models) record into the bench
        // session; pool workers re-bind to their own sessions.
        if (session_)
            telemetry::bindModelTelemetry(&session_->registry());
    }

    /** Enqueue one keyed point; returns its submission index. */
    size_t
    add(const std::string &key, parallel::SweepRunner::Compute compute)
    {
        keys_.push_back(key);
        return runner_.add(key, std::move(compute));
    }

    /** Record the input graph's structural digest for the manifest. */
    void
    noteGraph(const graph::Csr &g)
    {
        manifestGraphHash_ = graphDigest(g);
    }

    /** Record the synthetic-input RNG seed for the manifest. */
    void noteSeed(uint64_t seed) { manifestSeed_ = seed; }

    /** Attach a free-form key/value annotation to the manifest. */
    void
    annotate(const std::string &key, const std::string &value)
    {
        manifestExtra_.emplace_back(key, value);
    }

    /** The executing worker's throughput accumulator (race-free). */
    SimThroughput &
    throughput(const parallel::SweepContext &ctx)
    {
        return throughput_[ctx.worker];
    }

    /**
     * The bench's own session (telemetry flags given, else null) for
     * simulations running outside the sweep, e.g. a calibration run
     * on the calling thread. Worker traces merge into it at finish().
     */
    telemetry::Session *session() { return session_.get(); }

    /** Calling-thread throughput accumulator for out-of-sweep runs. */
    SimThroughput &throughput() { return throughput_[0]; }

    /** Execute every enqueued point; report failures like the serial
     *  driver did, in submission order. */
    void
    run()
    {
        outcome_ = runner_.run(ckpt_);
        if (outcome_.reused > 0)
            std::cout << "(resume: " << outcome_.reused << " of "
                      << runner_.size() << " points reused)\n";
        if (outcome_.quarantined > 0)
            std::cout << "(quarantine: " << outcome_.quarantined
                      << " poisoned point(s) skipped, not re-run)\n";
        if (outcome_.retried > 0)
            std::cout << "(self-heal: " << outcome_.retried
                      << " transient in-process retr"
                      << (outcome_.retried == 1 ? "y" : "ies") << ")\n";
        for (const auto &err : outcome_.errors)
            std::cerr << "sweep point '" << err.key
                      << "' failed: " << err.message
                      << "\n  (point skipped; sweep continues)\n";
    }

    /** Point @p index's values, or null if it failed. */
    const JsonlCheckpoint::Values *
    result(size_t index) const
    {
        return outcome_.results[index] ? &*outcome_.results[index]
                                       : nullptr;
    }

    /** Points that failed with a captured typed error. */
    size_t failed() const { return outcome_.failed; }

    /**
     * Wrap up after rendering: print/write aggregate simulator
     * throughput (when any DES ran), the consolidated sweep JSON, and
     * the merged trace/metrics outputs.
     */
    void
    finish()
    {
        SimThroughput total;
        for (const SimThroughput &t : throughput_)
            total.merge(t);
        if (total.runs() > 0)
            total.print(std::cout);
        if (!args_.jsonPath.empty())
            total.writeJson(args_.jsonPath);
        finishSweep(ckpt_, args_);
        if (session_) {
            runner_.mergeTelemetryInto(*session_);
            finishSession(*session_, args_);
            telemetry::bindModelTelemetry(nullptr);
        }
        if (!args_.historyPath.empty())
            emitManifest(total);
    }

  private:
    /**
     * Append one RunManifest line to --history=. Metrics are every
     * point's checkpoint values keyed "pointKey/metric"; the counter
     * digest folds only host-independent metrics so bit-identical
     * simulations produce the same digest on any machine.
     */
    void
    emitManifest(const SimThroughput &total)
    {
        RunManifest m;
        m.bench = args_.benchName;
        m.timestamp = nowIso8601();
        m.gitSha = version::kGitSha;
        m.gitDirty = version::kGitDirty;
        m.buildType = version::kBuildType;
        m.compiler = version::kCompiler;
#ifdef PGCN_NO_TELEMETRY
        m.telemetryCompiled = false;
#endif
        m.simdTier =
            kernels::simd::tierName(kernels::simd::activeTier());
        m.numaNodes = parallel::detectNumaTopology().numNodes();
        m.hostThreads = std::thread::hardware_concurrency();
        m.graphHash = manifestGraphHash_;
        m.seed = manifestSeed_;

        uint64_t cfg_hash = kFnv1aOffset;
        for (const std::string &key : keys_)
            cfg_hash = fnv1a64(key, cfg_hash);
        cfg_hash = fnv1a64(uint64_t{args_.modelOnly}, cfg_hash);
        m.configHash = hashHex(cfg_hash);

        uint64_t digest = kFnv1aOffset;
        for (size_t i = 0; i < keys_.size(); ++i) {
            const JsonlCheckpoint::Values *vals = result(i);
            if (vals == nullptr)
                continue;
            for (const auto &[name, value] : *vals) {
                m.metrics.emplace_back(keys_[i] + "/" + name, value);
                if (!hostDependentMetric(name)) {
                    digest = fnv1a64(keys_[i] + "/" + name, digest);
                    digest = fnv1a64(value, digest);
                }
            }
        }
        m.counterDigest = hashHex(digest);

        if (total.runs() > 0) {
            m.metrics.emplace_back("sim/events",
                                   static_cast<double>(total.events()));
            m.metrics.emplace_back("sim/events_per_sec",
                                   total.eventsPerSec());
            m.metrics.emplace_back("sim/wall_seconds",
                                   total.wallSeconds());
        }
        // Host-execution provenance only: jobs/domains shape wall
        // clock, never results, so they belong in the manifest (and
        // pgcn_report's provenance line) but NOT in the sweep JSON —
        // the cross-count `cmp` smoke depends on that.
        m.extra.emplace_back("jobs", std::to_string(runner_.jobs()));
        m.extra.emplace_back("domains", args_.domains == 0
                                            ? std::string("auto")
                                            : std::to_string(args_.domains));
        m.extra.emplace_back("domain_mode",
                             domainModeName(args_.domainMode));
        for (const auto &kv : manifestExtra_)
            m.extra.push_back(kv);

        if (m.appendTo(args_.historyPath))
            std::cout << "(run manifest appended to " << args_.historyPath
                      << ")\n";
    }

    static parallel::SweepOptions
    makeOptions(const BenchArgs &args)
    {
        parallel::SweepOptions opt;
        opt.jobs = args.jobs;
        opt.telemetry = args.telemetryRequested();
        opt.sessionOptions.samplePeriodNs = args.samplePeriodNs;
        opt.sessionOptions.detailedTrace = args.traceDetail;
        opt.faults = args.faults;
        opt.pointAttempts = args.pointAttempts;
        opt.domains = args.domains;
        opt.domainMode = args.domainMode;
        return opt;
    }

    BenchArgs args_;
    std::unique_ptr<telemetry::Session> session_;
    JsonlCheckpoint ckpt_;
    parallel::SweepRunner runner_;
    std::vector<SimThroughput> throughput_;
    parallel::SweepRunner::Outcome outcome_;
    std::vector<std::string> keys_;
    std::string manifestGraphHash_;
    uint64_t manifestSeed_ = 0;
    std::vector<std::pair<std::string, std::string>> manifestExtra_;
};

/**
 * A DES-friendly RMAT proxy with average degree ~16, the paper's
 * down-scaled-simulation methodology [18].
 *
 * @param scale log2 vertex count.
 * @param avg_degree Pre-normalisation average degree.
 */
inline graph::Csr
desProxy(uint32_t scale, uint32_t avg_degree = 16, uint64_t seed = 42)
{
    const auto edges =
        (graph::EdgeId{1} << scale) * avg_degree;
    return graph::normalizedAdjacency(
        graph::generateRmat(scale, edges, graph::rmatSkewed(), seed));
}

/** The paper's 3-layer GCN with hidden dimension @p hidden. */
inline core::GcnModelConfig
sweepModel(const graph::DatasetInfo &dataset, uint64_t hidden)
{
    core::GcnModelConfig cfg;
    cfg.inputDim = dataset.inputDim;
    cfg.hiddenDim = hidden;
    cfg.outputDim = dataset.numClasses;
    cfg.numLayers = 3;
    return cfg;
}

} // namespace pgcn::bench

#endif // PGCN_BENCH_BENCH_UTIL_HPP
