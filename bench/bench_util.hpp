/**
 * @file
 * Shared helpers for the figure/table bench binaries: proxy-graph
 * construction at DES-friendly scale, sweep-model construction, and
 * optional CSV output (pass an output path as argv[1]).
 */
#ifndef PGCN_BENCH_BENCH_UTIL_HPP
#define PGCN_BENCH_BENCH_UTIL_HPP

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/gcn_config.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"

namespace pgcn::bench {

/**
 * Emit a finished table: aligned text to stdout, and CSV to
 * @p csv_path when non-empty.
 */
inline void
emit(const Table &table, const std::string &csv_path)
{
    table.print(std::cout);
    if (!csv_path.empty()) {
        table.writeCsv(csv_path);
        std::cout << "(csv written to " << csv_path << ")\n\n";
    }
}

/** argv[1] as CSV path, or empty. */
inline std::string
csvPathFromArgs(int argc, char **argv)
{
    return argc > 1 ? argv[1] : std::string{};
}

/**
 * A DES-friendly RMAT proxy with average degree ~16, the paper's
 * down-scaled-simulation methodology [18].
 *
 * @param scale log2 vertex count.
 * @param avg_degree Pre-normalisation average degree.
 */
inline graph::Csr
desProxy(uint32_t scale, uint32_t avg_degree = 16, uint64_t seed = 42)
{
    const auto edges =
        (graph::EdgeId{1} << scale) * avg_degree;
    return graph::normalizedAdjacency(
        graph::generateRmat(scale, edges, graph::rmatSkewed(), seed));
}

/** The paper's 3-layer GCN with hidden dimension @p hidden. */
inline core::GcnModelConfig
sweepModel(const graph::DatasetInfo &dataset, uint64_t hidden)
{
    core::GcnModelConfig cfg;
    cfg.inputDim = dataset.inputDim;
    cfg.hiddenDim = hidden;
    cfg.outputDim = dataset.numClasses;
    cfg.numLayers = 3;
    return cfg;
}

} // namespace pgcn::bench

#endif // PGCN_BENCH_BENCH_UTIL_HPP
