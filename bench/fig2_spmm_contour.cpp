/**
 * @file
 * Fig. 2: the relationship between graph scale |V|, adjacency density
 * and the fraction of CPU execution time a K=256 GCN layer spends in
 * SpMM. The paper derives its contours from RMAT sweeps on the Xeon;
 * we evaluate the calibrated Xeon layer model over the same
 * (scale, density) grid and annotate the OGB datasets' coordinates.
 *
 * Expected shape: the SpMM fraction grows along both axes — with
 * density at fixed scale (non-zeros scale with density while Dense MM
 * is fixed) and with scale at fixed density (|E| = delta |V|^2 grows
 * quadratically, Dense MM linearly).
 */
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "xeon/timing.hpp"

using namespace pgcn;

namespace {

/** SpMM fraction of one K=256 GCN layer (SpMM + Dense MM). */
double
spmmFraction(const xeon::XeonConfig &cfg, uint64_t v, uint64_t e)
{
    constexpr unsigned kDim = 256;
    constexpr unsigned kThreads = 80;
    const double spmm = xeon::spmmTimeNs(
        cfg, model::SpmmWorkload{v, e, kDim}, kThreads, true);
    const double dense =
        xeon::denseMmTimeNs(cfg, v, kDim, kDim, kThreads);
    return spmm / (spmm + dense);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string csv = bench::csvPathFromArgs(argc, argv);
    const auto cfg = xeon::XeonConfig::platinum8380();

    // Density grid 10^-6 .. 10^-1, scale grid 2^10 .. 2^24.
    std::vector<double> densities;
    for (double d = 1e-6; d <= 1e-1 * 1.001; d *= 10.0)
        densities.push_back(d);

    std::vector<std::string> headers{"|V|"};
    for (double d : densities) {
        std::ostringstream oss;
        oss << "d=" << d;
        headers.push_back(oss.str());
    }

    Table grid("Fig 2: %time in SpMM for a K=256 GCN layer on CPU",
               headers);
    for (uint32_t s = 10; s <= 24; s += 2) {
        const uint64_t v = uint64_t{1} << s;
        grid.row().cell("2^" + std::to_string(s));
        for (double d : densities) {
            const double e_real = d * static_cast<double>(v) *
                                  static_cast<double>(v);
            if (e_real < 1.0 || e_real > 1e12) {
                grid.cell("-");
                continue;
            }
            grid.cell(100.0 * spmmFraction(
                                  cfg, v,
                                  static_cast<uint64_t>(e_real)),
                      1);
        }
    }
    bench::emit(grid, csv);

    Table annot("OGB dataset coordinates on the Fig 2 plane",
                {"name", "|V|", "density", "%SpMM (K=256 layer)"});
    for (const auto &d : graph::ogbDatasets()) {
        const double density =
            static_cast<double>(d.numEdges) /
            (static_cast<double>(d.numVertices) *
             static_cast<double>(d.numVertices));
        annot.row()
            .cell(d.name)
            .cell(static_cast<uint64_t>(d.numVertices))
            .cell(density, 9)
            .cell(100.0 * spmmFraction(cfg, d.numVertices, d.numEdges),
                  1);
    }
    annot.print(std::cout);

    std::cout << "Reading: arxiv/collab sit below the 60% contour; "
                 "proteins/products/ddi sit high — the paper's "
                 "prediction of which workloads benefit from PIUMA.\n";
    return 0;
}
