/**
 * @file
 * Fig. 2: the relationship between graph scale |V|, adjacency density
 * and the fraction of CPU execution time a K=256 GCN layer spends in
 * SpMM. The paper derives its contours from RMAT sweeps on the Xeon;
 * we evaluate the calibrated Xeon layer model over the same
 * (scale, density) grid and annotate the OGB datasets' coordinates.
 *
 * Expected shape: the SpMM fraction grows along both axes — with
 * density at fixed scale (non-zeros scale with density while Dense MM
 * is fixed) and with scale at fixed density (|E| = delta |V|^2 grows
 * quadratically, Dense MM linearly).
 *
 * The grid evaluation runs on the shared sweep driver (--jobs N /
 * --checkpoint= / --resume / --sweep-json=), matching the DES benches'
 * command line.
 */
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "xeon/timing.hpp"

using namespace pgcn;

namespace {

/** SpMM fraction of one K=256 GCN layer (SpMM + Dense MM). */
double
spmmFraction(const xeon::XeonConfig &cfg, uint64_t v, uint64_t e)
{
    constexpr unsigned kDim = 256;
    constexpr unsigned kThreads = 80;
    const double spmm = xeon::spmmTimeNs(
        cfg, model::SpmmWorkload{v, e, kDim}, kThreads, true);
    const double dense =
        xeon::denseMmTimeNs(cfg, v, kDim, kDim, kThreads);
    return spmm / (spmm + dense);
}

int
benchMain(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const std::string &csv = args.csvPath;
    bench::SweepDriver driver(args);
    const auto cfg = xeon::XeonConfig::platinum8380();

    // Density grid 10^-6 .. 10^-1, scale grid 2^10 .. 2^24.
    std::vector<double> densities;
    for (double d = 1e-6; d <= 1e-1 * 1.001; d *= 10.0)
        densities.push_back(d);

    std::vector<std::string> headers{"|V|"};
    for (double d : densities) {
        std::ostringstream oss;
        oss << "d=" << d;
        headers.push_back(oss.str());
    }

    // Enqueue every in-range grid cell, then the OGB annotations.
    struct Cell
    {
        size_t idx;
        bool inRange;
    };
    std::vector<std::vector<Cell>> cells;
    for (uint32_t s = 10; s <= 24; s += 2) {
        const uint64_t v = uint64_t{1} << s;
        cells.emplace_back();
        for (double d : densities) {
            const double e_real = d * static_cast<double>(v) *
                                  static_cast<double>(v);
            if (e_real < 1.0 || e_real > 1e12) {
                cells.back().push_back(Cell{0, false});
                continue;
            }
            const auto e = static_cast<uint64_t>(e_real);
            std::ostringstream key;
            key << "grid/scale=" << s << "/d=" << d;
            const size_t idx = driver.add(
                key.str(),
                [&cfg, v, e](const parallel::SweepContext &) {
                    return JsonlCheckpoint::Values{
                        {"pct_spmm",
                         100.0 * spmmFraction(cfg, v, e)}};
                });
            cells.back().push_back(Cell{idx, true});
        }
    }

    const auto &ogb = graph::ogbDatasets();
    std::vector<size_t> annot_idx;
    for (const auto &d : ogb) {
        annot_idx.push_back(driver.add(
            "ogb/" + std::string(d.name),
            [&cfg, &d](const parallel::SweepContext &) {
                return JsonlCheckpoint::Values{
                    {"pct_spmm", 100.0 * spmmFraction(cfg, d.numVertices,
                                                      d.numEdges)}};
            }));
    }

    driver.run();

    Table grid("Fig 2: %time in SpMM for a K=256 GCN layer on CPU",
               headers);
    size_t row = 0;
    for (uint32_t s = 10; s <= 24; s += 2, ++row) {
        grid.row().cell("2^" + std::to_string(s));
        for (size_t col = 0; col < densities.size(); ++col) {
            const Cell &cell = cells[row][col];
            const auto *v = cell.inRange ? driver.result(cell.idx)
                                         : nullptr;
            if (!v) {
                grid.cell("-");
                continue;
            }
            grid.cell(v->at("pct_spmm"), 1);
        }
    }
    bench::emit(grid, csv);

    Table annot("OGB dataset coordinates on the Fig 2 plane",
                {"name", "|V|", "density", "%SpMM (K=256 layer)"});
    for (size_t i = 0; i < ogb.size(); ++i) {
        const auto &d = ogb[i];
        const auto *v = driver.result(annot_idx[i]);
        if (!v)
            continue;
        const double density =
            static_cast<double>(d.numEdges) /
            (static_cast<double>(d.numVertices) *
             static_cast<double>(d.numVertices));
        annot.row()
            .cell(d.name)
            .cell(static_cast<uint64_t>(d.numVertices))
            .cell(density, 9)
            .cell(v->at("pct_spmm"), 1);
    }
    annot.print(std::cout);

    std::cout << "Reading: arxiv/collab sit below the 60% contour; "
                 "proteins/products/ddi sit high — the paper's "
                 "prediction of which workloads benefit from PIUMA.\n";
    driver.finish();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBenchMain([&] { return benchMain(argc, argv); });
}
