#include "piuma/memory.hpp"

#include <algorithm>

namespace pgcn::piuma {

MemorySystem::MemorySystem(sim::Engine &engine, const PiumaConfig &cfg)
    : engine_(engine), cfg_(cfg)
{
    cfg.validate();
    slices_.reserve(cfg.numCores);
    netPorts_.reserve(cfg.numCores);
    dieOf_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        slices_.emplace_back(engine, cfg.effectiveSliceBandwidth());
        netPorts_.emplace_back(engine, cfg.netPortBandwidthGBps);
        dieOf_.push_back(c / cfg.coresPerDie);
    }
    dramLatencyNs_ = cfg.effectiveDramLatencyNs();
    sliceRate_ = cfg.effectiveSliceBandwidth();
    portRate_ = cfg.netPortBandwidthGBps;
}

double
MemorySystem::averageSliceUtilization(sim::SimTime end) const
{
    if (end <= 0.0 || slices_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : slices_)
        sum += s.utilization(end);
    return sum / static_cast<double>(slices_.size());
}

double
MemorySystem::maxSliceUtilization(sim::SimTime end) const
{
    double worst = 0.0;
    for (const auto &s : slices_)
        worst = std::max(worst, s.utilization(end));
    return worst;
}

double
MemorySystem::averageNetworkUtilization(sim::SimTime end) const
{
    if (end <= 0.0 || netPorts_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : netPorts_)
        sum += p.utilization(end);
    return sum / static_cast<double>(netPorts_.size());
}

} // namespace pgcn::piuma
