#include "piuma/memory.hpp"

#include <algorithm>
#include <string>

#include "common/stats.hpp"
#include "telemetry/session.hpp"

namespace pgcn::piuma {

MemorySystem::MemorySystem(sim::Engine &engine, const PiumaConfig &cfg)
    : engine_(engine), cfg_(cfg)
{
    cfg.validate();
    slices_.reserve(cfg.numCores);
    netPorts_.reserve(cfg.numCores);
    dieOf_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        slices_.emplace_back(engine, cfg.effectiveSliceBandwidth());
        netPorts_.emplace_back(engine, cfg.netPortBandwidthGBps);
        dieOf_.push_back(c / cfg.coresPerDie);
    }
    dramLatencyNs_ = cfg.effectiveDramLatencyNs();
    sliceRate_ = cfg.effectiveSliceBandwidth();
    portRate_ = cfg.netPortBandwidthGBps;
}

double
MemorySystem::averageSliceUtilization(sim::SimTime end) const
{
    if (end <= 0.0 || slices_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : slices_)
        sum += s.utilization(end);
    return sum / static_cast<double>(slices_.size());
}

double
MemorySystem::maxSliceUtilization(sim::SimTime end) const
{
    double worst = 0.0;
    for (const auto &s : slices_)
        worst = std::max(worst, s.utilization(end));
    return worst;
}

void
MemorySystem::attachTelemetry(telemetry::Session *session)
{
    if (session == nullptr)
        return;
    telemetry::Registry &reg = session->registry();
    tlmReads_ = &reg.counter("piuma.mem.reads");
    tlmWrites_ = &reg.counter("piuma.mem.writes");
    tlmRemote_ = &reg.counter("piuma.mem.remote_accesses");
    // Covers the uncongested case (DRAM latency + a network hop) up
    // through heavy queueing; worse outliers land in the overflow bin
    // and still shape p99 via interpolation against the observed max.
    tlmLatency_ = &reg.histogram("piuma.mem.access_latency_ns",
                                 0.0, 2000.0, 100);

    // Per-slice DRAM utilisation timelines: busy-ns is cumulative, so
    // a Rate gauge turns it into utilisation over each sample window.
    for (size_t i = 0; i < slices_.size(); ++i) {
        reg.registerGauge(
            "piuma.mem.slice" + std::to_string(i) + ".util",
            telemetry::GaugeKind::Rate,
            [this, i] { return sliceBusyNs(i); });
    }
    reg.registerGauge("piuma.mem.read_gbps", telemetry::GaugeKind::Rate,
                      [this] { return bytesRead_; });
    reg.registerGauge("piuma.mem.write_gbps", telemetry::GaugeKind::Rate,
                      [this] { return bytesWritten_; });
    reg.registerGauge("piuma.net.port_util", telemetry::GaugeKind::Rate,
                      [this] {
                          double sum = 0.0;
                          for (size_t i = 0; i < netPorts_.size(); ++i)
                              sum += portBusyNs(i);
                          return sum / static_cast<double>(
                                           netPorts_.size());
                      });
}

void
MemorySystem::noteAccess(telemetry::Counter &op, bool local,
                         const MemoryAccess &acc)
{
    op.increment();
    if (!local)
        tlmRemote_->increment();
    tlmLatency_->add(acc.responseAt - engine_.now());
}

MemoryAccess
MemorySystem::accessWithRecovery(unsigned requester_core, unsigned slice,
                                 double bytes, sim::SimTime slice_dur,
                                 sim::SimTime port_dur, bool pipelined,
                                 double net_lat, double dram_lat)
{
    // The drop schedule for one request is fully determined at issue
    // time (the Bernoulli stream is consumed in model order), so the
    // entire recovery chain can be laid out synchronously: each
    // attempt reserves bandwidth at its future issue time, and the
    // caller co_awaits one final responseAt exactly as on the clean
    // path. A dropped attempt still consumed slice (and port)
    // bandwidth — the response was lost *after* service — which is
    // what makes retry amplification a bandwidth story, not just a
    // latency story.
    const bool remote = requester_core != slice;
    const sim::FaultConfig &fc = faults_->config();
    sim::SimTime issue = engine_.now();
    MemoryAccess result{};
    for (uint32_t attempt = 0;; ++attempt) {
        const sim::SimTime start = issue + (pipelined ? 0.0 : net_lat);
        sim::SimTime service_done =
            slices_[slice].reserveFor(bytes, slice_dur, start);
        if (remote) {
            service_done = std::max(
                service_done,
                netPorts_[slice].reserveFor(bytes, port_dur, start));
        }
        if (!faults_->dropTransaction(remote)) {
            result.serviceDoneAt = service_done;
            result.responseAt = service_done + dram_lat + net_lat;
            return result;
        }
        // Response lost. The timeout armed at issue fires, and the
        // requester either backs off and re-issues or — once the
        // budget is spent — reports the fault as unrecoverable.
        ++result.timeouts;
        ++timeouts_;
        const sim::SimTime detect = issue + fc.timeoutNs;
        if (attempt >= fc.maxRetries) {
            result.failed = true;
            result.serviceDoneAt = detect;
            result.responseAt = detect;
            result.recoveryNs += fc.timeoutNs;
            return result;
        }
        const sim::SimTime backoff = faults_->backoffDelay(attempt);
        result.recoveryNs += fc.timeoutNs + backoff;
        ++result.retries;
        ++retries_;
        retriedBytes_ += bytes;
        issue = detect + backoff;
    }
}

double
MemorySystem::averageNetworkUtilization(sim::SimTime end) const
{
    if (end <= 0.0 || netPorts_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : netPorts_)
        sum += p.utilization(end);
    return sum / static_cast<double>(netPorts_.size());
}

} // namespace pgcn::piuma
