#include "piuma/memory.hpp"

#include <algorithm>

namespace pgcn::piuma {

MemorySystem::MemorySystem(sim::Engine &engine, const PiumaConfig &cfg)
    : engine_(engine), cfg_(cfg)
{
    cfg.validate();
    slices_.reserve(cfg.numCores);
    netPorts_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        slices_.push_back(std::make_unique<sim::BandwidthResource>(
            engine, cfg.effectiveSliceBandwidth()));
        netPorts_.push_back(std::make_unique<sim::BandwidthResource>(
            engine, cfg.netPortBandwidthGBps));
    }
}

MemoryAccess
MemorySystem::access(unsigned requester_core, unsigned slice, double bytes,
                     bool pipelined)
{
    PGCN_ASSERT(slice < slices_.size(), "slice " << slice << " out of range");
    const double net_lat = cfg_.oneWayLatencyNs(requester_core, slice);

    // A stall-on-use request first travels to the slice; a pipelined
    // requester has the request in flight already, so only bandwidth
    // gates the service start. Remote transfers also occupy the
    // target core's network port for the payload; port and controller
    // stream concurrently, so completion is the slower of the two.
    const sim::SimTime earliest =
        engine_.now() + (pipelined ? 0.0 : net_lat);
    sim::SimTime service_done = slices_[slice]->reserve(bytes, earliest);
    if (requester_core != slice) {
        service_done = std::max(
            service_done, netPorts_[slice]->reserve(bytes, earliest));
    }

    return MemoryAccess{
        service_done,
        service_done + cfg_.effectiveDramLatencyNs() + net_lat,
    };
}

MemoryAccess
MemorySystem::accessStriped(unsigned requester_core, unsigned start_slice,
                            double bytes, bool pipelined)
{
    if (!cfg_.dgasFineInterleave)
        return access(requester_core, start_slice, bytes, pipelined);

    // 8-byte DGAS interleaving: the object spans up to 16 consecutive
    // slices (enough to diffuse any hotspot without O(|system|) work
    // per access); each chunk streams concurrently.
    const auto max_chunks = static_cast<unsigned>(
        std::max(1.0, std::min({16.0, bytes / 8.0,
                                static_cast<double>(cfg_.numCores)})));
    const double chunk = bytes / max_chunks;
    MemoryAccess result{0.0, 0.0};
    for (unsigned i = 0; i < max_chunks; ++i) {
        const unsigned slice = (start_slice + i) % cfg_.numCores;
        const MemoryAccess acc =
            access(requester_core, slice, chunk, pipelined);
        result.serviceDoneAt =
            std::max(result.serviceDoneAt, acc.serviceDoneAt);
        result.responseAt = std::max(result.responseAt, acc.responseAt);
    }
    return result;
}

MemoryAccess
MemorySystem::readStriped(unsigned requester_core, unsigned start_slice,
                          double bytes, bool pipelined)
{
    bytesRead_ += bytes;
    return accessStriped(requester_core, start_slice, bytes, pipelined);
}

MemoryAccess
MemorySystem::writeStriped(unsigned requester_core, unsigned start_slice,
                           double bytes, bool pipelined)
{
    bytesWritten_ += bytes;
    return accessStriped(requester_core, start_slice, bytes, pipelined);
}

MemoryAccess
MemorySystem::read(unsigned requester_core, unsigned slice, double bytes,
                   bool pipelined)
{
    bytesRead_ += bytes;
    return access(requester_core, slice, bytes, pipelined);
}

MemoryAccess
MemorySystem::write(unsigned requester_core, unsigned slice, double bytes,
                    bool pipelined)
{
    bytesWritten_ += bytes;
    return access(requester_core, slice, bytes, pipelined);
}

double
MemorySystem::averageSliceUtilization(sim::SimTime end) const
{
    if (end <= 0.0 || slices_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : slices_)
        sum += s->utilization(end);
    return sum / static_cast<double>(slices_.size());
}

double
MemorySystem::maxSliceUtilization(sim::SimTime end) const
{
    double worst = 0.0;
    for (const auto &s : slices_)
        worst = std::max(worst, s->utilization(end));
    return worst;
}

double
MemorySystem::averageNetworkUtilization(sim::SimTime end) const
{
    if (end <= 0.0 || netPorts_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : netPorts_)
        sum += p->utilization(end);
    return sum / static_cast<double>(netPorts_.size());
}

} // namespace pgcn::piuma
