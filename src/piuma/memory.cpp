#include "piuma/memory.hpp"

#include <algorithm>
#include <string>
#include <thread>

#include "common/stats.hpp"
#include "telemetry/session.hpp"

namespace pgcn::piuma {

MemorySystem::MemorySystem(sim::DomainSet &domains, const PiumaConfig &cfg)
    : domains_(domains), cfg_(cfg), numCores_(cfg.numCores),
      domainCount_(domains.domains())
{
    cfg.validate();
    PGCN_ASSERT(domainCount_ >= 1 &&
                    (domainCount_ <= numCores_ || numCores_ == 0),
                "domain count " << domainCount_ << " exceeds core count "
                                << numCores_);
    slices_.reserve(cfg.numCores);
    netPorts_.reserve(cfg.numCores);
    dieOf_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        // Each slice and its port belong to the domain that owns core
        // c; reservations only ever happen from that domain's thread.
        sim::Engine &owner = domains_.engine(domainOf(c));
        slices_.emplace_back(owner, cfg.effectiveSliceBandwidth());
        netPorts_.emplace_back(owner, cfg.netPortBandwidthGBps);
        dieOf_.push_back(c / cfg.coresPerDie);
    }
    issueShards_.resize(cfg.numCores);
    sliceShards_.resize(cfg.numCores);
    dramLatencyNs_ = cfg.effectiveDramLatencyNs();
    sliceRate_ = cfg.effectiveSliceBandwidth();
    portRate_ = cfg.netPortBandwidthGBps;
}

double
MemorySystem::modelLookaheadNs(const PiumaConfig &cfg,
                               const sim::FaultConfig *faults)
{
    if (cfg.numCores <= 1)
        return std::numeric_limits<double>::infinity();
    const bool multi_die = cfg.numCores > cfg.coresPerDie;
    const double min_net =
        multi_die ? std::min(cfg.netSameDieNs, cfg.netCrossDieNs)
                  : cfg.netSameDieNs;
    const double max_net =
        multi_die ? std::max(cfg.netSameDieNs, cfg.netCrossDieNs)
                  : cfg.netSameDieNs;
    const double jitter =
        faults != nullptr ? faults->networkLatencyJitter : 0.0;
    double bound = min_net * (1.0 - jitter);
    if (faults != nullptr &&
        (faults->dramDropRate > 0.0 || faults->netDropRate > 0.0)) {
        // A failure notice travels at detect = issue + timeout while
        // the slice's clock sits at issue + net_in: the edge is the
        // timeout minus the worst-case already-paid request hop.
        bound = std::min(bound,
                         faults->timeoutNs - max_net * (1.0 + jitter));
    }
    return bound;
}

unsigned
MemorySystem::autoDomainCount(const PiumaConfig &cfg)
{
    if (cfg.numCores < 64)
        return 1;
    const unsigned host = std::max(1u, std::thread::hardware_concurrency());
    return std::clamp(std::min(cfg.numCores / 16, host), 1u, 64u);
}

sim::DomainSet::Options
MemorySystem::domainPlan(const PiumaConfig &cfg,
                         const sim::SimControls *controls,
                         bool sequenced_only)
{
    sim::DomainSet::Options opts;
    opts.domains =
        controls != nullptr && controls->domains != 0 ? controls->domains
                                                      : 0;
    if (opts.domains == 0)
        opts.domains = autoDomainCount(cfg);
    opts.domains = std::max(1u, std::min(opts.domains, cfg.numCores));
    const sim::DomainMode want = controls != nullptr
                                     ? controls->domainMode
                                     : sim::DomainMode::Sequenced;
    const double lookahead = modelLookaheadNs(
        cfg, controls != nullptr && controls->faults != nullptr
                 ? &controls->faults->config()
                 : nullptr);
    opts.mode = sim::DomainSet::Mode::Sequenced;
    if (want == sim::DomainMode::Parallel) {
        if (!(lookahead > 0.0)) {
            PGCN_THROW(ConfigError,
                       "--domain-mode=parallel is illegal for this "
                       "config: the model lookahead bound is "
                           << lookahead
                           << " ns (timeout must exceed the worst-case "
                              "request hop; network jitter must leave "
                              "the minimum hop positive)");
        }
        if (sequenced_only) {
            warn("domain-mode=parallel downgraded to sequenced: an "
                 "attached telemetry session or monitor hub shares "
                 "single-threaded geometry");
        } else {
            opts.mode = sim::DomainSet::Mode::Parallel;
        }
    } else if (want == sim::DomainMode::Auto) {
        if (lookahead > 0.0 && opts.domains > 1 && !sequenced_only)
            opts.mode = sim::DomainSet::Mode::Parallel;
    }
    if (opts.mode == sim::DomainSet::Mode::Parallel) {
        // +inf (single-core) never reaches here with domains > 1
        // clamped by numCores... except numCores == 1; guard anyway.
        opts.lookaheadNs = std::min(lookahead, 1e18);
    }
    return opts;
}

void
MemorySystem::setFaultInjector(sim::FaultInjector *faults)
{
    faults_ = faults;
    dropsEnabled_ =
        faults != nullptr && (faults->config().dramDropRate > 0.0 ||
                              faults->config().netDropRate > 0.0);
    coreStreams_.clear();
    sliceStreams_.clear();
    if (faults == nullptr)
        return;
    coreStreams_.reserve(numCores_);
    sliceStreams_.reserve(numCores_);
    for (unsigned c = 0; c < numCores_; ++c) {
        coreStreams_.push_back(faults->fork(kSaltCoreNet | c));
        sliceStreams_.push_back(faults->fork(kSaltSlice | c));
    }
}

void
MemorySystem::issueChunk(unsigned requester_core, unsigned slice,
                         double bytes, sim::SimTime slice_dur,
                         sim::SimTime port_dur, bool pipelined,
                         PendingAccess *pa)
{
    PGCN_ASSERT(slice < slices_.size(),
                "slice " << slice << " out of range");
    IssueShard &shard = issueShards_[requester_core];
    ++shard.accesses;
    const bool remote = requester_core != slice;
    shard.remoteAccesses += remote;

    if (!remote && !dropsEnabled_) {
        // Local clean fast path: requester and slice share a domain
        // for every domain count, so resolving the reservation
        // synchronously at issue is mode- and count-invariant. Draw
        // order matches arrive() so a slice's stream advances
        // identically whichever path its traffic takes.
        sim::SimTime sd_dur = slice_dur;
        double dram = dramLatencyNs_;
        if (faults_ != nullptr) [[unlikely]] {
            sim::FaultStream &s = sliceStreams_[slice];
            sd_dur = s.serviceDuration(slice_dur);
            (void)s.serviceDuration(port_dur);
            dram = s.dramLatency(dram);
        }
        sim::Engine &e = engineOf(requester_core);
        const sim::SimTime service_done =
            slices_[slice].reserveFor(bytes, sd_dur, e.now());
        MemoryAccess chunk{service_done,
                           pipelined ? service_done
                                     : service_done + dram};
        if (pa != nullptr)
            merge(pa->acc, chunk);
        return;
    }

    // Event path: the request bears the (jittered) one-way hop and
    // arbitrates at the slice in arrival order.
    const double net_base =
        remote ? (dieOf_[requester_core] == dieOf_[slice]
                      ? cfg_.netSameDieNs
                      : cfg_.netCrossDieNs)
               : 0.0;
    double net_in = net_base;
    if (faults_ != nullptr && net_base > 0.0) [[unlikely]]
        net_in = coreStreams_[requester_core].networkLatency(net_base);

    sim::Engine &e = engineOf(requester_core);
    Request r{pa,
              requester_core,
              slice,
              bytes,
              slice_dur,
              port_dur,
              pipelined,
              net_base,
              net_in,
              sim::makeKeyedSeq(sim::kSeqBandRequest, requester_core,
                                shard.requestStamp++),
              e.now()};
    if (pa != nullptr)
        ++pa->remaining;
    domains_.postKeyed(domainOf(requester_core), domainOf(slice),
                       r.issue + net_in, r.seq,
                       [this, r] { arrive(r); });
}

void
MemorySystem::arrive(Request r)
{
    // Jitters are drawn once per access, at first arrival, from the
    // slice's own stream — dispatch order in the slice's domain is
    // deterministic and identical across modes and domain counts, so
    // so is the stream.
    Timing t{r.sliceDur, r.portDur, dramLatencyNs_, r.netBase};
    if (faults_ != nullptr) [[unlikely]] {
        sim::FaultStream &s = sliceStreams_[r.slice];
        t.sliceDur = s.serviceDuration(r.sliceDur);
        t.portDur = s.serviceDuration(r.portDur);
        t.dram = s.dramLatency(t.dram);
        if (r.netBase > 0.0)
            t.netRet = s.networkLatency(r.netBase);
    }
    attempt(r, t, 0, r.issue, MemoryAccess{0.0, 0.0});
}

void
MemorySystem::attempt(Request r, Timing t, uint32_t n, sim::SimTime issue,
                      MemoryAccess chunk)
{
    sim::Engine &e = engineOf(r.slice);
    const bool remote = r.core != r.slice;
    // Reserve first, then draw the drop: a dropped response was lost
    // *after* service, so the attempt still consumed slice (and port)
    // bandwidth — retry amplification is a bandwidth story, not just
    // a latency story. Arrival-order arbitration falls out of the
    // dispatch order: every request at this timestamp was filed
    // before any clock reached it, and keyed seqs rank them.
    sim::SimTime service_done =
        slices_[r.slice].reserveFor(r.bytes, t.sliceDur, e.now());
    if (remote) {
        service_done = std::max(
            service_done,
            netPorts_[r.slice].reserveFor(r.bytes, t.portDur, e.now()));
    }
    if (!dropsEnabled_ ||
        !sliceStreams_[r.slice].dropTransaction(remote)) {
        chunk.serviceDoneAt = service_done;
        chunk.responseAt = r.pipelined
                               ? service_done + t.netRet
                               : service_done + t.dram + t.netRet;
        respond(r, chunk);
        return;
    }

    // Response lost. The timeout armed at issue fires; the requester
    // either backs off and re-issues or — once the budget is spent —
    // learns the fault is unrecoverable via a failure notice.
    SliceShard &shard = sliceShards_[r.slice];
    const sim::FaultConfig &fc = faults_->config();
    ++chunk.timeouts;
    ++shard.timeouts;
    const sim::SimTime detect = issue + fc.timeoutNs;
    if (n >= fc.maxRetries) {
        chunk.failed = true;
        chunk.serviceDoneAt = detect;
        chunk.responseAt = detect;
        chunk.recoveryNs += fc.timeoutNs;
        respond(r, chunk);
        return;
    }
    const sim::SimTime backoff =
        sliceStreams_[r.slice].backoffDelay(n);
    chunk.recoveryNs += fc.timeoutNs + backoff;
    ++chunk.retries;
    ++shard.retries;
    shard.retriedBytes += r.bytes;
    // Re-arm as a slice-domain self-event carrying the original
    // request key: the retry keeps its arbitration priority over
    // fresher requests arriving at the same instant. Re-arrival
    // reuses the access's request-hop draw (the old synchronous
    // chain reused its one network draw the same way), which also
    // guarantees re-arrival - now = timeout + backoff >= 0.
    const sim::SimTime re_issue = detect + backoff;
    const unsigned dom = domainOf(r.slice);
    domains_.postKeyed(dom, dom, re_issue + r.netIn, r.seq,
                       [this, r, t, n, re_issue, chunk] {
                           attempt(r, t, n + 1, re_issue, chunk);
                       });
}

void
MemorySystem::respond(const Request &r, const MemoryAccess &chunk)
{
    SliceShard &shard = sliceShards_[r.slice];
    if (r.pa == nullptr) {
        // Posted traffic: no response event at all. Recovery and the
        // first unrecoverable loss are recorded here, slice-side.
        shard.postedRecoveryNs += chunk.recoveryNs;
        if (chunk.failed && !shard.postedFault.failed) {
            shard.postedFault =
                PostedFault{true, r.core, r.slice, chunk.responseAt};
        }
        return;
    }
    PendingAccess *pa = r.pa;
    const uint64_t seq = sim::makeKeyedSeq(
        sim::kSeqBandResponse, r.slice, shard.responseStamp++);
    domains_.postKeyed(domainOf(r.slice), domainOf(r.core),
                       chunk.responseAt, seq,
                       [this, pa, chunk] { completeChunk(*pa, chunk); });
}

void
MemorySystem::completeChunk(PendingAccess &pa, const MemoryAccess &chunk)
{
    merge(pa.acc, chunk);
    PGCN_ASSERT(pa.remaining > 0, "response for a completed access");
    if (--pa.remaining != 0)
        return;
#ifndef PGCN_NO_TELEMETRY
    if (tlmLatency_ != nullptr) [[unlikely]]
        noteLatency(pa);
#endif
    if (!pa.waiter)
        return;
    const std::coroutine_handle<> h = pa.waiter;
    pa.waiter = {};
    sim::Engine &e = engineOf(pa.core);
    const sim::SimTime d = pa.acc.responseAt - e.now();
    if (d > 0.0) {
        // A synchronously-resolved local chunk finishes after the
        // last event chunk: wake at the merged response time,
        // replicating delayUntil arithmetic.
        domains_.wakeAt(domainOf(pa.core), pa.acc.responseAt, h);
    } else {
        // This response *is* the completion: resume inline, exactly
        // as the response event's continuation.
        h.resume();
    }
}

double
MemorySystem::averageSliceUtilization(sim::SimTime end) const
{
    if (end <= 0.0 || slices_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : slices_)
        sum += s.utilization(end);
    return sum / static_cast<double>(slices_.size());
}

double
MemorySystem::maxSliceUtilization(sim::SimTime end) const
{
    double worst = 0.0;
    for (const auto &s : slices_)
        worst = std::max(worst, s.utilization(end));
    return worst;
}

void
MemorySystem::attachTelemetry(telemetry::Session *session)
{
    if (session == nullptr)
        return;
    telemetry::Registry &reg = session->registry();
    tlmReads_ = &reg.counter("piuma.mem.reads");
    tlmWrites_ = &reg.counter("piuma.mem.writes");
    tlmRemote_ = &reg.counter("piuma.mem.remote_accesses");
    // Covers the uncongested case (DRAM latency + a network hop) up
    // through heavy queueing; worse outliers land in the overflow bin
    // and still shape p99 via interpolation against the observed max.
    tlmLatency_ = &reg.histogram("piuma.mem.access_latency_ns",
                                 0.0, 2000.0, 100);

    // Per-slice DRAM utilisation timelines: busy-ns is cumulative, so
    // a Rate gauge turns it into utilisation over each sample window.
    for (size_t i = 0; i < slices_.size(); ++i) {
        reg.registerGauge(
            "piuma.mem.slice" + std::to_string(i) + ".util",
            telemetry::GaugeKind::Rate,
            [this, i] { return sliceBusyNs(i); });
    }
    reg.registerGauge("piuma.mem.read_gbps", telemetry::GaugeKind::Rate,
                      [this] { return bytesRead(); });
    reg.registerGauge("piuma.mem.write_gbps", telemetry::GaugeKind::Rate,
                      [this] { return bytesWritten(); });
    reg.registerGauge("piuma.net.port_util", telemetry::GaugeKind::Rate,
                      [this] {
                          double sum = 0.0;
                          for (size_t i = 0; i < netPorts_.size(); ++i)
                              sum += portBusyNs(i);
                          return sum / static_cast<double>(
                                           netPorts_.size());
                      });
}

void
MemorySystem::noteIssue(telemetry::Counter &op, bool local)
{
    op.increment();
    if (!local)
        tlmRemote_->increment();
}

void
MemorySystem::noteLatency(const PendingAccess &pa)
{
    // Histogrammed at completion: under the response-path protocol
    // the latency isn't known at issue. Sessions force Sequenced
    // mode, so this only ever runs single-threaded.
    tlmLatency_->add(pa.acc.responseAt - pa.issuedAt);
}

double
MemorySystem::averageNetworkUtilization(sim::SimTime end) const
{
    if (end <= 0.0 || netPorts_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : netPorts_)
        sum += p.utilization(end);
    return sum / static_cast<double>(netPorts_.size());
}

} // namespace pgcn::piuma
