/**
 * @file
 * The per-core PIUMA DMA offload engine (Section IV-B of the paper).
 *
 * MTP threads enqueue descriptors; the engine consumes them in
 * arrival order ("DMA requests from threads belonging to the same
 * core are directed to the same DMA engine and are serialized on the
 * order of arrival"). Descriptors are processed pipelined with
 * respect to memory latency: the engine only waits for bandwidth
 * service, which is what makes the DMA SpMM latency tolerant.
 *
 * Supported operations mirror the paper's kernel:
 *  - ReadMulAcc: atomically read a feature vector from (possibly
 *    remote) DRAM, multiply by the vectorised edge weight, copy-add
 *    into the scratchpad accumulation buffer.
 *  - WriteRow: atomically write a finished accumulation buffer to the
 *    output row in DRAM.
 *  - Terminate: shut the engine down (simulation bookkeeping).
 */
#ifndef PGCN_PIUMA_DMA_HPP
#define PGCN_PIUMA_DMA_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "piuma/memory.hpp"
#include "sim/queue.hpp"
#include "telemetry/session.hpp"

namespace pgcn::piuma {

/** One DMA descriptor. */
struct DmaDescriptor
{
    enum class Op : uint8_t
    {
        ReadMulAcc, ///< read + vector multiply + copy-add to SPAD
        WriteRow,   ///< atomic write of an output row
        Terminate,  ///< end-of-work marker
    };

    Op op;
    unsigned slice; ///< DRAM slice holding the feature/output row
    double bytes;   ///< payload size (K * sizeof(float))
};

/** Aggregate statistics of one DMA engine. */
struct DmaStats
{
    uint64_t descriptors = 0; ///< data descriptors processed
    double busyNs = 0.0;      ///< time spent processing descriptors
    double bytesMoved = 0.0;  ///< payload bytes transferred

    /// Descriptor re-issues after injected faults.
    uint64_t retries = 0;
    /// Descriptor timeouts fired (== retries unless a fault was
    /// unrecoverable).
    uint64_t timeoutsFired = 0;
    /// Engine time in recovery: descriptor timeout/backoff plus the
    /// recovery portion of its memory transfers.
    double recoveryNs = 0.0;
    /// A descriptor (or one of its memory transfers) exhausted the
    /// retry budget; failedDetail names it. The engine keeps draining
    /// its queue so producers never block forever — the entry point
    /// raises SimFaultError after the run.
    bool failed = false;
    std::string failedDetail;
};

/**
 * One core's DMA engine: a bounded descriptor queue plus a consumer
 * process.
 */
class DmaEngine
{
  public:
    /**
     * @param engine Simulation engine.
     * @param memory DGAS memory system.
     * @param cfg System configuration.
     * @param core The core this engine belongs to.
     */
    DmaEngine(sim::Engine &engine, MemorySystem &memory,
              const PiumaConfig &cfg, unsigned core)
        : engine_(engine), memory_(memory), cfg_(cfg), core_(core),
          queue_(engine, cfg.dmaQueueDepth,
                 "core" + std::to_string(core) + ".dma.queue")
    {
    }

    /** The descriptor queue producers push into. */
    sim::BoundedQueue<DmaDescriptor> &queue() { return queue_; }

    /** Engine statistics (valid after the simulation drains). */
    const DmaStats &stats() const { return stats_; }

    /**
     * Start recording into @p session: a piuma.core<i>.dma.queue_depth
     * gauge, shared piuma.dma.{descriptors,busy_ns} counters, a
     * per-descriptor latency histogram, and — when the session asks
     * for a detailed trace — one span per descriptor on this core's
     * trace track. Null (or never calling) leaves run() untouched.
     */
    void attachTelemetry(telemetry::Session *session);

    /**
     * Attach a fault injector perturbing the per-descriptor dispatch
     * overhead and, when a DMA drop rate is configured, failing
     * descriptors that the engine then re-issues under the modeled
     * timeout/backoff protocol. Null (the default) keeps the
     * configured overhead and a fault-free descriptor stream. The
     * injector is only forked: this engine draws from its own
     * kSaltDma child stream, so concurrent engines in different
     * domains never contend on shared generator state.
     */
    void
    setFaultInjector(sim::FaultInjector *faults)
    {
        if (faults != nullptr)
            stream_.emplace(faults->fork(kSaltDma | core_));
        else
            stream_.reset();
    }

    /**
     * Mirror per-descriptor busy spans (the same spans stats_.busyNs
     * accumulates) onto @p timeline. Null detaches; no-op under
     * PGCN_NO_TELEMETRY.
     */
    void
    attachMonitor(sim::Timeline *timeline)
    {
#ifndef PGCN_NO_TELEMETRY
        monitor_ = timeline;
#else
        (void)timeline;
#endif
    }

    /**
     * Start the consumer process. Runs until a Terminate descriptor
     * arrives. Call exactly once per simulation. Transfer responses
     * arrive over the memory system's request/response event path —
     * a remote slice's completion reaches this engine as a keyed
     * cross-domain response event, so no explicit domain routing is
     * needed here any more.
     */
    sim::Process run();

  private:
    /** Cold path: record an unrecoverable memory fault of one of this
     *  engine's transfers (first one wins; the run throws anyway). */
    void noteTransferFault(const char *op, unsigned slice);

    sim::Engine &engine_;
    MemorySystem &memory_;
    const PiumaConfig &cfg_;
    unsigned core_;
    sim::BoundedQueue<DmaDescriptor> queue_;
    DmaStats stats_;
    // Telemetry sinks; null keeps run() free of recording entirely.
    telemetry::Session *session_ = nullptr;
    telemetry::Counter *tlmDescriptors_ = nullptr;
    telemetry::Counter *tlmBusyNs_ = nullptr;
    Histogram *tlmDescNs_ = nullptr;
    telemetry::TraceWriter::NameId spanName_ = 0;
    bool detailedTrace_ = false;
#ifndef PGCN_NO_TELEMETRY
    sim::Timeline *monitor_ = nullptr; ///< busy-span occupancy sink
#endif
    /// Forked per-engine fault stream; empty keeps the configured
    /// dispatch overhead and a fault-free descriptor stream.
    std::optional<sim::FaultStream> stream_;
};

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_DMA_HPP
