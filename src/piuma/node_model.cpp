#include "piuma/node_model.hpp"

#include <cmath>
#include <string>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "piuma/spmm_programs.hpp"
#include "telemetry/model_bind.hpp"
#include "telemetry/registry.hpp"

namespace pgcn::piuma {

namespace {

/** Attached metric sink; null = model evaluations record nothing.
 *  Thread-local: sweep workers bind their own Session's registry via
 *  telemetry::bindModelTelemetry, so concurrent sweep points never
 *  share (or race on) a sink. */
thread_local telemetry::Registry *g_model_registry = nullptr;

/** Expose this TU's setter to the thread-binding rendezvous. */
[[maybe_unused]] const bool g_binder_registered =
    telemetry::registerModelTelemetryBinder(&setNodeModelTelemetry);

/** Accumulate one model evaluation into the attached registry. */
double
recordModelTime(const char *kernel, double time_ns)
{
    if (g_model_registry != nullptr) {
        const std::string base = std::string("piuma.model.") + kernel;
        g_model_registry->counter(base + "_ns").add(time_ns);
        g_model_registry->counter(base + "_calls").increment();
    }
    return time_ns;
}

} // namespace

void
setNodeModelTelemetry(telemetry::Registry *registry)
{
    g_model_registry = registry;
}

double
peakDenseGflops(const PiumaConfig &cfg, const NodeModelParams &params)
{
    return cfg.numCores * cfg.mtpsPerCore * cfg.clockGhz *
           params.denseFlopPerMtpCycle;
}

double
spmmTimeNs(const PiumaConfig &cfg, const model::SpmmWorkload &w,
           const NodeModelParams &params)
{
    PGCN_ASSERT(params.spmmEfficiency > 0.0 && params.spmmEfficiency <= 1.0,
                "SpMM efficiency must be in (0, 1], got "
                    << params.spmmEfficiency);
    const double bw = cfg.aggregateBandwidth();
    const auto est = model::estimateSpmm(w, bw, bw);
    return recordModelTime("spmm",
                           est.timeNs / params.spmmEfficiency +
                               params.kernelLaunchOverheadNs);
}

double
denseMmTimeNs(const PiumaConfig &cfg, uint64_t num_vertices, uint64_t k_in,
              uint64_t k_out, const NodeModelParams &params)
{
    const double v = static_cast<double>(num_vertices);
    const double flop =
        2.0 * v * static_cast<double>(k_in) * static_cast<double>(k_out);
    // Stream H (V x k_in) in and H' (V x k_out) out; the weight matrix
    // is small and assumed resident in scratchpads.
    const double bytes =
        v * (static_cast<double>(k_in) + static_cast<double>(k_out)) * 4.0;
    double peak = peakDenseGflops(cfg, params) * params.denseEfficiency;
    // Heterogeneous SoC: the accelerator complements (does not
    // replace) the scalar pipelines.
    peak += params.denseAcceleratorGflops;
    return recordModelTime("dense",
                           model::rooflineTimeNs(flop, bytes, peak,
                                                 cfg.aggregateBandwidth()) +
                               params.kernelLaunchOverheadNs);
}

double
fusionSavingsNs(const PiumaConfig &cfg, uint64_t num_vertices,
                uint64_t k_out, const NodeModelParams &params)
{
    const double bytes = 2.0 * static_cast<double>(num_vertices) *
                         static_cast<double>(k_out) * 4.0;
    return bytes / cfg.aggregateBandwidth() +
           params.kernelLaunchOverheadNs;
}

double
glueTimeNs(const PiumaConfig &cfg, uint64_t num_vertices, uint64_t k,
           const NodeModelParams &params)
{
    const double bytes = 2.0 * static_cast<double>(num_vertices) *
                         static_cast<double>(k) * 4.0;
    return recordModelTime("glue", bytes / cfg.aggregateBandwidth() +
                                       params.kernelLaunchOverheadNs);
}

double
calibrateSpmmEfficiency(const PiumaConfig &cfg, unsigned embedding_dim,
                        uint64_t proxy_edges, uint64_t seed)
{
    // Proxy scale: keep average degree ~16 so NNZ/feature ratios are
    // representative of the OGB graphs.
    uint32_t scale = 10;
    while ((uint64_t{1} << scale) * 16 < proxy_edges && scale < 24)
        ++scale;
    const graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(scale, proxy_edges, graph::rmatSkewed(),
                            seed));
    const auto stats =
        simulateSpmm(csr, embedding_dim, cfg, SpmmAlgorithm::Dma);
    const double bw = cfg.aggregateBandwidth();
    const auto est = model::estimateSpmm(
        model::SpmmWorkload{csr.numVertices(), csr.numEdges(),
                            embedding_dim},
        bw, bw);
    return est.timeNs / stats.makespanNs;
}

} // namespace pgcn::piuma
