/**
 * @file
 * Full-node PIUMA timing model for GCN layers.
 *
 * The discrete-event simulator (spmm_programs) validates that the DMA
 * SpMM achieves a large, latency-insensitive fraction of the
 * bandwidth-bound analytical model (the paper reports 80-90%, "up to
 * 88% of theoretical peak"). Node-scale experiments (Figs. 9 and 10,
 * 256 cores, full Table-I graphs) then use the analytical model
 * scaled by a measured efficiency factor — mirroring the paper, which
 * likewise projects node-scale numbers from down-scaled simulation
 * [18] and uses the observed peak FLOPS of [21] for Dense MM.
 */
#ifndef PGCN_PIUMA_NODE_MODEL_HPP
#define PGCN_PIUMA_NODE_MODEL_HPP

#include "model/spmm_model.hpp"
#include "piuma/config.hpp"

namespace pgcn::telemetry {
class Registry;
} // namespace pgcn::telemetry

namespace pgcn::piuma {

/**
 * Route every subsequent node-model evaluation into @p registry:
 * spmmTimeNs / denseMmTimeNs / glueTimeNs accumulate their returned
 * times into the piuma.model.{spmm,dense,glue}_ns counters (plus a
 * .calls counter each). Null detaches. Counter deltas around a
 * timeGcn() evaluation give the per-kernel breakdown without
 * re-deriving it from returned structs (fig10 consumes this). The
 * binding is per-thread: sweep workers each bind their own session
 * registry (telemetry::bindModelTelemetry does this for all models at
 * once), and unbound threads record nothing.
 */
void setNodeModelTelemetry(telemetry::Registry *registry);

/** Timing knobs for the node-level model. */
struct NodeModelParams
{
    /**
     * Fraction of the bandwidth-bound model SpMM achieves; default is
     * the paper's "within 10-20% of the analytical model" mid-point.
     * Calibrate with calibrateSpmmEfficiency() (a DES run on a proxy
     * graph) when affordable.
     */
    double spmmEfficiency = 0.85;

    /// FLOP per MTP-pipeline per cycle for dense kernels. A scalar
    /// MAC is 2 FLOP; dense update kernels additionally offload
    /// multiply-add work to the per-core DMA engines' in-memory
    /// operations ([21]), modelled as a further 2x, i.e. 4 FLOP per
    /// MTP-cycle of the core. Still orders of magnitude below any
    /// SIMD machine — the paper's core dense-MM limitation.
    double denseFlopPerMtpCycle = 4.0;

    /// Achieved fraction of peak FLOPS in dense kernels ([21]).
    double denseEfficiency = 0.85;

    /// Fixed software overhead per kernel launch (ns); PIUMA runs a
    /// lightweight runtime on the STPs, far below a host framework.
    double kernelLaunchOverheadNs = 2000.0;

    /**
     * Dense-compute accelerator attached to the node (paper Section
     * VI, "Heterogeneous SoC": PIUMA dies combined with dense units).
     * 0 disables it; a positive value (GFLOP/s) replaces the scalar
     * pipelines as the dense-MM peak while memory traffic still goes
     * through the DGAS.
     */
    double denseAcceleratorGflops = 0.0;

    /**
     * Graphite-style layer fusion (paper Section VII / [9]): fuse the
     * update into the aggregation so the intermediate H*W matrix is
     * never written to and re-read from DRAM. Saves 2 * |V| * K_out *
     * 4 bytes and one kernel launch per fused layer.
     */
    bool fuseAggregationUpdate = false;
};

/**
 * Peak dense-compute throughput of the configured system in GFLOP/s
 * (no SIMD units: MTP scalar pipelines only — the paper's core reason
 * PIUMA loses ground at large embedding dimensions).
 */
double peakDenseGflops(const PiumaConfig &cfg,
                       const NodeModelParams &params = {});

/**
 * SpMM execution time (ns) on the node model: the Eq. 1-5 bandwidth
 * bound at aggregate bandwidth, divided by the achieved efficiency.
 *
 * @param cfg System configuration.
 * @param w Workload (|V|, |E|, K).
 * @param params Model knobs.
 */
double spmmTimeNs(const PiumaConfig &cfg, const model::SpmmWorkload &w,
                  const NodeModelParams &params = {});

/**
 * Dense-update time (ns) for (|V| x k_in) * (k_in x k_out): roofline
 * over scalar-pipeline FLOPS and aggregate memory bandwidth.
 */
double denseMmTimeNs(const PiumaConfig &cfg, uint64_t num_vertices,
                     uint64_t k_in, uint64_t k_out,
                     const NodeModelParams &params = {});

/**
 * Element-wise glue time (ns): activation read-modify-write of the
 * |V| x k feature matrix at aggregate bandwidth plus launch overhead.
 */
double glueTimeNs(const PiumaConfig &cfg, uint64_t num_vertices, uint64_t k,
                  const NodeModelParams &params = {});

/**
 * Measure the SpMM efficiency (achieved / bandwidth-bound time) of
 * the DMA implementation by running the discrete-event simulator on a
 * proxy graph under @p cfg. Use the result as
 * NodeModelParams::spmmEfficiency to tie node-scale projections to
 * simulated behaviour.
 *
 * @param cfg System to simulate (keep numCores modest; DES cost grows
 *        with edges x cores).
 * @param embedding_dim K for the calibration run.
 * @param proxy_edges RMAT edge budget of the calibration graph.
 * @param seed Proxy-graph seed.
 */
double calibrateSpmmEfficiency(const PiumaConfig &cfg,
                               unsigned embedding_dim,
                               uint64_t proxy_edges = 1u << 19,
                               uint64_t seed = 42);

/**
 * DRAM traffic saved per layer by fusing update into aggregation
 * (intermediate matrix write + read eliminated), in nanoseconds at
 * aggregate bandwidth, plus one saved kernel launch.
 */
double fusionSavingsNs(const PiumaConfig &cfg, uint64_t num_vertices,
                       uint64_t k_out, const NodeModelParams &params = {});

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_NODE_MODEL_HPP
