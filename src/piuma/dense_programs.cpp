#include "piuma/dense_programs.hpp"

#include <chrono>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "piuma/memory.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "telemetry/session.hpp"

namespace pgcn::piuma {

namespace {

struct DenseContext
{
    DenseContext(const PiumaConfig &cfg_in)
        : engine(domains.engine(0)), cfg(cfg_in), memory(domains, cfg_in)
    {
        const unsigned total_mtps = cfg.numCores * cfg.mtpsPerCore;
        mtpIssue.reserve(total_mtps);
        for (unsigned m = 0; m < total_mtps; ++m)
            mtpIssue.emplace_back(engine, cfg.clockGhz);
    }

    /// Single-domain set: the dense kernel is a calibration-sized
    /// model (no sharding knob), but the memory system's protocol
    /// requires a DomainSet to route its request/response events.
    sim::DomainSet domains{1u};
    sim::Engine &engine;
    const PiumaConfig &cfg;
    MemorySystem memory;
    std::vector<sim::BandwidthResource> mtpIssue;

    /// Fault machinery (null / zero without injection). Coroutines
    /// record unrecoverable faults here and bail; simulateDenseMm
    /// raises SimFaultError after the run drains.
    sim::FaultInjector *faults = nullptr;
    double recoveryNs = 0.0;
    uint64_t stuckResets = 0;
    bool faulted = false;
    std::string faultSite;
    sim::SimTime faultWhenNs = 0.0;

    /** First unrecoverable fault wins (the run throws anyway). */
    void
    recordFault(const char *what, unsigned core, unsigned slice)
    {
        if (faulted)
            return;
        faulted = true;
        faultSite = "core" + std::to_string(core) + " " + what +
                    " on slice " + std::to_string(slice);
        faultWhenNs = engine.now();
    }
};

/**
 * One hardware thread computing its contiguous row range. Per row:
 * stream the K_in-float input row in (DMA-style pipelined read, so
 * transfer overlaps compute of the previous row), issue the
 * K_in x K_out MACs on the scalar pipeline, write the K_out-float
 * result row (posted).
 */
sim::Process
denseThreadProc(DenseContext &ctx, unsigned tid, uint64_t row_begin,
                uint64_t row_end, uint64_t k_in, uint64_t k_out)
{
    const unsigned core =
        tid / (ctx.cfg.mtpsPerCore * ctx.cfg.threadsPerMtp);
    auto &issue = ctx.mtpIssue[tid / ctx.cfg.threadsPerMtp];
    const double in_bytes = 4.0 * static_cast<double>(k_in);
    const double out_bytes = 4.0 * static_cast<double>(k_out);
    const double macs_per_row =
        static_cast<double>(k_in) * static_cast<double>(k_out);

    // Stuck-core hazard: drawn once per thread at start; the watchdog
    // reset costs stuckResetNs before the thread makes progress.
    if (ctx.faults != nullptr) [[unlikely]] {
        if (ctx.faults->stuckCore()) {
            co_await ctx.engine.delay(ctx.faults->config().stuckResetNs);
            ctx.recoveryNs += ctx.faults->config().stuckResetNs;
            ++ctx.stuckResets;
        }
    }

    for (uint64_t row = row_begin; row < row_end; ++row) {
        uint64_t h = row;
        const auto slice = static_cast<unsigned>(
            pgcn::splitMix64(h) % ctx.cfg.numCores);
        // Streamed input row: bandwidth reserved, latency pipelined
        // behind the previous row's compute (the response only pays
        // the return hop past bandwidth service).
        const MemoryAccess read = co_await ctx.memory.readStriped(
            core, slice, in_bytes, /*pipelined=*/true);
        ctx.recoveryNs += read.recoveryNs;
        if (read.failed) [[unlikely]] {
            ctx.recordFault("input-row read", core, slice);
            co_return;
        }

        // The MAC loop on the scalar pipeline (loop-unrolled; see
        // PiumaConfig::issueCostPerMac).
        co_await issue.transfer(ctx.cfg.issueCostPerMac * macs_per_row +
                                ctx.cfg.issueCostPerEdge);

        // Posted result-row write: the thread does not wait, so the
        // write is request-only traffic — but an unrecoverable drop
        // of it is still a lost result. Its recovery time and first
        // failure are recorded slice-side and consumed by
        // simulateDenseMm after the run drains (postedRecoveryNs /
        // postedFault).
        ctx.memory.writeStripedPosted(core, slice, out_bytes,
                                      /*pipelined=*/true);
    }
}

} // namespace

DenseRunStats
simulateDenseMm(uint64_t num_vertices, uint64_t k_in, uint64_t k_out,
                const PiumaConfig &cfg, telemetry::Session *session,
                const sim::SimControls *controls)
{
    cfg.validate();
    if (num_vertices == 0 || k_in == 0 || k_out == 0)
        PGCN_THROW(ShapeError, "dense MM needs positive dimensions");

    DenseContext ctx(cfg);

    if (controls != nullptr) {
        ctx.memory.setFaultInjector(controls->faults);
        ctx.faults = controls->faults;
        ctx.domains.setRunLimits(controls->limits);
    }

    if (session != nullptr) {
        session->beginKernel("dense/k_in=" + std::to_string(k_in) +
                             "/k_out=" + std::to_string(k_out));
        ctx.memory.attachTelemetry(session);
        telemetry::Registry &reg = session->registry();
        reg.registerGauge("sim.queue_depth", telemetry::GaugeKind::Value,
                          [&ctx] {
                              return static_cast<double>(
                                  ctx.engine.queueDepth());
                          });
        reg.registerGauge(
            "piuma.mtp.issue_util", telemetry::GaugeKind::Rate, [&ctx] {
                double busy = 0.0;
                for (const auto &r : ctx.mtpIssue)
                    busy += r.busyTime();
                return busy / static_cast<double>(ctx.mtpIssue.size());
            });
        if (session->samplePeriodNs() > 0.0) {
            ctx.domains.attachObserver(&session->sampler(),
                                       session->samplePeriodNs());
        }
    }

    const unsigned total_threads = cfg.totalThreads();
    for (unsigned tid = 0; tid < total_threads; ++tid) {
        const uint64_t begin = num_vertices * tid / total_threads;
        const uint64_t end = num_vertices * (tid + 1) / total_threads;
        if (begin < end)
            denseThreadProc(ctx, tid, begin, end, k_in, k_out);
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const sim::SimTime makespan = ctx.domains.run();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

    // Typed fault surfaces only after the run drains (coroutines never
    // throw through the engine). Posted result-row writes record their
    // unrecoverable drops slice-side; the earliest fault of either
    // kind wins.
    const PostedFault posted = ctx.memory.postedFault();
    if (posted.failed &&
        (!ctx.faulted || posted.whenNs < ctx.faultWhenNs)) {
        ctx.faulted = true;
        ctx.faultSite = "core" + std::to_string(posted.core) +
                        " result-row write on slice " +
                        std::to_string(posted.slice);
        ctx.faultWhenNs = posted.whenNs;
    }
    if (ctx.faulted) {
        throw sim::SimFaultError(
            ctx.faultSite, ctx.faultWhenNs,
            ctx.faults != nullptr ? ctx.faults->config().maxRetries + 1
                                  : 1);
    }

    DenseRunStats stats;
    stats.makespanNs = makespan;
    stats.flop = 2.0 * static_cast<double>(num_vertices) *
                 static_cast<double>(k_in) * static_cast<double>(k_out);
    stats.gflops = makespan > 0 ? stats.flop / makespan : 0.0;
    stats.memUtilization = ctx.memory.averageSliceUtilization(makespan);
    double issue_busy = 0.0;
    for (const auto &mtp : ctx.mtpIssue)
        issue_busy += mtp.utilization(makespan);
    stats.issueUtilization =
        issue_busy / static_cast<double>(ctx.mtpIssue.size());
    stats.retries = ctx.memory.retries();
    stats.timeoutsFired = ctx.memory.timeoutsFired() + ctx.stuckResets;
    stats.goodputBytes = ctx.memory.bytesRead() + ctx.memory.bytesWritten();
    stats.recoveryNs = ctx.recoveryNs + ctx.memory.postedRecoveryNs();
    stats.simEvents = ctx.domains.eventsProcessed();
    stats.wallSeconds = wall;
    stats.eventsPerSec =
        wall > 0.0 ? static_cast<double>(stats.simEvents) / wall : 0.0;
    stats.peakEventQueueDepth = ctx.domains.peakQueueDepth();

    if (session != nullptr) {
        telemetry::Registry &reg = session->registry();
        reg.counter("piuma.dense.makespan_ns").add(stats.makespanNs);
        reg.counter("piuma.dense.flop").add(stats.flop);
        reg.counter("sim.events")
            .add(static_cast<double>(stats.simEvents));
        session->endKernel(stats.makespanNs);
    }
    return stats;
}

} // namespace pgcn::piuma
