#include "piuma/gcn_sim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn::piuma {

GcnSimResult
simulateGcn(const graph::Csr &csr, const std::vector<GcnSimLayer> &layers,
            const PiumaConfig &cfg, SpmmAlgorithm alg,
            telemetry::Session *session)
{
    if (layers.empty())
        PGCN_THROW(ConfigError, "GCN needs at least one layer");
    GcnSimResult result;
    result.spmmLayers.reserve(layers.size());
    result.denseLayers.reserve(layers.size());

    for (const GcnSimLayer &layer : layers) {
        const DenseRunStats dense = simulateDenseMm(
            csr.numVertices(), layer.kIn, layer.kOut, cfg, session);
        const SpmmRunStats spmm = simulateSpmm(
            csr, static_cast<unsigned>(layer.kOut), cfg, alg, session);
        result.denseNs += dense.makespanNs;
        result.spmmNs += spmm.makespanNs;
        result.simEvents += dense.simEvents + spmm.simEvents;
        result.wallSeconds += dense.wallSeconds + spmm.wallSeconds;
        result.peakEventQueueDepth =
            std::max({result.peakEventQueueDepth,
                      dense.peakEventQueueDepth,
                      spmm.peakEventQueueDepth});
        result.denseLayers.push_back(dense);
        result.spmmLayers.push_back(spmm);
    }
    result.totalNs = result.spmmNs + result.denseNs;
    result.eventsPerSec =
        result.wallSeconds > 0.0
            ? static_cast<double>(result.simEvents) / result.wallSeconds
            : 0.0;
    return result;
}

} // namespace pgcn::piuma
