/**
 * @file
 * Random-walk simulation on PIUMA (paper Section VI, "Graph
 * Clustering and Sampling"): neighbourhood-sampling GNNs (pinSAGE,
 * graphSAGE) are driven by random walks, a latency-bound pointer
 * chase that PIUMA accelerates through massive multithreading [5].
 *
 * Each simulated walk step performs two dependent stall-on-use reads
 * (the row-offset pair, then a uniformly chosen column entry) with no
 * locality, so a single walker runs at 1/(2 x memory latency); the
 * machine's throughput comes entirely from the number of concurrent
 * hardware threads.
 */
#ifndef PGCN_PIUMA_WALK_PROGRAMS_HPP
#define PGCN_PIUMA_WALK_PROGRAMS_HPP

#include <cstdint>

#include "graph/csr.hpp"
#include "piuma/config.hpp"

namespace pgcn::piuma {

/** Outcome of one simulated random-walk batch. */
struct WalkRunStats
{
    double makespanNs = 0.0;     ///< end-to-end simulated time
    uint64_t totalSteps = 0;     ///< walk steps completed
    double stepsPerNs = 0.0;     ///< aggregate throughput
    double avgStepLatencyNs = 0.0; ///< mean per-step critical path
    double memUtilization = 0.0; ///< slice-controller utilisation
    uint64_t simEvents = 0;      ///< DES events executed

    // Simulator (host) throughput, measured around Engine::run().
    double wallSeconds = 0.0;      ///< host wall-clock of the run
    double eventsPerSec = 0.0;     ///< simEvents / wallSeconds
    uint64_t peakEventQueueDepth = 0; ///< max pending events observed
};

/**
 * Simulate @p num_walks independent random walks of @p walk_length
 * steps over @p csr, spread across all hardware threads.
 *
 * @param csr Graph to walk (weights ignored; structure only).
 * @param num_walks Number of walks (>= 1).
 * @param walk_length Steps per walk (>= 1).
 * @param cfg PIUMA system description.
 * @param seed Walk RNG seed (walks are deterministic per seed).
 */
WalkRunStats simulateRandomWalk(const graph::Csr &csr, uint64_t num_walks,
                                uint32_t walk_length,
                                const PiumaConfig &cfg,
                                uint64_t seed = 99);

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_WALK_PROGRAMS_HPP
