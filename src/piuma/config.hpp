/**
 * @file
 * PIUMA system configuration.
 *
 * Parameter defaults follow the published PIUMA description [5] where
 * public (pipeline organisation, thread counts, offload engines,
 * DGAS) and plausible engineering values where proprietary (exact
 * bandwidths/latencies). The experiments sweep the proprietary
 * parameters, so the reproduced *shapes* do not depend on the
 * absolute defaults; DESIGN.md documents each substitution.
 */
#ifndef PGCN_PIUMA_CONFIG_HPP
#define PGCN_PIUMA_CONFIG_HPP

#include <cstdint>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn::piuma {

/**
 * How CSR rows and feature rows are assigned to DRAM slices.
 *
 * Hashed is the PIUMA default and deliberately destroys locality: a
 * splitmix hash of the vertex id spreads consecutive rows across the
 * whole machine, trading remote traffic for immunity to skew.
 * Blocked assigns contiguous vertex ranges to consecutive slices
 * (slice = v * numCores / |V|), which is what makes a locality-aware
 * vertex ORDER visible to the model: with the edge-parallel split,
 * core c works on the rows that blocked placement stores in slice c,
 * so an islandized/RCM order turns its neighbour accesses local.
 */
enum class RowPlacement
{
    Hashed,  ///< splitmix hash of the vertex id (default)
    Blocked, ///< contiguous ranges: slice = v * numCores / |V|
};

/** Name string for reports ("hashed" | "blocked"). */
inline const char *
rowPlacementName(RowPlacement placement)
{
    return placement == RowPlacement::Hashed ? "hashed" : "blocked";
}

/**
 * Static description of a simulated PIUMA system. One DRAM slice per
 * core; cores grouped 8 to a die; dies connected by an optical
 * HyperX-like network (modelled as a two-level latency table).
 */
struct PiumaConfig
{
    /// Total PIUMA cores (each contributes one DRAM slice).
    unsigned numCores = 8;
    /// Multi-threaded pipelines per core.
    unsigned mtpsPerCore = 4;
    /// Hardware threads per MTP (round-robin, 1 in-flight instr each).
    unsigned threadsPerMtp = 16;
    /// Single-threaded pipelines per core (management tasks).
    unsigned stpsPerCore = 2;
    /// Cores per die (fixed by the PIUMA floorplan).
    unsigned coresPerDie = 8;

    /// Pipeline clock in GHz == instructions per ns issue rate.
    double clockGhz = 1.0;

    /// DRAM access latency of a slice (ns); Fig. 6/7 sweep this.
    double dramLatencyNs = 45.0;
    /// Per-slice memory-controller bandwidth (GB/s == bytes/ns).
    /// PIUMA pairs each core with a narrow custom DRAM channel
    /// optimized for 8-byte accesses; 14 GB/s reproduces the paper's
    /// Fig. 8 (left) crossover where PIUMA's aggregate bandwidth
    /// overtakes the dual-socket Xeon at ~16 cores, and gives the
    /// published "TB/s aggregate" at node scale (256 cores).
    double sliceBandwidthGBps = 14.0;

    /// One-way network latency between cores on the same die (ns).
    double netSameDieNs = 20.0;
    /// One-way network latency between cores on different dies (ns),
    /// crossing the optical HyperX links. Sized so that remote reads
    /// in a 32-core system average ~6x the local DRAM latency, as the
    /// paper observes for NNZ reads — the effect that starves the
    /// stall-on-use loop-unrolled SpMM past 8 cores (Fig. 5) while
    /// the pipelined DMA engines shrug it off.
    double netCrossDieNs = 250.0;
    /// Per-core network port bandwidth for remote traffic (GB/s).
    double netPortBandwidthGBps = 51.2;

    /// DMA descriptor queue depth per core (backpressure point).
    unsigned dmaQueueDepth = 64;
    /// Fixed DMA-engine dispatch overhead per descriptor (ns).
    double dmaDescriptorOverheadNs = 0.5;
    /// Maximum transfers a DMA engine keeps in flight. Descriptors
    /// are *dispatched* strictly in arrival order, but their memory
    /// transfers overlap up to this depth — the engine's latency
    /// tolerance. Small embedding dimensions split into many tiny
    /// DGAS chunks, so the engine needs deep memory-level parallelism
    /// (256 x 8-byte chunks is ~2 KiB of in-flight buffering).
    unsigned dmaMaxInflight = 256;
    /// Scratchpad bandwidth used by DMA copy-add accumulation (GB/s).
    double spadBandwidthGBps = 204.8;

    /// Cache line size (bytes): granularity of MTP line fetches.
    unsigned cacheLineBytes = 64;

    /// Fine-grained (8-byte) DGAS interleaving of feature/output rows
    /// across slices. Disabling it places each row on a single slice,
    /// which lets high-degree hub vertices turn one DRAM controller
    /// into a hotspot — the ablation_dgas bench quantifies the cost.
    bool dgasFineInterleave = true;

    /// Vertex-to-slice placement for CSR and feature rows. Hashed
    /// reproduces the paper's DGAS behaviour with Algorithm 2's flat
    /// edge-parallel work division. Blocked exposes the vertex order
    /// to the model and switches work division to owner-computes
    /// (each core processes the edges of its own row block), so a
    /// locality-aware permutation reduces the remote-access fraction
    /// while a bad one also shows up as load imbalance. The reorder
    /// sweeps pair Blocked with dgasFineInterleave=false.
    RowPlacement rowPlacement = RowPlacement::Hashed;

    /// Multipliers applied by sweep experiments (Figs. 6 and 7).
    double dramLatencyScale = 1.0;
    double dramBandwidthScale = 1.0;

    /// Instruction-cost model (issue slots on the MTP pipeline).
    double issueCostPerEdge = 2.0;       ///< loop + bookkeeping per edge
    double issueCostPerDescriptor = 2.0; ///< DMA descriptor setup
    /// Issue slots per MAC; 0.5 models the fused multiply-add pairs
    /// the unrolled loop exposes to the in-order pipeline.
    double issueCostPerMac = 0.5;
    double issueCostPerLineLoad = 1.0;   ///< one load instruction

    /** Threads in the whole system. */
    unsigned
    totalThreads() const
    {
        return numCores * mtpsPerCore * threadsPerMtp;
    }

    /** Effective DRAM latency after sweep scaling (ns). */
    double
    effectiveDramLatencyNs() const
    {
        return dramLatencyNs * dramLatencyScale;
    }

    /** Effective slice bandwidth after sweep scaling (bytes/ns). */
    double
    effectiveSliceBandwidth() const
    {
        return sliceBandwidthGBps * dramBandwidthScale;
    }

    /** Aggregate system DRAM bandwidth (bytes/ns == GB/s). */
    double
    aggregateBandwidth() const
    {
        return effectiveSliceBandwidth() * numCores;
    }

    /**
     * One-way network latency between two cores (0 when local).
     */
    double
    oneWayLatencyNs(unsigned from_core, unsigned to_core) const
    {
        if (from_core == to_core)
            return 0.0;
        if (from_core / coresPerDie == to_core / coresPerDie)
            return netSameDieNs;
        return netCrossDieNs;
    }

    /**
     * Validate every field; throws ConfigError naming the offending
     * parameter. NaN, infinity, and zero-where-positive-is-required
     * are all rejected here so they cannot surface downstream as
     * inf/NaN simulated timings.
     */
    void
    validate() const
    {
        if (numCores == 0 || mtpsPerCore == 0 || threadsPerMtp == 0) {
            PGCN_THROW(ConfigError,
                       "PIUMA config requires non-zero cores/MTPs/threads");
        }
        check::nonZero(coresPerDie, "piuma.coresPerDie");
        check::positive(clockGhz, "piuma.clockGhz");
        check::nonNegative(dramLatencyNs, "piuma.dramLatencyNs");
        check::positive(sliceBandwidthGBps, "piuma.sliceBandwidthGBps");
        check::nonNegative(netSameDieNs, "piuma.netSameDieNs");
        check::nonNegative(netCrossDieNs, "piuma.netCrossDieNs");
        check::positive(netPortBandwidthGBps,
                        "piuma.netPortBandwidthGBps");
        if (dmaQueueDepth == 0)
            PGCN_THROW(ConfigError, "PIUMA DMA queue depth must be positive");
        check::nonNegative(dmaDescriptorOverheadNs,
                           "piuma.dmaDescriptorOverheadNs");
        check::nonZero(dmaMaxInflight, "piuma.dmaMaxInflight");
        check::positive(spadBandwidthGBps, "piuma.spadBandwidthGBps");
        check::nonZero(cacheLineBytes, "piuma.cacheLineBytes");
        check::nonNegative(dramLatencyScale, "piuma.dramLatencyScale");
        // The bandwidth scale divides into service durations: zero
        // would make every transfer take infinitely long.
        check::positive(dramBandwidthScale, "piuma.dramBandwidthScale");
        check::nonNegative(issueCostPerEdge, "piuma.issueCostPerEdge");
        check::nonNegative(issueCostPerDescriptor,
                           "piuma.issueCostPerDescriptor");
        check::nonNegative(issueCostPerMac, "piuma.issueCostPerMac");
        check::nonNegative(issueCostPerLineLoad,
                           "piuma.issueCostPerLineLoad");
    }

    /** A single 8-core PIUMA die (the Fig. 7 system). */
    static PiumaConfig
    singleDie()
    {
        PiumaConfig cfg;
        cfg.numCores = 8;
        return cfg;
    }

    /**
     * A full PIUMA node: 32 dies x 8 cores = 256 cores, >16K threads
     * and TB/s-class aggregate bandwidth, matching the node-level
     * description in [5]. Used by the Fig. 9/10 platform comparison.
     */
    static PiumaConfig
    node()
    {
        PiumaConfig cfg;
        cfg.numCores = 256;
        return cfg;
    }
};

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_CONFIG_HPP
