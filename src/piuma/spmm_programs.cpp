#include "piuma/spmm_programs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "piuma/dma.hpp"
#include "piuma/memory.hpp"
#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "sim/monitor.hpp"
#include "sim/resource.hpp"
#include "telemetry/session.hpp"

namespace pgcn::piuma {

using graph::Csr;
using graph::EdgeId;
using graph::VertexId;

const char *
spmmAlgorithmName(SpmmAlgorithm alg)
{
    switch (alg) {
      case SpmmAlgorithm::LoopUnrolled:
        return "loop-unrolled";
      case SpmmAlgorithm::Dma:
        return "dma";
    }
    PGCN_PANIC("unknown SpMM algorithm");
}

const char *
scalingBoundName(const SpmmRunStats &stats, unsigned total_threads)
{
    // A saturated resource is the bottleneck no matter what the event
    // graph's shape says: serialised event chains behind a full queue
    // are a symptom of the saturation, not the cause (a bandwidth
    // -bound SpMM shows a short critical path *because* every thread
    // is parked behind the same DRAM slice).
    constexpr double kSaturated = 0.85;
    if (stats.maxMemUtilization >= kSaturated)
        return "resource:mem";
    if (stats.netUtilization >= kSaturated)
        return "resource:net";
    if (stats.issueUtilization >= kSaturated)
        return "resource:issue";
    if (stats.dmaUtilization >= kSaturated)
        return "resource:dma";
    // No resource saturated but fewer independent event chains than
    // hardware threads: adding threads cannot help.
    if (stats.criticalPathParallelism > 0.0 &&
        stats.criticalPathParallelism <
            static_cast<double>(total_threads))
        return "critical-path";
    return "latency";
}

namespace {

/** Bytes of CSR (col + val) covered by one cache line. */
constexpr double kNnzBytesPerEdge = 8.0; // 4B column + 4B value

/**
 * Everything one simulated SpMM run shares: the event domains, the
 * memory system, per-MTP issue resources, per-core DMA engines and
 * the stat accumulators the thread coroutines write into.
 *
 * Sharding layout: cores are split into `domains` contiguous groups
 * (a domain stands in for one PIUMA node / DRAM-slice group); every
 * core's agents, issue resources and DMA queue live on the core's
 * domain engine, and memory requests/responses travel between
 * domains as keyed events (see piuma/memory.hpp). The set runs
 * Sequenced or Parallel per MemorySystem::domainPlan — the carried
 * keys make both modes dispatch identically, so the event order,
 * every always-on stat and every output byte are identical for any
 * domain count and either mode (the differential tests pin this).
 *
 * Every mutable accumulator is sharded per core (single writer: only
 * code running in the core's domain touches the core's shard) and
 * reduced in core-index order after the run, so aggregates are
 * domain-count- and mode-invariant.
 *
 * Declared first so the engines outlive every queue/resource/monitor
 * that registers against them.
 */
struct RunContext
{
    /// Per-core accumulator shard, cache-line aligned so shards on
    /// different worker threads never share a line.
    struct alignas(64) CoreStats
    {
        // Stall attribution by wait site.
        double nnzStallNs = 0.0;
        double rowOffsetStallNs = 0.0;
        double featureStallNs = 0.0;
        double dmaQueueStallNs = 0.0;
        double issueNs = 0.0;
        // Taxonomy re-bucketing of the same waits by where they were
        // served (always on: one branch + one add per wait).
        double stallMemNs = 0.0;
        double stallNetNs = 0.0;
        double nnzLatencySum = 0.0;
        uint64_t nnzReads = 0;
        // Recovery accounting: thread time inside the modeled
        // protocol (timeout + backoff + watchdog resets), carved out
        // of the memory/network stall taxonomy so hidden retries and
        // exposed retries stay distinguishable.
        double recoveryStallNs = 0.0;
        uint64_t stuckResets = 0;
        // First unrecoverable fault seen by this core's threads. A
        // coroutine cannot throw through the engine, so it records
        // the fault, bails out of its work loop, and simulateSpmm
        // reduces the shards (earliest detection wins, ties to the
        // lowest core) and raises SimFaultError after the run.
        bool faulted = false;
        std::string faultSite;
        sim::SimTime faultWhenNs = 0.0;
    };

    RunContext(const Csr &csr_in, unsigned k_in, const PiumaConfig &cfg_in,
               const sim::DomainSet::Options &opts)
        : domains(opts), engine(domains.engine(0)), csr(csr_in),
          k(k_in), cfg(cfg_in), memory(domains, cfg_in)
    {
        const unsigned total_mtps = cfg.numCores * cfg.mtpsPerCore;
        mtpIssue.reserve(total_mtps);
        for (unsigned m = 0; m < total_mtps; ++m)
            mtpIssue.emplace_back(engineOfCore(m / cfg.mtpsPerCore),
                                  cfg.clockGhz);
        liveThreadsPerCore.assign(cfg.numCores,
                                  cfg.mtpsPerCore * cfg.threadsPerMtp);
        coreStats.resize(cfg.numCores);
    }

    /// Domain owning @p core (and DRAM slice `core`, the slices being
    /// core-attached). Contiguous blocks: core c -> c * D / numCores.
    unsigned
    domainOfCore(unsigned core) const
    {
        return static_cast<unsigned>(static_cast<uint64_t>(core) *
                                     domains.domains() / cfg.numCores);
    }

    /// The event-domain engine hosting @p core's agents.
    sim::Engine &
    engineOfCore(unsigned core)
    {
        return domains.engine(domainOfCore(core));
    }

    sim::DomainSet domains;
    sim::Engine &engine; ///< domain 0's engine (setup/sequenced use)
    const Csr &csr;
    unsigned k;
    const PiumaConfig &cfg;
    MemorySystem memory;
    std::vector<sim::BandwidthResource> mtpIssue;
    std::vector<DmaEngine> dmaEngines;
    std::vector<unsigned> liveThreadsPerCore;
    std::vector<CoreStats> coreStats;
    /// Pre-drawn stuck-core hazards per thread id. Drawn before the
    /// workers spawn (the main injector stays single-threaded); empty
    /// when fault injection is off.
    std::vector<char> stuckAtStart;
    /// Occupancy/stall monitor; null leaves the wait sites at one
    /// predictable branch each. Attaching one forces Sequenced mode.
    sim::MonitorHub *monitor = nullptr;
    /// Fault injector shared with memory/DMA (fork source); null
    /// disables the stuck-core hazard draw at thread start.
    sim::FaultInjector *faults = nullptr;

    /// Credit a resolved memory wait to the locality taxonomy and,
    /// when a monitor is attached, to the core's stall timeline.
    /// Striped accesses are classified by their first slice. The
    /// recovery portion of the wait (timeout/backoff re-issues) is
    /// credited to RecoveryWait instead of memory/network, so the
    /// taxonomy reads: site sums == memory + network + recovery.
    /// @p now is the core's domain clock at resolution time.
    void
    noteMemWait(unsigned core, unsigned slice, sim::SimTime t0,
                sim::SimTime now, double waited, double recovery)
    {
        CoreStats &cs = coreStats[core];
        const bool local = slice == core;
        (local ? cs.stallMemNs : cs.stallNetNs) += waited - recovery;
        cs.recoveryStallNs += recovery;
#ifndef PGCN_NO_TELEMETRY
        if (monitor != nullptr) [[unlikely]] {
            if (recovery > 0.0)
                monitor->noteRecovery(core, t0, t0 + recovery);
            monitor->endWait(core,
                             local ? sim::StallCause::MemoryWait
                                   : sim::StallCause::NetworkWait,
                             t0 + recovery, now);
        }
#else
        (void)t0;
        (void)now;
#endif
    }

    /// Close a stuck-core watchdog-reset wait (RecoveryWait cause).
    void
    noteStuckReset(unsigned core, sim::SimTime t0, sim::SimTime now)
    {
        CoreStats &cs = coreStats[core];
        cs.recoveryStallNs += now - t0;
        ++cs.stuckResets;
#ifndef PGCN_NO_TELEMETRY
        if (monitor != nullptr) [[unlikely]] {
            monitor->endWait(core, sim::StallCause::RecoveryWait, t0,
                             now);
        }
#else
        (void)t0;
        (void)now;
#endif
    }

    /// Record this core's first unrecoverable fault (cold path).
    void
    recordFault(const char *what, unsigned core, unsigned slice)
    {
        CoreStats &cs = coreStats[core];
        if (cs.faulted)
            return;
        cs.faulted = true;
        cs.faultSite = "core" + std::to_string(core) + " " + what +
                       " on slice " + std::to_string(slice);
        cs.faultWhenNs = engineOfCore(core).now();
    }

    /// Monitor hook before a blocking wait begins (no-op unattached).
    void
    beginWait(unsigned core, sim::SimTime t0)
    {
#ifndef PGCN_NO_TELEMETRY
        if (monitor != nullptr) [[unlikely]]
            monitor->beginWait(core, t0);
#else
        (void)core;
        (void)t0;
#endif
    }

    /// Close a queue-full backpressure wait on the monitor.
    void
    noteQueueWait(unsigned core, sim::SimTime t0, sim::SimTime now)
    {
#ifndef PGCN_NO_TELEMETRY
        if (monitor != nullptr) [[unlikely]]
            monitor->endWait(core, sim::StallCause::QueueFull, t0, now);
#else
        (void)core;
        (void)t0;
        (void)now;
#endif
    }

    unsigned
    coreOfThread(unsigned tid) const
    {
        return tid / (cfg.mtpsPerCore * cfg.threadsPerMtp);
    }

    unsigned
    mtpOfThread(unsigned tid) const
    {
        return tid / cfg.threadsPerMtp;
    }

    /// Slice owning cache line @p line of an interleaved array.
    unsigned
    lineSlice(uint64_t line) const
    {
        return static_cast<unsigned>(line % cfg.numCores);
    }

    /// First slice of the (8-byte-interleaved) feature/output row of
    /// vertex @p v. Hashed placement (the default) spreads structure
    /// in vertex ids so hot rows cannot align onto one slice; blocked
    /// placement maps contiguous id ranges to consecutive slices,
    /// which is what lets a locality-aware reordering reduce the
    /// remote-access fraction (cfg.rowPlacement).
    unsigned
    rowSlice(VertexId v) const
    {
        if (cfg.rowPlacement == RowPlacement::Blocked) {
            return static_cast<unsigned>(static_cast<uint64_t>(v) *
                                         cfg.numCores /
                                         csr.numVertices());
        }
        uint64_t h = v;
        return static_cast<unsigned>(pgcn::splitMix64(h) % cfg.numCores);
    }

    /**
     * Edge range of thread @p tid. Hashed placement keeps Algorithm
     * 2's flat edge-parallel split (bit-identical to older builds).
     * Blocked placement goes owner-computes: each core processes
     * exactly the edges of the row block it hosts, and the core's
     * threads split that block's edges evenly. Locality then follows
     * placement, and load balance is surrendered to the vertex
     * ordering — the trade the reorder sweeps measure.
     */
    std::pair<EdgeId, EdgeId>
    threadEdgeRange(unsigned tid) const
    {
        const EdgeId nnz = csr.numEdges();
        const unsigned total = cfg.totalThreads();
        if (cfg.rowPlacement != RowPlacement::Blocked)
            return {nnz * tid / total, nnz * (tid + 1) / total};
        const unsigned tpc = cfg.mtpsPerCore * cfg.threadsPerMtp;
        const unsigned core = coreOfThread(tid);
        const unsigned lane = tid % tpc;
        const uint64_t n = csr.numVertices();
        // First row owned by slice c is ceil(c * n / numCores): the
        // inverse image of rowSlice(v) = v * numCores / n.
        const auto block_start = [&](unsigned c) {
            return (static_cast<uint64_t>(c) * n + cfg.numCores - 1) /
                   cfg.numCores;
        };
        const EdgeId lo = csr.rowOffsets()[block_start(core)];
        const EdgeId hi = csr.rowOffsets()[block_start(core + 1)];
        return {lo + (hi - lo) * lane / tpc,
                lo + (hi - lo) * (lane + 1) / tpc};
    }

    uint64_t
    edgesPerNnzLine() const
    {
        return static_cast<uint64_t>(cfg.cacheLineBytes /
                                     kNnzBytesPerEdge);
    }

    uint64_t
    rowsPerOffsetLine() const
    {
        return cfg.cacheLineBytes / 8; // 8-byte offsets
    }
};

/**
 * The DMA-based SpMM thread (Section IV-B, "DMA implementation").
 */
sim::Process
dmaThreadProc(RunContext &ctx, unsigned tid)
{
    const auto [start, stop] = ctx.threadEdgeRange(tid);
    const unsigned core = ctx.coreOfThread(tid);
    // All of this thread's events live on its core's domain engine;
    // announcing there is what lets a cross-domain deadlock report
    // still resolve the agent's name.
    sim::Engine &eng = ctx.engineOfCore(core);
    co_await eng.announce("core" + std::to_string(core) + ".thread" +
                          std::to_string(tid));
    auto &issue = ctx.mtpIssue[ctx.mtpOfThread(tid)];
    auto &queue = ctx.dmaEngines[core].queue();
    const double row_bytes = 4.0 * ctx.k;
    const auto &offsets = ctx.csr.rowOffsets();
    const auto &cols = ctx.csr.cols();

    if (!ctx.stuckAtStart.empty() && ctx.stuckAtStart[tid]) [[unlikely]] {
        // Stuck hardware context: the watchdog resets it before it
        // can issue its first instruction (hazard pre-drawn in tid
        // order before the workers spawned).
        const sim::SimTime t0 = eng.now();
        ctx.beginWait(core, t0);
        co_await eng.delay(ctx.faults->config().stuckResetNs);
        ctx.noteStuckReset(core, t0, eng.now());
    }

    // Set when a memory access exhausts its retry budget: the thread
    // records the fault and bails out of its work (a coroutine cannot
    // throw through the engine), but still runs the terminate
    // epilogue so the run drains cleanly.
    bool dead = false;

    if (start < stop) {
        // Binary search for the starting row (Algorithm 2 line 4):
        // ~log2(|V|) dependent row-offset line reads.
        const unsigned steps = static_cast<unsigned>(std::ceil(
            std::log2(std::max<double>(2.0, ctx.csr.numVertices()))));
        uint64_t probe_seed = 0x5eed00 + tid;
        const uint64_t row_lines =
            ctx.csr.numVertices() / ctx.rowsPerOffsetLine() + 1;
        for (unsigned s = 0; s < steps; ++s) {
            co_await issue.transfer(2.0); // compare + load
            const uint64_t line =
                pgcn::splitMix64(probe_seed) % row_lines;
            const unsigned slice = ctx.lineSlice(line);
            const sim::SimTime t0 = eng.now();
            ctx.beginWait(core, t0);
            const MemoryAccess acc = co_await ctx.memory.read(
                core, slice, ctx.cfg.cacheLineBytes);
            const double waited = eng.now() - t0;
            ctx.coreStats[core].rowOffsetStallNs += waited;
            ctx.noteMemWait(core, slice, t0, eng.now(), waited,
                            acc.recoveryNs);
            if (acc.failed) [[unlikely]] {
                ctx.recordFault("row-offset read", core, slice);
                dead = true;
                break;
            }
        }

        VertexId u = ctx.csr.rowOfEdge(start);
        const uint64_t rows_per_line = ctx.rowsPerOffsetLine();
        uint64_t cur_nnz_line = ~uint64_t{0};
        uint64_t cur_row_line = (u + 1) / rows_per_line;
        // The edge loop is sequential, so the covering NNZ line is
        // tracked incrementally instead of divided out per edge.
        const uint64_t edges_per_line = ctx.edgesPerNnzLine();
        uint64_t line = start / edges_per_line;
        uint64_t line_end = (line + 1) * edges_per_line;

        for (EdgeId e = start; e < stop && !dead; ++e) {
            // NNZ (column + value) read, one line per 8 edges.
            if (e >= line_end) {
                ++line;
                line_end += edges_per_line;
            }
            if (line != cur_nnz_line) {
                cur_nnz_line = line;
                co_await issue.transfer(ctx.cfg.issueCostPerLineLoad);
                const unsigned slice = ctx.lineSlice(line);
                const sim::SimTime t0 = eng.now();
                ctx.beginWait(core, t0);
                const MemoryAccess acc = co_await ctx.memory.read(
                    core, slice, ctx.cfg.cacheLineBytes);
                const double waited = eng.now() - t0;
                RunContext::CoreStats &cs = ctx.coreStats[core];
                cs.nnzStallNs += waited;
                cs.nnzLatencySum += waited;
                ++cs.nnzReads;
                ctx.noteMemWait(core, slice, t0, eng.now(), waited,
                                acc.recoveryNs);
                if (acc.failed) [[unlikely]] {
                    ctx.recordFault("nnz read", core, slice);
                    dead = true;
                    break;
                }
            }

            // Row boundary: flush the accumulation buffer (atomic
            // writeback descriptor), advance the row cursor.
            while (e >= offsets[u + 1]) {
                co_await issue.transfer(ctx.cfg.issueCostPerDescriptor);
                sim::SimTime t0 = eng.now();
                ctx.beginWait(core, t0);
                co_await queue.push(DmaDescriptor{
                    DmaDescriptor::Op::WriteRow, ctx.rowSlice(u),
                    row_bytes});
                ctx.coreStats[core].dmaQueueStallNs += eng.now() - t0;
                ctx.noteQueueWait(core, t0, eng.now());
                ++u;
                const uint64_t rl = (u + 1) / rows_per_line;
                if (rl != cur_row_line) {
                    cur_row_line = rl;
                    co_await issue.transfer(
                        ctx.cfg.issueCostPerLineLoad);
                    const unsigned slice = ctx.lineSlice(rl);
                    t0 = eng.now();
                    ctx.beginWait(core, t0);
                    const MemoryAccess acc = co_await ctx.memory.read(
                        core, slice, ctx.cfg.cacheLineBytes);
                    const double waited = eng.now() - t0;
                    ctx.coreStats[core].rowOffsetStallNs += waited;
                    ctx.noteMemWait(core, slice, t0, eng.now(), waited,
                                    acc.recoveryNs);
                    if (acc.failed) [[unlikely]] {
                        ctx.recordFault("row-offset read", core, slice);
                        dead = true;
                        break;
                    }
                }
            }
            if (dead)
                break;

            // Emit the read-multiply-accumulate descriptor.
            co_await issue.transfer(ctx.cfg.issueCostPerEdge +
                                    ctx.cfg.issueCostPerDescriptor);
            const sim::SimTime t0 = eng.now();
            ctx.beginWait(core, t0);
            co_await queue.push(DmaDescriptor{
                DmaDescriptor::Op::ReadMulAcc, ctx.rowSlice(cols[e]),
                row_bytes});
            ctx.coreStats[core].dmaQueueStallNs += eng.now() - t0;
            ctx.noteQueueWait(core, t0, eng.now());
        }

        if (!dead) {
            // Final flush of the last (possibly shared) row.
            co_await issue.transfer(ctx.cfg.issueCostPerDescriptor);
            co_await queue.push(DmaDescriptor{
                DmaDescriptor::Op::WriteRow, ctx.rowSlice(u),
                row_bytes});
        }
    }

    if (--ctx.liveThreadsPerCore[core] == 0) {
        co_await queue.push(
            DmaDescriptor{DmaDescriptor::Op::Terminate, 0, 0.0});
    }
}

/**
 * The loop-unrolled SpMM thread: everything happens on the MTP
 * pipeline itself with stall-on-use cache-line loads.
 */
sim::Process
loopUnrolledThreadProc(RunContext &ctx, unsigned tid)
{
    const auto [start, stop] = ctx.threadEdgeRange(tid);
    const unsigned core = ctx.coreOfThread(tid);
    sim::Engine &eng = ctx.engineOfCore(core);
    co_await eng.announce("core" + std::to_string(core) + ".thread" +
                          std::to_string(tid));
    auto &issue = ctx.mtpIssue[ctx.mtpOfThread(tid)];
    const double row_bytes = 4.0 * ctx.k;
    const auto lines_per_row = static_cast<unsigned>(
        std::ceil(row_bytes / ctx.cfg.cacheLineBytes));
    const auto &offsets = ctx.csr.rowOffsets();
    const auto &cols = ctx.csr.cols();

    if (!ctx.stuckAtStart.empty() && ctx.stuckAtStart[tid]) [[unlikely]] {
        const sim::SimTime t0 = eng.now();
        ctx.beginWait(core, t0);
        co_await eng.delay(ctx.faults->config().stuckResetNs);
        ctx.noteStuckReset(core, t0, eng.now());
    }

    bool dead = false;

    if (start < stop) {
        const unsigned steps = static_cast<unsigned>(std::ceil(
            std::log2(std::max<double>(2.0, ctx.csr.numVertices()))));
        uint64_t probe_seed = 0x5eed00 + tid;
        const uint64_t row_lines =
            ctx.csr.numVertices() / ctx.rowsPerOffsetLine() + 1;
        for (unsigned s = 0; s < steps; ++s) {
            co_await issue.transfer(2.0);
            const uint64_t line =
                pgcn::splitMix64(probe_seed) % row_lines;
            const unsigned slice = ctx.lineSlice(line);
            const sim::SimTime t0 = eng.now();
            ctx.beginWait(core, t0);
            const MemoryAccess acc = co_await ctx.memory.read(
                core, slice, ctx.cfg.cacheLineBytes);
            const double waited = eng.now() - t0;
            ctx.coreStats[core].rowOffsetStallNs += waited;
            ctx.noteMemWait(core, slice, t0, eng.now(), waited,
                            acc.recoveryNs);
            if (acc.failed) [[unlikely]] {
                ctx.recordFault("row-offset read", core, slice);
                dead = true;
                break;
            }
        }

        VertexId u = ctx.csr.rowOfEdge(start);
        const uint64_t rows_per_line = ctx.rowsPerOffsetLine();
        uint64_t cur_nnz_line = ~uint64_t{0};
        uint64_t cur_row_line = (u + 1) / rows_per_line;
        const uint64_t edges_per_line = ctx.edgesPerNnzLine();
        uint64_t line = start / edges_per_line;
        uint64_t line_end = (line + 1) * edges_per_line;

        for (EdgeId e = start; e < stop && !dead; ++e) {
            if (e >= line_end) {
                ++line;
                line_end += edges_per_line;
            }
            if (line != cur_nnz_line) {
                cur_nnz_line = line;
                co_await issue.transfer(ctx.cfg.issueCostPerLineLoad);
                const unsigned slice = ctx.lineSlice(line);
                const sim::SimTime t0 = eng.now();
                ctx.beginWait(core, t0);
                const MemoryAccess acc = co_await ctx.memory.read(
                    core, slice, ctx.cfg.cacheLineBytes);
                const double waited = eng.now() - t0;
                RunContext::CoreStats &cs = ctx.coreStats[core];
                cs.nnzStallNs += waited;
                cs.nnzLatencySum += waited;
                ++cs.nnzReads;
                ctx.noteMemWait(core, slice, t0, eng.now(), waited,
                                acc.recoveryNs);
                if (acc.failed) [[unlikely]] {
                    ctx.recordFault("nnz read", core, slice);
                    break;
                }
            }

            while (e >= offsets[u + 1]) {
                // Atomic row writeback with posted remote stores: the
                // thread never waits on it, so it is request-only
                // traffic (an unrecoverable drop would have been lost
                // silently here before PR 10 too — the accumulated
                // row was already discarded).
                co_await issue.transfer(
                    static_cast<double>(lines_per_row));
                ctx.memory.writeStripedPosted(core, ctx.rowSlice(u),
                                              row_bytes);
                ++u;
                const uint64_t rl = (u + 1) / rows_per_line;
                if (rl != cur_row_line) {
                    cur_row_line = rl;
                    co_await issue.transfer(
                        ctx.cfg.issueCostPerLineLoad);
                    const unsigned slice = ctx.lineSlice(rl);
                    const sim::SimTime t0 = eng.now();
                    ctx.beginWait(core, t0);
                    const MemoryAccess acc = co_await ctx.memory.read(
                        core, slice, ctx.cfg.cacheLineBytes);
                    const double waited = eng.now() - t0;
                    ctx.coreStats[core].rowOffsetStallNs += waited;
                    ctx.noteMemWait(core, slice, t0, eng.now(), waited,
                                    acc.recoveryNs);
                    if (acc.failed) [[unlikely]] {
                        ctx.recordFault("row-offset read", core, slice);
                        dead = true;
                        break;
                    }
                }
            }
            if (dead)
                break;

            // Stall-on-use feature-vector line loads: the unrolled
            // loop requests one full cache line at a time, and the
            // single in-flight instruction per thread serialises
            // them.
            for (unsigned l = 0; l < lines_per_row; ++l) {
                co_await issue.transfer(ctx.cfg.issueCostPerLineLoad);
                const sim::SimTime t0 = eng.now();
                const double chunk =
                    std::min<double>(ctx.cfg.cacheLineBytes,
                                     row_bytes -
                                         l * ctx.cfg.cacheLineBytes);
                // Consecutive lines of the row live on consecutive
                // slices (8-byte DGAS interleave rounds to lines at
                // this access size). Without interleaving the whole
                // row lives on its placement slice, so every line of
                // it goes there — that is exactly what makes blocked
                // placement + a clustered ordering local.
                const unsigned line_slice =
                    ctx.cfg.dgasFineInterleave
                        ? (ctx.rowSlice(cols[e]) + l) % ctx.cfg.numCores
                        : ctx.rowSlice(cols[e]);
                ctx.beginWait(core, t0);
                const MemoryAccess acc = co_await
                    ctx.memory.readStriped(core, line_slice, chunk);
                const double waited = eng.now() - t0;
                ctx.coreStats[core].featureStallNs += waited;
                ctx.noteMemWait(core, line_slice, t0, eng.now(), waited,
                                acc.recoveryNs);
                if (acc.failed) [[unlikely]] {
                    ctx.recordFault("feature read", core, line_slice);
                    dead = true;
                    break;
                }
            }
            if (dead)
                break;

            // Scale-and-accumulate on the scalar pipeline.
            const sim::SimTime t0 = eng.now();
            co_await issue.transfer(ctx.cfg.issueCostPerEdge +
                                    ctx.cfg.issueCostPerMac * ctx.k);
            ctx.coreStats[core].issueNs += eng.now() - t0;
        }

        if (!dead) {
            // Final row flush.
            co_await issue.transfer(static_cast<double>(lines_per_row));
            ctx.memory.writeStripedPosted(core, ctx.rowSlice(u),
                                          row_bytes);
        }
    }

    --ctx.liveThreadsPerCore[core];
    co_return;
}

/**
 * Register the run-scoped gauges an SpMM timeline needs: event-queue
 * depth, live MTP threads, aggregate issue utilisation, and the
 * stall-attribution rates (delta stall-ns per simulated ns == mean
 * number of threads stalled on that cause during the sample window).
 */
void
attachRunGauges(RunContext &ctx, telemetry::Session &session)
{
    telemetry::Registry &reg = session.registry();
    reg.registerGauge("sim.queue_depth", telemetry::GaugeKind::Value,
                      [&ctx] {
                          return static_cast<double>(
                              ctx.engine.queueDepth());
                      });
    reg.registerGauge("piuma.mtp.threads_live",
                      telemetry::GaugeKind::Value, [&ctx] {
                          unsigned live = 0;
                          for (unsigned c : ctx.liveThreadsPerCore)
                              live += c;
                          return static_cast<double>(live);
                      });
    reg.registerGauge("piuma.mtp.issue_util", telemetry::GaugeKind::Rate,
                      [&ctx] {
                          double busy = 0.0;
                          for (const auto &r : ctx.mtpIssue)
                              busy += r.busyTime();
                          return busy /
                                 static_cast<double>(ctx.mtpIssue.size());
                      });
    // Shard-summing stall gauges: sessions force Sequenced mode, so
    // sampling these mid-run never races a writer.
    reg.registerGauge("piuma.mtp.stall.nnz", telemetry::GaugeKind::Rate,
                      [&ctx] {
                          double sum = 0.0;
                          for (const auto &cs : ctx.coreStats)
                              sum += cs.nnzStallNs;
                          return sum;
                      });
    reg.registerGauge("piuma.mtp.stall.row_offset",
                      telemetry::GaugeKind::Rate, [&ctx] {
                          double sum = 0.0;
                          for (const auto &cs : ctx.coreStats)
                              sum += cs.rowOffsetStallNs;
                          return sum;
                      });
    reg.registerGauge("piuma.mtp.stall.feature",
                      telemetry::GaugeKind::Rate, [&ctx] {
                          double sum = 0.0;
                          for (const auto &cs : ctx.coreStats)
                              sum += cs.featureStallNs;
                          return sum;
                      });
    reg.registerGauge("piuma.mtp.stall.dma_queue",
                      telemetry::GaugeKind::Rate, [&ctx] {
                          double sum = 0.0;
                          for (const auto &cs : ctx.coreStats)
                              sum += cs.dmaQueueStallNs;
                          return sum;
                      });
}

/** Publish the run's final aggregates as registry counters. */
void
publishRunCounters(const SpmmRunStats &stats, telemetry::Registry &reg)
{
    reg.counter("piuma.spmm.makespan_ns").add(stats.makespanNs);
    reg.counter("piuma.spmm.flop").add(stats.flop);
    reg.counter("piuma.spmm.bytes_read").add(stats.bytesRead);
    reg.counter("piuma.spmm.bytes_written").add(stats.bytesWritten);
    reg.counter("piuma.spmm.nnz_reads")
        .add(static_cast<double>(stats.nnzReads));
    reg.counter("piuma.spmm.stall.nnz_ns").add(stats.nnzStallNs);
    reg.counter("piuma.spmm.stall.row_offset_ns")
        .add(stats.rowOffsetStallNs);
    reg.counter("piuma.spmm.stall.feature_ns").add(stats.featureStallNs);
    reg.counter("piuma.spmm.stall.dma_queue_ns")
        .add(stats.dmaQueueStallNs);
    reg.counter("piuma.spmm.issue_ns").add(stats.issueNs);
    // Stall-attribution taxonomy + critical path (PR 7 observability).
    reg.counter("piuma.spmm.stall.memory_ns").add(stats.stallMemoryNs);
    reg.counter("piuma.spmm.stall.network_ns").add(stats.stallNetworkNs);
    reg.counter("sim.critical_path_events")
        .add(static_cast<double>(stats.criticalPathEvents));
    reg.counter("sim.events").add(static_cast<double>(stats.simEvents));
}

} // namespace

SpmmRunStats
simulateSpmm(const Csr &csr, unsigned embedding_dim, const PiumaConfig &cfg,
             SpmmAlgorithm alg, telemetry::Session *session,
             const sim::SimControls *controls)
{
    cfg.validate();
    if (embedding_dim == 0)
        PGCN_THROW(ShapeError, "embedding dimension must be positive");
    if (csr.numVertices() == 0)
        PGCN_THROW(ShapeError, "cannot simulate SpMM on an empty matrix");

    // A telemetry session or monitor hub shares single-threaded
    // geometry with the run; their presence downgrades Parallel mode
    // (domainPlan warns when the request was explicit).
    const bool sequenced_only =
        session != nullptr ||
        (controls != nullptr && controls->monitor != nullptr);
    const sim::DomainSet::Options opts =
        MemorySystem::domainPlan(cfg, controls, sequenced_only);
    RunContext ctx(csr, embedding_dim, cfg, opts);

    if (controls != nullptr) {
        ctx.memory.setFaultInjector(controls->faults);
        ctx.faults = controls->faults;
        ctx.domains.setRunLimits(controls->limits);
#ifndef PGCN_NO_TELEMETRY
        if (controls->monitor != nullptr) {
            // Monitors observe spans the model computes anyway and
            // never schedule events, so the simulated result stays
            // bit-identical (the determinism tests pin this).
            sim::MonitorHub &hub = *controls->monitor;
            hub.beginRun(cfg.numCores, cfg.mtpsPerCore);
            ctx.monitor = &hub;
            for (unsigned m = 0;
                 m < static_cast<unsigned>(ctx.mtpIssue.size()); ++m) {
                ctx.mtpIssue[m].attachMonitor(
                    hub.issueTimeline(m / cfg.mtpsPerCore));
            }
            ctx.memory.attachMonitor(&hub);
        }
#endif
    }

    if (session != nullptr) {
        session->beginKernel(std::string("spmm/") +
                             spmmAlgorithmName(alg) +
                             "/k=" + std::to_string(embedding_dim));
        ctx.memory.attachTelemetry(session);
        attachRunGauges(ctx, *session);
    }

    // Pre-draw the stuck-core hazards in tid order while the main
    // injector is still single-threaded: the run itself only ever
    // touches forked per-entity streams, so Parallel mode never
    // contends on shared generator state.
    if (ctx.faults != nullptr) {
        ctx.stuckAtStart.resize(cfg.totalThreads());
        for (auto &s : ctx.stuckAtStart)
            s = ctx.faults->stuckCore() ? 1 : 0;
    }

    if (alg == SpmmAlgorithm::Dma) {
        ctx.dmaEngines.reserve(cfg.numCores);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            ctx.dmaEngines.emplace_back(ctx.engineOfCore(c), ctx.memory,
                                        cfg, c);
        }
        // Attach after every engine is emplaced: the gauges capture
        // `this`, which must not move again.
        if (session != nullptr) {
            for (auto &engine : ctx.dmaEngines)
                engine.attachTelemetry(session);
        }
        if (controls != nullptr && controls->faults != nullptr) {
            for (auto &engine : ctx.dmaEngines)
                engine.setFaultInjector(controls->faults);
        }
#ifndef PGCN_NO_TELEMETRY
        if (ctx.monitor != nullptr) {
            for (unsigned c = 0; c < cfg.numCores; ++c)
                ctx.dmaEngines[c].attachMonitor(
                    ctx.monitor->dmaTimeline(c));
        }
#endif
        for (auto &engine : ctx.dmaEngines)
            engine.run();
        for (unsigned tid = 0; tid < cfg.totalThreads(); ++tid)
            dmaThreadProc(ctx, tid);
    } else {
        for (unsigned tid = 0; tid < cfg.totalThreads(); ++tid)
            loopUnrolledThreadProc(ctx, tid);
    }

    // The sampler rides the dispatch loop (it never schedules events),
    // so the run still ends exactly when the workload drains.
    if (session != nullptr && session->samplePeriodNs() > 0.0) {
        ctx.domains.attachObserver(&session->sampler(),
                                   session->samplePeriodNs());
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const sim::SimTime makespan = ctx.domains.run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    // Unrecoverable faults surface *after* the run drains: coroutines
    // never throw through the engine (that would std::terminate), they
    // record the fault, bail, and let the entry point raise the typed
    // error here. The queues were drained on the way out, so there is
    // no deadlock to race against. The per-core fault shards reduce
    // deterministically: earliest detection wins, ties to the lowest
    // core — the same answer for every domain count and mode.
    const RunContext::CoreStats *first_fault = nullptr;
    for (const RunContext::CoreStats &cs : ctx.coreStats) {
        if (!cs.faulted)
            continue;
        if (first_fault == nullptr ||
            cs.faultWhenNs < first_fault->faultWhenNs)
            first_fault = &cs;
    }
    if (first_fault != nullptr) {
        throw sim::SimFaultError(
            first_fault->faultSite, first_fault->faultWhenNs,
            ctx.faults != nullptr ? ctx.faults->config().maxRetries + 1
                                  : 1);
    }
    for (const auto &engine : ctx.dmaEngines) {
        if (engine.stats().failed) {
            throw sim::SimFaultError(
                engine.stats().failedDetail, makespan,
                ctx.faults != nullptr ? ctx.faults->config().maxRetries + 1
                                      : 1);
        }
    }

    SpmmRunStats stats;
    stats.makespanNs = makespan;
    stats.flop = 2.0 * static_cast<double>(csr.numEdges()) * embedding_dim;
    stats.gflops = makespan > 0 ? stats.flop / makespan : 0.0;
    stats.bytesRead = ctx.memory.bytesRead();
    stats.bytesWritten = ctx.memory.bytesWritten();
    stats.bytesServed = ctx.memory.sliceBytesServed();
    stats.memUtilization = ctx.memory.averageSliceUtilization(makespan);
    stats.maxMemUtilization = ctx.memory.maxSliceUtilization(makespan);
    stats.netUtilization = ctx.memory.averageNetworkUtilization(makespan);
    stats.memAccesses = ctx.memory.totalAccesses();
    stats.memRemoteAccesses = ctx.memory.remoteAccesses();
    stats.remoteAccessFraction = ctx.memory.remoteAccessFraction();
    if (stats.bytesServed > 0.0) {
        double max_slice = 0.0;
        for (size_t i = 0; i < ctx.memory.numSlices(); ++i)
            max_slice = std::max(max_slice, ctx.memory.sliceBytes(i));
        stats.maxSliceBytesFraction =
            max_slice * static_cast<double>(ctx.memory.numSlices()) /
            stats.bytesServed;
    }
    // Reduce the per-core shards in core-index order (a fixed-order
    // sum, so the floating-point result is domain/mode-invariant).
    double nnz_latency_sum = 0.0;
    uint64_t nnz_reads = 0;
    double recovery_stall = 0.0;
    uint64_t stuck_resets = 0;
    for (const RunContext::CoreStats &cs : ctx.coreStats) {
        stats.nnzStallNs += cs.nnzStallNs;
        stats.rowOffsetStallNs += cs.rowOffsetStallNs;
        stats.featureStallNs += cs.featureStallNs;
        stats.dmaQueueStallNs += cs.dmaQueueStallNs;
        stats.issueNs += cs.issueNs;
        stats.stallMemoryNs += cs.stallMemNs;
        stats.stallNetworkNs += cs.stallNetNs;
        nnz_latency_sum += cs.nnzLatencySum;
        nnz_reads += cs.nnzReads;
        recovery_stall += cs.recoveryStallNs;
        stuck_resets += cs.stuckResets;
    }
    if (makespan > 0.0) {
        double issue_busy = 0.0;
        for (const auto &r : ctx.mtpIssue)
            issue_busy += r.busyTime();
        stats.issueUtilization =
            issue_busy /
            (static_cast<double>(ctx.mtpIssue.size()) * makespan);
        double dma_busy = 0.0;
        for (const auto &engine : ctx.dmaEngines)
            dma_busy += engine.stats().busyNs;
        if (!ctx.dmaEngines.empty()) {
            stats.dmaUtilization =
                dma_busy /
                (static_cast<double>(ctx.dmaEngines.size()) * makespan);
        }
    }
    stats.criticalPathEvents = ctx.domains.criticalPathEvents();
    stats.criticalPathParallelism =
        stats.criticalPathEvents > 0
            ? static_cast<double>(ctx.domains.eventsProcessed()) /
                  static_cast<double>(stats.criticalPathEvents)
            : 0.0;
#ifndef PGCN_NO_TELEMETRY
    if (ctx.monitor != nullptr) {
        const sim::OccupancyReport rep = ctx.monitor->report(makespan);
        stats.latencyHidingEffectiveness =
            rep.latencyHidingEffectiveness;
        stats.exposedStallNs = rep.exposedStallNs;
    }
#endif
    stats.nnzReads = nnz_reads;
    stats.avgNnzLatencyNs =
        nnz_reads ? nnz_latency_sum / static_cast<double>(nnz_reads)
                  : 0.0;
    for (const auto &engine : ctx.dmaEngines)
        stats.dmaDescriptors += engine.stats().descriptors;
    // Recovery accounting: memory counters own transaction-level
    // retries/timeouts; DMA engines add their descriptor re-issues.
    // Goodput is demanded traffic only — bytesServed additionally
    // counts the bandwidth retries burned, and the conservation
    // invariant bytesServed == goodputBytes + retriedBytes is what
    // the soak test pins.
    stats.retries = ctx.memory.retries();
    stats.timeoutsFired = ctx.memory.timeoutsFired() + stuck_resets;
    stats.recoveryNs = recovery_stall + ctx.memory.postedRecoveryNs();
    for (const auto &engine : ctx.dmaEngines) {
        stats.retries += engine.stats().retries;
        stats.timeoutsFired += engine.stats().timeoutsFired;
        stats.recoveryNs += engine.stats().recoveryNs;
    }
    stats.retriedBytes = ctx.memory.retriedBytes();
    stats.goodputBytes = stats.bytesRead + stats.bytesWritten;
    stats.stuckResets = stuck_resets;
    stats.simEvents = ctx.domains.eventsProcessed();
    stats.wallSeconds = wall;
    stats.eventsPerSec =
        wall > 0.0 ? static_cast<double>(stats.simEvents) / wall : 0.0;
    stats.peakEventQueueDepth = ctx.domains.peakQueueDepth();

    if (session != nullptr) {
        publishRunCounters(stats, session->registry());
        session->endKernel(stats.makespanNs);
    }

    return stats;
}

} // namespace pgcn::piuma
