/**
 * @file
 * Dense matrix-multiplication on the PIUMA discrete-event model:
 * H' = H W with H of shape |V| x K_in streamed from DRAM, W resident
 * in the per-core scratchpads, and the MACs issued on the scalar MTP
 * pipelines (PIUMA has no SIMD unit — the paper's core limitation at
 * large embedding dimensions).
 *
 * Validates the node model's dense roofline: at large K the simulated
 * throughput converges to the scalar-pipeline peak; at tiny K it is
 * bandwidth-bound on the H stream.
 */
#ifndef PGCN_PIUMA_DENSE_PROGRAMS_HPP
#define PGCN_PIUMA_DENSE_PROGRAMS_HPP

#include <cstdint>

#include "piuma/config.hpp"
#include "sim/fault.hpp"

namespace pgcn::telemetry {
class Session;
} // namespace pgcn::telemetry

namespace pgcn::piuma {

/** Outcome of one simulated dense update. */
struct DenseRunStats
{
    double makespanNs = 0.0;     ///< simulated end-to-end time
    double flop = 0.0;           ///< 2 |V| K_in K_out
    double gflops = 0.0;         ///< achieved throughput
    double memUtilization = 0.0; ///< slice-controller utilisation
    double issueUtilization = 0.0; ///< mean MTP issue-slot occupancy
    uint64_t simEvents = 0;      ///< DES events executed

    /// Recovery counters (always on; all zero without fault
    /// injection). Same semantics as SpmmRunStats.
    uint64_t retries = 0;       ///< transaction re-issues
    uint64_t timeoutsFired = 0; ///< drop timeouts + stuck-core resets
    double goodputBytes = 0.0;  ///< demanded traffic delivered
    double recoveryNs = 0.0;    ///< modeled timeout + backoff time

    // Simulator (host) throughput, measured around Engine::run().
    double wallSeconds = 0.0;      ///< host wall-clock of the run
    double eventsPerSec = 0.0;     ///< simEvents / wallSeconds
    uint64_t peakEventQueueDepth = 0; ///< max pending events observed
};

/**
 * Simulate the dense update (|V| x k_in) * (k_in x k_out) with rows
 * distributed over all hardware threads. Weights are assumed
 * broadcast to scratchpads beforehand (their footprint is K_in x
 * K_out x 4 bytes, kilobytes at GCN scale).
 *
 * @param num_vertices Rows of H.
 * @param k_in Input feature dimension.
 * @param k_out Output feature dimension.
 * @param cfg PIUMA system description.
 * @param session Optional telemetry sink (kernel span, counters and
 *        gauge time series); null disables all recording.
 * @param controls Optional robustness controls (fault injector and
 *        Engine::RunLimits), as for simulateSpmm. Null means no
 *        perturbation and no limits, bit-identical to builds
 *        predating this parameter.
 *
 * @throws ConfigError / ShapeError on invalid inputs,
 *         sim::SimLimitError on an armed budget breach, and
 *         sim::SimFaultError when an injected fault exhausts its
 *         retry budget (raised after the run drains).
 */
DenseRunStats simulateDenseMm(uint64_t num_vertices, uint64_t k_in,
                              uint64_t k_out, const PiumaConfig &cfg,
                              telemetry::Session *session = nullptr,
                              const sim::SimControls *controls = nullptr);

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_DENSE_PROGRAMS_HPP
