/**
 * @file
 * The two PIUMA SpMM implementations of Section IV-B, executed on the
 * discrete-event timing model:
 *
 *  - Loop-unrolled: MTP threads perform the aggregation themselves.
 *    Feature vectors are fetched as stall-on-use 64-byte cache-line
 *    loads (the compiler unrolls eight embedding values per group)
 *    and MACs occupy the scalar issue pipeline. NNZ reads and feature
 *    lines serialize per thread because each MTP thread has a single
 *    in-flight instruction.
 *
 *  - DMA: threads only read NNZs and emit DMA descriptors; the
 *    per-core DMA engine performs vectorised read-multiply-accumulate
 *    against the scratchpad buffer and atomically writes finished
 *    rows, freeing the pipelines and pipelining memory latency away.
 *
 * Both follow the edge-parallel work division of Algorithm 2: the
 * |E| non-zeros are split evenly over all hardware threads, each
 * thread binary-searches its starting row, and row results are
 * written back with (remote) atomics at row boundaries.
 */
#ifndef PGCN_PIUMA_SPMM_PROGRAMS_HPP
#define PGCN_PIUMA_SPMM_PROGRAMS_HPP

#include <cstdint>

#include "graph/csr.hpp"
#include "piuma/config.hpp"
#include "sim/fault.hpp"

namespace pgcn::telemetry {
class Session;
} // namespace pgcn::telemetry

namespace pgcn::piuma {

/** Which SpMM implementation to simulate. */
enum class SpmmAlgorithm
{
    LoopUnrolled,
    Dma,
};

/** Name string for reports. */
const char *spmmAlgorithmName(SpmmAlgorithm alg);

/** Timing/traffic outcome of one simulated SpMM. */
struct SpmmRunStats
{
    double makespanNs = 0.0;     ///< simulated end-to-end time
    double flop = 0.0;           ///< 2 * |E| * K
    double gflops = 0.0;         ///< achieved throughput
    double bytesRead = 0.0;      ///< DRAM read traffic
    double bytesWritten = 0.0;   ///< DRAM write traffic
    /// Bytes the slice controllers serviced; conservation requires
    /// bytesServed == goodputBytes + retriedBytes (fp tolerance) —
    /// dropped attempts still burned bandwidth, so with fault
    /// injection bytesServed exceeds the demanded traffic by exactly
    /// the retried bytes. Without faults retriedBytes == 0 and this
    /// collapses to bytesServed == bytesRead + bytesWritten.
    double bytesServed = 0.0;
    double memUtilization = 0.0; ///< mean slice-controller utilisation
    double maxMemUtilization = 0.0; ///< hottest slice utilisation
    double netUtilization = 0.0;  ///< mean network-port utilisation

    /// DGAS locality counters (always on; see MemorySystem). Striped
    /// objects count one transaction per interleave chunk.
    uint64_t memAccesses = 0;       ///< slice transactions issued
    uint64_t memRemoteAccesses = 0; ///< transactions crossing the net
    double remoteAccessFraction = 0.0; ///< remote / total
    /// Hottest slice's served bytes over the per-slice mean (1.0 ==
    /// perfectly even traffic; grows when placement concentrates load).
    double maxSliceBytesFraction = 0.0;

    /// Per-thread stall attribution, summed over all threads (ns).
    double nnzStallNs = 0.0;      ///< waiting on NNZ (col/val) reads
    double rowOffsetStallNs = 0.0;///< waiting on row-offset reads
    double featureStallNs = 0.0;  ///< loop-unrolled feature-line waits
    double dmaQueueStallNs = 0.0; ///< blocked pushing DMA descriptors
    double issueNs = 0.0;         ///< pipeline issue (incl. MACs)

    /// Stall-attribution taxonomy (always on, like the DGAS locality
    /// counters): the per-site stalls above re-bucketed by *where* the
    /// wait was served. Memory = local slice, network = crossed the
    /// interconnect (classified by the access's first slice), queue =
    /// dmaQueueStallNs. The recovery portion of each wait (timeouts +
    /// backoffs of injected drops) is carved out into its own bucket,
    /// so stallMemoryNs + stallNetworkNs + thread-recovery ==
    /// nnzStallNs + rowOffsetStallNs + featureStallNs exactly; without
    /// faults the recovery term is zero and the old identity holds.
    double stallMemoryNs = 0.0;  ///< thread-waits served locally
    double stallNetworkNs = 0.0; ///< thread-waits that crossed the net

    /// Mean MTP issue-slot utilisation over the makespan (always on).
    double issueUtilization = 0.0;
    /// Mean DMA-engine busy fraction over the makespan (always on;
    /// 0 for the loop-unrolled algorithm).
    double dmaUtilization = 0.0;

    /// Event-graph critical path (always on): length of the longest
    /// dependency chain of events, and total events over it — the
    /// run's available parallelism, an upper bound on achievable
    /// speedup independent of any resource.
    uint64_t criticalPathEvents = 0;
    double criticalPathParallelism = 0.0; ///< simEvents / cpEvents

    /// Latency-hiding effectiveness (monitor-only; -1 when no
    /// MonitorHub was attached): the fraction of per-core stall-window
    /// time covered by issue activity on the same core. The exposed
    /// remainder is the StallCause::NoRunnable bucket in ns.
    double latencyHidingEffectiveness = -1.0;
    double exposedStallNs = 0.0;

    double avgNnzLatencyNs = 0.0; ///< mean observed NNZ read latency
    uint64_t nnzReads = 0;        ///< NNZ line fetches
    uint64_t dmaDescriptors = 0;  ///< DMA data descriptors processed
    uint64_t simEvents = 0;       ///< DES events executed

    /// Recovery counters (always on; all zero without fault injection).
    /// Memory transaction re-issues plus DMA descriptor re-issues.
    uint64_t retries = 0;
    /// Timeouts fired: one per dropped transaction/descriptor, plus
    /// one per stuck-core watchdog reset.
    uint64_t timeoutsFired = 0;
    /// Stuck-core hazards recovered by the watchdog reset.
    uint64_t stuckResets = 0;
    /// Demanded traffic actually delivered (bytesRead + bytesWritten);
    /// the degradation-envelope campaign divides by makespan for
    /// goodput GB/s.
    double goodputBytes = 0.0;
    /// Bandwidth burned by re-issued transactions; see bytesServed.
    double retriedBytes = 0.0;
    /// Total modeled recovery time (timeout + backoff spans) summed
    /// over threads and DMA engines (ns).
    double recoveryNs = 0.0;

    // Simulator (host) throughput, measured around Engine::run().
    double wallSeconds = 0.0;      ///< host wall-clock of the run
    double eventsPerSec = 0.0;     ///< simEvents / wallSeconds
    uint64_t peakEventQueueDepth = 0; ///< max pending events observed
};

/**
 * Simulate one SpMM (H_out = A * H_in) on PIUMA.
 *
 * @param csr The sparse matrix (a normalised adjacency).
 * @param embedding_dim K, the feature-vector length.
 * @param cfg PIUMA system description.
 * @param alg Which implementation to run.
 * @param session Optional telemetry sink: the run records a kernel
 *        span, hot-path counters/histograms, and gauge time series
 *        into it. Null (the default) disables all recording and must
 *        not change the simulated result (the determinism tests pin
 *        this).
 * @param controls Optional robustness controls: a seeded fault
 *        injector perturbing model timings and/or dropping
 *        transactions, descriptors, and threads (recovered under the
 *        modeled timeout/retry/backoff protocol), and watchdog budgets
 *        (Engine::RunLimits) for the run. Null (the default) means no
 *        perturbation and no limits, with bit-identical results to
 *        builds predating this parameter.
 *
 * @throws ConfigError / ShapeError on invalid inputs,
 *         sim::SimDeadlockError if the model wedges,
 *         sim::SimLimitError when an armed watchdog budget is hit, and
 *         sim::SimFaultError when an injected fault exhausts its retry
 *         budget (raised after the run drains — a drop schedule can
 *         degrade the run but never deadlock it).
 */
SpmmRunStats simulateSpmm(const graph::Csr &csr, unsigned embedding_dim,
                          const PiumaConfig &cfg, SpmmAlgorithm alg,
                          telemetry::Session *session = nullptr,
                          const sim::SimControls *controls = nullptr);

/**
 * Classify what bounds further scaling of @p stats' run: a saturated
 * resource ("resource:mem|net|issue|dma", any utilisation >= 85%,
 * checked first because a full resource serialises the event graph as
 * a side effect), else the event graph itself ("critical-path" —
 * fewer independent event chains than threads to fill), else
 * "latency" (the run is dominated by unhidden access latency). This
 * is the fig8 `bound` column.
 */
const char *scalingBoundName(const SpmmRunStats &stats,
                             unsigned total_threads);

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_SPMM_PROGRAMS_HPP
