/**
 * @file
 * End-to-end GCN inference on the PIUMA discrete-event model: each
 * layer's aggregation (SpMM program) and update (dense program) run
 * on the simulator back to back, yielding a fully simulated
 * per-kernel breakdown — the DES counterpart of the analytical
 * PiumaPlatform used for node-scale projections.
 */
#ifndef PGCN_PIUMA_GCN_SIM_HPP
#define PGCN_PIUMA_GCN_SIM_HPP

#include <vector>

#include "graph/csr.hpp"
#include "piuma/config.hpp"
#include "piuma/dense_programs.hpp"
#include "piuma/spmm_programs.hpp"

namespace pgcn::piuma {

/** One layer's feature dimensions. */
struct GcnSimLayer
{
    uint64_t kIn;
    uint64_t kOut;
};

/** Simulated timing of one full GCN inference. */
struct GcnSimResult
{
    double totalNs = 0.0;  ///< sum over layers and kernels
    double spmmNs = 0.0;   ///< aggregation time
    double denseNs = 0.0;  ///< update time
    std::vector<SpmmRunStats> spmmLayers;   ///< per-layer SpMM detail
    std::vector<DenseRunStats> denseLayers; ///< per-layer dense detail

    // Simulator (host) throughput aggregated over all kernel runs.
    uint64_t simEvents = 0;        ///< DES events across all kernels
    double wallSeconds = 0.0;      ///< host wall-clock across kernels
    double eventsPerSec = 0.0;     ///< simEvents / wallSeconds
    uint64_t peakEventQueueDepth = 0; ///< max pending events observed

    /** Fraction of total time in the sparse aggregation. */
    double
    spmmFraction() const
    {
        return totalNs > 0 ? spmmNs / totalNs : 0.0;
    }

    /** Fraction of total time in the dense update. */
    double
    denseFraction() const
    {
        return totalNs > 0 ? denseNs / totalNs : 0.0;
    }
};

/**
 * Simulate a whole GCN: for each layer, the dense update H W at
 * (kIn -> kOut) followed by the aggregation A (H W) at kOut (the
 * transform-then-aggregate order the paper profiles). Kernels run
 * sequentially, as a bulk-synchronous runtime schedules them.
 *
 * @param csr Normalised adjacency (a down-scaled proxy at DES cost).
 * @param layers Per-layer dimensions (e.g. from
 *        core::GcnModelConfig::layerDims()).
 * @param cfg PIUMA system description.
 * @param alg SpMM implementation for the aggregation phase.
 * @param session Optional telemetry sink, passed through to every
 *        kernel run; the session's global clock strings the layers
 *        into one trace timeline.
 */
GcnSimResult simulateGcn(const graph::Csr &csr,
                         const std::vector<GcnSimLayer> &layers,
                         const PiumaConfig &cfg,
                         SpmmAlgorithm alg = SpmmAlgorithm::Dma,
                         telemetry::Session *session = nullptr);

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_GCN_SIM_HPP
