#include "piuma/walk_programs.hpp"

#include <chrono>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "piuma/memory.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace pgcn::piuma {

using graph::Csr;
using graph::EdgeId;
using graph::VertexId;

namespace {

struct WalkContext
{
    WalkContext(const Csr &csr_in, const PiumaConfig &cfg_in)
        : engine(domains.engine(0)), csr(csr_in), cfg(cfg_in),
          memory(domains, cfg_in)
    {
        const unsigned total_mtps = cfg.numCores * cfg.mtpsPerCore;
        mtpIssue.reserve(total_mtps);
        for (unsigned m = 0; m < total_mtps; ++m)
            mtpIssue.emplace_back(engine, cfg.clockGhz);
    }

    /// Single-domain set (the walk microbenchmark has no sharding
    /// knob); the memory protocol routes its events through it.
    sim::DomainSet domains{1u};
    sim::Engine &engine;
    const Csr &csr;
    const PiumaConfig &cfg;
    MemorySystem memory;
    std::vector<sim::BandwidthResource> mtpIssue;

    uint64_t stepsDone = 0;
    double stepLatencySum = 0.0;

    unsigned
    lineSlice(uint64_t line) const
    {
        return static_cast<unsigned>(line % cfg.numCores);
    }
};

/**
 * One hardware thread executing its share of walks. Each step:
 *  1. read row offsets of the current vertex (8-byte pair, one line),
 *  2. read the randomly selected column entry (another line),
 * both dependent, both stall-on-use — the latency-bound pattern.
 */
sim::Process
walkThreadProc(WalkContext &ctx, unsigned tid, uint64_t walk_begin,
               uint64_t walk_end, uint32_t walk_length, uint64_t seed)
{
    const unsigned core =
        tid / (ctx.cfg.mtpsPerCore * ctx.cfg.threadsPerMtp);
    auto &issue = ctx.mtpIssue[tid / ctx.cfg.threadsPerMtp];
    Rng rng(seed ^ (0xabcdef1234ULL + tid));
    const VertexId n = ctx.csr.numVertices();
    const auto &offsets = ctx.csr.rowOffsets();
    const auto &cols = ctx.csr.cols();
    const uint64_t rows_per_line = ctx.cfg.cacheLineBytes / 8;
    const uint64_t edges_per_line = ctx.cfg.cacheLineBytes / 4;

    for (uint64_t w = walk_begin; w < walk_end; ++w) {
        VertexId v = static_cast<VertexId>(rng.uniformInt(n));
        for (uint32_t step = 0; step < walk_length; ++step) {
            const sim::SimTime step_start = ctx.engine.now();

            // Dependent load 1: row-offset pair of v — a native
            // 16-byte uncached access (PIUMA's memory path is
            // optimised for sub-line requests; a pointer chase must
            // not pay line-fill bandwidth).
            co_await issue.transfer(2.0);
            const uint64_t off_line = v / rows_per_line;
            MemoryAccess acc = co_await ctx.memory.read(
                core, ctx.lineSlice(off_line), 16.0);

            const EdgeId deg = offsets[v + 1] - offsets[v];
            if (deg == 0) {
                // Dead end: restart the walk at a random vertex.
                v = static_cast<VertexId>(rng.uniformInt(n));
            } else {
                // Dependent load 2: the chosen neighbour's column
                // entry (cannot issue before load 1 returns).
                const EdgeId e = offsets[v] + rng.uniformInt(deg);
                co_await issue.transfer(2.0);
                const uint64_t col_line = e / edges_per_line;
                acc = co_await ctx.memory.read(
                    core, ctx.lineSlice(col_line), 8.0);
                v = cols[e];
            }
            ++ctx.stepsDone;
            ctx.stepLatencySum += ctx.engine.now() - step_start;
        }
    }
}

} // namespace

WalkRunStats
simulateRandomWalk(const Csr &csr, uint64_t num_walks,
                   uint32_t walk_length, const PiumaConfig &cfg,
                   uint64_t seed)
{
    cfg.validate();
    if (csr.numVertices() == 0)
        PGCN_THROW(ShapeError, "cannot walk an empty graph");
    if (num_walks == 0 || walk_length == 0)
        PGCN_THROW(ConfigError, "walk batch must be non-empty");

    WalkContext ctx(csr, cfg);
    const unsigned total_threads = cfg.totalThreads();
    for (unsigned tid = 0; tid < total_threads; ++tid) {
        const uint64_t begin = num_walks * tid / total_threads;
        const uint64_t end = num_walks * (tid + 1) / total_threads;
        if (begin < end)
            walkThreadProc(ctx, tid, begin, end, walk_length, seed);
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const sim::SimTime makespan = ctx.domains.run();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

    WalkRunStats stats;
    stats.makespanNs = makespan;
    stats.totalSteps = ctx.stepsDone;
    stats.stepsPerNs =
        makespan > 0 ? static_cast<double>(ctx.stepsDone) / makespan : 0.0;
    stats.avgStepLatencyNs =
        ctx.stepsDone ? ctx.stepLatencySum /
                            static_cast<double>(ctx.stepsDone)
                      : 0.0;
    stats.memUtilization = ctx.memory.averageSliceUtilization(makespan);
    stats.simEvents = ctx.domains.eventsProcessed();
    stats.wallSeconds = wall;
    stats.eventsPerSec =
        wall > 0.0 ? static_cast<double>(stats.simEvents) / wall : 0.0;
    stats.peakEventQueueDepth = ctx.domains.peakQueueDepth();
    return stats;
}

} // namespace pgcn::piuma
