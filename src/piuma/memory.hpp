/**
 * @file
 * The PIUMA distributed global address space (DGAS) memory system.
 *
 * Each core hosts one DRAM slice behind a bandwidth-limited memory
 * controller. Any core can access any slice; remote accesses pay the
 * network latency of the HyperX-like interconnect and consume
 * bandwidth on the target core's network port. Data placement is
 * modelled logically (callers name the slice), matching how the SpMM
 * kernels interleave CSR lines and feature rows across slices.
 */
#ifndef PGCN_PIUMA_MEMORY_HPP
#define PGCN_PIUMA_MEMORY_HPP

#include <algorithm>
#include <vector>

#include "common/logging.hpp"
#include "piuma/config.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/monitor.hpp"
#include "sim/resource.hpp"

namespace pgcn {
class Histogram;
namespace telemetry {
class Counter;
class Session;
} // namespace telemetry
} // namespace pgcn

namespace pgcn::piuma {

/** Timing outcome of one memory access. */
struct MemoryAccess
{
    /**
     * Time the slice controller finishes streaming the data
     * (queueing + transfer). A pipelined requester (the DMA engine)
     * only needs to wait for this.
     */
    sim::SimTime serviceDoneAt;
    /**
     * Time the response reaches the requesting core
     * (serviceDoneAt + DRAM latency + return network latency).
     * A stall-on-use MTP thread waits for this.
     */
    sim::SimTime responseAt;

    /// Re-issues after dropped responses (0 on the clean path).
    uint32_t retries = 0;
    /// Timeouts that fired, including the final one of a failed
    /// request (== retries on a recovered request).
    uint32_t timeouts = 0;
    /// Portion of [issue, responseAt] spent in the recovery protocol
    /// (timeout detection + backoff) rather than queueing/transfer.
    /// For striped objects: the slowest chunk's recovery (chunks
    /// recover concurrently).
    sim::SimTime recoveryNs = 0.0;
    /// Retry budget exhausted: responseAt is the final timeout, no
    /// data arrived, and the caller must record the fault and bail
    /// out (never throw from inside a coroutine).
    bool failed = false;
};

/**
 * The DGAS memory model: per-slice controllers plus per-core network
 * ports, with latency composition per access.
 */
class MemorySystem
{
  public:
    /**
     * @param engine Owning simulation engine.
     * @param cfg System configuration (bandwidths/latencies).
     */
    MemorySystem(sim::Engine &engine, const PiumaConfig &cfg);

    /**
     * Issue a read of @p bytes from @p slice on behalf of
     * @p requester_core. Reserves controller (and, if remote,
     * network-port) bandwidth; returns both completion times.
     * Does not suspend: callers co_await the time they care about.
     *
     * @param pipelined When true the requester keeps many requests in
     *        flight (the DMA offload engine), so the one-way request
     *        latency overlaps with earlier transfers and service can
     *        start as soon as the controller is free. When false the
     *        requester is a stall-on-use pipeline whose request must
     *        first travel to the slice.
     */
    MemoryAccess
    read(unsigned requester_core, unsigned slice, double bytes,
         bool pipelined = false)
    {
        bytesRead_ += bytes;
        const MemoryAccess acc =
            access(requester_core, slice, bytes, pipelined);
#ifndef PGCN_NO_TELEMETRY
        if (tlmReads_ != nullptr) [[unlikely]]
            noteAccess(*tlmReads_, requester_core == slice, acc);
#endif
        return acc;
    }

    /**
     * Issue a write of @p bytes to @p slice. Writes are posted: the
     * returned serviceDoneAt is when the controller absorbed the
     * data; responseAt additionally covers the completion
     * acknowledgement (needed by atomic read-modify-writes).
     *
     * @param pipelined Same meaning as for read().
     */
    MemoryAccess
    write(unsigned requester_core, unsigned slice, double bytes,
          bool pipelined = false)
    {
        bytesWritten_ += bytes;
        const MemoryAccess acc =
            access(requester_core, slice, bytes, pipelined);
#ifndef PGCN_NO_TELEMETRY
        if (tlmWrites_ != nullptr) [[unlikely]]
            noteAccess(*tlmWrites_, requester_core == slice, acc);
#endif
        return acc;
    }

    /**
     * Read a DGAS object whose bytes are interleaved across slices at
     * 8-byte granularity starting at @p start_slice (how feature and
     * output rows live in the distributed address space — this is
     * what prevents high-degree hub vertices from turning one DRAM
     * slice into a hotspot). Completion is the slowest chunk.
     */
    MemoryAccess
    readStriped(unsigned requester_core, unsigned start_slice, double bytes,
                bool pipelined = false)
    {
        bytesRead_ += bytes;
        const MemoryAccess acc =
            accessStriped(requester_core, start_slice, bytes, pipelined);
#ifndef PGCN_NO_TELEMETRY
        if (tlmReads_ != nullptr) [[unlikely]]
            noteAccess(*tlmReads_, requester_core == start_slice, acc);
#endif
        return acc;
    }

    /** Striped counterpart of write(); see readStriped(). */
    MemoryAccess
    writeStriped(unsigned requester_core, unsigned start_slice, double bytes,
                 bool pipelined = false)
    {
        bytesWritten_ += bytes;
        const MemoryAccess acc =
            accessStriped(requester_core, start_slice, bytes, pipelined);
#ifndef PGCN_NO_TELEMETRY
        if (tlmWrites_ != nullptr) [[unlikely]]
            noteAccess(*tlmWrites_, requester_core == start_slice, acc);
#endif
        return acc;
    }

    /** Total bytes read across all slices. */
    double bytesRead() const { return bytesRead_; }

    /** Total bytes written across all slices. */
    double bytesWritten() const { return bytesWritten_; }

    /**
     * Slice transactions issued so far (always on, unlike telemetry).
     * Striped objects count one transaction per 8-byte-interleave
     * chunk, so the remote fraction reflects where the bytes actually
     * went, not where the object nominally started.
     */
    uint64_t totalAccesses() const { return accesses_; }

    /** Transactions whose requester core != serving slice. */
    uint64_t remoteAccesses() const { return remoteAccesses_; }

    /**
     * Fraction of slice transactions that crossed the network — the
     * DGAS-locality number the reorder x placement grid reports.
     * 0 when nothing has been accessed yet.
     */
    double
    remoteAccessFraction() const
    {
        return accesses_ == 0
                   ? 0.0
                   : static_cast<double>(remoteAccesses_) /
                         static_cast<double>(accesses_);
    }

    /** Bytes served by slice @p i (per-slice traffic distribution). */
    double sliceBytes(size_t i) const { return slices_[i].totalUnits(); }

    /**
     * Total bytes the slice controllers actually serviced. By the
     * conservation invariant this equals bytesRead() + bytesWritten()
     * + retriedBytes() (up to floating-point accumulation error from
     * striped chunk splits) — jitter perturbs *when* bytes move, and
     * hard faults re-move them, but demanded bytes plus retried bytes
     * always equals serviced bytes.
     */
    double
    sliceBytesServed() const
    {
        double total = 0.0;
        for (const sim::BandwidthResource &s : slices_)
            total += s.totalUnits();
        return total;
    }

    /** Transaction re-issues after dropped responses (always on). */
    uint64_t retries() const { return retries_; }

    /** Request timeouts fired, including unrecoverable finals. */
    uint64_t timeoutsFired() const { return timeouts_; }

    /**
     * Bytes serviced a second (or later) time because the first
     * response was dropped: the retry-amplification side of the
     * conservation invariant.
     */
    double retriedBytes() const { return retriedBytes_; }

    /**
     * Attach a fault injector perturbing DRAM latency, service
     * durations, and remote-network latency on every access, and —
     * when drop rates are configured — injecting dropped transactions
     * that the modeled timeout/retry/backoff protocol recovers. Null
     * (the default) restores the exact unperturbed timings.
     */
    void
    setFaultInjector(sim::FaultInjector *faults)
    {
        faults_ = faults;
        dropsEnabled_ =
            faults != nullptr && (faults->config().dramDropRate > 0.0 ||
                                  faults->config().netDropRate > 0.0);
    }

    /**
     * Mean utilisation of the slice controllers over [0, end].
     */
    double averageSliceUtilization(sim::SimTime end) const;

    /**
     * Peak utilisation among slice controllers over [0, end] (load
     * imbalance indicator).
     */
    double maxSliceUtilization(sim::SimTime end) const;

    /**
     * Mean utilisation of the network ports over [0, end]; stays low
     * when the paper's "network is not the bottleneck" claim holds.
     */
    double averageNetworkUtilization(sim::SimTime end) const;

    /**
     * Start recording into @p session: piuma.mem.{reads,writes,
     * remote_accesses} counters, a piuma.mem.access_latency_ns
     * histogram, per-slice utilisation and aggregate GB/s rate gauges.
     * Pass null (or never call) to leave the hot path untouched.
     */
    void attachTelemetry(telemetry::Session *session);

    /**
     * Mirror every slice-controller and network-port reservation onto
     * @p hub's occupancy timelines (one per slice and per port). The
     * hub must already be sized by MonitorHub::beginRun for this
     * system's core count. No-op under PGCN_NO_TELEMETRY.
     */
    void
    attachMonitor(sim::MonitorHub *hub)
    {
#ifndef PGCN_NO_TELEMETRY
        for (size_t i = 0; i < slices_.size(); ++i) {
            slices_[i].attachMonitor(
                hub != nullptr
                    ? hub->sliceTimeline(static_cast<unsigned>(i))
                    : nullptr);
            netPorts_[i].attachMonitor(
                hub != nullptr
                    ? hub->portTimeline(static_cast<unsigned>(i))
                    : nullptr);
        }
#else
        (void)hub;
#endif
    }

    /** Number of DRAM slices (== cores). */
    size_t numSlices() const { return slices_.size(); }

    /** Cumulative busy ns of slice controller @p i (gauge source). */
    double sliceBusyNs(size_t i) const { return slices_[i].busyTime(); }

    /** Cumulative busy ns of network port @p i (gauge source). */
    double portBusyNs(size_t i) const { return netPorts_[i].busyTime(); }

  private:
    /** Cold path: count one access into the attached registry. */
    void noteAccess(telemetry::Counter &op, bool local,
                    const MemoryAccess &acc);

    // Defined inline: access() runs once per simulated memory
    // transaction (millions per run) and every caller lives in
    // another translation unit.
    MemoryAccess
    access(unsigned requester_core, unsigned slice, double bytes,
           bool pipelined)
    {
        return accessFor(requester_core, slice, bytes,
                         bytes / sliceRate_, bytes / portRate_, pipelined);
    }

    /**
     * access() with both service durations pre-divided (all slices
     * and all ports share one rate each, so the striped path computes
     * each division once instead of per chunk).
     */
    MemoryAccess
    accessFor(unsigned requester_core, unsigned slice, double bytes,
              sim::SimTime slice_dur, sim::SimTime port_dur,
              bool pipelined)
    {
        PGCN_ASSERT(slice < slices_.size(),
                    "slice " << slice << " out of range");
        ++accesses_;
        remoteAccesses_ += requester_core != slice;
        // Table-driven oneWayLatencyNs(): two loads instead of two
        // integer divisions by coresPerDie.
        double net_lat =
            requester_core == slice
                ? 0.0
                : (dieOf_[requester_core] == dieOf_[slice]
                       ? cfg_.netSameDieNs
                       : cfg_.netCrossDieNs);
        double dram_lat = dramLatencyNs_;
        if (faults_ != nullptr) [[unlikely]] {
            // Perturb timings only — the byte amounts below are the
            // conservation invariant and stay exact.
            slice_dur = faults_->serviceDuration(slice_dur);
            port_dur = faults_->serviceDuration(port_dur);
            dram_lat = faults_->dramLatency(dram_lat);
            if (net_lat > 0.0)
                net_lat = faults_->networkLatency(net_lat);
        }

        if (dropsEnabled_) [[unlikely]] {
            return accessWithRecovery(requester_core, slice, bytes,
                                      slice_dur, port_dur, pipelined,
                                      net_lat, dram_lat);
        }

        // A stall-on-use request first travels to the slice; a
        // pipelined requester has the request in flight already, so
        // only bandwidth gates the service start. Remote transfers
        // also occupy the target core's network port for the payload;
        // port and controller stream concurrently, so completion is
        // the slower of the two.
        const sim::SimTime earliest =
            engine_.now() + (pipelined ? 0.0 : net_lat);
        sim::SimTime service_done =
            slices_[slice].reserveFor(bytes, slice_dur, earliest);
        if (requester_core != slice) {
            service_done = std::max(
                service_done,
                netPorts_[slice].reserveFor(bytes, port_dur, earliest));
        }

        return MemoryAccess{
            service_done,
            service_done + dram_lat + net_lat,
        };
    }

    /**
     * Cold path taken only when transaction-drop rates are enabled:
     * models the whole drop -> timeout -> backoff -> re-issue chain
     * synchronously (reservations may start in the simulated future),
     * so requesters keep co_awaiting a single responseAt.
     * Defined in memory.cpp.
     */
    MemoryAccess
    accessWithRecovery(unsigned requester_core, unsigned slice,
                       double bytes, sim::SimTime slice_dur,
                       sim::SimTime port_dur, bool pipelined,
                       double net_lat, double dram_lat);

    MemoryAccess
    accessStriped(unsigned requester_core, unsigned start_slice,
                  double bytes, bool pipelined)
    {
        if (!cfg_.dgasFineInterleave)
            return access(requester_core, start_slice, bytes, pipelined);

        // 8-byte DGAS interleaving: the object spans up to 16
        // consecutive slices (enough to diffuse any hotspot without
        // O(|system|) work per access); each chunk streams
        // concurrently.
        const auto max_chunks = static_cast<unsigned>(
            std::max(1.0, std::min({16.0, bytes / 8.0,
                                    static_cast<double>(cfg_.numCores)})));
        const double chunk = bytes / max_chunks;
        MemoryAccess result{0.0, 0.0};
        PGCN_ASSERT(start_slice < cfg_.numCores,
                    "start slice " << start_slice << " out of range");
        // One division per striped object, not per chunk.
        const sim::SimTime slice_dur = chunk / sliceRate_;
        const sim::SimTime port_dur = chunk / portRate_;
        unsigned slice = start_slice;
        for (unsigned i = 0; i < max_chunks; ++i) {
            const MemoryAccess acc = accessFor(
                requester_core, slice, chunk, slice_dur, port_dur,
                pipelined);
            result.serviceDoneAt =
                std::max(result.serviceDoneAt, acc.serviceDoneAt);
            result.responseAt = std::max(result.responseAt, acc.responseAt);
            if (dropsEnabled_) [[unlikely]] {
                // Chunks recover independently and concurrently: sum
                // the event counts, but the object's recovery time is
                // governed by its slowest chunk.
                result.retries += acc.retries;
                result.timeouts += acc.timeouts;
                result.recoveryNs =
                    std::max(result.recoveryNs, acc.recoveryNs);
                result.failed = result.failed || acc.failed;
            }
            // Wrap without the per-chunk modulo.
            if (++slice == cfg_.numCores)
                slice = 0;
        }
        return result;
    }

    sim::Engine &engine_;
    const PiumaConfig &cfg_;
    // Stored flat (no indirection): access() runs once per simulated
    // memory transaction.
    std::vector<sim::BandwidthResource> slices_;
    std::vector<sim::BandwidthResource> netPorts_;
    std::vector<unsigned> dieOf_;  ///< core -> die id lookup
    double dramLatencyNs_ = 0.0;   ///< cached effectiveDramLatencyNs()
    double sliceRate_ = 1.0;       ///< cached effectiveSliceBandwidth()
    double portRate_ = 1.0;        ///< cached netPortBandwidthGBps
    double bytesRead_ = 0.0;
    double bytesWritten_ = 0.0;
    // Always-on transaction counters (two integer adds per access;
    // cheap enough to live outside the telemetry gate).
    uint64_t accesses_ = 0;
    uint64_t remoteAccesses_ = 0;
    // Recovery accounting, touched only on the accessWithRecovery
    // cold path (always zero when drops are disabled).
    uint64_t retries_ = 0;
    uint64_t timeouts_ = 0;
    double retriedBytes_ = 0.0;
    // Telemetry sinks; null (the default) keeps the access hot path
    // to one predictable branch per wrapper.
    telemetry::Counter *tlmReads_ = nullptr;
    telemetry::Counter *tlmWrites_ = nullptr;
    telemetry::Counter *tlmRemote_ = nullptr;
    Histogram *tlmLatency_ = nullptr;
    /// Fault injector; null (the default) keeps timings exact.
    sim::FaultInjector *faults_ = nullptr;
    /// Cached "any transaction-drop class enabled" test so the hot
    /// path pays one predictable branch, not three config loads.
    bool dropsEnabled_ = false;
};

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_MEMORY_HPP
