/**
 * @file
 * The PIUMA distributed global address space (DGAS) memory system.
 *
 * Each core hosts one DRAM slice behind a bandwidth-limited memory
 * controller. Any core can access any slice; remote accesses pay the
 * network latency of the HyperX-like interconnect and consume
 * bandwidth on the target core's network port. Data placement is
 * modelled logically (callers name the slice), matching how the SpMM
 * kernels interleave CSR lines and feature rows across slices.
 */
#ifndef PGCN_PIUMA_MEMORY_HPP
#define PGCN_PIUMA_MEMORY_HPP

#include <memory>
#include <vector>

#include "piuma/config.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace pgcn::piuma {

/** Timing outcome of one memory access. */
struct MemoryAccess
{
    /**
     * Time the slice controller finishes streaming the data
     * (queueing + transfer). A pipelined requester (the DMA engine)
     * only needs to wait for this.
     */
    sim::SimTime serviceDoneAt;
    /**
     * Time the response reaches the requesting core
     * (serviceDoneAt + DRAM latency + return network latency).
     * A stall-on-use MTP thread waits for this.
     */
    sim::SimTime responseAt;
};

/**
 * The DGAS memory model: per-slice controllers plus per-core network
 * ports, with latency composition per access.
 */
class MemorySystem
{
  public:
    /**
     * @param engine Owning simulation engine.
     * @param cfg System configuration (bandwidths/latencies).
     */
    MemorySystem(sim::Engine &engine, const PiumaConfig &cfg);

    /**
     * Issue a read of @p bytes from @p slice on behalf of
     * @p requester_core. Reserves controller (and, if remote,
     * network-port) bandwidth; returns both completion times.
     * Does not suspend: callers co_await the time they care about.
     *
     * @param pipelined When true the requester keeps many requests in
     *        flight (the DMA offload engine), so the one-way request
     *        latency overlaps with earlier transfers and service can
     *        start as soon as the controller is free. When false the
     *        requester is a stall-on-use pipeline whose request must
     *        first travel to the slice.
     */
    MemoryAccess read(unsigned requester_core, unsigned slice, double bytes,
                      bool pipelined = false);

    /**
     * Issue a write of @p bytes to @p slice. Writes are posted: the
     * returned serviceDoneAt is when the controller absorbed the
     * data; responseAt additionally covers the completion
     * acknowledgement (needed by atomic read-modify-writes).
     *
     * @param pipelined Same meaning as for read().
     */
    MemoryAccess write(unsigned requester_core, unsigned slice, double bytes,
                       bool pipelined = false);

    /**
     * Read a DGAS object whose bytes are interleaved across slices at
     * 8-byte granularity starting at @p start_slice (how feature and
     * output rows live in the distributed address space — this is
     * what prevents high-degree hub vertices from turning one DRAM
     * slice into a hotspot). Completion is the slowest chunk.
     */
    MemoryAccess readStriped(unsigned requester_core, unsigned start_slice,
                             double bytes, bool pipelined = false);

    /** Striped counterpart of write(); see readStriped(). */
    MemoryAccess writeStriped(unsigned requester_core, unsigned start_slice,
                              double bytes, bool pipelined = false);

    /** Total bytes read across all slices. */
    double bytesRead() const { return bytesRead_; }

    /** Total bytes written across all slices. */
    double bytesWritten() const { return bytesWritten_; }

    /**
     * Mean utilisation of the slice controllers over [0, end].
     */
    double averageSliceUtilization(sim::SimTime end) const;

    /**
     * Peak utilisation among slice controllers over [0, end] (load
     * imbalance indicator).
     */
    double maxSliceUtilization(sim::SimTime end) const;

    /**
     * Mean utilisation of the network ports over [0, end]; stays low
     * when the paper's "network is not the bottleneck" claim holds.
     */
    double averageNetworkUtilization(sim::SimTime end) const;

  private:
    MemoryAccess access(unsigned requester_core, unsigned slice,
                        double bytes, bool pipelined);
    MemoryAccess accessStriped(unsigned requester_core,
                               unsigned start_slice, double bytes,
                               bool pipelined);

    sim::Engine &engine_;
    const PiumaConfig &cfg_;
    std::vector<std::unique_ptr<sim::BandwidthResource>> slices_;
    std::vector<std::unique_ptr<sim::BandwidthResource>> netPorts_;
    double bytesRead_ = 0.0;
    double bytesWritten_ = 0.0;
};

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_MEMORY_HPP
