/**
 * @file
 * The PIUMA distributed global address space (DGAS) memory system.
 *
 * Each core hosts one DRAM slice behind a bandwidth-limited memory
 * controller. Any core can access any slice; remote accesses pay the
 * network latency of the HyperX-like interconnect and consume
 * bandwidth on the target core's network port. Data placement is
 * modelled logically (callers name the slice), matching how the SpMM
 * kernels interleave CSR lines and feature rows across slices.
 *
 * Since PR 10 the model is a two-phase request/response protocol:
 *
 *  1. issue (requester's domain): byte/transaction accounting, the
 *     request-hop network jitter draw, then a *request event* posted
 *     to the owning slice's domain at the modeled arrival time,
 *     keyed kSeqBandRequest | (requester core, per-core stamp);
 *  2. arrival (slice's domain): bandwidth and queueing resolve in
 *     timestamp order — the request dispatch order IS the
 *     arbitration — jitters and transaction-drop draws come from the
 *     slice's own forked fault stream, and retry/backoff chains
 *     re-arm as slice-domain self-events carrying the original
 *     request key;
 *  3. response (requester's domain): a response event keyed
 *     kSeqBandResponse | (slice, per-slice stamp) merges the chunk's
 *     timing into the caller's PendingAccess and resumes the parked
 *     coroutine.
 *
 * Because the carried keys decide equal-timestamp dispatch order in
 * both DomainSet modes, a Parallel run is bit-identical to the
 * Sequenced merge; and because every cross-domain edge bears at
 * least modelLookaheadNs() of latency, Parallel mode is legal.
 * The one synchronous survivor is the clean local fast path
 * (requester core == slice, no drop classes enabled): same engine,
 * same domain for any domain count, so resolving it at issue keeps
 * the common case at zero extra events without touching invariance.
 */
#ifndef PGCN_PIUMA_MEMORY_HPP
#define PGCN_PIUMA_MEMORY_HPP

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hpp"
#include "piuma/config.hpp"
#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/monitor.hpp"
#include "sim/resource.hpp"

namespace pgcn {
class Histogram;
namespace telemetry {
class Counter;
class Session;
} // namespace telemetry
} // namespace pgcn

namespace pgcn::piuma {

/** Timing outcome of one memory access. */
struct MemoryAccess
{
    /**
     * Time the slice controller finishes streaming the data
     * (queueing + transfer). A pipelined requester (the DMA engine)
     * only needs the return hop past this.
     */
    sim::SimTime serviceDoneAt;
    /**
     * Time the response reaches the requesting core. Stall-on-use:
     * serviceDoneAt + DRAM latency + return network latency;
     * pipelined: serviceDoneAt + return network latency (the DRAM
     * access overlaps the streamed transfer).
     */
    sim::SimTime responseAt;

    /// Re-issues after dropped responses (0 on the clean path).
    uint32_t retries = 0;
    /// Timeouts that fired, including the final one of a failed
    /// request (== retries on a recovered request).
    uint32_t timeouts = 0;
    /// Portion of [issue, responseAt] spent in the recovery protocol
    /// (timeout detection + backoff) rather than queueing/transfer.
    /// For striped objects: the slowest chunk's recovery (chunks
    /// recover concurrently).
    sim::SimTime recoveryNs = 0.0;
    /// Retry budget exhausted: responseAt is the final timeout, no
    /// data arrived, and the caller must record the fault and bail
    /// out (never throw from inside a coroutine).
    bool failed = false;
};

/**
 * An in-flight (possibly striped) access: the join point where chunk
 * responses merge and the awaiting coroutine parks. The address must
 * stay stable from issue until the await resumes — it lives either
 * inside the caller's coroutine frame (the co_await sugar) or in a
 * caller-owned slot vector (the DMA engine).
 */
struct PendingAccess
{
    MemoryAccess acc{0.0, 0.0};
    sim::SimTime issuedAt = 0.0;
    unsigned core = 0;       ///< requester core (the await domain)
    uint32_t remaining = 0;  ///< outstanding event-path chunks
    std::coroutine_handle<> waiter{}; ///< parked caller, if any
};

/** First unrecoverable drop of a *posted* write, recorded slice-side. */
struct PostedFault
{
    bool failed = false;
    unsigned core = 0;  ///< requester of the lost write
    unsigned slice = 0; ///< slice that exhausted the retry budget
    sim::SimTime whenNs = 0.0; ///< detection time of the final timeout
};

/**
 * The DGAS memory model: per-slice controllers plus per-core network
 * ports, with latency composition per access resolved on the
 * request/response event path described in the file header.
 */
class MemorySystem
{
  public:
    /**
     * @param domains Domain set simulating the machine; slice s lives
     *        in domain domainOf(s), matching the model's core->domain
     *        map, so every resource is owned by exactly one domain.
     * @param cfg System configuration (bandwidths/latencies).
     */
    MemorySystem(sim::DomainSet &domains, const PiumaConfig &cfg);

    /**
     * The model's conservative-lookahead bound: the minimum modeled
     * latency any cross-domain edge of the memory protocol can carry.
     *
     *   L = min( min_net * (1 - netJitter),
     *            [drops enabled] timeoutNs - max_net * (1 + netJitter) )
     *
     * where min_net/max_net are the applicable one-way network
     * latencies from @p cfg. The first term bounds request arrivals
     * and responses; the second bounds failure notices, whose edge is
     * timeout minus the already-paid request hop. Returns +inf for a
     * single-core system (no cross-domain edges exist) and a value
     * <= 0 when a fault config makes Parallel mode illegal.
     */
    static double modelLookaheadNs(const PiumaConfig &cfg,
                                   const sim::FaultConfig *faults);

    /**
     * The `--domains auto` heuristic (DESIGN.md §15): 1 below 64
     * simulated cores — the sequenced merge / window overhead beats
     * any win on tiny runs (the BENCH_PR9 0.86x regression) — else
     * min(numCores / 16, host hardware threads) clamped to [1, 64].
     */
    static unsigned autoDomainCount(const PiumaConfig &cfg);

    /**
     * Resolve SimControls into concrete DomainSet options: expands
     * the domains==0 auto sentinel via autoDomainCount() and the
     * DomainMode::Auto policy via modelLookaheadNs(). An explicit
     * Parallel request with a non-positive lookahead throws
     * ConfigError; @p sequenced_only (a telemetry session or monitor
     * hub is attached — shared single-threaded geometry) downgrades
     * Parallel to Sequenced with a log warning.
     */
    static sim::DomainSet::Options
    domainPlan(const PiumaConfig &cfg, const sim::SimControls *controls,
               bool sequenced_only);

    /** Domain owning core/slice @p entity under this set's count. */
    unsigned
    domainOf(unsigned entity) const
    {
        return static_cast<unsigned>(static_cast<uint64_t>(entity) *
                                     domainCount_ / numCores_);
    }

    /** Engine backing @p core's domain. */
    sim::Engine &
    engineOf(unsigned core)
    {
        return domains_.engine(domainOf(core));
    }

    /**
     * Issue a read of @p bytes from @p slice on behalf of
     * @p requester_core into caller-owned @p pa (address-stable until
     * the await resumes). Local clean accesses resolve synchronously;
     * everything else posts a request event. Callers co_await
     * await(pa) — or use the read() sugar — for the response.
     *
     * @param pipelined When true the requester keeps many requests in
     *        flight (the DMA offload engine): the response skips the
     *        DRAM latency leg (it overlaps the streamed transfer) but
     *        still pays both network hops.
     */
    void
    readAsync(unsigned requester_core, unsigned slice, double bytes,
              bool pipelined, PendingAccess &pa)
    {
        beginAccess(requester_core, pa);
        issueShards_[requester_core].bytesRead += bytes;
#ifndef PGCN_NO_TELEMETRY
        if (tlmReads_ != nullptr) [[unlikely]]
            noteIssue(*tlmReads_, requester_core == slice);
#endif
        issueChunk(requester_core, slice, bytes, bytes / sliceRate_,
                   bytes / portRate_, pipelined, &pa);
        finishIfDone(pa);
    }

    /** Write counterpart of readAsync(); see it for the contract. */
    void
    writeAsync(unsigned requester_core, unsigned slice, double bytes,
               bool pipelined, PendingAccess &pa)
    {
        beginAccess(requester_core, pa);
        issueShards_[requester_core].bytesWritten += bytes;
#ifndef PGCN_NO_TELEMETRY
        if (tlmWrites_ != nullptr) [[unlikely]]
            noteIssue(*tlmWrites_, requester_core == slice);
#endif
        issueChunk(requester_core, slice, bytes, bytes / sliceRate_,
                   bytes / portRate_, pipelined, &pa);
        finishIfDone(pa);
    }

    /**
     * Read a DGAS object whose bytes are interleaved across slices at
     * 8-byte granularity starting at @p start_slice (how feature and
     * output rows live in the distributed address space — this is
     * what prevents high-degree hub vertices from turning one DRAM
     * slice into a hotspot). Completion is the slowest chunk.
     */
    void
    readStripedAsync(unsigned requester_core, unsigned start_slice,
                     double bytes, bool pipelined, PendingAccess &pa)
    {
        beginAccess(requester_core, pa);
        issueShards_[requester_core].bytesRead += bytes;
#ifndef PGCN_NO_TELEMETRY
        if (tlmReads_ != nullptr) [[unlikely]]
            noteIssue(*tlmReads_, requester_core == start_slice);
#endif
        issueStriped(requester_core, start_slice, bytes, pipelined, &pa);
        finishIfDone(pa);
    }

    /** Striped counterpart of writeAsync(); see readStripedAsync(). */
    void
    writeStripedAsync(unsigned requester_core, unsigned start_slice,
                      double bytes, bool pipelined, PendingAccess &pa)
    {
        beginAccess(requester_core, pa);
        issueShards_[requester_core].bytesWritten += bytes;
#ifndef PGCN_NO_TELEMETRY
        if (tlmWrites_ != nullptr) [[unlikely]]
            noteIssue(*tlmWrites_, requester_core == start_slice);
#endif
        issueStriped(requester_core, start_slice, bytes, pipelined, &pa);
        finishIfDone(pa);
    }

    /**
     * Fire-and-forget striped write: the caller never waits, so no
     * response events are generated at all (request-only traffic).
     * Retry/timeout accounting still happens slice-side; a final
     * unrecoverable drop is recorded in postedFault() — earliest
     * detection wins, ties to the lowest slice — for entry points
     * that surface lost posted data as SimFaultError after the run.
     */
    void
    writeStripedPosted(unsigned requester_core, unsigned start_slice,
                       double bytes, bool pipelined = false)
    {
        issueShards_[requester_core].bytesWritten += bytes;
#ifndef PGCN_NO_TELEMETRY
        if (tlmWrites_ != nullptr) [[unlikely]]
            noteIssue(*tlmWrites_, requester_core == start_slice);
#endif
        issueStriped(requester_core, start_slice, bytes, pipelined,
                     nullptr);
    }

    /**
     * Awaitable completing when every chunk of @p pa has responded
     * and its merged responseAt has been reached — the stall-on-use
     * wait. Replicates Engine::delayUntil timing bit-for-bit when the
     * access is already complete but its response time lies ahead.
     */
    auto
    await(PendingAccess &pa)
    {
        struct Awaiter
        {
            MemorySystem &mem;
            PendingAccess &pa;

            bool
            await_ready() const noexcept
            {
                return pa.remaining == 0 &&
                       pa.acc.responseAt -
                               mem.engineOf(pa.core).now() <=
                           0.0;
            }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                if (pa.remaining != 0) {
                    pa.waiter = h;
                    return;
                }
                mem.domains_.wakeAt(mem.domainOf(pa.core),
                                    pa.acc.responseAt, h);
            }
            MemoryAccess await_resume() const noexcept { return pa.acc; }
        };
        return Awaiter{*this, pa};
    }

    /**
     * One-shot access: issues on co_await and resolves to the merged
     * MemoryAccess at response time. The request object is
     * materialized into the awaiting coroutine's frame (guaranteed
     * prvalue elision), so the embedded PendingAccess is
     * address-stable for the protocol's whole round trip.
     */
    struct [[nodiscard]] AccessRequest
    {
        MemorySystem &mem;
        unsigned core;
        unsigned slice;
        double bytes;
        bool pipelined;
        bool striped;
        bool isRead;
        PendingAccess pa{};

        // Unqualified (not &&-only): `co_await mem.read(...)`
        // materializes the request into the coroutine frame, where it
        // outlives the suspension, and a named request awaited later
        // is equally stable.
        auto
        operator co_await()
        {
            if (striped) {
                isRead ? mem.readStripedAsync(core, slice, bytes,
                                              pipelined, pa)
                       : mem.writeStripedAsync(core, slice, bytes,
                                               pipelined, pa);
            } else {
                isRead ? mem.readAsync(core, slice, bytes, pipelined, pa)
                       : mem.writeAsync(core, slice, bytes, pipelined,
                                        pa);
            }
            return mem.await(pa);
        }
    };

    /** `co_await mem.read(...)` -> MemoryAccess. See AccessRequest. */
    AccessRequest
    read(unsigned requester_core, unsigned slice, double bytes,
         bool pipelined = false)
    {
        return AccessRequest{*this,     requester_core, slice, bytes,
                             pipelined, false,          true};
    }

    /** Awaited write; posted writes use writeStripedPosted(). */
    AccessRequest
    write(unsigned requester_core, unsigned slice, double bytes,
          bool pipelined = false)
    {
        return AccessRequest{*this,     requester_core, slice, bytes,
                             pipelined, false,          false};
    }

    /** Striped read sugar; see readStripedAsync(). */
    AccessRequest
    readStriped(unsigned requester_core, unsigned start_slice,
                double bytes, bool pipelined = false)
    {
        return AccessRequest{*this,     requester_core, start_slice,
                             bytes,     pipelined,      true,
                             true};
    }

    /** Striped awaited write sugar; see writeStripedAsync(). */
    AccessRequest
    writeStriped(unsigned requester_core, unsigned start_slice,
                 double bytes, bool pipelined = false)
    {
        return AccessRequest{*this,     requester_core, start_slice,
                             bytes,     pipelined,      true,
                             false};
    }

    /** Total bytes read across all slices. */
    double
    bytesRead() const
    {
        double total = 0.0;
        for (const IssueShard &s : issueShards_)
            total += s.bytesRead;
        return total;
    }

    /** Total bytes written across all slices. */
    double
    bytesWritten() const
    {
        double total = 0.0;
        for (const IssueShard &s : issueShards_)
            total += s.bytesWritten;
        return total;
    }

    /**
     * Slice transactions issued so far (always on, unlike telemetry).
     * Striped objects count one transaction per 8-byte-interleave
     * chunk, so the remote fraction reflects where the bytes actually
     * went, not where the object nominally started.
     */
    uint64_t
    totalAccesses() const
    {
        uint64_t total = 0;
        for (const IssueShard &s : issueShards_)
            total += s.accesses;
        return total;
    }

    /** Transactions whose requester core != serving slice. */
    uint64_t
    remoteAccesses() const
    {
        uint64_t total = 0;
        for (const IssueShard &s : issueShards_)
            total += s.remoteAccesses;
        return total;
    }

    /**
     * Fraction of slice transactions that crossed the network — the
     * DGAS-locality number the reorder x placement grid reports.
     * 0 when nothing has been accessed yet.
     */
    double
    remoteAccessFraction() const
    {
        const uint64_t total = totalAccesses();
        return total == 0 ? 0.0
                          : static_cast<double>(remoteAccesses()) /
                                static_cast<double>(total);
    }

    /** Bytes served by slice @p i (per-slice traffic distribution). */
    double sliceBytes(size_t i) const { return slices_[i].totalUnits(); }

    /**
     * Total bytes the slice controllers actually serviced. By the
     * conservation invariant this equals bytesRead() + bytesWritten()
     * + retriedBytes() (up to floating-point accumulation error from
     * striped chunk splits) — jitter perturbs *when* bytes move, and
     * hard faults re-move them, but demanded bytes plus retried bytes
     * always equals serviced bytes.
     */
    double
    sliceBytesServed() const
    {
        double total = 0.0;
        for (const sim::BandwidthResource &s : slices_)
            total += s.totalUnits();
        return total;
    }

    /** Transaction re-issues after dropped responses (always on). */
    uint64_t
    retries() const
    {
        uint64_t total = 0;
        for (const SliceShard &s : sliceShards_)
            total += s.retries;
        return total;
    }

    /** Request timeouts fired, including unrecoverable finals. */
    uint64_t
    timeoutsFired() const
    {
        uint64_t total = 0;
        for (const SliceShard &s : sliceShards_)
            total += s.timeouts;
        return total;
    }

    /**
     * Bytes serviced a second (or later) time because the first
     * response was dropped: the retry-amplification side of the
     * conservation invariant.
     */
    double
    retriedBytes() const
    {
        double total = 0.0;
        for (const SliceShard &s : sliceShards_)
            total += s.retriedBytes;
        return total;
    }

    /**
     * Recovery time accumulated by *posted* writes (no caller waits
     * on them, so the slice side owns the accounting). Entry points
     * that previously consumed a posted write's recoveryNs at issue
     * (the dense model) add this after the run drains.
     */
    double
    postedRecoveryNs() const
    {
        double total = 0.0;
        for (const SliceShard &s : sliceShards_)
            total += s.postedRecoveryNs;
        return total;
    }

    /**
     * First unrecoverable posted-write drop across all slices:
     * earliest detection wins, ties to the lowest slice id — a
     * deterministic reduction, independent of domain count and mode.
     */
    PostedFault
    postedFault() const
    {
        PostedFault first;
        for (const SliceShard &s : sliceShards_) {
            if (!s.postedFault.failed)
                continue;
            if (!first.failed || s.postedFault.whenNs < first.whenNs)
                first = s.postedFault;
        }
        return first;
    }

    /**
     * Attach a fault injector perturbing DRAM latency, service
     * durations, and remote-network latency on every access, and —
     * when drop rates are configured — injecting dropped transactions
     * that the modeled timeout/retry/backoff protocol recovers. Null
     * (the default) restores the exact unperturbed timings. The
     * injector itself is only forked, never drawn from: each core and
     * each slice consumes its own child stream, in its own domain's
     * deterministic dispatch order.
     */
    void setFaultInjector(sim::FaultInjector *faults);

    /**
     * Mean utilisation of the slice controllers over [0, end].
     */
    double averageSliceUtilization(sim::SimTime end) const;

    /**
     * Peak utilisation among slice controllers over [0, end] (load
     * imbalance indicator).
     */
    double maxSliceUtilization(sim::SimTime end) const;

    /**
     * Mean utilisation of the network ports over [0, end]; stays low
     * when the paper's "network is not the bottleneck" claim holds.
     */
    double averageNetworkUtilization(sim::SimTime end) const;

    /**
     * Start recording into @p session: piuma.mem.{reads,writes,
     * remote_accesses} counters, a piuma.mem.access_latency_ns
     * histogram, per-slice utilisation and aggregate GB/s rate gauges.
     * Pass null (or never call) to leave the hot path untouched.
     * Sessions are single-threaded: entry points force Sequenced mode
     * whenever one is attached (see domainPlan()).
     */
    void attachTelemetry(telemetry::Session *session);

    /**
     * Mirror every slice-controller and network-port reservation onto
     * @p hub's occupancy timelines (one per slice and per port). The
     * hub must already be sized by MonitorHub::beginRun for this
     * system's core count. No-op under PGCN_NO_TELEMETRY. Hubs share
     * fold geometry across cores: entry points force Sequenced mode
     * whenever one is attached.
     */
    void
    attachMonitor(sim::MonitorHub *hub)
    {
#ifndef PGCN_NO_TELEMETRY
        for (size_t i = 0; i < slices_.size(); ++i) {
            slices_[i].attachMonitor(
                hub != nullptr
                    ? hub->sliceTimeline(static_cast<unsigned>(i))
                    : nullptr);
            netPorts_[i].attachMonitor(
                hub != nullptr
                    ? hub->portTimeline(static_cast<unsigned>(i))
                    : nullptr);
        }
#else
        (void)hub;
#endif
    }

    /** Number of DRAM slices (== cores). */
    size_t numSlices() const { return slices_.size(); }

    /** Cumulative busy ns of slice controller @p i (gauge source). */
    double sliceBusyNs(size_t i) const { return slices_[i].busyTime(); }

    /** Cumulative busy ns of network port @p i (gauge source). */
    double portBusyNs(size_t i) const { return netPorts_[i].busyTime(); }

  private:
    /**
     * Per-requester-core issue-side accounting. Single writer: only
     * code running in the core's domain touches its shard (64-byte
     * aligned so shards on different worker threads never share a
     * line). Reduced in core-index order by the cold getters, so
     * every aggregate is independent of domain count and mode.
     */
    struct alignas(64) IssueShard
    {
        double bytesRead = 0.0;
        double bytesWritten = 0.0;
        uint64_t accesses = 0;
        uint64_t remoteAccesses = 0;
        uint64_t requestStamp = 0; ///< per-core kSeqBandRequest counter
    };

    /**
     * Per-slice response-side accounting: the retry protocol runs in
     * the slice's domain, so it owns these. Same single-writer and
     * fixed-order-reduction rules as IssueShard.
     */
    struct alignas(64) SliceShard
    {
        uint64_t retries = 0;
        uint64_t timeouts = 0;
        double retriedBytes = 0.0;
        double postedRecoveryNs = 0.0;
        uint64_t responseStamp = 0; ///< per-slice kSeqBandResponse counter
        PostedFault postedFault{};
    };

    /** One request's immutable issue-side description. */
    struct Request
    {
        PendingAccess *pa; ///< null for posted (request-only) traffic
        unsigned core;
        unsigned slice;
        double bytes;
        sim::SimTime sliceDur; ///< unjittered controller service time
        sim::SimTime portDur;  ///< unjittered port service time
        bool pipelined;
        double netBase; ///< unjittered one-way latency (0 = local)
        double netIn;   ///< jittered request-hop latency
        uint64_t seq;   ///< carried kSeqBandRequest key (all attempts)
        sim::SimTime issue; ///< first-attempt issue time
    };

    /** Jitters drawn once per access at first arrival (slice side). */
    struct Timing
    {
        sim::SimTime sliceDur;
        sim::SimTime portDur;
        double dram;
        double netRet; ///< jittered return-hop latency
    };

    /** Reset @p pa for a fresh access from @p core. */
    void
    beginAccess(unsigned core, PendingAccess &pa)
    {
        PGCN_ASSERT(pa.remaining == 0 && !pa.waiter,
                    "PendingAccess reused while still in flight");
        pa.acc = MemoryAccess{0.0, 0.0};
        pa.core = core;
        pa.issuedAt = engineOf(core).now();
    }

    /** Cold path: count one access into the attached registry. */
    void noteIssue(telemetry::Counter &op, bool local);

    /** Striped fan-out (or a single chunk when interleave is off). */
    void
    issueStriped(unsigned requester_core, unsigned start_slice,
                 double bytes, bool pipelined, PendingAccess *pa)
    {
        if (!cfg_.dgasFineInterleave) {
            issueChunk(requester_core, start_slice, bytes,
                       bytes / sliceRate_, bytes / portRate_, pipelined,
                       pa);
            return;
        }
        // 8-byte DGAS interleaving: the object spans up to 16
        // consecutive slices (enough to diffuse any hotspot without
        // O(|system|) work per access); each chunk streams
        // concurrently.
        const auto max_chunks = static_cast<unsigned>(
            std::max(1.0, std::min({16.0, bytes / 8.0,
                                    static_cast<double>(cfg_.numCores)})));
        const double chunk = bytes / max_chunks;
        PGCN_ASSERT(start_slice < cfg_.numCores,
                    "start slice " << start_slice << " out of range");
        // One division per striped object, not per chunk.
        const sim::SimTime slice_dur = chunk / sliceRate_;
        const sim::SimTime port_dur = chunk / portRate_;
        unsigned slice = start_slice;
        for (unsigned i = 0; i < max_chunks; ++i) {
            issueChunk(requester_core, slice, chunk, slice_dur, port_dur,
                       pipelined, pa);
            // Wrap without the per-chunk modulo.
            if (++slice == cfg_.numCores)
                slice = 0;
        }
    }

    /**
     * Issue-side half of one chunk: accounting, the request-hop
     * jitter draw, then either the synchronous local fast path or a
     * keyed request event to the slice's domain. Defined in
     * memory.cpp together with the slice-side handlers.
     */
    void issueChunk(unsigned requester_core, unsigned slice, double bytes,
                    sim::SimTime slice_dur, sim::SimTime port_dur,
                    bool pipelined, PendingAccess *pa);

    /** First arrival of a request: draw jitters, run attempt 0. */
    void arrive(Request r);

    /**
     * One arbitration attempt, dispatched in the slice's domain in
     * (timestamp, key) order: reserve bandwidth at arrival — a
     * dropped response still consumed it — then either respond or
     * re-arm the retry chain as a self-event carrying the same key.
     */
    void attempt(Request r, Timing t, uint32_t n, sim::SimTime issue,
                 MemoryAccess chunk);

    /** Post (or record, for posted traffic) one chunk's outcome. */
    void respond(const Request &r, const MemoryAccess &chunk);

    /** Merge one chunk into the caller's join point; maybe resume. */
    void completeChunk(PendingAccess &pa, const MemoryAccess &chunk);

    /** Striped-object merge: slowest chunk wins, events sum. */
    static void
    merge(MemoryAccess &into, const MemoryAccess &chunk)
    {
        into.serviceDoneAt = std::max(into.serviceDoneAt,
                                      chunk.serviceDoneAt);
        into.responseAt = std::max(into.responseAt, chunk.responseAt);
        into.retries += chunk.retries;
        into.timeouts += chunk.timeouts;
        into.recoveryNs = std::max(into.recoveryNs, chunk.recoveryNs);
        into.failed = into.failed || chunk.failed;
    }

    /** Access fully resolved at issue (all chunks local & clean). */
    void
    finishIfDone(PendingAccess &pa)
    {
        if (pa.remaining != 0)
            return;
#ifndef PGCN_NO_TELEMETRY
        if (tlmLatency_ != nullptr) [[unlikely]]
            noteLatency(pa);
#endif
    }

    /** Cold path: histogram the completed access's latency. */
    void noteLatency(const PendingAccess &pa);

    sim::DomainSet &domains_;
    const PiumaConfig &cfg_;
    unsigned numCores_;
    unsigned domainCount_;
    // Stored flat (no indirection): one controller + port per slice,
    // each bound to its owning domain's engine.
    std::vector<sim::BandwidthResource> slices_;
    std::vector<sim::BandwidthResource> netPorts_;
    std::vector<unsigned> dieOf_; ///< core -> die id lookup
    double dramLatencyNs_ = 0.0;  ///< cached effectiveDramLatencyNs()
    double sliceRate_ = 1.0;      ///< cached effectiveSliceBandwidth()
    double portRate_ = 1.0;       ///< cached netPortBandwidthGBps
    std::vector<IssueShard> issueShards_; ///< per requester core
    std::vector<SliceShard> sliceShards_; ///< per slice
    // Telemetry sinks; null (the default) keeps the issue hot path
    // to one predictable branch per wrapper.
    telemetry::Counter *tlmReads_ = nullptr;
    telemetry::Counter *tlmWrites_ = nullptr;
    telemetry::Counter *tlmRemote_ = nullptr;
    Histogram *tlmLatency_ = nullptr;
    /// Fault injector (fork source only); null keeps timings exact.
    sim::FaultInjector *faults_ = nullptr;
    /// Per-requester-core request-hop jitter streams.
    std::vector<sim::FaultStream> coreStreams_;
    /// Per-slice service/DRAM/return-hop jitter + drop streams.
    std::vector<sim::FaultStream> sliceStreams_;
    /// Cached "any transaction-drop class enabled" test so the hot
    /// path pays one predictable branch, not three config loads.
    bool dropsEnabled_ = false;
};

/// Fork-salt classes for the model's per-entity fault streams (the
/// DMA engine owns the kSaltDma class; see dma.cpp).
constexpr uint64_t kSaltCoreNet = uint64_t{1} << 32;
constexpr uint64_t kSaltSlice = uint64_t{2} << 32;
constexpr uint64_t kSaltDma = uint64_t{3} << 32;

} // namespace pgcn::piuma

#endif // PGCN_PIUMA_MEMORY_HPP
