#include "piuma/dma.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace pgcn::piuma {

void
DmaEngine::attachTelemetry(telemetry::Session *session)
{
    if (session == nullptr)
        return;
    session_ = session;
    telemetry::Registry &reg = session->registry();
    const std::string core = std::to_string(core_);
    tlmDescriptors_ = &reg.counter("piuma.dma.descriptors");
    tlmBusyNs_ = &reg.counter("piuma.dma.busy_ns");
    // enqueue-to-retire per descriptor: dispatch overhead + window
    // wait + bandwidth service; long tails flag queueing collapse.
    tlmDescNs_ = &reg.histogram("piuma.dma.descriptor_ns",
                                0.0, 500.0, 100);
    reg.registerGauge("piuma.core" + core + ".dma.queue_depth",
                      telemetry::GaugeKind::Value,
                      [this] { return static_cast<double>(queue_.size()); });
    detailedTrace_ = session->detailedTrace();
    if (detailedTrace_) {
        const uint32_t tid = telemetry::tracks::kDmaBase + core_;
        session->trace().setThreadName(tid, "core" + core + ".dma");
        spanName_ = session->trace().intern("dma.descriptor");
    }
}

void
DmaEngine::noteTransferFault(const char *op, unsigned slice)
{
    if (stats_.failed)
        return;
    stats_.failed = true;
    stats_.failedDetail = "core" + std::to_string(core_) + " dma " +
                          op + " on slice " + std::to_string(slice);
}

sim::Process
DmaEngine::run()
{
    co_await engine_.announce("core" + std::to_string(core_) + ".dma");

    // The in-flight transfer window. Descriptors dispatch in strict
    // arrival order, but up to dmaMaxInflight transfers overlap,
    // which is what makes the engine tolerate memory latency. Each
    // slot holds one outstanding access; reusing a slot first awaits
    // its previous transfer's response (which arrives over the memory
    // system's keyed response-event path, whatever domain served it)
    // and only then consumes that transfer's fault/recovery outcome.
    std::vector<PendingAccess> slots(cfg_.dmaMaxInflight);
    std::vector<double> slotBytes(cfg_.dmaMaxInflight, 0.0);
    // Stamp the owning core before the first await: a fresh slot's
    // default core (0) would route await_ready's clock read to domain
    // 0's engine — a cross-domain read under Parallel mode.
    for (auto &pending : slots)
        pending.core = core_;
    std::vector<unsigned> slotSlice(cfg_.dmaMaxInflight, 0);
    std::vector<bool> slotIsRead(cfg_.dmaMaxInflight, false);
    size_t slot = 0;

    for (;;) {
        DmaDescriptor desc = co_await queue_.pop();
        if (desc.op == DmaDescriptor::Op::Terminate)
            break;

        const sim::SimTime started = engine_.now();
        // Serial dispatch overhead, then wait for a free window slot.
        double overhead = cfg_.dmaDescriptorOverheadNs;
        if (stream_.has_value()) [[unlikely]] {
            overhead = stream_->dmaOverhead(overhead);
            // Descriptor fetch/execution faults: re-issue under
            // timeout + exponential backoff, bounded by the retry
            // budget. On exhaustion record the failure and *skip* the
            // descriptor but keep consuming the queue — a dead engine
            // would wedge its producers, and an unrecoverable fault
            // must surface as SimFaultError, never as a deadlock.
            bool abandoned = false;
            for (unsigned attempt = 0; stream_->dropDescriptor();
                 ++attempt) {
                ++stats_.timeoutsFired;
                const sim::FaultConfig &fc = stream_->config();
                if (attempt >= fc.maxRetries) {
                    if (!stats_.failed) {
                        stats_.failed = true;
                        stats_.failedDetail =
                            "core" + std::to_string(core_) +
                            " dma descriptor (slice " +
                            std::to_string(desc.slice) + ")";
                    }
                    // The final timeout still elapses before the
                    // watchdog declares the descriptor dead.
                    co_await engine_.delay(fc.timeoutNs);
                    stats_.recoveryNs += fc.timeoutNs;
                    abandoned = true;
                    break;
                }
                const sim::SimTime r0 = engine_.now();
                co_await engine_.delay(fc.timeoutNs +
                                       stream_->backoffDelay(attempt));
                stats_.recoveryNs += engine_.now() - r0;
                ++stats_.retries;
            }
            if (abandoned)
                continue;
        }
        co_await engine_.delay(overhead);

        // Reclaim the slot: await its previous transfer's response,
        // consume its outcome, then occupy through the scratchpad
        // copy-add for reads (the SPAD multiply + accumulate extends
        // slot occupancy past the data's arrival).
        const MemoryAccess prev = co_await memory_.await(slots[slot]);
        if (slotBytes[slot] > 0.0) {
            if (prev.failed) [[unlikely]]
                noteTransferFault(slotIsRead[slot] ? "read" : "write",
                                  slotSlice[slot]);
            stats_.recoveryNs += prev.recoveryNs;
            if (slotIsRead[slot]) {
                co_await engine_.delayUntil(
                    prev.responseAt +
                    slotBytes[slot] / cfg_.spadBandwidthGBps);
            }
        }

        if (desc.op == DmaDescriptor::Op::ReadMulAcc) {
            // Pipelined read: the DRAM access overlaps the streamed
            // transfer, so the response only pays the return hop past
            // bandwidth service.
            memory_.readStripedAsync(core_, desc.slice, desc.bytes,
                                     /*pipelined=*/true, slots[slot]);
        } else {
            memory_.writeStripedAsync(core_, desc.slice, desc.bytes,
                                      /*pipelined=*/true, slots[slot]);
        }
        slotBytes[slot] = desc.bytes;
        slotSlice[slot] = desc.slice;
        slotIsRead[slot] = desc.op == DmaDescriptor::Op::ReadMulAcc;
        if (++slot == slots.size())
            slot = 0;

        ++stats_.descriptors;
        stats_.bytesMoved += desc.bytes;
        stats_.busyNs += engine_.now() - started;
#ifndef PGCN_NO_TELEMETRY
        if (monitor_ != nullptr) [[unlikely]]
            monitor_->addSpan(started, engine_.now());
        if (session_ != nullptr) [[unlikely]] {
            const sim::SimTime now = engine_.now();
            tlmDescriptors_->increment();
            tlmBusyNs_->add(now - started);
            tlmDescNs_->add(now - started);
            if (detailedTrace_) {
                const double off = session_->runOffsetNs();
                const uint32_t tid = telemetry::tracks::kDmaBase + core_;
                session_->trace().begin(off + started, spanName_, tid);
                session_->trace().end(off + now, spanName_, tid);
            }
        }
#endif
    }

    // Drain: the engine is not finished until its last transfers
    // complete (and their outcomes are consumed), so the simulation
    // makespan covers them. Slots are awaited in index order — a
    // deterministic sweep whose end time is the max over slots.
    for (size_t i = 0; i < slots.size(); ++i) {
        const MemoryAccess acc = co_await memory_.await(slots[i]);
        if (slotBytes[i] <= 0.0)
            continue;
        if (acc.failed) [[unlikely]]
            noteTransferFault(slotIsRead[i] ? "read" : "write",
                              slotSlice[i]);
        stats_.recoveryNs += acc.recoveryNs;
        if (slotIsRead[i]) {
            co_await engine_.delayUntil(
                acc.responseAt + slotBytes[i] / cfg_.spadBandwidthGBps);
        }
    }
}

} // namespace pgcn::piuma
