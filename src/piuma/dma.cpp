#include "piuma/dma.hpp"

#include <algorithm>
#include <vector>

namespace pgcn::piuma {

sim::Process
DmaEngine::run()
{
    // Completion times of the in-flight transfer window. Descriptors
    // dispatch in strict arrival order, but up to dmaMaxInflight
    // transfers overlap, which is what makes the engine tolerate
    // memory latency.
    std::vector<sim::SimTime> inflight(cfg_.dmaMaxInflight, 0.0);
    size_t slot = 0;

    for (;;) {
        DmaDescriptor desc = co_await queue_.pop();
        if (desc.op == DmaDescriptor::Op::Terminate)
            break;

        const sim::SimTime started = engine_.now();
        // Serial dispatch overhead, then wait for a free window slot.
        co_await engine_.delay(cfg_.dmaDescriptorOverheadNs);
        co_await engine_.delayUntil(inflight[slot]);

        sim::SimTime done;
        if (desc.op == DmaDescriptor::Op::ReadMulAcc) {
            // Pipelined read: request latency overlaps with earlier
            // transfers; the in-scratchpad vector multiply + copy-add
            // extends the slot occupancy.
            const MemoryAccess acc =
                memory_.readStriped(core_, desc.slice, desc.bytes,
                                    /*pipelined=*/true);
            done = acc.serviceDoneAt +
                   desc.bytes / cfg_.spadBandwidthGBps;
        } else {
            const MemoryAccess acc =
                memory_.writeStriped(core_, desc.slice, desc.bytes,
                                     /*pipelined=*/true);
            done = acc.serviceDoneAt;
        }
        inflight[slot] = done;
        if (++slot == inflight.size())
            slot = 0;

        ++stats_.descriptors;
        stats_.bytesMoved += desc.bytes;
        stats_.busyNs += engine_.now() - started;
    }

    // Drain: the engine is not finished until its last transfers
    // complete, so the simulation makespan covers them.
    const sim::SimTime last =
        *std::max_element(inflight.begin(), inflight.end());
    co_await engine_.delayUntil(last);
}

} // namespace pgcn::piuma
