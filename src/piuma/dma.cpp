#include "piuma/dma.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace pgcn::piuma {

void
DmaEngine::attachTelemetry(telemetry::Session *session)
{
    if (session == nullptr)
        return;
    session_ = session;
    telemetry::Registry &reg = session->registry();
    const std::string core = std::to_string(core_);
    tlmDescriptors_ = &reg.counter("piuma.dma.descriptors");
    tlmBusyNs_ = &reg.counter("piuma.dma.busy_ns");
    // enqueue-to-retire per descriptor: dispatch overhead + window
    // wait + bandwidth service; long tails flag queueing collapse.
    tlmDescNs_ = &reg.histogram("piuma.dma.descriptor_ns",
                                0.0, 500.0, 100);
    reg.registerGauge("piuma.core" + core + ".dma.queue_depth",
                      telemetry::GaugeKind::Value,
                      [this] { return static_cast<double>(queue_.size()); });
    detailedTrace_ = session->detailedTrace();
    if (detailedTrace_) {
        const uint32_t tid = telemetry::tracks::kDmaBase + core_;
        session->trace().setThreadName(tid, "core" + core + ".dma");
        spanName_ = session->trace().intern("dma.descriptor");
    }
}

void
DmaEngine::noteTransferFault(const char *op, unsigned slice)
{
    if (stats_.failed)
        return;
    stats_.failed = true;
    stats_.failedDetail = "core" + std::to_string(core_) + " dma " +
                          op + " on slice " + std::to_string(slice);
}

sim::Process
DmaEngine::run()
{
    co_await engine_.announce("core" + std::to_string(core_) + ".dma");

    // Completion times of the in-flight transfer window. Descriptors
    // dispatch in strict arrival order, but up to dmaMaxInflight
    // transfers overlap, which is what makes the engine tolerate
    // memory latency. Each slot also remembers which domain computed
    // its completion, so a sharded run routes the wake as a
    // cross-domain event from the serving slice's domain.
    std::vector<sim::SimTime> inflight(cfg_.dmaMaxInflight, 0.0);
    std::vector<unsigned> inflightDom(cfg_.dmaMaxInflight, homeDomain_);
    size_t slot = 0;

    for (;;) {
        DmaDescriptor desc = co_await queue_.pop();
        if (desc.op == DmaDescriptor::Op::Terminate)
            break;

        const sim::SimTime started = engine_.now();
        // Serial dispatch overhead, then wait for a free window slot.
        double overhead = cfg_.dmaDescriptorOverheadNs;
        if (faults_ != nullptr) [[unlikely]] {
            overhead = faults_->dmaOverhead(overhead);
            // Descriptor fetch/execution faults: re-issue under
            // timeout + exponential backoff, bounded by the retry
            // budget. On exhaustion record the failure and *skip* the
            // descriptor but keep consuming the queue — a dead engine
            // would wedge its producers, and an unrecoverable fault
            // must surface as SimFaultError, never as a deadlock.
            bool abandoned = false;
            for (unsigned attempt = 0; faults_->dropDescriptor();
                 ++attempt) {
                ++stats_.timeoutsFired;
                const sim::FaultConfig &fc = faults_->config();
                if (attempt >= fc.maxRetries) {
                    if (!stats_.failed) {
                        stats_.failed = true;
                        stats_.failedDetail =
                            "core" + std::to_string(core_) +
                            " dma descriptor (slice " +
                            std::to_string(desc.slice) + ")";
                    }
                    // The final timeout still elapses before the
                    // watchdog declares the descriptor dead.
                    co_await engine_.delay(fc.timeoutNs);
                    stats_.recoveryNs += fc.timeoutNs;
                    abandoned = true;
                    break;
                }
                const sim::SimTime r0 = engine_.now();
                co_await engine_.delay(fc.timeoutNs +
                                       faults_->backoffDelay(attempt));
                stats_.recoveryNs += engine_.now() - r0;
                ++stats_.retries;
            }
            if (abandoned)
                continue;
        }
        co_await engine_.delay(overhead);
        if (domains_ != nullptr) {
            co_await domains_->awaitResponse(inflightDom[slot],
                                             homeDomain_,
                                             inflight[slot]);
        } else {
            co_await engine_.delayUntil(inflight[slot]);
        }

        sim::SimTime done;
        if (desc.op == DmaDescriptor::Op::ReadMulAcc) {
            // Pipelined read: request latency overlaps with earlier
            // transfers; the in-scratchpad vector multiply + copy-add
            // extends the slot occupancy.
            const MemoryAccess acc =
                memory_.readStriped(core_, desc.slice, desc.bytes,
                                    /*pipelined=*/true);
            if (acc.failed) [[unlikely]]
                noteTransferFault("read", desc.slice);
            stats_.recoveryNs += acc.recoveryNs;
            done = acc.serviceDoneAt +
                   desc.bytes / cfg_.spadBandwidthGBps;
        } else {
            const MemoryAccess acc =
                memory_.writeStriped(core_, desc.slice, desc.bytes,
                                     /*pipelined=*/true);
            if (acc.failed) [[unlikely]]
                noteTransferFault("write", desc.slice);
            stats_.recoveryNs += acc.recoveryNs;
            done = acc.serviceDoneAt;
        }
        inflight[slot] = done;
        inflightDom[slot] = sliceDomain(desc.slice);
        if (++slot == inflight.size())
            slot = 0;

        ++stats_.descriptors;
        stats_.bytesMoved += desc.bytes;
        stats_.busyNs += engine_.now() - started;
#ifndef PGCN_NO_TELEMETRY
        if (monitor_ != nullptr) [[unlikely]]
            monitor_->addSpan(started, engine_.now());
        if (session_ != nullptr) [[unlikely]] {
            const sim::SimTime now = engine_.now();
            tlmDescriptors_->increment();
            tlmBusyNs_->add(now - started);
            tlmDescNs_->add(now - started);
            if (detailedTrace_) {
                const double off = session_->runOffsetNs();
                const uint32_t tid = telemetry::tracks::kDmaBase + core_;
                session_->trace().begin(off + started, spanName_, tid);
                session_->trace().end(off + now, spanName_, tid);
            }
        }
#endif
    }

    // Drain: the engine is not finished until its last transfers
    // complete, so the simulation makespan covers them.
    size_t last = 0;
    for (size_t i = 1; i < inflight.size(); ++i)
        if (inflight[i] > inflight[last])
            last = i;
    if (domains_ != nullptr) {
        co_await domains_->awaitResponse(inflightDom[last], homeDomain_,
                                         inflight[last]);
    } else {
        co_await engine_.delayUntil(inflight[last]);
    }
}

} // namespace pgcn::piuma
