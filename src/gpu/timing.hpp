/**
 * @file
 * Analytical A100 timing for GCN inference: PCIe offload, device
 * SpMM/Dense-MM rooflines, and host-side full-neighbourhood sampling
 * for graphs that exceed device memory (the *papers* regime of
 * Fig. 4 where sampling+offload consume >99% of execution time).
 */
#ifndef PGCN_GPU_TIMING_HPP
#define PGCN_GPU_TIMING_HPP

#include "gpu/config.hpp"
#include "model/spmm_model.hpp"

namespace pgcn::gpu {

/**
 * Device-resident footprint (bytes) of a GCN over a graph: CSR plus
 * the widest pair of activation matrices.
 *
 * @param num_vertices |V|.
 * @param num_edges |E|.
 * @param max_dim Widest feature dimension across layers.
 */
double deviceFootprintBytes(uint64_t num_vertices, uint64_t num_edges,
                            uint64_t max_dim);

/**
 * Whether the whole graph (and activations) fits in device memory —
 * the Fig. 4 / Fig. 9 threshold separating offload-bound from
 * sampling-bound execution.
 */
bool fitsInMemory(const GpuConfig &cfg, uint64_t num_vertices,
                  uint64_t num_edges, uint64_t max_dim);

/**
 * One-time offload of the adjacency + input features over PCIe (ns).
 * Inductive inference cannot avoid this transfer (Section III-C).
 */
double offloadTimeNs(const GpuConfig &cfg, uint64_t num_vertices,
                     uint64_t num_edges, uint64_t input_dim);

/** Device SpMM time (ns): HBM roofline with L2-reuse correction. */
double spmmTimeNs(const GpuConfig &cfg, const model::SpmmWorkload &w);

/** Device dense-update time (ns): tensor-core roofline. */
double denseMmTimeNs(const GpuConfig &cfg, uint64_t num_vertices,
                     uint64_t k_in, uint64_t k_out);

/** Element-wise glue time (ns) at HBM bandwidth. */
double glueTimeNs(const GpuConfig &cfg, uint64_t num_vertices, uint64_t k);

/**
 * Host-side full-neighbourhood layer-wise sampling time (ns) for one
 * layer over the whole edge set — the dominant cost when the graph
 * does not fit on the device. Covers the CSR traversal plus the
 * random gather of each neighbour's K-float feature vector into the
 * mini-batch staging buffer.
 *
 * @param num_edges Edges expanded by the layer (full neighbourhood).
 * @param k Feature dimension gathered per edge.
 */
double samplingTimeNs(const GpuConfig &cfg, uint64_t num_edges, uint64_t k);

} // namespace pgcn::gpu

#endif // PGCN_GPU_TIMING_HPP
