/**
 * @file
 * NVIDIA A100 GPU platform description, matching the comparison
 * system of the paper ([16], [17]): A100 40 GB with PCIe 4.0 to a
 * dual-socket Ice Lake host. The paper imports its GPU measurements
 * from [16]; we reproduce them with an analytical model of the same
 * three regimes: offload-dominated (graph fits, small K),
 * compute-competitive (graph fits, large K) and sampling-dominated
 * (graph exceeds device memory).
 */
#ifndef PGCN_GPU_CONFIG_HPP
#define PGCN_GPU_CONFIG_HPP

#include <cstdint>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn::gpu {

/** Static description of the GPU platform (device + host link). */
struct GpuConfig
{
    /// Device memory capacity (bytes); A100 40 GB SXM/PCIe card.
    double memoryBytes = 40.0 * 1024 * 1024 * 1024;
    /// HBM2e bandwidth (GB/s).
    double hbmBandwidthGBps = 1555.0;
    /// Achievable fp32 dense throughput (GFLOP/s): TF32 tensor cores
    /// derated to a realistic GEMM efficiency.
    double denseGflops = 19500.0 * 0.5;
    /// SpMM efficiency relative to the HBM roofline (GE-SpMM-class
    /// kernels reach a bit over half of STREAM on scale-free graphs).
    double spmmEfficiency = 0.6;
    /// Device L2 available for feature reuse (bytes).
    double l2CacheBytes = 40.0 * 1024 * 1024;
    /// Fraction of potential L2 reuse an SpMM kernel realises: the
    /// shared L2 also streams the CSR and output, so even a resident
    /// feature matrix is only partially reused.
    double l2ReuseFactor = 0.5;

    /// Effective host->device PCIe 4.0 x16 bandwidth (GB/s).
    double pcieBandwidthGBps = 25.0;
    /// Fixed cost per offloaded buffer (driver + pinning), ns.
    double transferOverheadNs = 20000.0;
    /// Per-kernel launch overhead (ns).
    double kernelLaunchOverheadNs = 10000.0;

    /// Host-side full-neighbourhood sampling throughput in edges/ns.
    /// Sampling is a latency-bound pointer chase over the CSR; a
    /// dual-socket host sustains on the order of 10^8-10^9 edges/s.
    /// 0.3 edges/ns ~= 3.3 ns/edge.
    double hostSamplingEdgesPerNs = 0.3;
    /// Host random-gather bandwidth (GB/s) for staging neighbour
    /// feature vectors during sampling — well below STREAM because
    /// the rows are visited in neighbour order.
    double hostGatherBandwidthGBps = 50.0;

    /**
     * Validate every field; throws ConfigError naming the offending
     * parameter (NaN/inf/zero/negative all rejected here instead of
     * emerging as inf/NaN modelled times).
     */
    void
    validate() const
    {
        check::positive(memoryBytes, "gpu.memoryBytes");
        check::positive(hbmBandwidthGBps, "gpu.hbmBandwidthGBps");
        check::positive(denseGflops, "gpu.denseGflops");
        check::unitInterval(spmmEfficiency, "gpu.spmmEfficiency");
        check::positive(l2CacheBytes, "gpu.l2CacheBytes");
        check::unitInterval(l2ReuseFactor, "gpu.l2ReuseFactor");
        check::positive(pcieBandwidthGBps, "gpu.pcieBandwidthGBps");
        check::nonNegative(transferOverheadNs, "gpu.transferOverheadNs");
        check::nonNegative(kernelLaunchOverheadNs,
                           "gpu.kernelLaunchOverheadNs");
        check::positive(hostSamplingEdgesPerNs,
                        "gpu.hostSamplingEdgesPerNs");
        check::positive(hostGatherBandwidthGBps,
                        "gpu.hostGatherBandwidthGBps");
    }

    /** The paper's NVIDIA A100-40GB PCIe comparison card. */
    static GpuConfig
    a100_40gb()
    {
        return GpuConfig{};
    }
};

} // namespace pgcn::gpu

#endif // PGCN_GPU_CONFIG_HPP
