#include "gpu/timing.hpp"

#include <algorithm>

namespace pgcn::gpu {

double
deviceFootprintBytes(uint64_t num_vertices, uint64_t num_edges,
                     uint64_t max_dim)
{
    const double v = static_cast<double>(num_vertices);
    const double e = static_cast<double>(num_edges);
    const double k = static_cast<double>(max_dim);
    const double csr = (v + 1.0) * 8.0 + e * 8.0; // offsets + col/val
    const double activations = 2.0 * v * k * 4.0; // in + out of a layer
    return csr + activations;
}

bool
fitsInMemory(const GpuConfig &cfg, uint64_t num_vertices,
             uint64_t num_edges, uint64_t max_dim)
{
    cfg.validate();
    return deviceFootprintBytes(num_vertices, num_edges, max_dim) <=
           cfg.memoryBytes;
}

double
offloadTimeNs(const GpuConfig &cfg, uint64_t num_vertices,
              uint64_t num_edges, uint64_t input_dim)
{
    const double v = static_cast<double>(num_vertices);
    const double e = static_cast<double>(num_edges);
    const double csr = (v + 1.0) * 8.0 + e * 8.0;
    const double features = v * static_cast<double>(input_dim) * 4.0;
    return (csr + features) / cfg.pcieBandwidthGBps +
           2.0 * cfg.transferOverheadNs;
}

double
spmmTimeNs(const GpuConfig &cfg, const model::SpmmWorkload &w)
{
    const model::ElementSizes sizes;
    const double v = static_cast<double>(w.numVertices);
    const double e = static_cast<double>(w.numEdges);
    const double k = static_cast<double>(w.embeddingDim);

    const double working_set = v * k * sizes.feature;
    const double hit =
        (working_set > 0 ? std::min(1.0, cfg.l2CacheBytes / working_set)
                         : 1.0) *
        cfg.l2ReuseFactor;
    const double csr = (v + 1.0) * sizes.rowIndex + e * sizes.colIndex +
                       e * sizes.nonZero;
    const double feature =
        v * k * sizes.feature +
        std::max(0.0, e - v) * k * sizes.feature * (1.0 - hit);
    const double write = v * k * sizes.feature;
    const double bytes = csr + feature + write;
    return bytes / (cfg.hbmBandwidthGBps * cfg.spmmEfficiency) +
           cfg.kernelLaunchOverheadNs;
}

double
denseMmTimeNs(const GpuConfig &cfg, uint64_t num_vertices, uint64_t k_in,
              uint64_t k_out)
{
    const double v = static_cast<double>(num_vertices);
    const double flop =
        2.0 * v * static_cast<double>(k_in) * static_cast<double>(k_out);
    const double bytes =
        v * (static_cast<double>(k_in) + static_cast<double>(k_out)) * 4.0;
    return model::rooflineTimeNs(flop, bytes, cfg.denseGflops,
                                 cfg.hbmBandwidthGBps) +
           cfg.kernelLaunchOverheadNs;
}

double
glueTimeNs(const GpuConfig &cfg, uint64_t num_vertices, uint64_t k)
{
    const double bytes = 2.0 * static_cast<double>(num_vertices) *
                         static_cast<double>(k) * 4.0;
    return bytes / cfg.hbmBandwidthGBps + cfg.kernelLaunchOverheadNs;
}

double
samplingTimeNs(const GpuConfig &cfg, uint64_t num_edges, uint64_t k)
{
    const double traversal =
        static_cast<double>(num_edges) / cfg.hostSamplingEdgesPerNs;
    const double gather = static_cast<double>(num_edges) *
                          static_cast<double>(k) * 4.0 /
                          cfg.hostGatherBandwidthGBps;
    return traversal + gather;
}

} // namespace pgcn::gpu
