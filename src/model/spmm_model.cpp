#include "model/spmm_model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace pgcn::model {

SpmmEstimate
estimateSpmm(const SpmmWorkload &w, double read_bw_bytes_per_ns,
             double write_bw_bytes_per_ns, const ElementSizes &sizes)
{
    PGCN_ASSERT(read_bw_bytes_per_ns > 0, "read bandwidth must be positive");
    PGCN_ASSERT(write_bw_bytes_per_ns > 0,
                "write bandwidth must be positive");

    SpmmEstimate est{};
    const auto v = static_cast<double>(w.numVertices);
    const auto e = static_cast<double>(w.numEdges);
    const auto k = static_cast<double>(w.embeddingDim);

    est.bytesCsr = (v + 1.0) * sizes.rowIndex + e * sizes.colIndex +
                   e * sizes.nonZero;                          // Eq. 1
    est.bytesFeature = k * e * sizes.feature;                  // Eq. 2
    est.bytesWrite = k * v * sizes.feature;                    // Eq. 3
    est.flop = 2.0 * e * k;                                    // Eq. 4
    est.timeNs = (est.bytesCsr + est.bytesFeature) / read_bw_bytes_per_ns +
                 est.bytesWrite / write_bw_bytes_per_ns;       // Eq. 5
    est.gflops = est.timeNs > 0 ? est.flop / est.timeNs : 0.0;
    return est;
}

double
rooflineTimeNs(double flop, double bytes, double peak_gflops,
               double bw_bytes_per_ns)
{
    PGCN_ASSERT(peak_gflops > 0, "peak GFLOPS must be positive");
    PGCN_ASSERT(bw_bytes_per_ns > 0, "bandwidth must be positive");
    const double compute_ns = flop / peak_gflops;
    const double memory_ns = bytes / bw_bytes_per_ns;
    return std::max(compute_ns, memory_ns);
}

} // namespace pgcn::model
