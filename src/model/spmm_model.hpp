/**
 * @file
 * The paper's bandwidth-bound analytical model for SpMM
 * (Section IV-A, Equations 1-5).
 *
 * The model assumes no reuse of input feature vectors — fair for
 * PIUMA, which has no L2/L3 cache — and computes the total read and
 * write traffic of one SpMM, divides by the respective bandwidths,
 * and derives the achievable FLOP/s.
 */
#ifndef PGCN_MODEL_SPMM_MODEL_HPP
#define PGCN_MODEL_SPMM_MODEL_HPP

#include <cstdint>

namespace pgcn::model {

/** Element sizes (bytes) of the CSR and feature arrays. */
struct ElementSizes
{
    double rowIndex = 8.0;  ///< B_R: CSR row-offset entry
    double colIndex = 4.0;  ///< B_C: CSR column entry
    double nonZero = 4.0;   ///< B_N: non-zero value
    double feature = 4.0;   ///< B_F: feature element (float32)
};

/** Workload description for one SpMM. */
struct SpmmWorkload
{
    uint64_t numVertices; ///< |V|
    uint64_t numEdges;    ///< |E| (non-zeros of A~)
    uint64_t embeddingDim;///< K
};

/** Traffic and time estimates produced by the model. */
struct SpmmEstimate
{
    double bytesCsr;     ///< Eq. 1: (|V|+1) B_R + |E| B_C + |E| B_N
    double bytesFeature; ///< Eq. 2: K |E| B_F
    double bytesWrite;   ///< Eq. 3: K |V| B_F
    double flop;         ///< Eq. 4: 2 |E| K
    double timeNs;       ///< Eq. 5: reads / BW_read + writes / BW_write
    double gflops;       ///< flop / timeNs (FLOP per ns == GFLOP/s)

    /** Total bytes moved (reads + writes). */
    double totalBytes() const { return bytesCsr + bytesFeature + bytesWrite; }

    /** Arithmetic intensity in FLOP per byte. */
    double
    arithmeticIntensity() const
    {
        return totalBytes() > 0 ? flop / totalBytes() : 0.0;
    }
};

/**
 * Evaluate the bandwidth-bound model.
 *
 * @param w Workload (|V|, |E|, K).
 * @param read_bw_bytes_per_ns Aggregate read bandwidth (B/ns == GB/s).
 * @param write_bw_bytes_per_ns Aggregate write bandwidth.
 * @param sizes Element byte sizes (defaults match the CSR layout of
 *        this library: 8-byte offsets, 4-byte columns/values/features).
 */
SpmmEstimate estimateSpmm(const SpmmWorkload &w, double read_bw_bytes_per_ns,
                          double write_bw_bytes_per_ns,
                          const ElementSizes &sizes = {});

/**
 * Roofline execution time: max(compute time, memory time).
 *
 * @param flop Total floating-point operations.
 * @param bytes Total bytes moved.
 * @param peak_gflops Peak compute throughput (GFLOP/s).
 * @param bw_bytes_per_ns Memory bandwidth (B/ns == GB/s).
 * @return Time in nanoseconds.
 */
double rooflineTimeNs(double flop, double bytes, double peak_gflops,
                      double bw_bytes_per_ns);

} // namespace pgcn::model

#endif // PGCN_MODEL_SPMM_MODEL_HPP
