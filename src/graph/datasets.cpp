#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"

namespace pgcn::graph {

const std::vector<DatasetInfo> &
ogbDatasets()
{
    // Published |V| / |E| are Table I of the paper; feature dims and
    // class counts are the standard OGB task dimensions (approximate
    // for link-prediction tasks, where an embedding dim stands in for
    // the input features).
    static const std::vector<DatasetInfo> datasets = {
        {"ddi", 4267, 1334889, 128, 1, DegreeProfile::Uniform},
        {"proteins", 132534, 39561252, 8, 112, DegreeProfile::Uniform},
        {"arxiv", 169343, 1166243, 128, 40, DegreeProfile::Skewed},
        {"collab", 235868, 1285465, 128, 1, DegreeProfile::Uniform},
        {"ppa", 576289, 30326273, 58, 37, DegreeProfile::Uniform},
        {"mag", 1939743, 21111007, 128, 349, DegreeProfile::Skewed},
        {"products", 2449029, 61859140, 100, 47, DegreeProfile::Skewed},
        {"citation2", 2927963, 30561187, 128, 1, DegreeProfile::Skewed},
        {"papers", 111059956, 1615685872, 128, 172, DegreeProfile::Skewed},
    };
    return datasets;
}

const std::vector<DatasetInfo> &
powerDatasets()
{
    static const std::vector<DatasetInfo> datasets = {
        {"power-16", uint64_t{1} << 16, (uint64_t{1} << 16) * 16, 128, 16,
         DegreeProfile::Skewed},
        {"power-22", uint64_t{1} << 22, (uint64_t{1} << 22) * 16, 128, 16,
         DegreeProfile::Skewed},
    };
    return datasets;
}

const std::vector<DatasetInfo> &
allDatasets()
{
    static const std::vector<DatasetInfo> datasets = [] {
        std::vector<DatasetInfo> all = ogbDatasets();
        const auto &power = powerDatasets();
        all.insert(all.end(), power.begin(), power.end());
        return all;
    }();
    return datasets;
}

const DatasetInfo &
datasetByName(const std::string &name)
{
    const auto &all = allDatasets();
    auto it = std::find_if(all.begin(), all.end(),
                           [&](const DatasetInfo &d) {
                               return d.name == name;
                           });
    if (it == all.end())
        PGCN_THROW(ConfigError, "unknown dataset: " << name);
    return *it;
}

ProxyGraph
buildProxy(const DatasetInfo &info, EdgeId max_edges, uint64_t seed)
{
    if (max_edges == 0)
        PGCN_THROW(ConfigError, "proxy edge budget must be positive");

    // Shrink vertices and edges by the same factor: average degree,
    // which drives cache reuse and NNZ-read ratios, is preserved.
    const double shrink =
        std::max(1.0, static_cast<double>(info.numEdges) /
                          static_cast<double>(max_edges));
    const auto proxy_edges = static_cast<EdgeId>(
        static_cast<double>(info.numEdges) / shrink);
    auto proxy_vertices = static_cast<uint64_t>(
        std::max(2.0, static_cast<double>(info.numVertices) / shrink));

    Coo coo(0);
    if (info.profile == DegreeProfile::Skewed) {
        // RMAT needs a power-of-two vertex count; round up so density
        // stays at or below the target.
        uint32_t scale = 1;
        while ((uint64_t{1} << scale) < proxy_vertices)
            ++scale;
        coo = generateRmat(scale, proxy_edges, rmatSkewed(), seed);
        proxy_vertices = uint64_t{1} << scale;
    } else {
        coo = generateUniform(static_cast<VertexId>(proxy_vertices),
                              proxy_edges, seed);
    }

    Csr adjacency = normalizedAdjacency(coo);
    const double scale_factor =
        static_cast<double>(info.numEdges) /
        static_cast<double>(std::max<EdgeId>(1, adjacency.numEdges()));
    return ProxyGraph{info, std::move(adjacency),
                      std::max(1.0, scale_factor)};
}

} // namespace pgcn::graph
