/**
 * @file
 * Graph persistence: a whitespace edge-list text format (what OGB
 * distributions and SNAP dumps look like) and a fast binary CSR
 * container, so downstream users can run the library on their own
 * graphs without regenerating them.
 */
#ifndef PGCN_GRAPH_IO_HPP
#define PGCN_GRAPH_IO_HPP

#include <string>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace pgcn::graph {

/**
 * Write @p coo as text: a header line "# vertices N", then one
 * "src dst weight" triple per line. Throws IoError on I/O errors.
 */
void saveEdgeListText(const Coo &coo, const std::string &path);

/**
 * Load an edge-list text file written by saveEdgeListText(), or any
 * whitespace-separated "src dst [weight]" file with an optional
 * "# vertices N" header (otherwise |V| = max id + 1). Lines starting
 * with '#' are comments. Rejects negative or out-of-range vertex ids,
 * malformed or non-finite weights, and trailing fields. Throws
 * GraphIoError on parse errors and IoError on I/O errors, so callers
 * (sweep drivers, tools) can skip a bad input and continue.
 */
Coo loadEdgeListText(const std::string &path);

/**
 * Write @p csr to a binary container (magic, version, counts, then
 * the three arrays). Throws IoError on I/O errors.
 */
void saveCsrBinary(const Csr &csr, const std::string &path);

/**
 * Load a binary CSR written by saveCsrBinary(). Validates the magic,
 * version, header counts against the actual file size (before
 * allocating anything), and the structural CSR invariants. Throws
 * GraphIoError on corrupt/mismatched content, IoError on I/O errors.
 */
Csr loadCsrBinary(const std::string &path);

} // namespace pgcn::graph

#endif // PGCN_GRAPH_IO_HPP
