#include "graph/csr.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace pgcn::graph {

Csr::Csr(const Coo &coo) : numVertices_(coo.numVertices())
{
    // Work on a sorted copy so duplicate edges collapse deterministically.
    Coo sorted = coo;
    sorted.sortAndCombineDuplicates();
    const auto &edges = sorted.edges();

    rowOffsets_.assign(static_cast<size_t>(numVertices_) + 1, 0);
    cols_.resize(edges.size());
    vals_.resize(edges.size());

    for (const Edge &e : edges)
        ++rowOffsets_[e.src + 1];
    for (size_t v = 0; v < numVertices_; ++v)
        rowOffsets_[v + 1] += rowOffsets_[v];

    for (size_t i = 0; i < edges.size(); ++i) {
        cols_[i] = edges[i].dst;
        vals_[i] = edges[i].weight;
    }
    validate();
}

Csr::Csr(VertexId num_vertices, std::vector<EdgeId> row_offsets,
         std::vector<VertexId> cols, std::vector<Value> vals)
    : numVertices_(num_vertices), rowOffsets_(std::move(row_offsets)),
      cols_(std::move(cols)), vals_(std::move(vals))
{
    validate();
}

void
Csr::validate() const
{
    PGCN_ASSERT(rowOffsets_.size() ==
                    static_cast<size_t>(numVertices_) + 1,
                "row-offset array size " << rowOffsets_.size()
                                         << " != |V|+1 = "
                                         << numVertices_ + 1);
    PGCN_ASSERT(rowOffsets_.front() == 0, "row offsets must start at 0");
    PGCN_ASSERT(rowOffsets_.back() == cols_.size(),
                "row offsets end " << rowOffsets_.back() << " != nnz "
                                   << cols_.size());
    PGCN_ASSERT(cols_.size() == vals_.size(),
                "cols/vals size mismatch: " << cols_.size() << " vs "
                                            << vals_.size());
    for (size_t v = 0; v < numVertices_; ++v) {
        PGCN_ASSERT(rowOffsets_[v] <= rowOffsets_[v + 1],
                    "row offsets not monotone at row " << v);
    }
    for (VertexId c : cols_) {
        PGCN_ASSERT(c < numVertices_,
                    "column index " << c << " >= |V| = " << numVertices_);
    }
}

double
Csr::density() const
{
    if (numVertices_ == 0)
        return 0.0;
    const double v = static_cast<double>(numVertices_);
    return static_cast<double>(numEdges()) / (v * v);
}

double
Csr::averageDegree() const
{
    if (numVertices_ == 0)
        return 0.0;
    return static_cast<double>(numEdges()) /
           static_cast<double>(numVertices_);
}

VertexId
Csr::rowOfEdge(EdgeId e) const
{
    PGCN_ASSERT(e < numEdges(), "edge index " << e << " out of range");
    // upper_bound finds the first offset strictly greater than e; the
    // row owning e is one before it.
    auto it = std::upper_bound(rowOffsets_.begin(), rowOffsets_.end(), e);
    return static_cast<VertexId>(std::distance(rowOffsets_.begin(), it) - 1);
}

} // namespace pgcn::graph
