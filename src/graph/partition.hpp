/**
 * @file
 * Graph partitioning analysis (paper Section VI, "Graph
 * Partitioning"): distributed GNN systems must cut the graph so each
 * piece fits one node's memory, paying edge-cut communication and
 * ghost-vertex replication; PIUMA's DGAS sidesteps this entirely.
 * This module quantifies what a cut costs so the ablation bench can
 * put numbers behind that argument.
 */
#ifndef PGCN_GRAPH_PARTITION_HPP
#define PGCN_GRAPH_PARTITION_HPP

#include <vector>

#include "graph/csr.hpp"

namespace pgcn::graph {

/** Quality metrics of a vertex partition. */
struct PartitionStats
{
    unsigned numParts = 0;
    EdgeId cutEdges = 0;        ///< edges whose endpoints differ
    double cutFraction = 0.0;   ///< cutEdges / |E|
    /**
     * Average copies of each vertex's feature vector across parts
     * (1.0 = no replication): a part needs a ghost copy of every
     * remote neighbour it reads.
     */
    double replicationFactor = 0.0;
    double maxLoadImbalance = 0.0; ///< max part edges / average
};

/** Assignment of each vertex to a part. */
using PartitionAssignment = std::vector<unsigned>;

/**
 * Hash-based 1D vertex partition (the cheap baseline real systems
 * start from).
 *
 * @param num_vertices Vertices to assign.
 * @param parts Number of parts (>= 1).
 */
PartitionAssignment hashPartition(VertexId num_vertices, unsigned parts);

/**
 * Contiguous-range 1D partition balancing edge counts (what a
 * CSR-aware system does to fix load imbalance).
 */
PartitionAssignment rangePartitionByEdges(const Csr &csr, unsigned parts);

/**
 * Evaluate a partition's cut/replication/balance over @p csr.
 *
 * @param csr Graph.
 * @param assignment Part id per vertex (size |V|, values < parts).
 * @param parts Number of parts.
 */
PartitionStats evaluatePartition(const Csr &csr,
                                 const PartitionAssignment &assignment,
                                 unsigned parts);

/**
 * Per-layer ghost-exchange volume (bytes) of a distributed SpMM: each
 * part receives the K-float feature vector of every remote neighbour
 * it reads (counted once per (part, vertex) pair).
 *
 * @param stats Partition metrics.
 * @param num_vertices |V| of the partitioned graph.
 * @param embedding_dim K.
 */
double ghostExchangeBytes(const PartitionStats &stats,
                          uint64_t num_vertices, uint64_t embedding_dim);

} // namespace pgcn::graph

#endif // PGCN_GRAPH_PARTITION_HPP
