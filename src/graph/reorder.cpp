#include "graph/reorder.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pgcn::graph {

namespace {

/** Build the inverse array of a validated old->new map. */
std::vector<VertexId>
invertMap(const std::vector<VertexId> &new_of)
{
    std::vector<VertexId> old_of(new_of.size());
    for (VertexId old_id = 0; old_id < new_of.size(); ++old_id)
        old_of[new_of[old_id]] = old_id;
    return old_of;
}

} // namespace

Permutation
Permutation::identity(VertexId n)
{
    Permutation p;
    p.newOf_.resize(n);
    std::iota(p.newOf_.begin(), p.newOf_.end(), VertexId{0});
    p.oldOf_ = p.newOf_;
    return p;
}

Permutation
Permutation::fromNewIds(std::vector<VertexId> new_ids)
{
    const VertexId n = static_cast<VertexId>(new_ids.size());
    std::vector<uint8_t> seen(n, 0);
    for (VertexId old_id = 0; old_id < n; ++old_id) {
        const VertexId v = new_ids[old_id];
        if (v >= n)
            PGCN_THROW(ShapeError, "permutation maps " << old_id << " to "
                                       << v << ", outside [0, " << n << ")");
        if (seen[v])
            PGCN_THROW(ShapeError,
                       "permutation is not a bijection: new id "
                           << v << " assigned twice (second old id " << old_id
                           << ")");
        seen[v] = 1;
    }
    Permutation p;
    p.newOf_ = std::move(new_ids);
    p.oldOf_ = invertMap(p.newOf_);
    return p;
}

Permutation
Permutation::inverse() const
{
    Permutation p;
    p.newOf_ = oldOf_;
    p.oldOf_ = newOf_;
    return p;
}

Permutation
Permutation::then(const Permutation &next) const
{
    PGCN_ASSERT(size() == next.size(),
                "composing permutations of sizes " << size() << " and "
                                                   << next.size());
    Permutation p;
    p.newOf_.resize(size());
    for (VertexId v = 0; v < size(); ++v)
        p.newOf_[v] = next.newOf_[newOf_[v]];
    p.oldOf_ = invertMap(p.newOf_);
    return p;
}

bool
Permutation::isIdentity() const
{
    for (VertexId v = 0; v < size(); ++v)
        if (newOf_[v] != v)
            return false;
    return true;
}

Csr
Permutation::applyToCsr(const Csr &a) const
{
    PGCN_ASSERT(a.numVertices() == size(),
                "permutation size " << size() << " vs CSR with "
                                    << a.numVertices() << " vertices");
    const VertexId n = size();
    std::vector<EdgeId> offsets(static_cast<size_t>(n) + 1, 0);
    for (VertexId new_row = 0; new_row < n; ++new_row)
        offsets[new_row + 1] = offsets[new_row] + a.degree(oldOf_[new_row]);

    std::vector<VertexId> cols(a.numEdges());
    std::vector<Value> vals(a.numEdges());
    // Per-row scratch: relabel, then sort by new column id so the
    // result keeps the sorted-columns invariant Csr(Coo) establishes.
    std::vector<std::pair<VertexId, Value>> row;
    for (VertexId new_row = 0; new_row < n; ++new_row) {
        const VertexId old_row = oldOf_[new_row];
        const auto old_cols = a.rowCols(old_row);
        const auto old_vals = a.rowVals(old_row);
        row.resize(old_cols.size());
        for (size_t i = 0; i < old_cols.size(); ++i)
            row[i] = {newOf_[old_cols[i]], old_vals[i]};
        std::sort(row.begin(), row.end(),
                  [](const auto &x, const auto &y) { return x.first < y.first; });
        EdgeId out = offsets[new_row];
        for (const auto &[c, w] : row) {
            cols[out] = c;
            vals[out] = w;
            ++out;
        }
    }
    return Csr(n, std::move(offsets), std::move(cols), std::move(vals));
}

Coo
Permutation::applyToCoo(const Coo &coo) const
{
    PGCN_ASSERT(coo.numVertices() == size(),
                "permutation size " << size() << " vs COO with "
                                    << coo.numVertices() << " vertices");
    Coo out(coo.numVertices());
    for (const Edge &e : coo.edges())
        out.addEdge(newOf_[e.src], newOf_[e.dst], e.weight);
    return out;
}

tensor::DenseMatrix
Permutation::applyToFeatures(const tensor::DenseMatrix &h) const
{
    PGCN_ASSERT(h.rows() == size(),
                "permutation size " << size() << " vs feature matrix with "
                                    << h.rows() << " rows");
    tensor::DenseMatrix out;
    out.resizeForOverwrite(h.rows(), h.cols());
    for (VertexId old_row = 0; old_row < size(); ++old_row)
        std::memcpy(out.row(newOf_[old_row]).data(), h.row(old_row).data(),
                    h.cols() * sizeof(float));
    return out;
}

Permutation
shuffleOrder(VertexId n, uint64_t seed)
{
    std::vector<VertexId> new_ids(n);
    std::iota(new_ids.begin(), new_ids.end(), VertexId{0});
    Rng rng(seed);
    for (VertexId i = n; i > 1; --i)
        std::swap(new_ids[i - 1],
                  new_ids[static_cast<VertexId>(rng.uniformInt(i))]);
    return Permutation::fromNewIds(std::move(new_ids));
}

Permutation
degreeOrder(const Csr &a)
{
    const VertexId n = a.numVertices();
    std::vector<VertexId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
    std::sort(by_degree.begin(), by_degree.end(),
              [&a](VertexId u, VertexId v) {
                  if (a.degree(u) != a.degree(v))
                      return a.degree(u) > a.degree(v);
                  return u < v;
              });
    // by_degree is new->old; invert to the old->new convention.
    std::vector<VertexId> new_ids(n);
    for (VertexId new_id = 0; new_id < n; ++new_id)
        new_ids[by_degree[new_id]] = new_id;
    return Permutation::fromNewIds(std::move(new_ids));
}

Permutation
rcmOrder(const Csr &a)
{
    const VertexId n = a.numVertices();
    constexpr VertexId kUnvisited = ~VertexId{0};
    std::vector<VertexId> new_ids(n, kUnvisited);
    // Vertices sorted by (degree asc, id asc): component seeds are
    // taken in this order, making the pass deterministic without a
    // per-component min-degree scan.
    std::vector<VertexId> seeds(n);
    std::iota(seeds.begin(), seeds.end(), VertexId{0});
    std::sort(seeds.begin(), seeds.end(), [&a](VertexId u, VertexId v) {
        if (a.degree(u) != a.degree(v))
            return a.degree(u) < a.degree(v);
        return u < v;
    });

    std::vector<VertexId> queue;
    queue.reserve(n);
    std::vector<VertexId> frontier;
    VertexId next_label = 0;
    for (VertexId seed : seeds) {
        if (new_ids[seed] != kUnvisited)
            continue;
        // Cuthill-McKee BFS of this component.
        size_t head = queue.size();
        queue.push_back(seed);
        new_ids[seed] = next_label++;
        while (head < queue.size()) {
            const VertexId u = queue[head++];
            frontier.clear();
            for (VertexId v : a.rowCols(u))
                if (new_ids[v] == kUnvisited) {
                    new_ids[v] = 0; // mark; final label assigned below
                    frontier.push_back(v);
                }
            std::sort(frontier.begin(), frontier.end(),
                      [&a](VertexId x, VertexId y) {
                          if (a.degree(x) != a.degree(y))
                              return a.degree(x) < a.degree(y);
                          return x < y;
                      });
            for (VertexId v : frontier) {
                new_ids[v] = next_label++;
                queue.push_back(v);
            }
        }
    }
    PGCN_ASSERT(next_label == n, "RCM missed " << (n - next_label)
                                               << " vertices");
    // Reverse: new id n-1-k for Cuthill-McKee label k.
    for (VertexId v = 0; v < n; ++v)
        new_ids[v] = n - 1 - new_ids[v];
    return Permutation::fromNewIds(std::move(new_ids));
}

Permutation
hubBucketOrder(const Csr &a)
{
    const VertexId n = a.numVertices();
    // floor(log2(degree)) bucket per vertex; degree 0 gets its own
    // lowest bucket. 64 buckets cover any EdgeId degree.
    auto bucketOf = [&a](VertexId v) -> int {
        const EdgeId d = a.degree(v);
        if (d == 0)
            return -1;
        return 63 - std::countl_zero(d);
    };
    int max_bucket = -1;
    for (VertexId v = 0; v < n; ++v)
        max_bucket = std::max(max_bucket, bucketOf(v));

    std::vector<VertexId> new_ids(n);
    VertexId next_label = 0;
    // Highest bucket first; vertex id order inside each bucket
    // preserves whatever locality the input order had.
    for (int b = max_bucket; b >= -1; --b)
        for (VertexId v = 0; v < n; ++v)
            if (bucketOf(v) == b)
                new_ids[v] = next_label++;
    PGCN_ASSERT(next_label == n, "hub bucket order missed vertices");
    return Permutation::fromNewIds(std::move(new_ids));
}

Islandization
islandOrder(const Csr &a, VertexId island_vertices)
{
    PGCN_ASSERT(island_vertices >= 1, "island capacity must be >= 1");
    const VertexId n = a.numVertices();
    constexpr VertexId kUnassigned = ~VertexId{0};
    std::vector<VertexId> new_ids(n, kUnassigned);

    // Hub seeds: degree desc, ties by id asc. A cursor walks this list
    // whenever the current frontier runs dry.
    std::vector<VertexId> hub_rank(n);
    std::iota(hub_rank.begin(), hub_rank.end(), VertexId{0});
    std::sort(hub_rank.begin(), hub_rank.end(),
              [&a](VertexId u, VertexId v) {
                  if (a.degree(u) != a.degree(v))
                      return a.degree(u) > a.degree(v);
                  return u < v;
              });
    size_t hub_cursor = 0;

    std::vector<VertexId> queue;
    queue.reserve(n);
    size_t head = 0;

    Islandization result;
    result.boundaries.push_back(0);
    VertexId next_label = 0;
    VertexId in_island = 0;
    while (next_label < n) {
        if (head == queue.size()) {
            // Frontier exhausted (start, or a component ran out):
            // keep filling the current island from the next hub seed.
            while (new_ids[hub_rank[hub_cursor]] != kUnassigned)
                ++hub_cursor;
            queue.push_back(hub_rank[hub_cursor]);
            new_ids[hub_rank[hub_cursor]] = next_label++;
            ++in_island;
        } else {
            const VertexId u = queue[head++];
            for (VertexId v : a.rowCols(u)) {
                if (new_ids[v] != kUnassigned)
                    continue;
                new_ids[v] = next_label++;
                ++in_island;
                queue.push_back(v);
                if (in_island == island_vertices)
                    break;
            }
        }
        if (in_island == island_vertices) {
            result.boundaries.push_back(next_label);
            in_island = 0;
            // A fresh island grows around a fresh hub; the leftover
            // frontier of the previous island is dropped so islands
            // stay hub-centred rather than one long BFS ribbon.
            queue.clear();
            head = 0;
        }
    }
    if (result.boundaries.back() != n)
        result.boundaries.push_back(n);
    result.perm = Permutation::fromNewIds(std::move(new_ids));
    return result;
}

VertexId
islandCapacity(double cache_bytes, uint64_t embedding_dim)
{
    check::positive(cache_bytes, "cache_bytes");
    PGCN_ASSERT(embedding_dim > 0, "embedding_dim must be > 0");
    const double rows = cache_bytes / (sizeof(float) * embedding_dim);
    return std::max<VertexId>(1, static_cast<VertexId>(rows));
}

std::vector<VertexId>
uniformIslands(VertexId n, VertexId island_vertices)
{
    PGCN_ASSERT(island_vertices >= 1, "island capacity must be >= 1");
    std::vector<VertexId> boundaries;
    boundaries.push_back(0);
    for (VertexId b = island_vertices; b < n; b += island_vertices)
        boundaries.push_back(b);
    boundaries.push_back(n);
    return boundaries;
}

const char *
reorderPassName(ReorderPass pass)
{
    switch (pass) {
    case ReorderPass::Identity:
        return "identity";
    case ReorderPass::Shuffle:
        return "shuffle";
    case ReorderPass::DegreeSort:
        return "degree";
    case ReorderPass::Rcm:
        return "rcm";
    case ReorderPass::HubBucket:
        return "hub";
    case ReorderPass::Island:
        return "island";
    }
    return "unknown";
}

const std::vector<ReorderPass> &
allReorderPasses()
{
    static const std::vector<ReorderPass> kAll = {
        ReorderPass::Identity,   ReorderPass::Shuffle,
        ReorderPass::DegreeSort, ReorderPass::Rcm,
        ReorderPass::HubBucket,  ReorderPass::Island,
    };
    return kAll;
}

Islandization
makeOrder(ReorderPass pass, const Csr &a, uint64_t seed,
          VertexId island_vertices)
{
    Islandization result;
    switch (pass) {
    case ReorderPass::Identity:
        result.perm = Permutation::identity(a.numVertices());
        break;
    case ReorderPass::Shuffle:
        result.perm = shuffleOrder(a.numVertices(), seed);
        break;
    case ReorderPass::DegreeSort:
        result.perm = degreeOrder(a);
        break;
    case ReorderPass::Rcm:
        result.perm = rcmOrder(a);
        break;
    case ReorderPass::HubBucket:
        result.perm = hubBucketOrder(a);
        break;
    case ReorderPass::Island:
        return islandOrder(a, island_vertices);
    }
    result.boundaries = uniformIslands(a.numVertices(), island_vertices);
    return result;
}

} // namespace pgcn::graph
