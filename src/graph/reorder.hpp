/**
 * @file
 * Graph reordering: vertex permutations as a first-class locality
 * lever (ROADMAP item 5).
 *
 * The paper's scalability story hinges on locality — PIUMA wins when
 * accesses stay in the local DRAM slice, the Xeon wins when SpMM
 * reuses cached feature rows — yet the vertex order that determines
 * both is usually an accident of the input file. This module makes it
 * explicit: an invertible Permutation type with apply/compose for
 * CSR, COO and feature matrices, plus four classic reordering passes
 *
 *  - degreeOrder: descending degree sort (hubs to the front),
 *  - rcmOrder: reverse Cuthill-McKee bandwidth reduction,
 *  - hubBucketOrder: degree-bucketed hub-first order that keeps the
 *    original relative order inside each power-of-two degree bucket,
 *  - islandOrder: I-GCN-style islandization — greedy hub-seeded BFS
 *    clustering into cache-sized islands laid out contiguously,
 *
 * and a seeded shuffleOrder that serves as the honest worst-case
 * baseline (synthetic generators emit near-sorted ids that silently
 * flatter locality). Every pass is deterministic: the same input and
 * seed produce a byte-identical permutation.
 */
#ifndef PGCN_GRAPH_REORDER_HPP
#define PGCN_GRAPH_REORDER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "tensor/dense_matrix.hpp"

namespace pgcn::graph {

/**
 * A bijective relabeling of [0, n). Stored with its inverse so both
 * directions are O(1); construction validates bijectivity.
 */
class Permutation
{
  public:
    /** Empty permutation (size 0); assign before use. */
    Permutation() = default;

    /** The identity permutation on @p n vertices. */
    static Permutation identity(VertexId n);

    /**
     * Build from an old-id -> new-id map. Throws ShapeError unless
     * @p new_ids is a bijection on [0, new_ids.size()).
     */
    static Permutation fromNewIds(std::vector<VertexId> new_ids);

    /** Number of vertices the permutation acts on. */
    VertexId size() const { return static_cast<VertexId>(newOf_.size()); }

    /** New id of old vertex @p old_id. */
    VertexId
    newId(VertexId old_id) const
    {
        PGCN_ASSERT(old_id < size(), "permutation index out of range");
        return newOf_[old_id];
    }

    /** Old id of new vertex @p new_id (the inverse map). */
    VertexId
    oldId(VertexId new_id) const
    {
        PGCN_ASSERT(new_id < size(), "permutation index out of range");
        return oldOf_[new_id];
    }

    /** The full old-id -> new-id array. */
    const std::vector<VertexId> &newIds() const { return newOf_; }

    /** The inverse permutation (new-id -> old-id becomes forward). */
    Permutation inverse() const;

    /**
     * Composition "this, then @p next": the returned permutation maps
     * v to next.newId(this->newId(v)).
     */
    Permutation then(const Permutation &next) const;

    /** True when every vertex maps to itself. */
    bool isIdentity() const;

    /**
     * Relabel a CSR: row u becomes row newId(u) and every column v
     * becomes newId(v); each output row's columns are re-sorted so the
     * result satisfies the same ordering invariant Csr(Coo) produces.
     * The result equals P A P^T as a matrix.
     */
    Csr applyToCsr(const Csr &a) const;

    /** Relabel both endpoints of every edge (weights preserved). */
    Coo applyToCoo(const Coo &coo) const;

    /**
     * Permute feature-matrix rows: output row newId(u) is input row
     * u, so SpMM commutes with relabeling:
     *   applyToCsr(A) * applyToFeatures(H) == applyToFeatures(A * H).
     */
    tensor::DenseMatrix applyToFeatures(const tensor::DenseMatrix &h) const;

  private:
    std::vector<VertexId> newOf_; ///< old id -> new id
    std::vector<VertexId> oldOf_; ///< new id -> old id
};

/**
 * Seeded Fisher-Yates shuffle of [0, n): the honest locality baseline
 * (destroys any accidental order the generator or input file had).
 */
Permutation shuffleOrder(VertexId n, uint64_t seed);

/**
 * Descending degree sort, ties broken by ascending old id. Groups all
 * hubs at the front (useful for hub-caching studies, hostile to
 * neighborhood locality).
 */
Permutation degreeOrder(const Csr &a);

/**
 * Reverse Cuthill-McKee. Components are seeded from the
 * minimum-degree unvisited vertex; BFS expands neighbors in ascending
 * degree order (ties by old id); the final order is reversed. On
 * symmetric matrices (the GCN-normalised adjacency) this minimises
 * bandwidth, i.e. the average |newId(u) - newId(v)| over edges.
 */
Permutation rcmOrder(const Csr &a);

/**
 * Degree-bucketed hub-first order: vertices are grouped by
 * floor(log2(degree)) bucket, buckets emitted from highest to lowest,
 * and the ORIGINAL relative order is kept inside each bucket — a
 * cheap compromise that separates hubs from the long tail without
 * scrambling whatever locality the input order already had.
 */
Permutation hubBucketOrder(const Csr &a);

/** Result of islandOrder: the permutation plus the island layout. */
struct Islandization
{
    Permutation perm;
    /**
     * Island boundaries in NEW ids: island i is the contiguous row
     * range [boundaries[i], boundaries[i+1]); boundaries.front() == 0
     * and boundaries.back() == |V|.
     */
    std::vector<VertexId> boundaries;
};

/**
 * I-GCN-style islandization: repeatedly seed a BFS from the
 * highest-degree unassigned vertex (the "hub" the island forms
 * around) and grow the island with unassigned neighbors, in CSR
 * order, until it holds @p island_vertices vertices; when a frontier
 * exhausts a component the island keeps filling from the next hub
 * seed, so all islands except the last have exactly @p
 * island_vertices vertices. Islands are laid out contiguously in
 * creation order.
 *
 * @param a Graph (symmetric CSR gives the intended clustering).
 * @param island_vertices Vertices per island (>= 1); pick via
 *        islandCapacity() so one island's feature rows fit the LLC.
 */
Islandization islandOrder(const Csr &a, VertexId island_vertices);

/**
 * Island capacity (vertices) whose feature rows fit a cache budget:
 * max(1, cache_bytes / (4 * embedding_dim)).
 */
VertexId islandCapacity(double cache_bytes, uint64_t embedding_dim);

/**
 * Uniform island layout of @p n vertices in blocks of @p
 * island_vertices — the boundaries any non-islandized ordering
 * implies when downstream consumers partition per-island; lets
 * conductance and per-island chunking be compared across orderings.
 */
std::vector<VertexId> uniformIslands(VertexId n, VertexId island_vertices);

/** The reordering passes, as a sweepable axis. */
enum class ReorderPass
{
    Identity,  ///< keep the input order
    Shuffle,   ///< seeded random relabeling (honest baseline)
    DegreeSort,///< descending degree
    Rcm,       ///< reverse Cuthill-McKee
    HubBucket, ///< degree-bucketed hub-first
    Island,    ///< I-GCN-style islandization
};

/** Name string for reports ("identity", "shuffle", ...). */
const char *reorderPassName(ReorderPass pass);

/** All passes, in sweep order. */
const std::vector<ReorderPass> &allReorderPasses();

/**
 * Run one pass. @p seed feeds Shuffle; @p island_vertices feeds
 * Island (also used to report uniform boundaries for other passes —
 * see uniformIslands). Returns the permutation plus boundaries.
 */
Islandization makeOrder(ReorderPass pass, const Csr &a, uint64_t seed,
                        VertexId island_vertices);

} // namespace pgcn::graph

#endif // PGCN_GRAPH_REORDER_HPP
