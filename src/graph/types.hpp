/**
 * @file
 * Fundamental integer types for graph indices.
 *
 * Vertex ids are 32-bit (the largest OGB graph, papers100M, has 111M
 * vertices); edge counts are 64-bit (papers100M has 1.6B edges).
 */
#ifndef PGCN_GRAPH_TYPES_HPP
#define PGCN_GRAPH_TYPES_HPP

#include <cstdint>

namespace pgcn::graph {

/** Vertex identifier / row index. */
using VertexId = uint32_t;

/** Edge identifier / CSR offset. */
using EdgeId = uint64_t;

/** Non-zero (edge weight) value type; GCN uses float32 features. */
using Value = float;

} // namespace pgcn::graph

#endif // PGCN_GRAPH_TYPES_HPP
