/**
 * @file
 * Coordinate-format (COO) edge list and the graph-cleaning pipeline
 * used before CSR conversion: sorting, de-duplication, self-loop
 * handling and symmetrization.
 */
#ifndef PGCN_GRAPH_COO_HPP
#define PGCN_GRAPH_COO_HPP

#include <vector>

#include "graph/types.hpp"

namespace pgcn::graph {

/** One weighted directed edge (src -> dst). */
struct Edge
{
    VertexId src;
    VertexId dst;
    Value weight;

    friend bool
    operator==(const Edge &a, const Edge &b)
    {
        return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
    }
};

/**
 * A mutable edge list with a fixed vertex count. This is the
 * construction format: generators append edges here, the cleaning
 * passes normalise it, and Csr is built from it.
 */
class Coo
{
  public:
    /**
     * Create an empty edge list over @p num_vertices vertices.
     */
    explicit Coo(VertexId num_vertices) : numVertices_(num_vertices) {}

    /** Number of vertices (fixed at construction). */
    VertexId numVertices() const { return numVertices_; }

    /** Number of edges currently stored. */
    EdgeId numEdges() const { return edges_.size(); }

    /** Read-only access to the edge array. */
    const std::vector<Edge> &edges() const { return edges_; }

    /**
     * Append an edge. Endpoints must be < numVertices().
     *
     * @param src Source vertex.
     * @param dst Destination vertex.
     * @param weight Edge weight (default 1).
     */
    void addEdge(VertexId src, VertexId dst, Value weight = 1.0f);

    /**
     * Sort edges by (src, dst) and merge duplicates by summing their
     * weights. Idempotent.
     */
    void sortAndCombineDuplicates();

    /**
     * Make the edge set symmetric: for every (u, v) also ensure (v, u)
     * with the same weight exists. Runs sortAndCombineDuplicates()
     * afterwards, so duplicate reverse edges collapse; an edge that
     * already existed in both directions has its weights summed like
     * any other duplicate pair.
     */
    void symmetrize();

    /** Remove all self loops (u, u). */
    void removeSelfLoops();

    /**
     * Add a self loop (u, u, @p weight) for every vertex. Used by the
     * GCN renormalisation trick (A + I). Requires that the edge list
     * contains no existing self loops.
     */
    void addSelfLoops(Value weight = 1.0f);

  private:
    VertexId numVertices_;
    std::vector<Edge> edges_;
};

} // namespace pgcn::graph

#endif // PGCN_GRAPH_COO_HPP
