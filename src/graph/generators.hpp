/**
 * @file
 * Synthetic graph generators.
 *
 * The paper uses an RMAT generator from SNAP [7] for the linear
 * function sweeps of Fig. 2, and "power-16"/"power-22" RMAT graphs
 * with strong degree skew in Fig. 9. We implement the classic
 * Chakrabarti et al. recursive-matrix generator with the standard
 * (a, b, c, d) partition probabilities, plus a uniform (Erdos-Renyi
 * style) generator for the uniform-degree sweeps.
 */
#ifndef PGCN_GRAPH_GENERATORS_HPP
#define PGCN_GRAPH_GENERATORS_HPP

#include <cstdint>

#include "graph/coo.hpp"

namespace pgcn::graph {

/** RMAT quadrant probabilities; must sum to 1. */
struct RmatParams
{
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    double d = 0.05;

    /**
     * Per-level multiplicative noise applied to the probabilities to
     * avoid the artificial "staircase" degree distribution of pure
     * RMAT; 0 disables noise.
     */
    double noise = 0.1;
};

/** Standard Graph500-style skewed parameters. */
RmatParams rmatSkewed();

/** Near-uniform parameters (a=b=c=d=0.25) for uniform-degree sweeps. */
RmatParams rmatUniform();

/**
 * Generate a directed RMAT edge list over 2^scale vertices.
 *
 * @param scale  log2 of the vertex count.
 * @param num_edges Number of edge samples to draw (before dedup).
 * @param params Quadrant probabilities.
 * @param seed   RNG seed; equal seeds give identical graphs.
 * @return COO with exactly @p num_edges entries (duplicates possible).
 */
Coo generateRmat(uint32_t scale, EdgeId num_edges, const RmatParams &params,
                 uint64_t seed);

/**
 * Generate a uniform random directed graph: @p num_edges independent
 * (src, dst) pairs drawn uniformly. Duplicates and self loops possible
 * until cleaned.
 *
 * @param num_vertices Vertex count (need not be a power of two).
 * @param num_edges Edge samples to draw.
 * @param seed RNG seed.
 */
Coo generateUniform(VertexId num_vertices, EdgeId num_edges, uint64_t seed);

/**
 * Relabel the vertices of @p coo with a seeded Fisher-Yates shuffle
 * (edges keep their weights; only the ids change).
 *
 * RMAT and the uniform generator emit vertex ids whose numeric order
 * correlates with the recursive quadrant structure, i.e. a near-sorted
 * "natural" order that silently flatters locality measurements. Any
 * experiment that treats the generated order as a baseline should
 * shuffle first and let the reordering passes earn their locality
 * back explicitly.
 *
 * @param coo  Edge list to relabel.
 * @param seed RNG seed; equal seeds give identical relabelings.
 */
Coo shuffleVertexIds(const Coo &coo, uint64_t seed);

} // namespace pgcn::graph

#endif // PGCN_GRAPH_GENERATORS_HPP
