#include "graph/partition.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace pgcn::graph {

PartitionAssignment
hashPartition(VertexId num_vertices, unsigned parts)
{
    PGCN_ASSERT(parts >= 1, "partition needs at least one part");
    PartitionAssignment assignment(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v) {
        uint64_t h = v;
        assignment[v] = static_cast<unsigned>(splitMix64(h) % parts);
    }
    return assignment;
}

PartitionAssignment
rangePartitionByEdges(const Csr &csr, unsigned parts)
{
    PGCN_ASSERT(parts >= 1, "partition needs at least one part");
    const VertexId n = csr.numVertices();
    PartitionAssignment assignment(n, parts - 1);
    const EdgeId total = csr.numEdges();
    const auto &offsets = csr.rowOffsets();

    VertexId v = 0;
    for (unsigned p = 0; p < parts && v < n; ++p) {
        // This part ends at the first vertex whose prefix edge count
        // reaches the p+1-th share.
        const EdgeId target = total * (p + 1) / parts;
        while (v < n && offsets[v + 1] <= target)
            assignment[v++] = p;
        if (v < n && p + 1 == parts)
            break; // remainder already initialised to the last part
    }
    return assignment;
}

PartitionStats
evaluatePartition(const Csr &csr, const PartitionAssignment &assignment,
                  unsigned parts)
{
    PGCN_ASSERT(assignment.size() == csr.numVertices(),
                "assignment size " << assignment.size() << " != |V| = "
                                   << csr.numVertices());
    for (unsigned p : assignment)
        PGCN_ASSERT(p < parts, "part id " << p << " >= " << parts);

    PartitionStats stats;
    stats.numParts = parts;

    std::vector<EdgeId> part_edges(parts, 0);
    // Ghost sets: distinct remote vertices each part reads.
    std::vector<std::unordered_set<VertexId>> ghosts(parts);

    const auto &offsets = csr.rowOffsets();
    const auto &cols = csr.cols();
    for (VertexId u = 0; u < csr.numVertices(); ++u) {
        const unsigned pu = assignment[u];
        for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
            ++part_edges[pu];
            const VertexId v = cols[e];
            if (assignment[v] != pu) {
                ++stats.cutEdges;
                ghosts[pu].insert(v);
            }
        }
    }

    const auto total_edges = csr.numEdges();
    stats.cutFraction =
        total_edges ? static_cast<double>(stats.cutEdges) /
                          static_cast<double>(total_edges)
                    : 0.0;

    uint64_t ghost_total = 0;
    for (const auto &g : ghosts)
        ghost_total += g.size();
    stats.replicationFactor =
        csr.numVertices()
            ? 1.0 + static_cast<double>(ghost_total) /
                        static_cast<double>(csr.numVertices())
            : 0.0;

    const double avg =
        static_cast<double>(total_edges) / std::max(1u, parts);
    EdgeId worst = 0;
    for (EdgeId pe : part_edges)
        worst = std::max(worst, pe);
    stats.maxLoadImbalance =
        avg > 0 ? static_cast<double>(worst) / avg : 0.0;
    return stats;
}

double
ghostExchangeBytes(const PartitionStats &stats, uint64_t num_vertices,
                   uint64_t embedding_dim)
{
    const double ghost_vertices =
        (stats.replicationFactor - 1.0) *
        static_cast<double>(num_vertices);
    return ghost_vertices * static_cast<double>(embedding_dim) * 4.0;
}

} // namespace pgcn::graph
