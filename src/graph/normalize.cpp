#include "graph/normalize.hpp"

#include <cmath>
#include <vector>

#include "common/logging.hpp"

namespace pgcn::graph {

Csr
normalizedAdjacency(const Coo &coo)
{
    Coo prepared = coo;
    prepared.removeSelfLoops();
    prepared.symmetrize();
    prepared.addSelfLoops(1.0f);
    // Structural weights are irrelevant; reset all to 1 before the
    // degree-based rescale by rebuilding through CSR values.
    Csr structural(prepared);
    std::vector<Value> ones(structural.numEdges(), 1.0f);
    Csr unit(structural.numVertices(), structural.rowOffsets(),
             structural.cols(), std::move(ones));
    return symNormalizeValues(unit);
}

Csr
symNormalizeValues(const Csr &csr)
{
    const VertexId n = csr.numVertices();
    std::vector<double> inv_sqrt_deg(n);
    for (VertexId u = 0; u < n; ++u) {
        const auto deg = csr.degree(u);
        inv_sqrt_deg[u] =
            deg > 0 ? 1.0 / std::sqrt(static_cast<double>(deg)) : 0.0;
    }
    std::vector<Value> vals(csr.numEdges());
    const auto &offsets = csr.rowOffsets();
    const auto &cols = csr.cols();
    for (VertexId u = 0; u < n; ++u) {
        for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
            vals[e] = static_cast<Value>(inv_sqrt_deg[u] *
                                         inv_sqrt_deg[cols[e]]);
        }
    }
    return Csr(n, csr.rowOffsets(), csr.cols(), std::move(vals));
}

} // namespace pgcn::graph
