/**
 * @file
 * GCN adjacency normalisation (the Kipf & Welling renormalisation
 * trick): A~ = D^-1/2 (A + I) D^-1/2, where D is the degree matrix of
 * A + I. The paper's SpMM operates on this normalised matrix.
 */
#ifndef PGCN_GRAPH_NORMALIZE_HPP
#define PGCN_GRAPH_NORMALIZE_HPP

#include "graph/csr.hpp"

namespace pgcn::graph {

/**
 * Build the symmetric-normalised adjacency matrix used by GCN layers.
 *
 * Pipeline: drop existing self loops, symmetrize, add unit self loops,
 * then scale every non-zero (u, v) by 1/sqrt(deg(u) * deg(v)).
 *
 * @param coo Raw (possibly directed, possibly multi-) edge list.
 * @return CSR of A~ with row sums' spectral radius <= 1.
 */
Csr normalizedAdjacency(const Coo &coo);

/**
 * Scale the non-zeros of an existing CSR in the same way, without the
 * symmetrize/self-loop pipeline. Degree here means row length, i.e.
 * the matrix is assumed already structurally symmetric with loops.
 *
 * @param csr Structurally prepared adjacency.
 * @return CSR with values replaced by 1/sqrt(deg(u) deg(v)).
 */
Csr symNormalizeValues(const Csr &csr);

} // namespace pgcn::graph

#endif // PGCN_GRAPH_NORMALIZE_HPP
