#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn::graph {

namespace {

constexpr uint64_t kCsrMagic = 0x5047434e43535231ULL; // "PGCNCSR1"
constexpr uint32_t kCsrVersion = 1;

/// Hard cap on text edge-list lines: a malformed or adversarial file
/// (e.g. a device node or an unbounded stream) must not OOM the
/// process before any structural check can run.
constexpr size_t kMaxEdgeListLines = 1ull << 31;

/**
 * Parse one whitespace-delimited vertex id token. istream >> uint64_t
 * silently accepts "-3" (negated modulo 2^64), so ids are parsed as
 * signed and range-checked against VertexId explicitly.
 */
uint64_t
parseVertexId(std::istringstream &fields, const char *what,
              const std::string &path, size_t line_no,
              const std::string &line)
{
    long long raw = 0;
    if (!(fields >> raw)) {
        PGCN_THROW(GraphIoError, "malformed edge at " << path << ":"
                                                      << line_no << ": '"
                                                      << line << "'");
    }
    if (raw < 0) {
        PGCN_THROW(GraphIoError,
                   "negative " << what << " " << raw << " at " << path
                               << ":" << line_no);
    }
    const auto id = static_cast<uint64_t>(raw);
    if (id > std::numeric_limits<VertexId>::max()) {
        PGCN_THROW(GraphIoError, what << " " << id
                                      << " exceeds the supported vertex-id "
                                         "range at "
                                      << path << ":" << line_no);
    }
    return id;
}

} // namespace

void
saveEdgeListText(const Coo &coo, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        PGCN_THROW(IoError, "cannot open for writing: " << path);
    out << "# vertices " << coo.numVertices() << "\n";
    for (const Edge &e : coo.edges())
        out << e.src << " " << e.dst << " " << e.weight << "\n";
    if (!out)
        PGCN_THROW(IoError, "I/O error writing: " << path);
}

Coo
loadEdgeListText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PGCN_THROW(IoError, "cannot open for reading: " << path);

    std::vector<Edge> edges;
    uint64_t declared_vertices = 0;
    VertexId max_id = 0;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        if (++line_no > kMaxEdgeListLines) {
            PGCN_THROW(GraphIoError,
                       path << " exceeds " << kMaxEdgeListLines
                            << " lines; refusing to load");
        }
        // Tolerate CRLF files: strip one trailing '\r'.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() ||
            line.find_first_not_of(" \t") == std::string::npos) {
            continue;
        }
        if (line[0] == '#') {
            std::istringstream header(line.substr(1));
            std::string word;
            if (header >> word && word == "vertices") {
                long long declared = -1;
                if (!(header >> declared) || declared < 0) {
                    PGCN_THROW(GraphIoError,
                               "malformed vertex-count header at "
                                   << path << ":" << line_no << ": '"
                                   << line << "'");
                }
                declared_vertices = static_cast<uint64_t>(declared);
                if (declared_vertices >
                    uint64_t(std::numeric_limits<VertexId>::max()) + 1) {
                    PGCN_THROW(GraphIoError,
                               "declared vertex count "
                                   << declared_vertices
                                   << " exceeds the supported range in "
                                   << path);
                }
            }
            continue;
        }
        std::istringstream fields(line);
        const uint64_t src =
            parseVertexId(fields, "source id", path, line_no, line);
        const uint64_t dst =
            parseVertexId(fields, "destination id", path, line_no, line);
        double weight = 1.0;
        std::string token;
        if (fields >> token) {
            // Parse the optional weight from its own token so trailing
            // garbage ("1.5x", "nan", a fourth column) is an error
            // rather than silently becoming weight 1.0 or NaN.
            char *end = nullptr;
            weight = std::strtod(token.c_str(), &end);
            if (end != token.c_str() + token.size()) {
                PGCN_THROW(GraphIoError,
                           "malformed edge weight '"
                               << token << "' at " << path << ":"
                               << line_no);
            }
            if (!std::isfinite(weight)) {
                PGCN_THROW(GraphIoError,
                           "non-finite edge weight '"
                               << token << "' at " << path << ":"
                               << line_no);
            }
            std::string extra;
            if (fields >> extra) {
                PGCN_THROW(GraphIoError,
                           "trailing fields after edge at "
                               << path << ":" << line_no << ": '" << line
                               << "'");
            }
        }
        edges.push_back(Edge{static_cast<VertexId>(src),
                             static_cast<VertexId>(dst),
                             static_cast<Value>(weight)});
        max_id = std::max({max_id, static_cast<VertexId>(src),
                           static_cast<VertexId>(dst)});
    }
    if (in.bad())
        PGCN_THROW(IoError, "I/O error reading: " << path);

    const uint64_t vertices =
        declared_vertices > 0
            ? declared_vertices
            : (edges.empty() ? 0 : static_cast<uint64_t>(max_id) + 1);
    if (!edges.empty() && max_id >= vertices) {
        PGCN_THROW(GraphIoError,
                   "edge endpoint " << max_id
                                    << " exceeds declared vertex count "
                                    << vertices << " in " << path);
    }
    Coo coo(static_cast<VertexId>(vertices));
    for (const Edge &e : edges)
        coo.addEdge(e.src, e.dst, e.weight);
    return coo;
}

void
saveCsrBinary(const Csr &csr, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        PGCN_THROW(IoError, "cannot open for writing: " << path);

    auto write_pod = [&](const auto &value) {
        out.write(reinterpret_cast<const char *>(&value), sizeof(value));
    };
    write_pod(kCsrMagic);
    write_pod(kCsrVersion);
    const uint64_t v = csr.numVertices();
    const uint64_t e = csr.numEdges();
    write_pod(v);
    write_pod(e);
    out.write(reinterpret_cast<const char *>(csr.rowOffsets().data()),
              static_cast<std::streamsize>((v + 1) * sizeof(EdgeId)));
    out.write(reinterpret_cast<const char *>(csr.cols().data()),
              static_cast<std::streamsize>(e * sizeof(VertexId)));
    out.write(reinterpret_cast<const char *>(csr.vals().data()),
              static_cast<std::streamsize>(e * sizeof(Value)));
    if (!out)
        PGCN_THROW(IoError, "I/O error writing: " << path);
}

Csr
loadCsrBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        PGCN_THROW(IoError, "cannot open for reading: " << path);

    // Measure the file before trusting any size field in it: the
    // header counts drive allocations, so a corrupt (v, e) pair must
    // be rejected against the actual byte length first.
    in.seekg(0, std::ios::end);
    const auto file_end = in.tellg();
    in.seekg(0, std::ios::beg);
    if (file_end < 0)
        PGCN_THROW(IoError, "cannot determine size of " << path);
    const auto file_bytes = static_cast<uint64_t>(file_end);

    auto read_pod = [&](auto &value) {
        in.read(reinterpret_cast<char *>(&value), sizeof(value));
    };
    uint64_t magic = 0;
    uint32_t version = 0;
    read_pod(magic);
    read_pod(version);
    if (!in || magic != kCsrMagic)
        PGCN_THROW(GraphIoError, "not a PGCN CSR file: " << path);
    if (version != kCsrVersion) {
        PGCN_THROW(GraphIoError, "unsupported CSR file version "
                                     << version << " in " << path);
    }
    uint64_t v = 0;
    uint64_t e = 0;
    read_pod(v);
    read_pod(e);
    if (!in)
        PGCN_THROW(GraphIoError, "truncated CSR header in " << path);

    if (v > uint64_t(std::numeric_limits<VertexId>::max()) + 1) {
        PGCN_THROW(GraphIoError, "CSR vertex count " << v
                                                     << " exceeds the "
                                                        "supported range in "
                                                     << path);
    }
    constexpr uint64_t header_bytes =
        sizeof(kCsrMagic) + sizeof(kCsrVersion) + 2 * sizeof(uint64_t);
    const uint64_t offsets_bytes = (v + 1) * sizeof(EdgeId);
    const uint64_t edge_bytes = sizeof(VertexId) + sizeof(Value);
    const uint64_t expected = header_bytes + offsets_bytes + e * edge_bytes;
    // Overflow-safe: derive the edge capacity the file could possibly
    // hold before computing `expected`, so huge counts cannot wrap.
    if (file_bytes < header_bytes + offsets_bytes ||
        e > (file_bytes - header_bytes - offsets_bytes) / edge_bytes ||
        expected != file_bytes) {
        PGCN_THROW(GraphIoError,
                   "CSR payload size mismatch in "
                       << path << ": header declares " << v
                       << " vertices and " << e << " edges ("
                       << (offsets_bytes + e * edge_bytes)
                       << " payload bytes) but the file has "
                       << (file_bytes - header_bytes));
    }

    std::vector<EdgeId> offsets(v + 1);
    std::vector<VertexId> cols(e);
    std::vector<Value> vals(e);
    in.read(reinterpret_cast<char *>(offsets.data()),
            static_cast<std::streamsize>(offsets_bytes));
    in.read(reinterpret_cast<char *>(cols.data()),
            static_cast<std::streamsize>(e * sizeof(VertexId)));
    in.read(reinterpret_cast<char *>(vals.data()),
            static_cast<std::streamsize>(e * sizeof(Value)));
    if (!in)
        PGCN_THROW(GraphIoError, "truncated CSR payload in " << path);

    // Pre-validate the structural invariants with typed errors; the
    // Csr constructor re-asserts them, but a corrupt *file* is caller
    // input and must not take down the process.
    if (offsets.front() != 0 || offsets.back() != e) {
        PGCN_THROW(GraphIoError,
                   "corrupt CSR row offsets in "
                       << path << ": offsets[0]=" << offsets.front()
                       << ", offsets[" << v << "]=" << offsets.back()
                       << ", edges=" << e);
    }
    for (uint64_t r = 0; r < v; ++r) {
        if (offsets[r] > offsets[r + 1]) {
            PGCN_THROW(GraphIoError,
                       "corrupt CSR row offsets in "
                           << path << ": row " << r
                           << " decreases (" << offsets[r] << " -> "
                           << offsets[r + 1] << ")");
        }
    }
    for (uint64_t i = 0; i < e; ++i) {
        if (cols[i] >= v) {
            PGCN_THROW(GraphIoError,
                       "corrupt CSR column " << cols[i] << " at edge "
                                             << i << " (only " << v
                                             << " vertices) in " << path);
        }
        if (!std::isfinite(vals[i])) {
            PGCN_THROW(GraphIoError, "non-finite CSR value at edge "
                                         << i << " in " << path);
        }
    }

    return Csr(static_cast<VertexId>(v), std::move(offsets),
               std::move(cols), std::move(vals));
}

} // namespace pgcn::graph
