#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.hpp"

namespace pgcn::graph {

namespace {

constexpr uint64_t kCsrMagic = 0x5047434e43535231ULL; // "PGCNCSR1"
constexpr uint32_t kCsrVersion = 1;

} // namespace

void
saveEdgeListText(const Coo &coo, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        PGCN_FATAL("cannot open for writing: " << path);
    out << "# vertices " << coo.numVertices() << "\n";
    for (const Edge &e : coo.edges())
        out << e.src << " " << e.dst << " " << e.weight << "\n";
    if (!out)
        PGCN_FATAL("I/O error writing: " << path);
}

Coo
loadEdgeListText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PGCN_FATAL("cannot open for reading: " << path);

    std::vector<Edge> edges;
    uint64_t declared_vertices = 0;
    VertexId max_id = 0;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream header(line.substr(1));
            std::string word;
            if (header >> word && word == "vertices")
                header >> declared_vertices;
            continue;
        }
        std::istringstream fields(line);
        uint64_t src = 0;
        uint64_t dst = 0;
        double weight = 1.0;
        if (!(fields >> src >> dst)) {
            PGCN_FATAL("malformed edge at " << path << ":" << line_no
                                            << ": '" << line << "'");
        }
        fields >> weight; // optional
        edges.push_back(Edge{static_cast<VertexId>(src),
                             static_cast<VertexId>(dst),
                             static_cast<Value>(weight)});
        max_id = std::max({max_id, static_cast<VertexId>(src),
                           static_cast<VertexId>(dst)});
    }

    const uint64_t vertices =
        declared_vertices > 0
            ? declared_vertices
            : (edges.empty() ? 0 : static_cast<uint64_t>(max_id) + 1);
    if (!edges.empty() && max_id >= vertices) {
        PGCN_FATAL("edge endpoint " << max_id
                                    << " exceeds declared vertex count "
                                    << vertices << " in " << path);
    }
    Coo coo(static_cast<VertexId>(vertices));
    for (const Edge &e : edges)
        coo.addEdge(e.src, e.dst, e.weight);
    return coo;
}

void
saveCsrBinary(const Csr &csr, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        PGCN_FATAL("cannot open for writing: " << path);

    auto write_pod = [&](const auto &value) {
        out.write(reinterpret_cast<const char *>(&value), sizeof(value));
    };
    write_pod(kCsrMagic);
    write_pod(kCsrVersion);
    const uint64_t v = csr.numVertices();
    const uint64_t e = csr.numEdges();
    write_pod(v);
    write_pod(e);
    out.write(reinterpret_cast<const char *>(csr.rowOffsets().data()),
              static_cast<std::streamsize>((v + 1) * sizeof(EdgeId)));
    out.write(reinterpret_cast<const char *>(csr.cols().data()),
              static_cast<std::streamsize>(e * sizeof(VertexId)));
    out.write(reinterpret_cast<const char *>(csr.vals().data()),
              static_cast<std::streamsize>(e * sizeof(Value)));
    if (!out)
        PGCN_FATAL("I/O error writing: " << path);
}

Csr
loadCsrBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        PGCN_FATAL("cannot open for reading: " << path);

    auto read_pod = [&](auto &value) {
        in.read(reinterpret_cast<char *>(&value), sizeof(value));
    };
    uint64_t magic = 0;
    uint32_t version = 0;
    read_pod(magic);
    read_pod(version);
    if (!in || magic != kCsrMagic)
        PGCN_FATAL("not a PGCN CSR file: " << path);
    if (version != kCsrVersion) {
        PGCN_FATAL("unsupported CSR file version " << version << " in "
                                                   << path);
    }
    uint64_t v = 0;
    uint64_t e = 0;
    read_pod(v);
    read_pod(e);
    if (!in)
        PGCN_FATAL("truncated CSR header in " << path);

    std::vector<EdgeId> offsets(v + 1);
    std::vector<VertexId> cols(e);
    std::vector<Value> vals(e);
    in.read(reinterpret_cast<char *>(offsets.data()),
            static_cast<std::streamsize>((v + 1) * sizeof(EdgeId)));
    in.read(reinterpret_cast<char *>(cols.data()),
            static_cast<std::streamsize>(e * sizeof(VertexId)));
    in.read(reinterpret_cast<char *>(vals.data()),
            static_cast<std::streamsize>(e * sizeof(Value)));
    if (!in)
        PGCN_FATAL("truncated CSR payload in " << path);

    // Csr's constructor re-validates the structural invariants, so a
    // corrupted-but-well-sized file still fails loudly.
    return Csr(static_cast<VertexId>(v), std::move(offsets),
               std::move(cols), std::move(vals));
}

} // namespace pgcn::graph
