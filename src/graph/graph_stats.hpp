/**
 * @file
 * Degree-distribution statistics for characterising generated graphs
 * (used to sanity-check that proxies preserve the skew of the graphs
 * they stand in for).
 */
#ifndef PGCN_GRAPH_GRAPH_STATS_HPP
#define PGCN_GRAPH_GRAPH_STATS_HPP

#include "graph/csr.hpp"

namespace pgcn::graph {

/** Summary of a graph's degree distribution. */
struct DegreeStats
{
    double mean = 0.0;          ///< average degree
    double maxDegree = 0.0;     ///< largest row
    double coefficientOfVariation = 0.0; ///< stddev / mean
    double gini = 0.0;          ///< Gini coefficient of degrees [0,1)
    double fracIsolated = 0.0;  ///< fraction of zero-degree vertices
};

/**
 * Compute degree statistics over the rows of @p csr.
 */
DegreeStats degreeStats(const Csr &csr);

} // namespace pgcn::graph

#endif // PGCN_GRAPH_GRAPH_STATS_HPP
