/**
 * @file
 * Degree-distribution statistics for characterising generated graphs
 * (used to sanity-check that proxies preserve the skew of the graphs
 * they stand in for).
 */
#ifndef PGCN_GRAPH_GRAPH_STATS_HPP
#define PGCN_GRAPH_GRAPH_STATS_HPP

#include "graph/csr.hpp"

namespace pgcn::graph {

/** Summary of a graph's degree distribution. */
struct DegreeStats
{
    double mean = 0.0;          ///< average degree
    double maxDegree = 0.0;     ///< largest row
    double coefficientOfVariation = 0.0; ///< stddev / mean
    double gini = 0.0;          ///< Gini coefficient of degrees [0,1)
    double fracIsolated = 0.0;  ///< fraction of zero-degree vertices
};

/**
 * Compute degree statistics over the rows of @p csr.
 */
DegreeStats degreeStats(const Csr &csr);

/**
 * Locality profile of a vertex ORDER (not just the topology): how
 * cache- and slice-friendly the current id assignment is. All three
 * numbers move when a reordering pass is applied, which is what makes
 * orderings explainable — a pass that wins GF/s should show a smaller
 * neighbor distance and per-tile working set here.
 */
struct LocalityStats
{
    /**
     * Mean |u - v| over all stored non-zeros (u, v): the matrix
     * "bandwidth" proxy. Small when neighbours have nearby ids (RCM's
     * objective), ~|V|/3 for a random order.
     */
    double avgNeighborDistance = 0.0;

    /**
     * Mean, over row tiles of @p tile_rows rows, of the number of
     * DISTINCT columns the tile touches — the feature rows a tiled
     * SpMM must hold while processing the tile. Bounded by
     * min(tile nnz, |V|); clustering shrinks it toward tile_rows.
     */
    double avgTileWorkingSet = 0.0;

    /** Rows per tile used for avgTileWorkingSet. */
    VertexId tileRows = 0;
};

/**
 * Compute the locality profile of @p csr under its current vertex
 * order.
 *
 * @param csr       Graph in the order being evaluated.
 * @param tile_rows Tile height for the working-set statistic (>= 1).
 */
LocalityStats localityStats(const Csr &csr, VertexId tile_rows);

/**
 * Mean conductance of a contiguous island layout: for each island
 * (row range [boundaries[i], boundaries[i+1])), cut / min(vol,
 * total - vol), where vol is the island's non-zero count and cut is
 * the number of its non-zeros pointing outside the island. Lower
 * means islands capture more of their own edges; islandization
 * should beat uniform blocks of any other order.
 *
 * @param boundaries Monotone row boundaries: 0 .. |V| inclusive,
 *                   as produced by islandOrder / uniformIslands.
 * @return Mean conductance over islands with non-zero volume (0 if
 *         none).
 */
double islandConductance(const Csr &csr,
                         const std::vector<VertexId> &boundaries);

} // namespace pgcn::graph

#endif // PGCN_GRAPH_GRAPH_STATS_HPP
