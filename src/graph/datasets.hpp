/**
 * @file
 * The Open Graph Benchmark dataset catalog (paper Table I) and the
 * proxy-graph builder.
 *
 * Real OGB downloads are unavailable offline, so each dataset carries
 * its published |V|/|E| metadata (used at full scale by the analytical
 * platform models) plus a recipe for a degree-distribution-matched
 * RMAT proxy that the functional kernels and the discrete-event PIUMA
 * simulator execute, optionally down-scaled (the paper's own PIUMA
 * numbers come from down-scaled simulation [18]).
 */
#ifndef PGCN_GRAPH_DATASETS_HPP
#define PGCN_GRAPH_DATASETS_HPP

#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace pgcn::graph {

/** Degree-skew class of a dataset, selecting the proxy generator. */
enum class DegreeProfile
{
    Uniform,  ///< near-uniform degrees (RMAT a=b=c=d)
    Skewed,   ///< heavy-tailed (Graph500-style RMAT)
};

/** Static description of one benchmark graph. */
struct DatasetInfo
{
    std::string name;      ///< short OGB name, e.g. "products"
    uint64_t numVertices;  ///< published |V|
    uint64_t numEdges;     ///< published |E|
    uint32_t inputDim;     ///< input feature dimension
    uint32_t numClasses;   ///< output dimension (classes / link score)
    DegreeProfile profile; ///< proxy degree profile
};

/**
 * The nine OGB datasets of Table I, in the paper's order
 * (ddi, proteins, arxiv, collab, ppa, mag, products, citation2,
 * papers).
 */
const std::vector<DatasetInfo> &ogbDatasets();

/**
 * Look up a dataset by name; fatal if unknown (user error).
 *
 * @param name One of the Table-I names, or "power-16" / "power-22".
 */
const DatasetInfo &datasetByName(const std::string &name);

/**
 * The two synthetic skewed RMAT datasets of Fig. 9: power-16
 * (2^16 vertices) and power-22 (2^22 vertices), average degree 16.
 */
const std::vector<DatasetInfo> &powerDatasets();

/** Concatenation of ogbDatasets() and powerDatasets(). */
const std::vector<DatasetInfo> &allDatasets();

/**
 * A realised proxy graph: the normalised adjacency a GCN layer
 * multiplies by, together with the scale factor that maps measured
 * proxy traffic back to the published graph size.
 */
struct ProxyGraph
{
    DatasetInfo info;   ///< the dataset this proxies
    Csr adjacency;      ///< normalised A~ of the proxy
    double scaleFactor; ///< published |E| / proxy |E| (>= 1)
};

/**
 * Build a proxy for @p info whose edge count does not exceed
 * @p max_edges (pre-normalisation target; self loops and
 * symmetrization change the final count slightly). Vertex and edge
 * counts shrink by the same factor so average degree is preserved.
 *
 * @param info Dataset to proxy.
 * @param max_edges Edge budget for the proxy (default 1M).
 * @param seed RNG seed.
 */
ProxyGraph buildProxy(const DatasetInfo &info, EdgeId max_edges = 1u << 20,
                      uint64_t seed = 42);

} // namespace pgcn::graph

#endif // PGCN_GRAPH_DATASETS_HPP
