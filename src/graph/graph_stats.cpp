#include "graph/graph_stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace pgcn::graph {

DegreeStats
degreeStats(const Csr &csr)
{
    DegreeStats out;
    const VertexId n = csr.numVertices();
    if (n == 0)
        return out;

    RunningStat rs;
    std::vector<double> degrees(n);
    size_t isolated = 0;
    for (VertexId u = 0; u < n; ++u) {
        const auto d = static_cast<double>(csr.degree(u));
        degrees[u] = d;
        rs.add(d);
        if (d == 0.0)
            ++isolated;
    }
    out.mean = rs.mean();
    out.maxDegree = rs.max();
    out.coefficientOfVariation = rs.mean() > 0 ? rs.stddev() / rs.mean() : 0;
    out.fracIsolated = static_cast<double>(isolated) / n;

    // Gini: 1-based rank formula over sorted degrees.
    std::sort(degrees.begin(), degrees.end());
    double weighted = 0.0;
    double total = 0.0;
    for (size_t i = 0; i < degrees.size(); ++i) {
        weighted += static_cast<double>(i + 1) * degrees[i];
        total += degrees[i];
    }
    if (total > 0.0) {
        const double nn = static_cast<double>(n);
        out.gini = (2.0 * weighted) / (nn * total) - (nn + 1.0) / nn;
    }
    return out;
}

} // namespace pgcn::graph
