#include "graph/graph_stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace pgcn::graph {

DegreeStats
degreeStats(const Csr &csr)
{
    DegreeStats out;
    const VertexId n = csr.numVertices();
    if (n == 0)
        return out;

    RunningStat rs;
    std::vector<double> degrees(n);
    size_t isolated = 0;
    for (VertexId u = 0; u < n; ++u) {
        const auto d = static_cast<double>(csr.degree(u));
        degrees[u] = d;
        rs.add(d);
        if (d == 0.0)
            ++isolated;
    }
    out.mean = rs.mean();
    out.maxDegree = rs.max();
    out.coefficientOfVariation = rs.mean() > 0 ? rs.stddev() / rs.mean() : 0;
    out.fracIsolated = static_cast<double>(isolated) / n;

    // Gini: 1-based rank formula over sorted degrees.
    std::sort(degrees.begin(), degrees.end());
    double weighted = 0.0;
    double total = 0.0;
    for (size_t i = 0; i < degrees.size(); ++i) {
        weighted += static_cast<double>(i + 1) * degrees[i];
        total += degrees[i];
    }
    if (total > 0.0) {
        const double nn = static_cast<double>(n);
        out.gini = (2.0 * weighted) / (nn * total) - (nn + 1.0) / nn;
    }
    return out;
}

LocalityStats
localityStats(const Csr &csr, VertexId tile_rows)
{
    PGCN_ASSERT(tile_rows >= 1, "tile_rows must be >= 1");
    LocalityStats out;
    out.tileRows = tile_rows;
    const VertexId n = csr.numVertices();
    if (n == 0 || csr.numEdges() == 0)
        return out;

    double distance_sum = 0.0;
    for (VertexId u = 0; u < n; ++u)
        for (VertexId v : csr.rowCols(u))
            distance_sum += std::abs(static_cast<double>(u) -
                                     static_cast<double>(v));
    out.avgNeighborDistance =
        distance_sum / static_cast<double>(csr.numEdges());

    // Distinct columns per tile, via a stamp array (no per-tile
    // clearing; one pass over the non-zeros total).
    std::vector<VertexId> stamp(n, ~VertexId{0});
    double working_set_sum = 0.0;
    VertexId num_tiles = 0;
    for (VertexId tile_begin = 0; tile_begin < n; tile_begin += tile_rows) {
        const VertexId tile_end =
            std::min<VertexId>(n, tile_begin + tile_rows);
        uint64_t distinct = 0;
        for (VertexId u = tile_begin; u < tile_end; ++u)
            for (VertexId v : csr.rowCols(u))
                if (stamp[v] != num_tiles) {
                    stamp[v] = num_tiles;
                    ++distinct;
                }
        working_set_sum += static_cast<double>(distinct);
        ++num_tiles;
    }
    out.avgTileWorkingSet = working_set_sum / num_tiles;
    return out;
}

double
islandConductance(const Csr &csr, const std::vector<VertexId> &boundaries)
{
    PGCN_ASSERT(boundaries.size() >= 2 && boundaries.front() == 0 &&
                    boundaries.back() == csr.numVertices(),
                "island boundaries must span [0, |V|]");
    const double total = static_cast<double>(csr.numEdges());
    if (total == 0.0)
        return 0.0;

    double conductance_sum = 0.0;
    size_t islands_counted = 0;
    for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
        const VertexId begin = boundaries[i];
        const VertexId end = boundaries[i + 1];
        double vol = 0.0;
        double cut = 0.0;
        for (VertexId u = begin; u < end; ++u)
            for (VertexId v : csr.rowCols(u)) {
                vol += 1.0;
                if (v < begin || v >= end)
                    cut += 1.0;
            }
        if (vol == 0.0)
            continue;
        const double denom = std::min(vol, total - vol);
        conductance_sum += denom > 0.0 ? cut / denom : 0.0;
        ++islands_counted;
    }
    return islands_counted ? conductance_sum / islands_counted : 0.0;
}

} // namespace pgcn::graph
