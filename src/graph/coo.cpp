#include "graph/coo.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace pgcn::graph {

void
Coo::addEdge(VertexId src, VertexId dst, Value weight)
{
    PGCN_ASSERT(src < numVertices_,
                "edge src " << src << " >= |V| = " << numVertices_);
    PGCN_ASSERT(dst < numVertices_,
                "edge dst " << dst << " >= |V| = " << numVertices_);
    edges_.push_back(Edge{src, dst, weight});
}

void
Coo::sortAndCombineDuplicates()
{
    std::sort(edges_.begin(), edges_.end(),
              [](const Edge &a, const Edge &b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    size_t out = 0;
    for (size_t i = 0; i < edges_.size(); ++i) {
        if (out > 0 && edges_[out - 1].src == edges_[i].src &&
            edges_[out - 1].dst == edges_[i].dst) {
            edges_[out - 1].weight += edges_[i].weight;
        } else {
            edges_[out++] = edges_[i];
        }
    }
    edges_.resize(out);
}

void
Coo::symmetrize()
{
    const size_t original = edges_.size();
    edges_.reserve(original * 2);
    for (size_t i = 0; i < original; ++i) {
        const Edge e = edges_[i];
        if (e.src != e.dst)
            edges_.push_back(Edge{e.dst, e.src, e.weight});
    }
    sortAndCombineDuplicates();
}

void
Coo::removeSelfLoops()
{
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [](const Edge &e) { return e.src == e.dst; }),
                 edges_.end());
}

void
Coo::addSelfLoops(Value weight)
{
    for (const Edge &e : edges_) {
        PGCN_ASSERT(e.src != e.dst,
                    "addSelfLoops on a graph that already has loop at "
                        << e.src);
    }
    edges_.reserve(edges_.size() + numVertices_);
    for (VertexId v = 0; v < numVertices_; ++v)
        edges_.push_back(Edge{v, v, weight});
}

} // namespace pgcn::graph
