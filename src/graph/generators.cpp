#include "graph/generators.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "graph/reorder.hpp"

namespace pgcn::graph {

RmatParams
rmatSkewed()
{
    return RmatParams{0.57, 0.19, 0.19, 0.05, 0.1};
}

RmatParams
rmatUniform()
{
    return RmatParams{0.25, 0.25, 0.25, 0.25, 0.0};
}

Coo
generateRmat(uint32_t scale, EdgeId num_edges, const RmatParams &params,
             uint64_t seed)
{
    PGCN_ASSERT(scale > 0 && scale < 32, "rmat scale out of range: " << scale);
    const double sum = params.a + params.b + params.c + params.d;
    PGCN_ASSERT(std::abs(sum - 1.0) < 1e-9,
                "rmat probabilities sum to " << sum << ", expected 1");

    const VertexId n = VertexId{1} << scale;
    Coo coo(n);
    Rng rng(seed);

    for (EdgeId i = 0; i < num_edges; ++i) {
        VertexId row = 0;
        VertexId col = 0;
        double a = params.a, b = params.b, c = params.c, d = params.d;
        for (uint32_t level = 0; level < scale; ++level) {
            const double r = rng.uniform();
            if (r < a) {
                // top-left quadrant: no bit set
            } else if (r < a + b) {
                col |= VertexId{1} << (scale - 1 - level);
            } else if (r < a + b + c) {
                row |= VertexId{1} << (scale - 1 - level);
            } else {
                row |= VertexId{1} << (scale - 1 - level);
                col |= VertexId{1} << (scale - 1 - level);
            }
            if (params.noise > 0.0) {
                // Multiplicative noise, renormalised, as in SNAP's
                // smoothed RMAT to break the staircase artefact.
                auto jitter = [&](double p) {
                    return p * (1.0 - params.noise +
                                2.0 * params.noise * rng.uniform());
                };
                a = jitter(a);
                b = jitter(b);
                c = jitter(c);
                d = jitter(d);
                const double s = a + b + c + d;
                a /= s;
                b /= s;
                c /= s;
                d /= s;
            }
        }
        coo.addEdge(row, col);
    }
    return coo;
}

Coo
generateUniform(VertexId num_vertices, EdgeId num_edges, uint64_t seed)
{
    PGCN_ASSERT(num_vertices > 0, "uniform graph needs vertices");
    Coo coo(num_vertices);
    Rng rng(seed);
    for (EdgeId i = 0; i < num_edges; ++i) {
        const auto src = static_cast<VertexId>(rng.uniformInt(num_vertices));
        const auto dst = static_cast<VertexId>(rng.uniformInt(num_vertices));
        coo.addEdge(src, dst);
    }
    return coo;
}

Coo
shuffleVertexIds(const Coo &coo, uint64_t seed)
{
    return shuffleOrder(coo.numVertices(), seed).applyToCoo(coo);
}

} // namespace pgcn::graph
