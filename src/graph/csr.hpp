/**
 * @file
 * Compressed Sparse Row (CSR) adjacency matrix.
 *
 * This is the storage format the paper's analytical model assumes
 * (Eq. 1: row-offset array, column array, non-zero value array) and
 * the format every SpMM kernel in this library consumes.
 */
#ifndef PGCN_GRAPH_CSR_HPP
#define PGCN_GRAPH_CSR_HPP

#include <span>
#include <vector>

#include "graph/coo.hpp"
#include "graph/types.hpp"

namespace pgcn::graph {

/**
 * Immutable CSR sparse matrix. Rows are vertices; the non-zeros of
 * row u are the in-neighbours aggregated by SpMM when computing
 * H_out[u, :].
 */
class Csr
{
  public:
    /**
     * Build from a COO edge list. The edge list is sorted/deduplicated
     * internally (on a copy) if needed; edge (u, v, w) becomes
     * non-zero A[u][v] = w.
     *
     * @param coo Source edge list.
     */
    explicit Csr(const Coo &coo);

    /**
     * Build directly from raw CSR arrays. Validates the invariants
     * (monotone offsets, in-range columns).
     *
     * @param num_vertices Matrix dimension.
     * @param row_offsets  |V|+1 monotone offsets into cols/vals.
     * @param cols         Column index per non-zero.
     * @param vals         Value per non-zero.
     */
    Csr(VertexId num_vertices, std::vector<EdgeId> row_offsets,
        std::vector<VertexId> cols, std::vector<Value> vals);

    /** Matrix dimension (|V|). */
    VertexId numVertices() const { return numVertices_; }

    /** Number of stored non-zeros (|E| after cleaning). */
    EdgeId numEdges() const { return cols_.size(); }

    /** Row-offset array of size |V|+1. */
    const std::vector<EdgeId> &rowOffsets() const { return rowOffsets_; }

    /** Column-index array of size |E|. */
    const std::vector<VertexId> &cols() const { return cols_; }

    /** Non-zero value array of size |E|. */
    const std::vector<Value> &vals() const { return vals_; }

    /** Out-degree (row length) of vertex @p u. */
    EdgeId
    degree(VertexId u) const
    {
        return rowOffsets_[u + 1] - rowOffsets_[u];
    }

    /** Column indices of row @p u. */
    std::span<const VertexId>
    rowCols(VertexId u) const
    {
        return {cols_.data() + rowOffsets_[u],
                static_cast<size_t>(degree(u))};
    }

    /** Non-zero values of row @p u. */
    std::span<const Value>
    rowVals(VertexId u) const
    {
        return {vals_.data() + rowOffsets_[u],
                static_cast<size_t>(degree(u))};
    }

    /**
     * Density |E| / |V|^2, the x-axis quantity of the paper's Fig. 2.
     */
    double density() const;

    /** Mean row length |E| / |V|. */
    double averageDegree() const;

    /**
     * Row index containing global non-zero position @p e, i.e. the
     * binary search of Algorithm 2 line 4: the largest u with
     * rowOffsets()[u] <= e.
     *
     * @param e Non-zero position in [0, numEdges()).
     */
    VertexId rowOfEdge(EdgeId e) const;

  private:
    void validate() const;

    VertexId numVertices_;
    std::vector<EdgeId> rowOffsets_;
    std::vector<VertexId> cols_;
    std::vector<Value> vals_;
};

} // namespace pgcn::graph

#endif // PGCN_GRAPH_CSR_HPP
