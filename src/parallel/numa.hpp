/**
 * @file
 * NUMA topology discovery and thread pinning, without a libnuma
 * dependency.
 *
 * The paper's Xeon baseline is a dual-socket machine: past one socket,
 * SpMM bandwidth depends on whether a worker's feature rows live in
 * its own node's DRAM. The ThreadPool uses this module (opt-in via
 * PGCN_NUMA=auto) to pin each worker to one node's cpuset and
 * first-touch its scratch there. Topology comes straight from the
 * sysfs files /sys/devices/system/node/node<k>/cpulist; on non-Linux
 * hosts, or when sysfs is absent, detection reports a single node and
 * everything degrades to the unpinned behaviour.
 */
#ifndef PGCN_PARALLEL_NUMA_HPP
#define PGCN_PARALLEL_NUMA_HPP

#include <string>
#include <vector>

namespace pgcn::parallel {

/** CPU lists per NUMA node, in node-id order. */
struct NumaTopology
{
    /** cpus[n] = logical CPU ids belonging to node n (sorted). */
    std::vector<std::vector<unsigned>> nodeCpus;

    /** Number of nodes that have at least one CPU. */
    unsigned numNodes() const
    {
        return static_cast<unsigned>(nodeCpus.size());
    }

    /** True when pinning can change anything (2+ nodes with CPUs). */
    bool multiNode() const { return nodeCpus.size() > 1; }
};

/**
 * Discover the NUMA topology from sysfs. Nodes without CPUs
 * (CXL/HBM memory-only nodes) are skipped. Returns a single node
 * holding CPUs [0, hardware_concurrency) when sysfs is unavailable
 * (non-Linux, containers without /sys).
 */
NumaTopology detectNumaTopology();

/**
 * Parse one sysfs cpulist string ("0-3,8-11,15") into CPU ids.
 * Malformed ranges are skipped; exposed for tests.
 */
std::vector<unsigned> parseCpuList(const std::string &cpulist);

/**
 * Pin the CALLING thread to the given CPUs (sched_setaffinity).
 *
 * @return true on success; false on failure or unsupported platforms
 *         (the caller should continue unpinned).
 */
bool pinCurrentThreadToCpus(const std::vector<unsigned> &cpus);

} // namespace pgcn::parallel

#endif // PGCN_PARALLEL_NUMA_HPP
