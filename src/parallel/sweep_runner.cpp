#include "parallel/sweep_runner.hpp"

#include <exception>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/model_bind.hpp"

namespace pgcn::parallel {

SweepRunner::SweepRunner(SweepOptions options) : options_(options)
{
    if (options_.faults)
        options_.faults->validate();
}

size_t
SweepRunner::add(std::string key, Compute compute)
{
    PGCN_ASSERT(!ran_, "add() after run()");
    points_.push_back(Point{std::move(key), std::move(compute)});
    return points_.size() - 1;
}

unsigned
SweepRunner::jobs() const
{
    if (options_.jobs != 0)
        return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

SweepRunner::Outcome
SweepRunner::run(JsonlCheckpoint &ckpt)
{
    PGCN_ASSERT(!ran_, "run() called twice");
    ran_ = true;

    const size_t n = points_.size();
    Outcome out;
    out.results.resize(n);
    std::vector<uint8_t> point_failed(n, 0);
    std::vector<std::string> point_errors(n);

    // Resolve resume hits up front on the calling thread: their values
    // are already in the checkpoint, and skipping them in submission
    // order lets later computed points flush past them.
    OrderedCheckpointWriter writer(ckpt, n);
    std::vector<uint8_t> todo(n, 1);
    for (size_t i = 0; i < n; ++i) {
        if (const JsonlCheckpoint::Values *done =
                ckpt.find(points_[i].key)) {
            out.results[i] = *done;
            writer.skip(i);
            todo[i] = 0;
            ++out.reused;
        }
    }

    const unsigned num_workers = jobs();
    if (options_.telemetry) {
        sessions_.reserve(num_workers);
        for (unsigned w = 0; w < num_workers; ++w)
            sessions_.push_back(std::make_unique<telemetry::Session>(
                options_.sessionOptions));
    }

    // Dynamic chunk-1 scheduling: sweep points differ wildly in cost
    // (a 32-core K=256 DES run dwarfs a 1-core K=8 one), so static
    // slicing would leave workers idle behind one expensive slice.
    ThreadPool pool(num_workers);
    pool.parallelFor(
        n, Schedule::Dynamic, 1,
        [&](unsigned tid, uint64_t begin, uint64_t end) {
            for (uint64_t i = begin; i < end; ++i) {
                if (!todo[i])
                    continue;
                // Per-POINT injector: seeding by submission index (not
                // worker) keeps perturbed timings schedule-independent.
                std::optional<sim::FaultInjector> faults;
                sim::SimControls controls;
                controls.limits = options_.limits;
                if (options_.faults) {
                    sim::FaultConfig cfg = *options_.faults;
                    cfg.seed += static_cast<uint64_t>(i);
                    faults.emplace(cfg);
                    controls.faults = &*faults;
                }
                SweepContext ctx;
                ctx.worker = tid;
                ctx.pointIndex = i;
                ctx.session =
                    options_.telemetry ? sessions_[tid].get() : nullptr;
                ctx.controls = &controls;
                // Point the analytic models' thread-local sinks at this
                // worker's session, so model evaluations inside the
                // compute land next to the point's simulation metrics.
                telemetry::bindModelTelemetry(
                    ctx.session != nullptr ? &ctx.session->registry()
                                           : nullptr);
                // Worker-local capture: a throwing point resolves as a
                // skip so the commit cursor (and the pool) moves on.
                try {
                    JsonlCheckpoint::Values values =
                        points_[i].compute(ctx);
                    writer.commit(i, points_[i].key, values);
                    out.results[i] = std::move(values);
                } catch (const Error &e) {
                    point_failed[i] = 1;
                    point_errors[i] = e.what();
                    writer.skip(i);
                } catch (const std::exception &e) {
                    point_failed[i] = 1;
                    point_errors[i] = std::string("unexpected: ") +
                                      e.what();
                    writer.skip(i);
                }
            }
        });
    PGCN_ASSERT(writer.done(), "sweep finished with unresolved points");

    for (size_t i = 0; i < n; ++i) {
        if (point_failed[i]) {
            ++out.failed;
            out.errors.push_back(
                PointError{points_[i].key, point_errors[i]});
        }
    }
    out.computed = n - out.reused - out.failed;
    return out;
}

void
SweepRunner::mergeTelemetryInto(telemetry::Session &target) const
{
    for (size_t w = 0; w < sessions_.size(); ++w)
        target.mergeWorker(*sessions_[w], w);
}

} // namespace pgcn::parallel
