#include "parallel/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <string_view>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/diagnostics.hpp"
#include "telemetry/model_bind.hpp"

namespace pgcn::parallel {

namespace {

/**
 * Would re-running the same point plausibly succeed? Host I/O errors
 * (a full disk, a flaky filesystem) and wall-clock budget breaches (a
 * loaded machine) are environmental; everything else — config/shape
 * errors, unrecoverable injected faults, deterministic event/sim-time
 * budget breaches — fails identically on every attempt.
 */
bool
isTransient(const Error &e)
{
    if (dynamic_cast<const IoError *>(&e) != nullptr)
        return true;
    if (const auto *lim = dynamic_cast<const sim::SimLimitError *>(&e))
        return std::string_view(lim->what()).find("wall-clock") !=
               std::string_view::npos;
    return false;
}

} // namespace

SweepRunner::SweepRunner(SweepOptions options) : options_(options)
{
    if (options_.faults)
        options_.faults->validate();
}

size_t
SweepRunner::add(std::string key, Compute compute)
{
    PGCN_ASSERT(!ran_, "add() after run()");
    points_.push_back(Point{std::move(key), std::move(compute)});
    return points_.size() - 1;
}

unsigned
SweepRunner::jobs() const
{
    if (options_.jobs != 0)
        return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

SweepRunner::Outcome
SweepRunner::run(JsonlCheckpoint &ckpt)
{
    PGCN_ASSERT(!ran_, "run() called twice");
    ran_ = true;

    const size_t n = points_.size();
    Outcome out;
    out.results.resize(n);
    std::vector<uint8_t> point_failed(n, 0);
    std::vector<std::string> point_errors(n);
    std::atomic<size_t> retried{0};

    // Resolve resume hits up front on the calling thread: their values
    // are already in the checkpoint, and skipping them in submission
    // order lets later computed points flush past them. Quarantined
    // points likewise resolve here — a poisoned configuration is never
    // re-executed; it is reported as an error with its recorded cause.
    OrderedCheckpointWriter writer(ckpt, n);
    std::vector<uint8_t> todo(n, 1);
    for (size_t i = 0; i < n; ++i) {
        if (const JsonlCheckpoint::Values *done =
                ckpt.find(points_[i].key)) {
            out.results[i] = *done;
            writer.skip(i);
            todo[i] = 0;
            ++out.reused;
        } else if (const std::string *cause =
                       ckpt.findFailure(points_[i].key)) {
            point_failed[i] = 1;
            point_errors[i] = "quarantined: " + *cause;
            writer.skip(i);
            todo[i] = 0;
            ++out.quarantined;
        }
    }

    const unsigned num_workers = jobs();
    if (options_.telemetry) {
        sessions_.reserve(num_workers);
        for (unsigned w = 0; w < num_workers; ++w)
            sessions_.push_back(std::make_unique<telemetry::Session>(
                options_.sessionOptions));
    }

    // Dynamic chunk-1 scheduling: sweep points differ wildly in cost
    // (a 32-core K=256 DES run dwarfs a 1-core K=8 one), so static
    // slicing would leave workers idle behind one expensive slice.
    ThreadPool pool(num_workers);
    pool.parallelFor(
        n, Schedule::Dynamic, 1,
        [&](unsigned tid, uint64_t begin, uint64_t end) {
            for (uint64_t i = begin; i < end; ++i) {
                if (!todo[i])
                    continue;
                SweepContext ctx;
                ctx.worker = tid;
                ctx.pointIndex = i;
                ctx.session =
                    options_.telemetry ? sessions_[tid].get() : nullptr;
                // Point the analytic models' thread-local sinks at this
                // worker's session, so model evaluations inside the
                // compute land next to the point's simulation metrics.
                telemetry::bindModelTelemetry(
                    ctx.session != nullptr ? &ctx.session->registry()
                                           : nullptr);
                // Worker-local capture plus self-healing: transient
                // errors retry in-process with exponential backoff;
                // permanent ones resolve as a quarantine so --resume
                // never re-runs a poisoned point. Either way the
                // commit cursor (and the pool) moves on.
                const unsigned attempts =
                    options_.pointAttempts != 0 ? options_.pointAttempts
                                                : 1;
                for (unsigned attempt = 0;; ++attempt) {
                    // Fresh per-POINT injector each attempt: seeding by
                    // submission index (not worker, not attempt) keeps
                    // perturbed timings schedule-independent and makes
                    // injected faults deterministic — which is exactly
                    // why they classify as permanent.
                    std::optional<sim::FaultInjector> faults;
                    sim::SimControls controls;
                    controls.limits = options_.limits;
                    controls.domains = options_.domains;
                    controls.domainMode = options_.domainMode;
                    if (options_.faults) {
                        sim::FaultConfig cfg = *options_.faults;
                        cfg.seed += static_cast<uint64_t>(i);
                        faults.emplace(cfg);
                        controls.faults = &*faults;
                    }
                    ctx.controls = &controls;
                    try {
                        JsonlCheckpoint::Values values =
                            points_[i].compute(ctx);
                        writer.commit(i, points_[i].key, values);
                        out.results[i] = std::move(values);
                        break;
                    } catch (const Error &e) {
                        if (isTransient(e) && attempt + 1 < attempts) {
                            warn("sweep point '" + points_[i].key +
                                 "' failed transiently (attempt " +
                                 std::to_string(attempt + 1) + "/" +
                                 std::to_string(attempts) +
                                 "), retrying: " + e.what());
                            retried.fetch_add(1,
                                              std::memory_order_relaxed);
                            std::this_thread::sleep_for(
                                std::chrono::duration<double>(
                                    options_.retryBackoffSeconds *
                                    static_cast<double>(uint64_t{1}
                                                        << attempt)));
                            continue;
                        }
                        point_failed[i] = 1;
                        point_errors[i] = e.what();
                        if (isTransient(e)) {
                            // Environmental failure: do not poison the
                            // checkpoint, a later resume may succeed.
                            writer.skip(i);
                        } else {
                            writer.fail(i, points_[i].key, e.what());
                        }
                        break;
                    } catch (const std::exception &e) {
                        point_failed[i] = 1;
                        point_errors[i] =
                            std::string("unexpected: ") + e.what();
                        writer.fail(i, points_[i].key, point_errors[i]);
                        break;
                    }
                }
            }
        });
    PGCN_ASSERT(writer.done(), "sweep finished with unresolved points");

    for (size_t i = 0; i < n; ++i) {
        if (point_failed[i]) {
            out.errors.push_back(
                PointError{points_[i].key, point_errors[i]});
        }
    }
    // quarantined counts resume-time skips; fresh failures (permanent
    // or retry-exhausted transients) count as failed.
    out.failed = out.errors.size() - out.quarantined;
    out.computed = n - out.reused - out.failed - out.quarantined;
    out.retried = retried.load(std::memory_order_relaxed);
    return out;
}

void
SweepRunner::mergeTelemetryInto(telemetry::Session &target) const
{
    for (size_t w = 0; w < sessions_.size(); ++w)
        target.mergeWorker(*sessions_[w], w);
}

} // namespace pgcn::parallel
