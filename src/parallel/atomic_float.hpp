/**
 * @file
 * Lock-free atomic float accumulation, the CPU analogue of PIUMA's
 * remote-atomic writeback in the edge-parallel SpMM (Algorithm 2,
 * line 8). Implemented as a compare-exchange loop on the bit pattern.
 */
#ifndef PGCN_PARALLEL_ATOMIC_FLOAT_HPP
#define PGCN_PARALLEL_ATOMIC_FLOAT_HPP

#include <atomic>
#include <bit>
#include <cstdint>

namespace pgcn::parallel {

/**
 * Atomically perform *addr += value for a float that other threads may
 * be updating concurrently. The address must be 4-byte aligned and not
 * simultaneously accessed non-atomically.
 *
 * @param addr Target float.
 * @param value Increment.
 */
inline void
atomicAddFloat(float *addr, float value)
{
    auto *as_atomic = reinterpret_cast<std::atomic<uint32_t> *>(addr);
    uint32_t expected = as_atomic->load(std::memory_order_relaxed);
    for (;;) {
        const float current = std::bit_cast<float>(expected);
        const uint32_t desired = std::bit_cast<uint32_t>(current + value);
        if (as_atomic->compare_exchange_weak(expected, desired,
                                             std::memory_order_relaxed)) {
            return;
        }
    }
}

} // namespace pgcn::parallel

#endif // PGCN_PARALLEL_ATOMIC_FLOAT_HPP
