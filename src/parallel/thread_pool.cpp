#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hpp"

namespace pgcn::parallel {

namespace {

/** PGCN_NUMA env knob: "auto" opts in; anything else means off. */
NumaMode
numaModeFromEnv()
{
    const char *env = std::getenv("PGCN_NUMA");
    if (env == nullptr || *env == '\0')
        return NumaMode::Off;
    const std::string v(env);
    if (v == "auto")
        return NumaMode::Auto;
    if (v != "off")
        warn("PGCN_NUMA=" + v + " is not recognised (auto|off); NUMA "
                                "placement stays off");
    return NumaMode::Off;
}

} // namespace

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    numThreads_ = num_threads;

    // NUMA placement only activates when there is something to place:
    // auto requested, 2+ nodes, 2+ threads. Everything else (including
    // 1-core CI containers) is exactly the pre-NUMA pool.
    if (numaModeFromEnv() == NumaMode::Auto && numThreads_ > 1) {
        NumaTopology topo = detectNumaTopology();
        if (topo.multiNode()) {
            topology_ = std::move(topo);
            numaPinned_ = true;
        }
    }

    scratch_.resize(numThreads_);
    // Thread 0 is the caller; spawn the rest. Workers pin themselves
    // to their node's cpuset at the top of workerLoop; the caller
    // thread stays unpinned (affinity belongs to whoever created us).
    workers_.reserve(numThreads_ - 1);
    for (unsigned id = 1; id < numThreads_; ++id)
        workers_.emplace_back([this, id] { workerLoop(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        ++generation_;
    }
    cvStart_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop(unsigned id)
{
    if (numaPinned_) {
        // Pin to the whole cpuset of this worker's node (not one CPU:
        // the OS scheduler still balances within the node). Failure is
        // harmless — the worker just runs unpinned.
        pinCurrentThreadToCpus(topology_.nodeCpus[numaNodeOf(id)]);
    }
    uint64_t seen_generation = 0;
    for (;;) {
        std::function<void(unsigned)> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cvStart_.wait(lock, [&] {
                return stopping_ || generation_ != seen_generation;
            });
            if (stopping_)
                return;
            seen_generation = generation_;
            task = task_;
        }
        task(id);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--remaining_ == 0)
                cvDone_.notify_one();
        }
    }
}

float *
ThreadPool::scratchFloats(unsigned tid, uint64_t elems)
{
    PGCN_ASSERT(tid < numThreads_,
                "scratch tid " << tid << " out of " << numThreads_);
    ScratchSlot &slot = scratch_[tid];
    if (slot.elems < elems) {
        slot.buf = kernels::simd::makeAlignedBuffer(elems);
        slot.elems = elems;
        // First-touch under NUMA placement: the requesting thread is
        // pinned to its node, so faulting the pages in here puts the
        // scratch in node-local DRAM. (Callers treat the contents as
        // unspecified, so the zero-fill is unobservable.)
        if (numaPinned_)
            std::memset(slot.buf.get(), 0, elems * sizeof(float));
    }
    return slot.buf.get();
}

void
ThreadPool::parallelRegion(const std::function<void(unsigned)> &fn)
{
    PGCN_ASSERT(fn, "parallelRegion with empty callable");
    if (numThreads_ == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        task_ = fn;
        remaining_ = numThreads_ - 1;
        ++generation_;
    }
    cvStart_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(mutex_);
    cvDone_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
}

void
ThreadPool::parallelFor(
    uint64_t count, Schedule schedule, uint64_t chunk,
    const std::function<void(unsigned, uint64_t, uint64_t)> &body)
{
    PGCN_ASSERT(chunk > 0, "parallelFor chunk must be positive");
    if (count == 0)
        return;

    if (schedule == Schedule::Static) {
        const uint64_t per =
            (count + numThreads_ - 1) / numThreads_;
        parallelRegion([&](unsigned id) {
            const uint64_t begin = std::min<uint64_t>(id * per, count);
            const uint64_t end = std::min<uint64_t>(begin + per, count);
            if (begin < end)
                body(id, begin, end);
        });
    } else {
        std::atomic<uint64_t> next{0};
        parallelRegion([&](unsigned id) {
            for (;;) {
                const uint64_t begin =
                    next.fetch_add(chunk, std::memory_order_relaxed);
                if (begin >= count)
                    break;
                const uint64_t end = std::min(begin + chunk, count);
                body(id, begin, end);
            }
        });
    }
}

} // namespace pgcn::parallel
