/**
 * @file
 * A small OpenMP-style parallel runtime: a persistent thread pool and
 * parallel-for with static or dynamic scheduling. The paper's CPU
 * baseline is "vertex-parallel with dynamic load balancing using
 * OpenMP"; this runtime provides the equivalent primitives without an
 * OpenMP dependency.
 */
#ifndef PGCN_PARALLEL_THREAD_POOL_HPP
#define PGCN_PARALLEL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "kernels/simd.hpp"
#include "parallel/numa.hpp"

namespace pgcn::parallel {

/** Loop-scheduling policy for parallelFor. */
enum class Schedule
{
    Static,  ///< contiguous equal-size range per worker
    Dynamic, ///< chunked work stealing from a shared counter
};

/** NUMA placement policy, selected by the PGCN_NUMA env variable. */
enum class NumaMode
{
    Off,  ///< no pinning, no placement (default)
    Auto, ///< pin workers per node when the host has 2+ NUMA nodes
};

/**
 * A fixed-size pool of worker threads executing fork-join parallel
 * loops. Workers persist across loops, so repeated kernel launches
 * (one per GCN layer) do not pay thread-creation cost.
 */
class ThreadPool
{
  public:
    /**
     * Create a pool.
     *
     * NUMA placement is opt-in via the PGCN_NUMA environment variable
     * ("auto" enables it, anything else — including unset — keeps it
     * off; unrecognised values warn once). With auto on a host that
     * actually has 2+ NUMA nodes, worker threads are split into
     * contiguous per-node groups, each worker is pinned to its node's
     * cpuset, and scratchFloats buffers are first-touched by their
     * pinned owner so they allocate node-local. On single-node hosts
     * (laptops, CI containers) auto detects nothing to do and the
     * pool behaves identically to PGCN_NUMA=off — same thread count,
     * same scheduling, bit-identical kernel results.
     *
     * @param num_threads Worker count including the calling thread;
     *        0 selects the hardware concurrency.
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Join and destroy all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that participate in loops (>= 1). */
    unsigned numThreads() const { return numThreads_; }

    /**
     * True when NUMA placement is active: PGCN_NUMA=auto AND the host
     * has 2+ NUMA nodes AND the pool has 2+ threads. False means the
     * pool is running in the default (unpinned) mode.
     */
    bool numaPinned() const { return numaPinned_; }

    /** NUMA nodes the pool spans (1 when placement is off). */
    unsigned
    numNumaNodes() const
    {
        return numaPinned_ ? topology_.numNodes() : 1;
    }

    /**
     * NUMA node that thread @p tid is placed on (0 when placement is
     * off). Threads are assigned to nodes in contiguous blocks, so
     * the static chunks of parallelFor/spmmNnzBalanced line up with
     * node boundaries.
     */
    unsigned
    numaNodeOf(unsigned tid) const
    {
        return numaPinned_
                   ? static_cast<unsigned>(
                         static_cast<uint64_t>(tid) * topology_.numNodes() /
                         numThreads_)
                   : 0;
    }

    /**
     * Execute body(thread_id, begin, end) over [0, count) split across
     * the pool. Blocks until all iterations complete. The calling
     * thread participates as thread 0.
     *
     * Static scheduling hands each thread one contiguous slice;
     * dynamic scheduling hands out @p chunk iterations at a time from
     * a shared atomic counter (the OpenMP `schedule(dynamic, chunk)`
     * equivalent the paper's CPU SpMM uses for load balance).
     *
     * @param count Total iteration count.
     * @param schedule Scheduling policy.
     * @param chunk Chunk size for dynamic scheduling.
     * @param body Callable (unsigned thread_id, uint64_t begin,
     *        uint64_t end) invoked on half-open iteration ranges.
     */
    void parallelFor(uint64_t count, Schedule schedule, uint64_t chunk,
                     const std::function<void(unsigned, uint64_t, uint64_t)>
                         &body);

    /**
     * Run fn(thread_id) once on every thread in the pool.
     */
    void
    parallelRegion(const std::function<void(unsigned)> &fn);

    /**
     * Per-thread kernel scratch: a 64-byte-aligned float buffer owned
     * by the pool, grown on demand and reused across kernel launches,
     * so per-call workspaces (the edge-parallel SpMM accumulator, the
     * fused GCN layer's tile buffers) cost no allocation after the
     * first use.
     *
     * Thread-safety contract: each thread may only request its OWN
     * slot (@p tid must be the id the pool handed the caller), which
     * makes growth race-free without locking.
     *
     * @param tid Calling thread's pool id (< numThreads()).
     * @param elems Minimum float capacity required.
     * @return Pointer to at least @p elems floats, 64-byte aligned.
     *         Contents are unspecified (not zeroed).
     */
    float *scratchFloats(unsigned tid, uint64_t elems);

  private:
    void workerLoop(unsigned id);

    /** One lazily-grown scratch buffer per pool thread. */
    struct ScratchSlot
    {
        kernels::simd::AlignedBuffer buf;
        uint64_t elems = 0;
    };

    unsigned numThreads_;
    bool numaPinned_ = false;
    NumaTopology topology_; ///< populated only when numaPinned_
    std::vector<std::thread> workers_;
    std::vector<ScratchSlot> scratch_;

    std::mutex mutex_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    uint64_t generation_ = 0;
    unsigned remaining_ = 0;
    bool stopping_ = false;
    std::function<void(unsigned)> task_;
};

} // namespace pgcn::parallel

#endif // PGCN_PARALLEL_THREAD_POOL_HPP
