#include "parallel/numa.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace pgcn::parallel {

std::vector<unsigned>
parseCpuList(const std::string &cpulist)
{
    std::vector<unsigned> cpus;
    std::istringstream in(cpulist);
    std::string item;
    while (std::getline(in, item, ',')) {
        // Trim whitespace/newline the sysfs read may carry.
        while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                    item.back())))
            item.pop_back();
        if (item.empty())
            continue;
        const size_t dash = item.find('-');
        try {
            if (dash == std::string::npos) {
                cpus.push_back(static_cast<unsigned>(std::stoul(item)));
            } else {
                const auto lo = static_cast<unsigned>(
                    std::stoul(item.substr(0, dash)));
                const auto hi = static_cast<unsigned>(
                    std::stoul(item.substr(dash + 1)));
                for (unsigned c = lo; c <= hi && c >= lo; ++c)
                    cpus.push_back(c);
            }
        } catch (const std::exception &) {
            // Malformed entry: skip it rather than fail detection.
        }
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

NumaTopology
detectNumaTopology()
{
    NumaTopology topo;
#ifdef __linux__
    // node ids are dense in practice but probe a generous range and
    // stop at the first gap after having found at least one node.
    for (unsigned node = 0; node < 1024; ++node) {
        std::ifstream f("/sys/devices/system/node/node" +
                        std::to_string(node) + "/cpulist");
        if (!f.is_open()) {
            if (!topo.nodeCpus.empty() || node > 0)
                break;
            continue;
        }
        std::string line;
        std::getline(f, line);
        auto cpus = parseCpuList(line);
        if (!cpus.empty())
            topo.nodeCpus.push_back(std::move(cpus));
    }
#endif
    if (topo.nodeCpus.empty()) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        std::vector<unsigned> cpus(hw);
        for (unsigned c = 0; c < hw; ++c)
            cpus[c] = c;
        topo.nodeCpus.push_back(std::move(cpus));
    }
    return topo;
}

bool
pinCurrentThreadToCpus(const std::vector<unsigned> &cpus)
{
#ifdef __linux__
    if (cpus.empty())
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    for (unsigned c : cpus) {
        if (c < CPU_SETSIZE)
            CPU_SET(c, &set);
    }
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpus;
    return false;
#endif
}

} // namespace pgcn::parallel
