/**
 * @file
 * Parallel sweep orchestrator: runs the independent points of a
 * figure/ablation sweep concurrently on the ThreadPool while keeping
 * every observable output byte-identical to a serial run.
 *
 * Sweep points are embarrassingly parallel — each is one complete
 * discrete-event simulation — but the surrounding machinery is not:
 * the JSONL checkpoint is an ordered append log, telemetry registries
 * are single-threaded by contract, and a fault-injection stream seeded
 * per *worker* would make results depend on the schedule. The runner
 * restores determinism by construction:
 *
 *  - one telemetry Session per worker (merged into a caller session
 *    afterwards, on worker-tagged tracks);
 *  - one FaultInjector per *point*, seeded from the base seed and the
 *    point's submission index, so timings are independent of which
 *    worker runs the point;
 *  - completions funnel through an OrderedCheckpointWriter, which
 *    buffers out-of-order finishes and appends in submission order;
 *  - typed per-point errors are captured worker-locally and reported
 *    after the pool drains, in submission order — one diverging point
 *    neither poisons its siblings nor stalls the pool;
 *  - failures self-heal where that can help: transient errors (host
 *    I/O, wall-clock budget breaches) get bounded in-process retries
 *    with exponential backoff, while permanent ones (config errors,
 *    unrecoverable injected faults) are quarantined into the
 *    checkpoint so a --resume run never re-executes a poisoned point.
 *
 * The result: `--jobs 8` and `--jobs 1` produce byte-identical
 * checkpoint and consolidated-JSON files, differing only in wall
 * clock.
 */
#ifndef PGCN_PARALLEL_SWEEP_RUNNER_HPP
#define PGCN_PARALLEL_SWEEP_RUNNER_HPP

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/checkpoint.hpp"
#include "sim/fault.hpp"
#include "telemetry/session.hpp"

namespace pgcn::parallel {

/** Per-point execution context handed to a sweep compute callback. */
struct SweepContext
{
    /// Pool thread running this point, in [0, jobs).
    unsigned worker = 0;
    /// The point's dense submission index (also its commit order).
    size_t pointIndex = 0;
    /// The executing worker's telemetry session; null = telemetry off.
    telemetry::Session *session = nullptr;
    /// Per-point fault/watchdog controls (never null inside compute).
    const sim::SimControls *controls = nullptr;
};

/** Knobs for one SweepRunner::run() invocation. */
struct SweepOptions
{
    /// Concurrent workers; 1 = serial on the calling thread, 0 =
    /// hardware concurrency.
    unsigned jobs = 1;
    /// Give each worker its own telemetry Session.
    bool telemetry = false;
    /// Options for the per-worker sessions (when telemetry is on).
    telemetry::Session::Options sessionOptions{};
    /// Base fault configuration; each point runs with a fresh injector
    /// seeded `faults->seed + pointIndex` so results do not depend on
    /// worker assignment. Disabled when unset.
    std::optional<sim::FaultConfig> faults;
    /// Watchdog budgets applied to every point (zeros = unlimited).
    sim::Engine::RunLimits limits{};
    /// Self-healing: in-process attempts per point for *transient*
    /// failures (host I/O errors, wall-clock budget breaches). 1 =
    /// fail fast. Permanent failures (config errors, unrecoverable
    /// injected faults, deterministic budget breaches) never retry —
    /// they would fail identically — and are quarantined instead.
    unsigned pointAttempts = 3;
    /// Host-side exponential backoff base between transient retries.
    double retryBackoffSeconds = 0.1;
    /// Event domains each simulated point shards its machine into
    /// (0 = auto: the model picks per point from its core count and
    /// the host's concurrency). Purely a wall-clock/architecture
    /// knob: point output is bit-identical for any value and either
    /// domain mode (see sim/domain.hpp), which the domain
    /// differential tests pin against the checkpoint bytes.
    unsigned domains = 1;
    /// How the domains execute: Sequenced (single-threaded barrier
    /// rotation, the bit-identity oracle), Parallel (one host thread
    /// per domain under the conservative lookahead bound), or Auto
    /// (Parallel whenever the point's config makes it legal).
    sim::DomainMode domainMode = sim::DomainMode::Sequenced;
};

/**
 * A batch of keyed sweep points scheduled onto the thread pool (see
 * file comment). Usage: add() every point, run() once against the
 * sweep checkpoint, then read results back (by submission index) and
 * render tables on the calling thread.
 */
class SweepRunner
{
  public:
    /// Computes one point's checkpoint values; may throw pgcn::Error.
    using Compute =
        std::function<JsonlCheckpoint::Values(const SweepContext &)>;

    /** One captured per-point failure. */
    struct PointError
    {
        std::string key;     ///< the failed point's key
        std::string message; ///< the typed error's what()
    };

    /** What happened to each point of one run() invocation. */
    struct Outcome
    {
        /// Per-point values in submission-index order; nullopt = the
        /// point failed with a captured error.
        std::vector<std::optional<JsonlCheckpoint::Values>> results;
        /// Every failed point, in submission order (quarantine skips
        /// carry a "quarantined: " message prefix).
        std::vector<PointError> errors;
        /// Points computed this run.
        size_t computed = 0;
        /// Points served from the resume checkpoint without recompute.
        size_t reused = 0;
        /// Points that failed this run (logged; permanent failures are
        /// additionally quarantined in the checkpoint).
        size_t failed = 0;
        /// Points skipped because a prior run quarantined them; a
        /// --resume never re-executes a poisoned point.
        size_t quarantined = 0;
        /// Transient in-process retries spent across all points.
        size_t retried = 0;
    };

    explicit SweepRunner(SweepOptions options);

    /** Enqueue a point; returns its submission index. */
    size_t add(std::string key, Compute compute);

    /** Points enqueued so far. */
    size_t size() const { return points_.size(); }

    /** Effective worker count run() will use (resolves jobs == 0). */
    unsigned jobs() const;

    /**
     * Execute every enqueued point and commit results to @p ckpt in
     * submission order. Points already present in @p ckpt (a --resume
     * run) are reused without recomputation. Blocks until all points
     * are resolved; callable once per runner.
     */
    Outcome run(JsonlCheckpoint &ckpt);

    /**
     * Fold the per-worker telemetry sessions (worker-index order) into
     * @p target — see telemetry::Session::mergeWorker. No-op when the
     * runner was created with telemetry off. Call after run().
     */
    void mergeTelemetryInto(telemetry::Session &target) const;

  private:
    /** One enqueued point. */
    struct Point
    {
        std::string key;
        Compute compute;
    };

    SweepOptions options_;
    std::vector<Point> points_;
    std::vector<std::unique_ptr<telemetry::Session>> sessions_;
    bool ran_ = false;
};

} // namespace pgcn::parallel

#endif // PGCN_PARALLEL_SWEEP_RUNNER_HPP
