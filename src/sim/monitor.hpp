/**
 * @file
 * Occupancy and stall-attribution monitors for the timing model.
 *
 * The paper's scaling argument is an occupancy argument: PIUMA hides
 * DRAM/network latency by keeping enough threads runnable that some
 * thread can always issue. A flat counter ("total stall ns") cannot
 * test that claim — it says how much waiting happened, not whether the
 * waiting was *covered* by other work or *exposed* as idle issue
 * slots. These monitors record busy/blocked spans on a bucketed
 * timeline so the two can be told apart after the run.
 *
 * Components:
 *
 *  - Timeline: a fixed-size array of time buckets accumulating busy
 *    nanoseconds. When a span lands past the last bucket the bucket
 *    width doubles and adjacent buckets fold together, so any run
 *    length fits in constant memory. All timelines of one MonitorHub
 *    share geometry (width/folds) and therefore stay comparable
 *    bucket-for-bucket.
 *  - MonitorHub: per-core issue/stall/stall-window timelines plus one
 *    busy timeline per DRAM slice, network port, and DMA engine, and
 *    the stall-attribution taxonomy (StallCause). Its report() rolls
 *    the spans up into occupancies and the latency-hiding
 *    effectiveness metric.
 *
 * Cost model: monitors follow the telemetry idiom — attach-based, a
 * null pointer plus one predictable branch on each hook when not
 * attached, and compiled out entirely under PGCN_NO_TELEMETRY. They
 * observe reservation spans that the model computes anyway and never
 * schedule events, so an attached monitor cannot perturb dispatch
 * order: simulated results are bit-identical with monitors on or off.
 */
#ifndef PGCN_SIM_MONITOR_HPP
#define PGCN_SIM_MONITOR_HPP

#include <algorithm>
#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "common/logging.hpp"
#include "sim/engine.hpp"

namespace pgcn::sim {

/**
 * Why a simulated thread was not issuing. The first four are
 * measured directly at the wait sites; NoRunnable is derived at
 * report time as the part of the stall window no runnable thread
 * covered (exposed stall).
 */
enum class StallCause : uint8_t
{
    MemoryWait = 0,   ///< waiting on a local DRAM slice access
    NetworkWait = 1,  ///< waiting on a remote (cross-core) access
    QueueFull = 2,    ///< backpressure pushing into a full DMA queue
    RecoveryWait = 3, ///< timeout/backoff re-issuing dropped requests
    NoRunnable = 4,   ///< derived: stall time not hidden by any thread
};

/** Number of directly-measured stall causes (excludes NoRunnable). */
inline constexpr size_t kMeasuredStallCauses = 4;

/** Human-readable StallCause name. */
inline const char *
stallCauseName(StallCause c)
{
    switch (c) {
    case StallCause::MemoryWait: return "memory_wait";
    case StallCause::NetworkWait: return "network_wait";
    case StallCause::QueueFull: return "queue_full";
    case StallCause::RecoveryWait: return "recovery_wait";
    case StallCause::NoRunnable: return "no_runnable";
    }
    return "unknown";
}

/**
 * Bucket geometry shared by every Timeline of one MonitorHub. Folding
 * is communicated through the fold counter: a timeline that triggered
 * (or lagged behind) a fold catches up lazily before its next access,
 * so one long span on one timeline re-buckets the others without
 * touching them eagerly.
 */
struct TimelineGeometry
{
    SimTime width = 64.0; ///< current bucket width (ns)
    size_t buckets = 64;  ///< bucket count (fixed per hub)
    uint64_t folds = 0;   ///< times the width has doubled
};

/**
 * One bucketed span accumulator: bins_[i] holds the busy nanoseconds
 * that fell inside [i*width, (i+1)*width). Not thread-safe — like the
 * telemetry Registry it belongs to exactly one (single-threaded)
 * simulation run.
 */
class Timeline
{
  public:
    Timeline() = default;

    explicit Timeline(TimelineGeometry *geo) { reset(geo); }

    /** Rebind to @p geo and zero the accumulator. */
    void
    reset(TimelineGeometry *geo)
    {
        geo_ = geo;
        foldsApplied_ = geo != nullptr ? geo->folds : 0;
        bins_.assign(geo != nullptr ? geo->buckets : 0, 0.0);
        total_ = 0.0;
    }

    /**
     * Accumulate the span [begin, end) into the buckets it overlaps.
     * Spans may arrive in any order (resources complete out of core
     * order); negative or empty spans are ignored.
     */
    void
    addSpan(SimTime begin, SimTime end)
    {
        if (geo_ == nullptr || end <= begin)
            return;
        if (begin < 0.0)
            begin = 0.0;
        // Grow the shared geometry until this span fits, then catch
        // this timeline (and lazily, all siblings) up to it.
        while (end >= static_cast<SimTime>(geo_->buckets) * geo_->width) {
            ++geo_->folds;
            geo_->width *= 2.0;
        }
        sync();
        total_ += end - begin;
        const SimTime w = geo_->width;
        size_t i = static_cast<size_t>(begin / w);
        while (begin < end && i < bins_.size()) {
            const SimTime bucket_end = static_cast<SimTime>(i + 1) * w;
            bins_[i] += std::min(end, bucket_end) - begin;
            begin = bucket_end;
            ++i;
        }
    }

    /**
     * Apply any folds siblings triggered since this timeline was last
     * touched. Call before reading bins(); addSpan() self-syncs.
     */
    void
    sync()
    {
        if (geo_ == nullptr)
            return;
        while (foldsApplied_ < geo_->folds) {
            const size_t half = bins_.size() / 2;
            for (size_t i = 0; i < half; ++i)
                bins_[i] = bins_[2 * i] + bins_[2 * i + 1];
            std::fill(bins_.begin() + static_cast<ptrdiff_t>(half),
                      bins_.end(), 0.0);
            ++foldsApplied_;
        }
        // The width is shared state; recompute lazily from fold count.
    }

    /** Total accumulated span time (ns), independent of bucketing. */
    double total() const { return total_; }

    /** Bucket accumulators; call sync() first. */
    const std::vector<double> &bins() const { return bins_; }

    /** Current (shared) bucket width in ns. */
    SimTime width() const { return geo_ != nullptr ? geo_->width : 0.0; }

  private:
    TimelineGeometry *geo_ = nullptr;
    uint64_t foldsApplied_ = 0;
    std::vector<double> bins_;
    double total_ = 0.0;
};

/**
 * Roll-up of one monitored run; produced by MonitorHub::report().
 * All occupancies are fractions of the observation window (makespan).
 */
struct OccupancyReport
{
    struct CoreReport
    {
        double issueBusyNs = 0.0;  ///< Σ issue-slot service time
        double stallMemNs = 0.0;   ///< thread-time waiting on local DRAM
        double stallNetNs = 0.0;   ///< thread-time waiting cross-core
        double stallQueueNs = 0.0; ///< thread-time blocked on DMA queues
        /// thread-time in modeled fault recovery (timeout + backoff)
        double stallRecoveryNs = 0.0;
        double windowNs = 0.0;     ///< wall (sim) time ≥1 thread stalled
        double coveredNs = 0.0;    ///< window time with issue activity
    };

    std::vector<CoreReport> cores;
    double issueOccupancy = 0.0; ///< Σ busy / (cores · lanes · makespan)
    double sliceOccupancy = 0.0; ///< mean DRAM-slice utilization
    double portOccupancy = 0.0;  ///< mean network-port utilization
    double dmaOccupancy = 0.0;   ///< mean DMA-engine utilization
    /// Fraction of the stall window covered by issue activity on the
    /// same core — the paper's latency-hiding claim, measured. 1.0
    /// when nothing ever stalled.
    double latencyHidingEffectiveness = 1.0;
    /// Stall-window time no runnable thread covered (StallCause::
    /// NoRunnable): latency the machine actually ate.
    double exposedStallNs = 0.0;
};

/**
 * The per-run monitor registry: owns one shared bucket geometry and
 * the timelines for every simulated core, DRAM slice, network port,
 * and DMA engine. Wire-up happens once per run (beginRun + the
 * attach* calls on resources); the per-event hooks are addSpan() and
 * beginWait()/endWait().
 */
class MonitorHub
{
  public:
    struct Options
    {
        size_t buckets = 64;          ///< fixed bucket count
        SimTime initialBucketNs = 64.0; ///< starting bucket width
    };

    MonitorHub() = default;

    explicit MonitorHub(const Options &opt) : opt_(opt) {}

    /**
     * Size the monitor for a run over @p cores cores with @p
     * lanes_per_core issue lanes (MTPs) each, and reset all spans.
     * Must be called before attaching timelines to resources.
     */
    void
    beginRun(unsigned cores, unsigned lanes_per_core = 1)
    {
        PGCN_ASSERT(cores > 0, "monitor needs at least one core");
        lanesPerCore_ = lanes_per_core == 0 ? 1 : lanes_per_core;
        geo_ = TimelineGeometry{opt_.initialBucketNs, opt_.buckets, 0};
        cores_.assign(cores, CoreMonitor{});
        slices_.assign(cores, Timeline{});
        ports_.assign(cores, Timeline{});
        dmas_.assign(cores, Timeline{});
        for (CoreMonitor &c : cores_) {
            c.issue.reset(&geo_);
            for (Timeline &t : c.stall)
                t.reset(&geo_);
            c.window.reset(&geo_);
        }
        for (Timeline &t : slices_)
            t.reset(&geo_);
        for (Timeline &t : ports_)
            t.reset(&geo_);
        for (Timeline &t : dmas_)
            t.reset(&geo_);
    }

    /** Number of monitored cores (0 before beginRun). */
    unsigned cores() const { return static_cast<unsigned>(cores_.size()); }

    /// Busy timeline collecting a core's MTP issue-slot reservations.
    Timeline *issueTimeline(unsigned core) { return &cores_[core].issue; }
    /// Busy timeline of one DRAM slice.
    Timeline *sliceTimeline(unsigned core) { return &slices_[core]; }
    /// Busy timeline of one network port.
    Timeline *portTimeline(unsigned core) { return &ports_[core]; }
    /// Busy timeline of one DMA engine.
    Timeline *dmaTimeline(unsigned core) { return &dmas_[core]; }

    /**
     * A thread on @p core entered a blocking wait at @p now. Paired
     * with endWait(); nesting across threads of one core is expected —
     * the stall *window* is the union of all open waits.
     */
    void
    beginWait(unsigned core, SimTime now)
    {
        CoreMonitor &c = cores_[core];
        if (c.openWaits++ == 0)
            c.windowStart = now;
    }

    /**
     * The wait started at @p begin on @p core resolved at @p end for
     * reason @p cause. Accumulates thread-stall time per cause and
     * closes the core's stall window when the last open wait resolves.
     */
    void
    endWait(unsigned core, StallCause cause, SimTime begin, SimTime end)
    {
        CoreMonitor &c = cores_[core];
        c.stall[static_cast<size_t>(cause)].addSpan(begin, end);
        PGCN_ASSERT(c.openWaits > 0, "endWait without beginWait");
        if (--c.openWaits == 0)
            c.window.addSpan(c.windowStart, end);
    }

    /**
     * Credit [begin, end) to RecoveryWait without touching the wait
     * window. Used when one blocking wait splits into a recovery
     * portion (timeout + backoff before the final re-issue) and a
     * residual memory/network portion: the caller keeps the single
     * beginWait/endWait pair for the window and attributes the
     * recovery slice through this hook.
     */
    void
    noteRecovery(unsigned core, SimTime begin, SimTime end)
    {
        cores_[core]
            .stall[static_cast<size_t>(StallCause::RecoveryWait)]
            .addSpan(begin, end);
    }

    /**
     * Roll the recorded spans up into occupancies and the
     * latency-hiding metric over the window [0, makespan]. Cores with
     * waits still open contribute their window up to the makespan.
     */
    OccupancyReport
    report(SimTime makespan)
    {
        OccupancyReport rep;
        rep.cores.resize(cores_.size());
        closeOpenWindows(makespan);
        double busy_sum = 0.0, window_sum = 0.0, covered_sum = 0.0;
        for (size_t i = 0; i < cores_.size(); ++i) {
            CoreMonitor &c = cores_[i];
            c.issue.sync();
            c.window.sync();
            OccupancyReport::CoreReport &out = rep.cores[i];
            out.issueBusyNs = c.issue.total();
            out.stallMemNs =
                c.stall[static_cast<size_t>(StallCause::MemoryWait)]
                    .total();
            out.stallNetNs =
                c.stall[static_cast<size_t>(StallCause::NetworkWait)]
                    .total();
            out.stallQueueNs =
                c.stall[static_cast<size_t>(StallCause::QueueFull)]
                    .total();
            out.stallRecoveryNs =
                c.stall[static_cast<size_t>(StallCause::RecoveryWait)]
                    .total();
            out.windowNs = c.window.total();
            // Bucket-level overlap: within one bucket a core cannot
            // have covered more stall-window time than it spent busy
            // (or than the window itself). The bucket approximation
            // over- rather than under-estimates coverage by at most
            // one bucket width per disjoint stall episode.
            const std::vector<double> &busy = c.issue.bins();
            const std::vector<double> &win = c.window.bins();
            for (size_t b = 0; b < busy.size() && b < win.size(); ++b)
                out.coveredNs += std::min(busy[b], win[b]);
            busy_sum += out.issueBusyNs;
            window_sum += out.windowNs;
            covered_sum += out.coveredNs;
        }
        if (makespan > 0.0) {
            rep.issueOccupancy =
                busy_sum / (static_cast<double>(cores_.size()) *
                            lanesPerCore_ * makespan);
            rep.sliceOccupancy = meanOccupancy(slices_, makespan);
            rep.portOccupancy = meanOccupancy(ports_, makespan);
            rep.dmaOccupancy = meanOccupancy(dmas_, makespan);
        }
        rep.latencyHidingEffectiveness =
            window_sum > 0.0 ? covered_sum / window_sum : 1.0;
        rep.exposedStallNs = window_sum - covered_sum;
        return rep;
    }

    /**
     * Dump every timeline as CSV rows
     * `kind,index,bucket,t_start_ns,bucket_ns,busy_ns` for offline
     * heatmap rendering (tools/pgcn_report.py). @p prefix is prepended
     * verbatim to each row — the caller labels the sweep point.
     */
    void
    writeCsv(std::ostream &os, SimTime makespan, const std::string &prefix)
    {
        closeOpenWindows(makespan);
        for (size_t i = 0; i < cores_.size(); ++i) {
            CoreMonitor &c = cores_[i];
            writeRows(os, prefix, "issue", i, c.issue);
            writeRows(os, prefix, "stall_mem", i,
                      c.stall[static_cast<size_t>(StallCause::MemoryWait)]);
            writeRows(os, prefix, "stall_net", i,
                      c.stall[static_cast<size_t>(StallCause::NetworkWait)]);
            writeRows(
                os, prefix, "stall_queue", i,
                c.stall[static_cast<size_t>(StallCause::QueueFull)]);
            writeRows(
                os, prefix, "stall_recovery", i,
                c.stall[static_cast<size_t>(StallCause::RecoveryWait)]);
            writeRows(os, prefix, "stall_window", i, c.window);
        }
        for (size_t i = 0; i < slices_.size(); ++i)
            writeRows(os, prefix, "slice", i, slices_[i]);
        for (size_t i = 0; i < ports_.size(); ++i)
            writeRows(os, prefix, "port", i, ports_[i]);
        for (size_t i = 0; i < dmas_.size(); ++i)
            writeRows(os, prefix, "dma", i, dmas_[i]);
    }

    /** CSV header matching writeCsv rows, sans the caller prefix. */
    static const char *
    csvHeader()
    {
        return "kind,index,bucket,t_start_ns,bucket_ns,busy_ns";
    }

  private:
    struct CoreMonitor
    {
        Timeline issue;
        std::array<Timeline, kMeasuredStallCauses> stall;
        Timeline window;      ///< union of open waits (any-stall time)
        uint32_t openWaits = 0;
        SimTime windowStart = 0.0;
    };

    /** Close any still-open stall windows at the end of the run. */
    void
    closeOpenWindows(SimTime makespan)
    {
        for (CoreMonitor &c : cores_) {
            if (c.openWaits > 0) {
                c.window.addSpan(c.windowStart, makespan);
                c.openWaits = 0;
            }
        }
    }

    static double
    meanOccupancy(std::vector<Timeline> &ts, SimTime makespan)
    {
        if (ts.empty() || makespan <= 0.0)
            return 0.0;
        double sum = 0.0;
        for (Timeline &t : ts)
            sum += t.total();
        return sum / (static_cast<double>(ts.size()) * makespan);
    }

    void
    writeRows(std::ostream &os, const std::string &prefix,
              const char *kind, size_t index, Timeline &t)
    {
        t.sync();
        const std::vector<double> &bins = t.bins();
        const SimTime w = t.width();
        for (size_t b = 0; b < bins.size(); ++b) {
            if (bins[b] <= 0.0)
                continue; // sparse dump; zero rows carry no signal
            os << prefix << kind << ',' << index << ',' << b << ','
               << static_cast<double>(b) * w << ',' << w << ','
               << bins[b] << '\n';
        }
    }

    Options opt_;
    TimelineGeometry geo_{};
    unsigned lanesPerCore_ = 1;
    std::vector<CoreMonitor> cores_;
    std::vector<Timeline> slices_;
    std::vector<Timeline> ports_;
    std::vector<Timeline> dmas_;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_MONITOR_HPP
