/**
 * @file
 * Sharded event domains over the DES core (ROADMAP item 4).
 *
 * A DomainSet splits one simulated machine into N event domains —
 * one per PIUMA node or DRAM-slice group — each backed by its own
 * Engine (its own calendar wheel, now queue, completion streams and
 * waitables). Two execution modes share that layout:
 *
 *  - **Sequenced** (the default, used by the PIUMA model): every
 *    shard is bound to one Engine::SharedState — one clock, one
 *    global sequence counter, one stat block — and run() dispatches
 *    the global minimum (when, seq) across all shards each step.
 *    Because sequence numbers are assigned globally at schedule time
 *    exactly as in the serial engine, the dispatch order is the
 *    serial order *by construction*, independent of which shard's
 *    arena holds an event: `--domains N` output is bit-identical to
 *    `--domains 1` for any N. This is the mode that keeps every
 *    always-on stat (criticalPathEvents, stall taxonomy, fault retry
 *    accounting) and the determinism goldens unchanged.
 *
 *  - **Parallel**: each shard keeps its own state block and runs on
 *    its own std::thread under a conservative-lookahead window
 *    protocol (Chandy–Misra in barrier form). Let m be the minimum
 *    next-event time across all domains and L the lookahead — the
 *    minimum latency of any cross-domain interaction (for PIUMA, the
 *    minimum inter-node network latency from PiumaConfig). Every
 *    domain may safely dispatch all events strictly before
 *    H = m + L: any message sent during the window is sent at time
 *    >= m and arrives at >= m + L = H, so nothing dispatched inside
 *    the window can be invalidated. Cross-domain events travel
 *    through bounded SPSC mailboxes (one per ordered domain pair)
 *    and are merged at each window boundary in deterministic
 *    (timestamp, source domain, source sequence) order. An idle
 *    domain publishes +inf as its next-event time and keeps
 *    participating in the barriers — the null-message/idle-advance
 *    path — so a neighbor going quiet can never deadlock the set.
 *
 * When the PIUMA model runs Parallel: since the memory system moved
 * to a two-phase request/response protocol (PR 10), every
 * cross-domain interaction is a posted event bearing real modeled
 * latency — the DGAS network hop on requests and responses, the
 * timeout margin on failure notices — so the model's lookahead bound
 * (MemorySystem::modelLookaheadNs) is positive and Parallel mode is
 * legal. Bit-identity across modes *and* domain counts rests on
 * *keyed sequence numbers*: requests and responses carry canonical
 * (band, entity, stamp) sort keys assigned from per-entity counters
 * (kSeqBandRequest / kSeqBandResponse below), so the dispatch order
 * at equal timestamps is a property of the messages themselves, not
 * of which counter happened to stamp them. Ordinary events keep
 * their small engine-local sequence numbers and therefore always
 * dispatch before keyed messages at the same timestamp — a uniform
 * rule both modes share. See DESIGN.md §15 for the lookahead-bound
 * derivation and the auto-mode rules.
 */
#ifndef PGCN_SIM_DOMAIN_HPP
#define PGCN_SIM_DOMAIN_HPP

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace pgcn::sim {

/**
 * Canonical sequence-key bands for keyed cross-domain messages.
 * Engine-local sequence counters never reach 2^62 in practice, so:
 *
 *   band 0 (seq < 2^62)  — ordinary events; dispatch first at equal
 *                          timestamps, ordered by their engine-local
 *                          creation order (identical in both modes);
 *   kSeqBandRequest      — memory request arrivals, keyed by
 *                          (requester entity, per-entity stamp): the
 *                          arrival-order arbitration rule;
 *   kSeqBandResponse     — responses / failure notices, keyed by
 *                          (serving entity, per-entity stamp).
 *
 * Retried requests re-carry their original key, giving an in-flight
 * retry arbitration priority over fresher requests that arrive at
 * the same instant (attempts of one request are serial in time, so a
 * key is never pending twice).
 */
constexpr uint64_t kSeqBandRequest = uint64_t{1} << 62;
constexpr uint64_t kSeqBandResponse = uint64_t{1} << 63;
/// Entity id field width: bits [kSeqEntityShift, 62) — 2^18 entities.
constexpr unsigned kSeqEntityShift = 44;

/** Compose a keyed sequence number: band | entity | stamp. */
inline uint64_t
makeKeyedSeq(uint64_t band, unsigned entity, uint64_t stamp)
{
    PGCN_ASSERT(entity < (1u << (62 - kSeqEntityShift)),
                "keyed-seq entity " << entity << " out of range");
    PGCN_ASSERT(stamp < (uint64_t{1} << kSeqEntityShift),
                "keyed-seq stamp overflow");
    return band | (static_cast<uint64_t>(entity) << kSeqEntityShift) |
           stamp;
}

/**
 * A set of event domains simulating one machine. Owns one Engine per
 * domain plus the cross-domain plumbing (shared clock block or
 * mailboxes + barriers, depending on mode).
 */
class DomainSet
{
  public:
    /** How the domains execute relative to each other. */
    enum class Mode
    {
        /// One shared clock/sequence block; deterministic K-way merge
        /// on a single thread. Bit-identical to a serial engine.
        Sequenced,
        /// One thread per domain; conservative-lookahead windows with
        /// mailbox hand-off. Requires every cross-domain interaction
        /// to carry at least lookaheadNs of latency.
        Parallel,
    };

    struct Options
    {
        /// Number of event domains (>= 1).
        unsigned domains = 1;
        Mode mode = Mode::Sequenced;
        /// Minimum cross-domain latency (ns); the safe-window margin
        /// in Parallel mode. Unused by Sequenced mode.
        double lookaheadNs = 1.0;
    };

    explicit DomainSet(const Options &opts);

    /** Sequenced set with @p domains shards (the model's entry point). */
    explicit DomainSet(unsigned domains)
        : DomainSet(Options{domains, Mode::Sequenced, 1.0})
    {
    }

    DomainSet() : DomainSet(1u) {}

    DomainSet(const DomainSet &) = delete;
    DomainSet &operator=(const DomainSet &) = delete;

    /** Number of domains. */
    unsigned
    domains() const
    {
        return static_cast<unsigned>(engines_.size());
    }

    Mode mode() const { return mode_; }

    double lookaheadNs() const { return lookaheadNs_; }

    /** The engine backing domain @p d. */
    Engine &
    engine(unsigned d)
    {
        PGCN_ASSERT(d < engines_.size(), "domain " << d << " out of range");
        return *engines_[d];
    }

    const Engine &
    engine(unsigned d) const
    {
        PGCN_ASSERT(d < engines_.size(), "domain " << d << " out of range");
        return *engines_[d];
    }

    /**
     * Run the set until every domain's queue drains. Returns the
     * final simulated time (the shared clock in Sequenced mode, the
     * maximum domain clock in Parallel mode).
     *
     * @throws SimDeadlockError naming blocked agents *across all
     *         domains* when the queues drained with agents still
     *         suspended on any domain's waitables.
     * @throws SimLimitError / anything a dispatched event throws.
     */
    SimTime run();

    /**
     * Awaitable: suspend the calling agent (which runs in domain
     * @p dst_domain) until absolute time @p when, where the wake is
     * caused by domain @p src_domain (e.g. a memory response computed
     * by a remote slice). Timing, sequence-number consumption and the
     * past-deadline fast path replicate Engine::delayUntil exactly,
     * so a sequenced run is bit-identical whether an await is routed
     * through the set or the plain engine. Cross-domain wakes are
     * counted per domain (see crossDomainPosts()).
     */
    auto
    awaitResponse(unsigned src_domain, unsigned dst_domain, SimTime when)
    {
        struct Awaiter
        {
            DomainSet &set;
            unsigned src;
            unsigned dst;
            SimTime when;

            bool
            await_ready() const noexcept
            {
                // Same fast path as delayUntil: a response already
                // due costs no event and no sequence number.
                return when - set.engine(dst).now() <= 0.0;
            }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                set.postWake(src, dst, when, h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, src_domain, dst_domain, when};
    }

    /**
     * Deliver @p fn to domain @p dst_domain at absolute time @p when,
     * sent by domain @p src_domain. In Sequenced mode (and for
     * same-domain posts) this files the event directly; in Parallel
     * mode a cross-domain post enqueues into the (src, dst) mailbox —
     * it must be called from src's worker thread, and @p when must
     * respect the lookahead: when >= src clock + lookaheadNs.
     */
    void post(unsigned src_domain, unsigned dst_domain, SimTime when,
              std::function<void()> fn);

    /**
     * Deliver @p fn to domain @p dst_domain at absolute time @p when
     * carrying the canonical sequence key @p keyed_seq (see the band
     * constants above). Unlike post(), whose events are stamped with
     * fresh engine sequence numbers at injection, a keyed message's
     * equal-timestamp dispatch order is decided by the carried key —
     * identical in Sequenced and Parallel mode by construction. Same
     * thread/lookahead rules as post().
     */
    void postKeyed(unsigned src_domain, unsigned dst_domain, SimTime when,
                   uint64_t keyed_seq, std::function<void()> fn);

    /**
     * File a delayUntil-replica wake for @p h in domain @p dom at
     * absolute time @p when (must be strictly after dom's clock).
     * A self-post: usable from dom's own thread in any mode.
     */
    void
    wakeAt(unsigned dom, SimTime when, std::coroutine_handle<> h)
    {
        postWake(dom, dom, when, h);
    }

    /**
     * Arm watchdog budgets. Sequenced mode arms the shared block
     * (any domain's dispatch can trip it); Parallel mode arms every
     * domain independently.
     */
    void setRunLimits(const Engine::RunLimits &limits);

    /**
     * Attach a telemetry observer. Sequenced mode samples on the
     * shared clock — the hook fires at the same global events as a
     * serial run. Parallel mode samples domain 0 only.
     */
    void attachObserver(Engine::Observer *observer, SimTime first_sample);

    /** Current simulated time (shared clock / max domain clock). */
    SimTime now() const;

    /** Total events dispatched across the set. */
    uint64_t eventsProcessed() const;

    /**
     * Longest dependency chain dispatched anywhere in the set (the
     * event-graph critical path). Every message carries its depth
     * across domain boundaries, so the value is identical in
     * Sequenced and Parallel mode.
     */
    uint64_t criticalPathEvents() const;

    /**
     * High-water mark of pending events. In Sequenced mode this is
     * the shared block's global peak (bit-identical across domain
     * counts); in Parallel mode the maximum per-domain peak — a
     * host-scheduling-dependent quantity, deliberately excluded from
     * cross-mode differential checks.
     */
    size_t peakQueueDepth() const;

    /**
     * Cross-domain wakes and posts delivered so far. Deliberately
     * kept out of SpmmRunStats and telemetry counters: it depends on
     * the domain count, and everything in those channels must be
     * bit-identical across `--domains N`.
     */
    uint64_t crossDomainPosts() const;

  private:
    /** A cross-domain message parked in a mailbox. */
    struct Msg
    {
        SimTime when;
        unsigned srcDomain;
        uint64_t srcSeq; ///< per-source post counter: the merge tiebreak
        uint32_t depth;
        uint64_t keyedSeq; ///< carried sequence key; 0 = unkeyed post
        std::function<void()> fn;
    };

    /**
     * Bounded SPSC mailbox for one ordered (src, dst) domain pair: a
     * fixed ring for the common case plus a spill vector so a bursty
     * window can never drop or block. The window protocol guarantees
     * the producer (src's thread, during a dispatch window) and the
     * consumer (dst's thread, during the post-barrier drain) never
     * run concurrently, and the barrier's mutex orders their memory
     * accesses — plain indices, no atomics needed.
     */
    class Mailbox
    {
      public:
        void
        push(Msg m)
        {
            if (size_ < kCapacity) {
                ring_[(head_ + size_) % kCapacity] = std::move(m);
                ++size_;
            } else {
                spill_.push_back(std::move(m));
            }
        }

        void
        drainTo(std::vector<Msg> &out)
        {
            for (size_t i = 0; i < size_; ++i)
                out.push_back(std::move(ring_[(head_ + i) % kCapacity]));
            head_ = 0;
            size_ = 0;
            for (Msg &m : spill_)
                out.push_back(std::move(m));
            spill_.clear();
        }

      private:
        static constexpr size_t kCapacity = 256;
        std::vector<Msg> ring_ = std::vector<Msg>(kCapacity);
        size_t head_ = 0;
        size_t size_ = 0;
        std::vector<Msg> spill_;
    };

    /** File a coroutine wake in dst, replicating delayUntil timing. */
    void postWake(unsigned src, unsigned dst, SimTime when,
                  std::coroutine_handle<> h);

    SimTime runSequenced();
    SimTime runParallel();

    /** Drain every mailbox addressed to @p dst, in merge order. */
    void drainInbox(unsigned dst, std::vector<Msg> &scratch);

    /** Drain and discard @p dst's mailboxes (failed-domain path). */
    void drainDiscard(unsigned dst, std::vector<Msg> &scratch);

    /** Throw SimDeadlockError if any domain still has blocked agents. */
    void raiseIfBlockedAnywhere(SimTime at) const;

    Mode mode_;
    double lookaheadNs_;
    Engine::SharedState shared_{}; ///< the one clock block (Sequenced)
    std::vector<std::unique_ptr<Engine>> engines_;
    std::vector<Mailbox> boxes_;       ///< [src * D + dst], Parallel mode
    std::vector<uint64_t> postSeq_;    ///< per-src mailbox sequence
    std::vector<uint64_t> crossPosts_; ///< per-executing-domain tally
};

} // namespace pgcn::sim

#endif // PGCN_SIM_DOMAIN_HPP
