/**
 * @file
 * Sharded event domains over the DES core (ROADMAP item 4).
 *
 * A DomainSet splits one simulated machine into N event domains —
 * one per PIUMA node or DRAM-slice group — each backed by its own
 * Engine (its own calendar wheel, now queue, completion streams and
 * waitables). Two execution modes share that layout:
 *
 *  - **Sequenced** (the default, used by the PIUMA model): every
 *    shard is bound to one Engine::SharedState — one clock, one
 *    global sequence counter, one stat block — and run() dispatches
 *    the global minimum (when, seq) across all shards each step.
 *    Because sequence numbers are assigned globally at schedule time
 *    exactly as in the serial engine, the dispatch order is the
 *    serial order *by construction*, independent of which shard's
 *    arena holds an event: `--domains N` output is bit-identical to
 *    `--domains 1` for any N. This is the mode that keeps every
 *    always-on stat (criticalPathEvents, stall taxonomy, fault retry
 *    accounting) and the determinism goldens unchanged.
 *
 *  - **Parallel**: each shard keeps its own state block and runs on
 *    its own std::thread under a conservative-lookahead window
 *    protocol (Chandy–Misra in barrier form). Let m be the minimum
 *    next-event time across all domains and L the lookahead — the
 *    minimum latency of any cross-domain interaction (for PIUMA, the
 *    minimum inter-node network latency from PiumaConfig). Every
 *    domain may safely dispatch all events strictly before
 *    H = m + L: any message sent during the window is sent at time
 *    >= m and arrives at >= m + L = H, so nothing dispatched inside
 *    the window can be invalidated. Cross-domain events travel
 *    through bounded SPSC mailboxes (one per ordered domain pair)
 *    and are merged at each window boundary in deterministic
 *    (timestamp, source domain, source sequence) order. An idle
 *    domain publishes +inf as its next-event time and keeps
 *    participating in the barriers — the null-message/idle-advance
 *    path — so a neighbor going quiet can never deadlock the set.
 *
 * Why the PIUMA model uses Sequenced mode: MemorySystem::accessFor
 * resolves DRAM-slice and network-port bandwidth reservations
 * *synchronously at issue time* (the PR 8 recovery protocol depends
 * on this), which is a zero-lookahead coupling between any two
 * domains that share a resource. True parallel execution would have
 * to either break bit-identity or serialize on every access — so the
 * model keeps the sequenced merge (same event count, same output
 * bytes) and the Parallel mode serves message-coupled workloads
 * whose cross-domain interactions all carry real latency. See
 * DESIGN.md §15 for the full argument.
 */
#ifndef PGCN_SIM_DOMAIN_HPP
#define PGCN_SIM_DOMAIN_HPP

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace pgcn::sim {

/**
 * A set of event domains simulating one machine. Owns one Engine per
 * domain plus the cross-domain plumbing (shared clock block or
 * mailboxes + barriers, depending on mode).
 */
class DomainSet
{
  public:
    /** How the domains execute relative to each other. */
    enum class Mode
    {
        /// One shared clock/sequence block; deterministic K-way merge
        /// on a single thread. Bit-identical to a serial engine.
        Sequenced,
        /// One thread per domain; conservative-lookahead windows with
        /// mailbox hand-off. Requires every cross-domain interaction
        /// to carry at least lookaheadNs of latency.
        Parallel,
    };

    struct Options
    {
        /// Number of event domains (>= 1).
        unsigned domains = 1;
        Mode mode = Mode::Sequenced;
        /// Minimum cross-domain latency (ns); the safe-window margin
        /// in Parallel mode. Unused by Sequenced mode.
        double lookaheadNs = 1.0;
    };

    explicit DomainSet(const Options &opts);

    /** Sequenced set with @p domains shards (the model's entry point). */
    explicit DomainSet(unsigned domains)
        : DomainSet(Options{domains, Mode::Sequenced, 1.0})
    {
    }

    DomainSet() : DomainSet(1u) {}

    DomainSet(const DomainSet &) = delete;
    DomainSet &operator=(const DomainSet &) = delete;

    /** Number of domains. */
    unsigned
    domains() const
    {
        return static_cast<unsigned>(engines_.size());
    }

    Mode mode() const { return mode_; }

    double lookaheadNs() const { return lookaheadNs_; }

    /** The engine backing domain @p d. */
    Engine &
    engine(unsigned d)
    {
        PGCN_ASSERT(d < engines_.size(), "domain " << d << " out of range");
        return *engines_[d];
    }

    const Engine &
    engine(unsigned d) const
    {
        PGCN_ASSERT(d < engines_.size(), "domain " << d << " out of range");
        return *engines_[d];
    }

    /**
     * Run the set until every domain's queue drains. Returns the
     * final simulated time (the shared clock in Sequenced mode, the
     * maximum domain clock in Parallel mode).
     *
     * @throws SimDeadlockError naming blocked agents *across all
     *         domains* when the queues drained with agents still
     *         suspended on any domain's waitables.
     * @throws SimLimitError / anything a dispatched event throws.
     */
    SimTime run();

    /**
     * Awaitable: suspend the calling agent (which runs in domain
     * @p dst_domain) until absolute time @p when, where the wake is
     * caused by domain @p src_domain (e.g. a memory response computed
     * by a remote slice). Timing, sequence-number consumption and the
     * past-deadline fast path replicate Engine::delayUntil exactly,
     * so a sequenced run is bit-identical whether an await is routed
     * through the set or the plain engine. Cross-domain wakes are
     * counted per domain (see crossDomainPosts()).
     */
    auto
    awaitResponse(unsigned src_domain, unsigned dst_domain, SimTime when)
    {
        struct Awaiter
        {
            DomainSet &set;
            unsigned src;
            unsigned dst;
            SimTime when;

            bool
            await_ready() const noexcept
            {
                // Same fast path as delayUntil: a response already
                // due costs no event and no sequence number.
                return when - set.engine(dst).now() <= 0.0;
            }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                set.postWake(src, dst, when, h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, src_domain, dst_domain, when};
    }

    /**
     * Deliver @p fn to domain @p dst_domain at absolute time @p when,
     * sent by domain @p src_domain. In Sequenced mode (and for
     * same-domain posts) this files the event directly; in Parallel
     * mode a cross-domain post enqueues into the (src, dst) mailbox —
     * it must be called from src's worker thread, and @p when must
     * respect the lookahead: when >= src clock + lookaheadNs.
     */
    void post(unsigned src_domain, unsigned dst_domain, SimTime when,
              std::function<void()> fn);

    /**
     * Arm watchdog budgets. Sequenced mode arms the shared block
     * (any domain's dispatch can trip it); Parallel mode arms every
     * domain independently.
     */
    void setRunLimits(const Engine::RunLimits &limits);

    /**
     * Attach a telemetry observer. Sequenced mode samples on the
     * shared clock — the hook fires at the same global events as a
     * serial run. Parallel mode samples domain 0 only.
     */
    void attachObserver(Engine::Observer *observer, SimTime first_sample);

    /** Current simulated time (shared clock / max domain clock). */
    SimTime now() const;

    /** Total events dispatched across the set. */
    uint64_t eventsProcessed() const;

    /**
     * Cross-domain wakes and posts delivered so far. Deliberately
     * kept out of SpmmRunStats and telemetry counters: it depends on
     * the domain count, and everything in those channels must be
     * bit-identical across `--domains N`.
     */
    uint64_t crossDomainPosts() const;

  private:
    /** A cross-domain message parked in a mailbox. */
    struct Msg
    {
        SimTime when;
        unsigned srcDomain;
        uint64_t srcSeq; ///< per-source post counter: the merge tiebreak
        uint32_t depth;
        std::function<void()> fn;
    };

    /**
     * Bounded SPSC mailbox for one ordered (src, dst) domain pair: a
     * fixed ring for the common case plus a spill vector so a bursty
     * window can never drop or block. The window protocol guarantees
     * the producer (src's thread, during a dispatch window) and the
     * consumer (dst's thread, during the post-barrier drain) never
     * run concurrently, and the barrier's mutex orders their memory
     * accesses — plain indices, no atomics needed.
     */
    class Mailbox
    {
      public:
        void
        push(Msg m)
        {
            if (size_ < kCapacity) {
                ring_[(head_ + size_) % kCapacity] = std::move(m);
                ++size_;
            } else {
                spill_.push_back(std::move(m));
            }
        }

        void
        drainTo(std::vector<Msg> &out)
        {
            for (size_t i = 0; i < size_; ++i)
                out.push_back(std::move(ring_[(head_ + i) % kCapacity]));
            head_ = 0;
            size_ = 0;
            for (Msg &m : spill_)
                out.push_back(std::move(m));
            spill_.clear();
        }

      private:
        static constexpr size_t kCapacity = 256;
        std::vector<Msg> ring_ = std::vector<Msg>(kCapacity);
        size_t head_ = 0;
        size_t size_ = 0;
        std::vector<Msg> spill_;
    };

    /** File a coroutine wake in dst, replicating delayUntil timing. */
    void postWake(unsigned src, unsigned dst, SimTime when,
                  std::coroutine_handle<> h);

    SimTime runSequenced();
    SimTime runParallel();

    /** Drain every mailbox addressed to @p dst, in merge order. */
    void drainInbox(unsigned dst, std::vector<Msg> &scratch);

    /** Drain and discard @p dst's mailboxes (failed-domain path). */
    void drainDiscard(unsigned dst, std::vector<Msg> &scratch);

    /** Throw SimDeadlockError if any domain still has blocked agents. */
    void raiseIfBlockedAnywhere(SimTime at) const;

    Mode mode_;
    double lookaheadNs_;
    Engine::SharedState shared_{}; ///< the one clock block (Sequenced)
    std::vector<std::unique_ptr<Engine>> engines_;
    std::vector<Mailbox> boxes_;       ///< [src * D + dst], Parallel mode
    std::vector<uint64_t> postSeq_;    ///< per-src mailbox sequence
    std::vector<uint64_t> crossPosts_; ///< per-executing-domain tally
};

} // namespace pgcn::sim

#endif // PGCN_SIM_DOMAIN_HPP
