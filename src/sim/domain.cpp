/**
 * @file
 * DomainSet implementation: the sequenced K-way merge and the
 * parallel conservative-lookahead window protocol. See domain.hpp
 * for the model-level rationale and DESIGN.md §15 for the proofs.
 */
#include "sim/domain.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace pgcn::sim {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

/**
 * A reusable two-phase barrier: the last arriver runs the completion
 * callback under the barrier lock, then releases everyone. The lock
 * hand-off is what makes the surrounding window protocol data-race
 * free with plain (non-atomic) shared fields: everything a worker
 * wrote before arriving happens-before everything any worker reads
 * after leaving.
 */
class Barrier
{
  public:
    explicit Barrier(unsigned count) : count_(count) {}

    template <typename Completion>
    void
    arriveAndWait(const Completion &completion)
    {
        std::unique_lock<std::mutex> lock(mu_);
        const uint64_t gen = generation_;
        if (++waiting_ == count_) {
            waiting_ = 0;
            ++generation_;
            completion();
            cv_.notify_all();
        } else {
            cv_.wait(lock, [&] { return generation_ != gen; });
        }
    }

    void
    arriveAndWait()
    {
        arriveAndWait([] {});
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    const unsigned count_;
    unsigned waiting_ = 0;
    uint64_t generation_ = 0;
};

} // namespace

DomainSet::DomainSet(const Options &opts)
    : mode_(opts.mode), lookaheadNs_(opts.lookaheadNs)
{
    const unsigned d = std::max(1u, opts.domains);
    PGCN_ASSERT(mode_ == Mode::Sequenced || lookaheadNs_ > 0.0,
                "parallel mode needs a positive lookahead");
    engines_.reserve(d);
    for (unsigned i = 0; i < d; ++i) {
        engines_.push_back(std::make_unique<Engine>());
        if (mode_ == Mode::Sequenced)
            engines_.back()->bindShared(shared_);
    }
    if (mode_ == Mode::Parallel)
        boxes_.resize(static_cast<size_t>(d) * d);
    postSeq_.assign(d, 0);
    crossPosts_.assign(d, 0);
}

void
DomainSet::postWake(unsigned src, unsigned dst, SimTime when,
                    std::coroutine_handle<> h)
{
    Engine &e = engine(dst);
    // Replicate Engine::delayUntil arithmetic bit-for-bit: the serial
    // path computes the event time as now + (when - now), which can
    // differ from `when` by an ulp. Diverging here would silently
    // shift one event and break the `--domains N` identity.
    const SimTime d = when - e.now();
    PGCN_ASSERT(d > 0.0, "postWake for a response already due");
    e.injectAbsolute(e.now() + d,
                     reinterpret_cast<uintptr_t>(h.address()),
                     e.ctx_->curDepth + 1);
    if (src != dst) {
        // The awaiting coroutine always runs on dst's thread, so dst
        // is the executing domain — index the tally by it to keep the
        // counters single-writer in Parallel mode.
        ++crossPosts_[dst];
    }
}

void
DomainSet::post(unsigned src_domain, unsigned dst_domain, SimTime when,
                std::function<void()> fn)
{
    if (mode_ == Mode::Sequenced || src_domain == dst_domain) {
        Engine &e = engine(dst_domain);
        PGCN_ASSERT(when >= e.now(), "post into the past");
        e.injectAbsolute(when, e.internCallback(std::move(fn)),
                         e.ctx_->curDepth + 1);
        if (src_domain != dst_domain)
            ++crossPosts_[src_domain];
        return;
    }
    // Parallel cross-domain: must be issued from src's worker thread
    // during its dispatch window, and must respect the lookahead the
    // safe-window proof depends on (tiny epsilon absorbs float
    // rounding in callers that compute `now + lookahead` themselves).
    Engine &src = engine(src_domain);
    PGCN_ASSERT(when + 1e-9 >= src.now() + lookaheadNs_,
                "cross-domain post at t=" << when
                    << " violates lookahead " << lookaheadNs_
                    << " (src clock t=" << src.now() << ")");
    const unsigned d = domains();
    boxes_[static_cast<size_t>(src_domain) * d + dst_domain].push(
        Msg{when, src_domain, postSeq_[src_domain]++,
            src.ctx_->curDepth + 1, 0, std::move(fn)});
    ++crossPosts_[src_domain];
}

void
DomainSet::postKeyed(unsigned src_domain, unsigned dst_domain,
                     SimTime when, uint64_t keyed_seq,
                     std::function<void()> fn)
{
    PGCN_ASSERT(keyed_seq >= kSeqBandRequest,
                "keyed post without a band bit (seq=" << keyed_seq << ")");
    if (mode_ == Mode::Sequenced || src_domain == dst_domain) {
        Engine &e = engine(dst_domain);
        e.injectKeyed(when, e.internCallback(std::move(fn)), keyed_seq,
                      e.ctx_->curDepth + 1);
        if (src_domain != dst_domain)
            ++crossPosts_[src_domain];
        return;
    }
    Engine &src = engine(src_domain);
    PGCN_ASSERT(when + 1e-9 >= src.now() + lookaheadNs_,
                "keyed cross-domain post at t="
                    << when << " violates lookahead " << lookaheadNs_
                    << " (src clock t=" << src.now() << ")");
    const unsigned d = domains();
    boxes_[static_cast<size_t>(src_domain) * d + dst_domain].push(
        Msg{when, src_domain, postSeq_[src_domain]++,
            src.ctx_->curDepth + 1, keyed_seq, std::move(fn)});
    ++crossPosts_[src_domain];
}

void
DomainSet::drainInbox(unsigned dst, std::vector<Msg> &scratch)
{
    scratch.clear();
    const unsigned d = domains();
    for (unsigned src = 0; src < d; ++src)
        boxes_[static_cast<size_t>(src) * d + dst].drainTo(scratch);
    if (scratch.empty())
        return;
    // The deterministic merge rule: timestamp, then source domain,
    // then source sequence. Nothing about arrival order (which is
    // scheduling-dependent) survives into the injection order.
    std::sort(scratch.begin(), scratch.end(),
              [](const Msg &a, const Msg &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.srcDomain != b.srcDomain)
                      return a.srcDomain < b.srcDomain;
                  return a.srcSeq < b.srcSeq;
              });
    Engine &e = engine(dst);
    for (Msg &m : scratch) {
        // A keyed message carries its own (band, entity, stamp) sort
        // key; an unkeyed one takes a fresh engine sequence number, so
        // its injection order here (the sort above) is its dispatch
        // tiebreak.
        if (m.keyedSeq != 0) {
            e.injectKeyed(m.when, e.internCallback(std::move(m.fn)),
                          m.keyedSeq, m.depth);
        } else {
            e.injectAbsolute(m.when, e.internCallback(std::move(m.fn)),
                             m.depth);
        }
    }
}

void
DomainSet::raiseIfBlockedAnywhere(SimTime at) const
{
    size_t blocked = 0;
    for (const auto &e : engines_)
        blocked += e->blockedWaiters();
    if (blocked == 0)
        return;
    std::vector<BlockedAgent> agents;
    for (const auto &e : engines_)
        e->appendBlockedAgents(agents);
    throw SimDeadlockError(at, std::move(agents));
}

SimTime
DomainSet::runSequenced()
{
    if (engines_.size() == 1)
        return engines_[0]->run();
    for (;;) {
        // Dispatch the global minimum (when, seq). The scan is O(D)
        // per event with D <= a handful of shards; each peek is O(1)
        // amortized (the per-engine minimum is cached).
        Engine *best = nullptr;
        Engine::Key best_key{};
        for (const auto &e : engines_) {
            if (!e->hasPending())
                continue;
            const Engine::Key k = e->peekMinKey();
            if (best == nullptr || Engine::before(k, best_key)) {
                best = e.get();
                best_key = k;
            }
        }
        if (best == nullptr)
            break;
        best->dispatchEvent(best->popMinLocal());
    }
    raiseIfBlockedAnywhere(shared_.now);
    return shared_.now;
}

SimTime
DomainSet::runParallel()
{
    const unsigned d = domains();
    if (d == 1)
        return engines_[0]->run();

    std::vector<SimTime> next(d, kInf);
    std::vector<std::exception_ptr> errors(d);
    Barrier barrier_a(d);
    Barrier barrier_b(d);
    // Written only inside barrier_b's completion (under its lock),
    // read by workers after leaving the barrier — the lock hand-off
    // orders every access, so plain fields suffice.
    bool done = false;
    SimTime horizon = 0.0;

    auto worker = [&](unsigned dom) {
        Engine &e = *engines_[dom];
        std::vector<Msg> scratch;
        bool failed = false;
        for (;;) {
            // Barrier A: every domain finished the previous window,
            // so every mailbox this domain will drain is complete.
            barrier_a.arriveAndWait();
            if (!failed) {
                try {
                    drainInbox(dom, scratch);
                } catch (...) {
                    errors[dom] = std::current_exception();
                    failed = true;
                }
            }
            if (failed) {
                // Keep participating so the others can finish, but
                // discard anything still addressed here.
                drainDiscard(dom, scratch);
            }
            next[dom] = (!failed && e.hasPending())
                            ? e.peekMinKey().when
                            : kInf;
            // Barrier B: all next-event times published; the last
            // arriver computes the safe horizon (or declares the set
            // drained — the idle-advance/null-message equivalent: an
            // idle domain publishes +inf and never blocks progress).
            barrier_b.arriveAndWait([&] {
                SimTime m = kInf;
                for (unsigned i = 0; i < d; ++i)
                    m = std::min(m, next[i]);
                if (m == kInf)
                    done = true;
                else
                    horizon = m + lookaheadNs_;
            });
            if (done)
                return;
            if (failed)
                continue;
            try {
                // Dispatch everything strictly before the horizon.
                // Any cross-domain post made in here lands at
                // >= m + lookahead = horizon, i.e. outside every
                // domain's current window — that is the conservative
                // guarantee that makes the dispatch safe.
                e.runUntil(horizon);
            } catch (...) {
                errors[dom] = std::current_exception();
                failed = true;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(d - 1);
    for (unsigned i = 1; i < d; ++i)
        threads.emplace_back(worker, i);
    worker(0);
    for (std::thread &t : threads)
        t.join();

    for (std::exception_ptr &err : errors)
        if (err)
            std::rethrow_exception(err);

    SimTime end = 0.0;
    for (const auto &e : engines_)
        end = std::max(end, e->now());
    raiseIfBlockedAnywhere(end);
    return end;
}

void
DomainSet::drainDiscard(unsigned dst, std::vector<Msg> &scratch)
{
    scratch.clear();
    const unsigned d = domains();
    for (unsigned src = 0; src < d; ++src)
        boxes_[static_cast<size_t>(src) * d + dst].drainTo(scratch);
    scratch.clear();
}

SimTime
DomainSet::run()
{
    return mode_ == Mode::Sequenced ? runSequenced() : runParallel();
}

void
DomainSet::setRunLimits(const Engine::RunLimits &limits)
{
    if (mode_ == Mode::Sequenced) {
        engines_[0]->setRunLimits(limits); // one shared block
    } else {
        for (const auto &e : engines_)
            e->setRunLimits(limits);
    }
}

void
DomainSet::attachObserver(Engine::Observer *observer, SimTime first_sample)
{
    engines_[0]->attachObserver(observer, first_sample);
}

SimTime
DomainSet::now() const
{
    if (mode_ == Mode::Sequenced)
        return shared_.now;
    SimTime t = 0.0;
    for (const auto &e : engines_)
        t = std::max(t, e->now());
    return t;
}

uint64_t
DomainSet::eventsProcessed() const
{
    if (mode_ == Mode::Sequenced)
        return shared_.eventsProcessed;
    uint64_t total = 0;
    for (const auto &e : engines_)
        total += e->eventsProcessed();
    return total;
}

uint64_t
DomainSet::criticalPathEvents() const
{
    if (mode_ == Mode::Sequenced)
        return shared_.maxDepth;
    uint64_t depth = 0;
    for (const auto &e : engines_)
        depth = std::max(depth, e->criticalPathEvents());
    return depth;
}

size_t
DomainSet::peakQueueDepth() const
{
    if (mode_ == Mode::Sequenced)
        return shared_.peakQueueDepth;
    size_t peak = 0;
    for (const auto &e : engines_)
        peak = std::max(peak, e->peakQueueDepth());
    return peak;
}

uint64_t
DomainSet::crossDomainPosts() const
{
    uint64_t total = 0;
    for (const uint64_t c : crossPosts_)
        total += c;
    return total;
}

} // namespace pgcn::sim
