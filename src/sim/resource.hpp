/**
 * @file
 * Shared-resource primitives for the discrete-event simulator.
 *
 * BandwidthResource models a pipelined link or memory controller with
 * a fixed service rate using next-free-time semantics: each request
 * reserves a contiguous service interval; a request arriving while
 * the resource is busy queues behind the in-flight transfers. This is
 * the standard analytic treatment of a bandwidth-limited DRAM channel
 * and captures queueing delay under contention without modelling
 * individual DRAM commands.
 */
#ifndef PGCN_SIM_RESOURCE_HPP
#define PGCN_SIM_RESOURCE_HPP

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hpp"
#include "sim/engine.hpp"
#include "sim/monitor.hpp"

namespace pgcn::sim {

/**
 * A service resource with a fixed rate (units per nanosecond).
 * Typical unit is bytes (memory controller, network link) but
 * instructions work too (MTP issue slots).
 */
class BandwidthResource
{
  public:
    /**
     * @param engine Owning simulation engine.
     * @param rate Service rate in units per ns; must be positive.
     * @param name Diagnostic name (snapshots, fault reports).
     */
    BandwidthResource(Engine &engine, double rate,
                      std::string name = "bandwidth")
        : engine_(engine), rate_(rate), stream_(engine.createStream()),
          name_(std::move(name))
    {
        PGCN_ASSERT(rate > 0.0, "resource rate must be positive");
    }

    /** Service rate in units/ns. */
    double rate() const { return rate_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /**
     * Reserve a service interval for @p amount units and return the
     * absolute time at which service completes. Does not suspend;
     * pair with Engine::delayUntil to wait for completion.
     *
     * @param amount Units to service (>= 0).
     * @param earliest_start Absolute time before which service cannot
     *        begin (e.g. a request still in flight on the network);
     *        defaults to "now".
     */
    SimTime
    reserve(double amount, SimTime earliest_start = 0.0)
    {
        return reserveFor(amount, amount / rate_, earliest_start);
    }

    /**
     * reserve() with the service duration already divided out. For
     * callers that issue many reservations of the same size (the
     * striped DGAS access path), this hoists the floating-point
     * division out of the per-slice loop; @p duration must equal
     * amount / rate().
     */
    SimTime
    reserveFor(double amount, SimTime duration,
               SimTime earliest_start = 0.0)
    {
        PGCN_ASSERT(amount >= 0.0, "negative reservation " << amount);
        const SimTime start =
            std::max({engine_.now(), earliest_start, nextFree_});
        nextFree_ = start + duration;
        busyTime_ += duration;
        totalUnits_ += amount;
        ++requests_;
#ifndef PGCN_NO_TELEMETRY
        // The (start, nextFree_) pair is exactly the busy span an
        // occupancy monitor wants; recording it cannot affect timing.
        if (monitor_ != nullptr) [[unlikely]]
            monitor_->addSpan(start, nextFree_);
#endif
        return nextFree_;
    }

    /**
     * Mirror every reservation's busy span onto @p timeline (pass
     * nullptr to detach). Follows the telemetry idiom: one predictable
     * branch when unattached, compiled out under PGCN_NO_TELEMETRY.
     */
    void
    attachMonitor(Timeline *timeline)
    {
#ifndef PGCN_NO_TELEMETRY
        monitor_ = timeline;
#else
        (void)timeline;
#endif
    }

    /**
     * Awaitable: reserve @p amount and suspend until service
     * completes (queueing + transfer, not including any downstream
     * latency the caller adds). Because completions leave the
     * resource in reservation order, the wait parks on this
     * resource's completion stream — O(1) however many threads are
     * queued behind it.
     */
    auto
    transfer(double amount)
    {
        return engine_.streamDelayUntil(stream_, reserve(amount));
    }

    /** Earliest time a new request would start service. */
    SimTime nextFree() const { return nextFree_; }

    /** Cumulative busy time (ns) across all reservations. */
    double busyTime() const { return busyTime_; }

    /** Cumulative units serviced. */
    double totalUnits() const { return totalUnits_; }

    /** Number of reservations made. */
    uint64_t requests() const { return requests_; }

    /**
     * Fraction of [0, end] this resource spent servicing requests.
     *
     * @param end Observation-window end (usually the makespan).
     */
    double
    utilization(SimTime end) const
    {
        return end > 0.0 ? busyTime_ / end : 0.0;
    }

  private:
    Engine &engine_;
    double rate_;
    Engine::StreamId stream_; ///< completion stream for transfer()
    std::string name_;
#ifndef PGCN_NO_TELEMETRY
    Timeline *monitor_ = nullptr; ///< busy-span sink (occupancy)
#endif
    SimTime nextFree_ = 0.0;
    double busyTime_ = 0.0;
    double totalUnits_ = 0.0;
    uint64_t requests_ = 0;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_RESOURCE_HPP
