/**
 * @file
 * Deterministic, seeded fault injection for the timing model.
 *
 * Real hardware never delivers the datasheet numbers cycle for cycle:
 * DRAM refresh steals rank time, network links retrain, DMA engines
 * hiccup on descriptor fetches. The simulator's conclusions (scaling
 * curves, bottleneck attribution) should be robust to such jitter —
 * and the simulator itself must not wedge or violate its conservation
 * invariants when timings move. FaultInjector perturbs selected model
 * latencies/service durations multiplicatively with a seeded
 * splitmix64 stream, so a perturbed run is bit-reproducible given the
 * same seed and completely absent (identical event stream to the
 * unperturbed engine) when no injector is attached.
 *
 * The hooks follow the telemetry pattern: a null injector pointer
 * costs one predictable branch on the access path and nothing else.
 */
#ifndef PGCN_SIM_FAULT_HPP
#define PGCN_SIM_FAULT_HPP

#include <atomic>
#include <cstdint>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace pgcn::sim {

class MonitorHub;

/**
 * Fault-injection parameters. Two families share one seeded stream:
 *
 *  - Jitters perturb a target value v multiplicatively into
 *    [v*(1-j), v*(1+j)]; 0 disables that class. Jitters must lie in
 *    [0, 1) so perturbed durations stay positive.
 *  - Drop rates are per-event Bernoulli probabilities for *hard*
 *    faults: a dropped memory transaction (response lost after DRAM
 *    service), a lost remote-network packet, a failed DMA descriptor,
 *    and a stuck hardware context at thread start. Rates lie in
 *    [0, 1]; 1 is legal (every event fails — useful for forcing the
 *    unrecoverable path in tests).
 *
 * Recovery policy knobs describe the modeled protocol the PIUMA
 * programs run when a hard fault fires: a timeout armed on issue,
 * exponential backoff between re-issues, and a bounded retry budget
 * after which the fault is unrecoverable (typed SimFaultError).
 */
struct FaultConfig
{
    /// Seed of the deterministic perturbation stream.
    uint64_t seed = 1;
    /// Jitter on the DRAM access latency (refresh interference).
    double dramLatencyJitter = 0.0;
    /// Jitter on slice/port service durations (effective-bandwidth
    /// wobble under refresh and scheduling noise).
    double serviceRateJitter = 0.0;
    /// Jitter on the remote-network one-way latency (link retrain,
    /// adaptive routing detours).
    double networkLatencyJitter = 0.0;
    /// Jitter on the DMA descriptor dispatch overhead.
    double dmaOverheadJitter = 0.0;

    /// Per-transaction probability that a DRAM slice drops the
    /// response after service (refresh collision, ECC retry storm).
    double dramDropRate = 0.0;
    /// Additional per-transaction drop probability for *remote*
    /// accesses (HyperX packet lost in a link retrain window).
    double netDropRate = 0.0;
    /// Per-descriptor probability that a DMA engine faults on fetch
    /// or execution and must re-issue the descriptor.
    double dmaDropRate = 0.0;
    /// Per-thread probability that a hardware context is stuck at
    /// start and needs a watchdog reset before issuing work.
    double stuckCoreRate = 0.0;

    /// Timeout armed when a request is issued; a dropped response is
    /// detected this long after issue.
    double timeoutNs = 500.0;
    /// Base backoff before the first re-issue; doubles per retry.
    double backoffNs = 100.0;
    /// Re-issue budget per request/descriptor. Attempt maxRetries+1
    /// failing makes the fault unrecoverable (SimFaultError).
    unsigned maxRetries = 8;
    /// Watchdog reset time for a stuck hardware context.
    double stuckResetNs = 10000.0;

    /** True when at least one fault class is enabled. */
    bool
    any() const
    {
        return dramLatencyJitter > 0.0 || serviceRateJitter > 0.0 ||
               networkLatencyJitter > 0.0 || dmaOverheadJitter > 0.0 ||
               anyDrops();
    }

    /** True when at least one *hard* fault class is enabled. */
    bool
    anyDrops() const
    {
        return dramDropRate > 0.0 || netDropRate > 0.0 ||
               dmaDropRate > 0.0 || stuckCoreRate > 0.0;
    }

    /** Throws ConfigError on out-of-range parameters. */
    void
    validate() const
    {
        checkJitter(dramLatencyJitter, "fault.dramLatencyJitter");
        checkJitter(serviceRateJitter, "fault.serviceRateJitter");
        checkJitter(networkLatencyJitter, "fault.networkLatencyJitter");
        checkJitter(dmaOverheadJitter, "fault.dmaOverheadJitter");
        check::probability(dramDropRate, "fault.dramDropRate");
        check::probability(netDropRate, "fault.netDropRate");
        check::probability(dmaDropRate, "fault.dmaDropRate");
        check::probability(stuckCoreRate, "fault.stuckCoreRate");
        check::positive(timeoutNs, "fault.timeoutNs");
        check::nonNegative(backoffNs, "fault.backoffNs");
        check::positive(stuckResetNs, "fault.stuckResetNs");
    }

  private:
    static void
    checkJitter(double j, const char *name)
    {
        check::nonNegative(j, name);
        if (j >= 1.0) {
            PGCN_THROW(ConfigError,
                       name << " must be < 1 (got " << j
                            << "): a full-amplitude jitter could drive "
                               "a duration to zero or negative");
        }
    }
};

class FaultStream;

/**
 * The seeded perturbation stream. One injector is shared by the
 * single-threaded hooks of one simulation run (pre-run stuck-core
 * draws, the dense/walk models); the sharded memory/DMA paths fork
 * per-entity FaultStream children instead (see fork()), so that each
 * event domain consumes only its own streams and the draw order is
 * independent of the domain count and execution mode.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg)
        : cfg_(cfg), state_(cfg.seed)
    {
        cfg_.validate();
        // Warm the state so seed 0 / small seeds decorrelate.
        next();
    }

    /** The active configuration. */
    const FaultConfig &config() const { return cfg_; }

    /** Perturbation draws consumed so far, across every forked
     * per-entity stream (relaxed tally; the total is deterministic,
     * only the interleaving of increments is not). */
    uint64_t
    draws() const
    {
        return draws_ + childDraws_.load(std::memory_order_relaxed);
    }

    /** Perturbed DRAM access latency. */
    double
    dramLatency(double ns)
    {
        return jitter(ns, cfg_.dramLatencyJitter);
    }

    /** Perturbed bandwidth service duration (slice or port). */
    double
    serviceDuration(double ns)
    {
        return jitter(ns, cfg_.serviceRateJitter);
    }

    /** Perturbed remote-network one-way latency. */
    double
    networkLatency(double ns)
    {
        return jitter(ns, cfg_.networkLatencyJitter);
    }

    /** Perturbed DMA descriptor dispatch overhead. */
    double
    dmaOverhead(double ns)
    {
        return jitter(ns, cfg_.dmaOverheadJitter);
    }

    /**
     * Did a memory transaction lose its response? Remote accesses are
     * additionally exposed to the network drop class. A disabled class
     * (rate 0) consumes no draws, preserving the stream — and thus the
     * timings of every other class — exactly.
     */
    bool
    dropTransaction(bool remote)
    {
        bool dropped = bernoulli(cfg_.dramDropRate);
        if (remote)
            dropped = bernoulli(cfg_.netDropRate) || dropped;
        return dropped;
    }

    /** Did a DMA descriptor fault on fetch/execution? */
    bool dropDescriptor() { return bernoulli(cfg_.dmaDropRate); }

    /** Is this hardware context stuck at start (watchdog reset)? */
    bool stuckCore() { return bernoulli(cfg_.stuckCoreRate); }

    /**
     * Derive an independent per-entity draw stream. The child's state
     * depends only on (seed, salt), never on how many draws the parent
     * or any sibling has consumed — the property that makes sharded
     * fault draws invariant across domain counts and execution modes.
     * Salts must be unique per (entity, draw-site class); see
     * piuma/memory.cpp for the salt layout the model uses.
     */
    FaultStream fork(uint64_t salt) const;

    /**
     * Backoff before re-issue number @p attempt (0-based): exponential
     * doubling from the configured base, capped so a deep retry chain
     * cannot overflow the simulated clock.
     */
    double
    backoffDelay(unsigned attempt) const
    {
        const double scale =
            static_cast<double>(uint64_t{1} << (attempt < 32 ? attempt : 32));
        return cfg_.backoffNs * scale;
    }

  private:
    /** One Bernoulli draw; consumes stream state only when p > 0. */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        ++draws_;
        return nextUnit() < p;
    }

    /** v -> v * (1 + j * u), u uniform in [-1, 1). No-op when j == 0. */
    double
    jitter(double v, double j)
    {
        if (j <= 0.0)
            return v;
        ++draws_;
        const double u = 2.0 * nextUnit() - 1.0;
        return v * (1.0 + j * u);
    }

    /** splitmix64 step. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double nextUnit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    FaultConfig cfg_;
    uint64_t state_;
    uint64_t draws_ = 0;
    /// Draws consumed by forked FaultStreams (see fork()); mutable +
    /// atomic because fork() is const and streams draw from their
    /// owning domains' threads in Parallel mode.
    mutable std::atomic<uint64_t> childDraws_{0};
};

/**
 * A forked per-entity perturbation stream (see FaultInjector::fork).
 * Holds a reference to the parent's configuration plus its own
 * splitmix64 state; draw semantics match the parent exactly. One
 * stream is owned and consumed by exactly one event domain, so the
 * sharded model never races on draw state and every stream's sequence
 * depends only on that entity's own deterministic dispatch order.
 */
class FaultStream
{
  public:
    FaultStream(const FaultConfig &cfg, uint64_t state,
                std::atomic<uint64_t> *draw_tally = nullptr)
        : cfg_(&cfg), state_(state), drawTally_(draw_tally)
    {
        next(); // decorrelate small/nearby fork salts
    }

    const FaultConfig &config() const { return *cfg_; }

    /** Perturbed DRAM access latency. */
    double dramLatency(double ns) { return jitter(ns, cfg_->dramLatencyJitter); }

    /** Perturbed bandwidth service duration (slice or port). */
    double
    serviceDuration(double ns)
    {
        return jitter(ns, cfg_->serviceRateJitter);
    }

    /** Perturbed remote-network one-way latency. */
    double
    networkLatency(double ns)
    {
        return jitter(ns, cfg_->networkLatencyJitter);
    }

    /** Perturbed DMA descriptor dispatch overhead. */
    double dmaOverhead(double ns) { return jitter(ns, cfg_->dmaOverheadJitter); }

    /** Did a memory transaction lose its response? (See parent.) */
    bool
    dropTransaction(bool remote)
    {
        bool dropped = bernoulli(cfg_->dramDropRate);
        if (remote)
            dropped = bernoulli(cfg_->netDropRate) || dropped;
        return dropped;
    }

    /** Did a DMA descriptor fault on fetch/execution? */
    bool dropDescriptor() { return bernoulli(cfg_->dmaDropRate); }

    /** Backoff before re-issue @p attempt; same policy as the parent. */
    double
    backoffDelay(unsigned attempt) const
    {
        const double scale =
            static_cast<double>(uint64_t{1} << (attempt < 32 ? attempt : 32));
        return cfg_->backoffNs * scale;
    }

  private:
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        tally();
        return nextUnit() < p;
    }

    double
    jitter(double v, double j)
    {
        if (j <= 0.0)
            return v;
        tally();
        const double u = 2.0 * nextUnit() - 1.0;
        return v * (1.0 + j * u);
    }

    void
    tally()
    {
        if (drawTally_ != nullptr)
            drawTally_->fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    double nextUnit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    const FaultConfig *cfg_;
    uint64_t state_;
    std::atomic<uint64_t> *drawTally_;
};

inline FaultStream
FaultInjector::fork(uint64_t salt) const
{
    // Mix seed and salt through one splitmix step so children of
    // adjacent salts (entity ids) start decorrelated. Independent of
    // state_: forking never consumes parent draws.
    uint64_t z = cfg_.seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return FaultStream(cfg_, z ^ (z >> 31), &childDraws_);
}

/**
 * How a sharded model run executes its event domains. Mirrors
 * DomainSet::Mode plus an Auto policy; defined here (not in
 * domain.hpp) so SimControls stays includable without the DomainSet
 * machinery.
 */
enum class DomainMode
{
    /// Deterministic single-threaded K-way merge (the bit-identity
    /// oracle; output identical to a serial engine).
    Sequenced,
    /// One thread per domain under conservative-lookahead windows.
    /// Requires the model's lookahead bound to be positive; results
    /// are bit-identical to Sequenced by the keyed-seq construction.
    Parallel,
    /// Pick per run: Parallel when the lookahead bound is positive,
    /// more than one domain is in play, and no sequenced-only
    /// attachment (telemetry session / monitor hub) is present;
    /// Sequenced otherwise.
    Auto,
};

/**
 * Optional per-run controls bundled so simulation entry points keep
 * one trailing parameter: fault injection, watchdog budgets, and
 * occupancy monitoring.
 */
struct SimControls
{
    /// Perturbation stream; null disables fault injection entirely.
    FaultInjector *faults = nullptr;
    /// Watchdog budgets applied to the run; zeros mean unlimited.
    Engine::RunLimits limits{};
    /// Occupancy/stall monitor; null disables span tracking. The run
    /// calls MonitorHub::beginRun and wires every resource itself.
    MonitorHub *monitor = nullptr;
    /// Event domains to shard the simulated machine into (>= 1).
    /// 0 means "auto": derive the count from the simulated core count
    /// and the host's hardware concurrency (see DESIGN.md §15).
    /// Output is bit-identical for any value (see sim/domain.hpp).
    unsigned domains = 1;
    /// Execution mode for the domain set (see DomainMode).
    DomainMode domainMode = DomainMode::Sequenced;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_FAULT_HPP
