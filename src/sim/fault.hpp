/**
 * @file
 * Deterministic, seeded fault injection for the timing model.
 *
 * Real hardware never delivers the datasheet numbers cycle for cycle:
 * DRAM refresh steals rank time, network links retrain, DMA engines
 * hiccup on descriptor fetches. The simulator's conclusions (scaling
 * curves, bottleneck attribution) should be robust to such jitter —
 * and the simulator itself must not wedge or violate its conservation
 * invariants when timings move. FaultInjector perturbs selected model
 * latencies/service durations multiplicatively with a seeded
 * splitmix64 stream, so a perturbed run is bit-reproducible given the
 * same seed and completely absent (identical event stream to the
 * unperturbed engine) when no injector is attached.
 *
 * The hooks follow the telemetry pattern: a null injector pointer
 * costs one predictable branch on the access path and nothing else.
 */
#ifndef PGCN_SIM_FAULT_HPP
#define PGCN_SIM_FAULT_HPP

#include <cstdint>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace pgcn::sim {

class MonitorHub;

/**
 * Fault-injection parameters. Two families share one seeded stream:
 *
 *  - Jitters perturb a target value v multiplicatively into
 *    [v*(1-j), v*(1+j)]; 0 disables that class. Jitters must lie in
 *    [0, 1) so perturbed durations stay positive.
 *  - Drop rates are per-event Bernoulli probabilities for *hard*
 *    faults: a dropped memory transaction (response lost after DRAM
 *    service), a lost remote-network packet, a failed DMA descriptor,
 *    and a stuck hardware context at thread start. Rates lie in
 *    [0, 1]; 1 is legal (every event fails — useful for forcing the
 *    unrecoverable path in tests).
 *
 * Recovery policy knobs describe the modeled protocol the PIUMA
 * programs run when a hard fault fires: a timeout armed on issue,
 * exponential backoff between re-issues, and a bounded retry budget
 * after which the fault is unrecoverable (typed SimFaultError).
 */
struct FaultConfig
{
    /// Seed of the deterministic perturbation stream.
    uint64_t seed = 1;
    /// Jitter on the DRAM access latency (refresh interference).
    double dramLatencyJitter = 0.0;
    /// Jitter on slice/port service durations (effective-bandwidth
    /// wobble under refresh and scheduling noise).
    double serviceRateJitter = 0.0;
    /// Jitter on the remote-network one-way latency (link retrain,
    /// adaptive routing detours).
    double networkLatencyJitter = 0.0;
    /// Jitter on the DMA descriptor dispatch overhead.
    double dmaOverheadJitter = 0.0;

    /// Per-transaction probability that a DRAM slice drops the
    /// response after service (refresh collision, ECC retry storm).
    double dramDropRate = 0.0;
    /// Additional per-transaction drop probability for *remote*
    /// accesses (HyperX packet lost in a link retrain window).
    double netDropRate = 0.0;
    /// Per-descriptor probability that a DMA engine faults on fetch
    /// or execution and must re-issue the descriptor.
    double dmaDropRate = 0.0;
    /// Per-thread probability that a hardware context is stuck at
    /// start and needs a watchdog reset before issuing work.
    double stuckCoreRate = 0.0;

    /// Timeout armed when a request is issued; a dropped response is
    /// detected this long after issue.
    double timeoutNs = 500.0;
    /// Base backoff before the first re-issue; doubles per retry.
    double backoffNs = 100.0;
    /// Re-issue budget per request/descriptor. Attempt maxRetries+1
    /// failing makes the fault unrecoverable (SimFaultError).
    unsigned maxRetries = 8;
    /// Watchdog reset time for a stuck hardware context.
    double stuckResetNs = 10000.0;

    /** True when at least one fault class is enabled. */
    bool
    any() const
    {
        return dramLatencyJitter > 0.0 || serviceRateJitter > 0.0 ||
               networkLatencyJitter > 0.0 || dmaOverheadJitter > 0.0 ||
               anyDrops();
    }

    /** True when at least one *hard* fault class is enabled. */
    bool
    anyDrops() const
    {
        return dramDropRate > 0.0 || netDropRate > 0.0 ||
               dmaDropRate > 0.0 || stuckCoreRate > 0.0;
    }

    /** Throws ConfigError on out-of-range parameters. */
    void
    validate() const
    {
        checkJitter(dramLatencyJitter, "fault.dramLatencyJitter");
        checkJitter(serviceRateJitter, "fault.serviceRateJitter");
        checkJitter(networkLatencyJitter, "fault.networkLatencyJitter");
        checkJitter(dmaOverheadJitter, "fault.dmaOverheadJitter");
        check::probability(dramDropRate, "fault.dramDropRate");
        check::probability(netDropRate, "fault.netDropRate");
        check::probability(dmaDropRate, "fault.dmaDropRate");
        check::probability(stuckCoreRate, "fault.stuckCoreRate");
        check::positive(timeoutNs, "fault.timeoutNs");
        check::nonNegative(backoffNs, "fault.backoffNs");
        check::positive(stuckResetNs, "fault.stuckResetNs");
    }

  private:
    static void
    checkJitter(double j, const char *name)
    {
        check::nonNegative(j, name);
        if (j >= 1.0) {
            PGCN_THROW(ConfigError,
                       name << " must be < 1 (got " << j
                            << "): a full-amplitude jitter could drive "
                               "a duration to zero or negative");
        }
    }
};

/**
 * The seeded perturbation stream. One injector is shared by all hooks
 * of one simulation run; draws are consumed in deterministic model
 * order (the engine is single-threaded), so a given (seed, workload)
 * pair always produces the same perturbed timings.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg)
        : cfg_(cfg), state_(cfg.seed)
    {
        cfg_.validate();
        // Warm the state so seed 0 / small seeds decorrelate.
        next();
    }

    /** The active configuration. */
    const FaultConfig &config() const { return cfg_; }

    /** Perturbation draws consumed so far. */
    uint64_t draws() const { return draws_; }

    /** Perturbed DRAM access latency. */
    double
    dramLatency(double ns)
    {
        return jitter(ns, cfg_.dramLatencyJitter);
    }

    /** Perturbed bandwidth service duration (slice or port). */
    double
    serviceDuration(double ns)
    {
        return jitter(ns, cfg_.serviceRateJitter);
    }

    /** Perturbed remote-network one-way latency. */
    double
    networkLatency(double ns)
    {
        return jitter(ns, cfg_.networkLatencyJitter);
    }

    /** Perturbed DMA descriptor dispatch overhead. */
    double
    dmaOverhead(double ns)
    {
        return jitter(ns, cfg_.dmaOverheadJitter);
    }

    /**
     * Did a memory transaction lose its response? Remote accesses are
     * additionally exposed to the network drop class. A disabled class
     * (rate 0) consumes no draws, preserving the stream — and thus the
     * timings of every other class — exactly.
     */
    bool
    dropTransaction(bool remote)
    {
        bool dropped = bernoulli(cfg_.dramDropRate);
        if (remote)
            dropped = bernoulli(cfg_.netDropRate) || dropped;
        return dropped;
    }

    /** Did a DMA descriptor fault on fetch/execution? */
    bool dropDescriptor() { return bernoulli(cfg_.dmaDropRate); }

    /** Is this hardware context stuck at start (watchdog reset)? */
    bool stuckCore() { return bernoulli(cfg_.stuckCoreRate); }

    /**
     * Backoff before re-issue number @p attempt (0-based): exponential
     * doubling from the configured base, capped so a deep retry chain
     * cannot overflow the simulated clock.
     */
    double
    backoffDelay(unsigned attempt) const
    {
        const double scale =
            static_cast<double>(uint64_t{1} << (attempt < 32 ? attempt : 32));
        return cfg_.backoffNs * scale;
    }

  private:
    /** One Bernoulli draw; consumes stream state only when p > 0. */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        ++draws_;
        return nextUnit() < p;
    }

    /** v -> v * (1 + j * u), u uniform in [-1, 1). No-op when j == 0. */
    double
    jitter(double v, double j)
    {
        if (j <= 0.0)
            return v;
        ++draws_;
        const double u = 2.0 * nextUnit() - 1.0;
        return v * (1.0 + j * u);
    }

    /** splitmix64 step. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double nextUnit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    FaultConfig cfg_;
    uint64_t state_;
    uint64_t draws_ = 0;
};

/**
 * Optional per-run controls bundled so simulation entry points keep
 * one trailing parameter: fault injection, watchdog budgets, and
 * occupancy monitoring.
 */
struct SimControls
{
    /// Perturbation stream; null disables fault injection entirely.
    FaultInjector *faults = nullptr;
    /// Watchdog budgets applied to the run; zeros mean unlimited.
    Engine::RunLimits limits{};
    /// Occupancy/stall monitor; null disables span tracking. The run
    /// calls MonitorHub::beginRun and wires every resource itself.
    MonitorHub *monitor = nullptr;
    /// Event domains to shard the simulated machine into (>= 1).
    /// Output is bit-identical for any value (see sim/domain.hpp).
    unsigned domains = 1;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_FAULT_HPP
