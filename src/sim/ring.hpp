/**
 * @file
 * A growable FIFO ring buffer over contiguous storage.
 *
 * Replaces std::deque on simulator hot paths (DMA descriptor queues,
 * blocked-coroutine wait lists): pushes and pops are index bumps with
 * a power-of-two mask, elements stay in one allocation that is reused
 * for the whole simulation, and growth (amortised, counted by the
 * owner if it cares) only happens until the high-water mark is
 * reached.
 */
#ifndef PGCN_SIM_RING_HPP
#define PGCN_SIM_RING_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace pgcn::sim {

/**
 * Growable single-threaded FIFO.
 *
 * @tparam T Element type; must be default-constructible and movable.
 */
template <typename T>
class Ring
{
  public:
    /** Elements currently buffered. */
    size_t size() const { return tail_ - head_; }

    /** True when no elements are buffered. */
    bool empty() const { return head_ == tail_; }

    /** Oldest element; undefined when empty. */
    T &front() { return slots_[head_ & mask_]; }

    /** Newest element; undefined when empty. */
    T &back() { return slots_[(tail_ - 1) & mask_]; }

    /** The @p i-th oldest element (0 == front); @p i must be < size(). */
    const T &
    at(size_t i) const
    {
        PGCN_ASSERT(i < size(), "ring index " << i << " out of range");
        return slots_[(head_ + i) & mask_];
    }

    /** Append @p value at the back. */
    void
    push_back(T value)
    {
        if (size() == slots_.size())
            grow();
        slots_[tail_++ & mask_] = std::move(value);
    }

    /** Remove and return the oldest element. */
    T
    pop_front()
    {
        PGCN_ASSERT(!empty(), "pop from an empty ring");
        return std::move(slots_[head_++ & mask_]);
    }

  private:
    void
    grow()
    {
        const size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
        std::vector<T> bigger(capacity);
        const size_t n = size();
        for (size_t i = 0; i < n; ++i)
            bigger[i] = std::move(slots_[(head_ + i) & mask_]);
        slots_ = std::move(bigger);
        mask_ = capacity - 1;
        head_ = 0;
        tail_ = n;
    }

    std::vector<T> slots_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t tail_ = 0;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_RING_HPP
