/**
 * @file
 * Discrete-event simulation core.
 *
 * The PIUMA timing model is built on this engine: simulated hardware
 * agents (MTP threads, DMA engines) are C++20 coroutines that
 * co_await simulated time (Engine::delay) and shared resources
 * (BandwidthResource, BoundedQueue). The engine is single-threaded
 * and fully deterministic: events at equal timestamps fire in
 * schedule order.
 *
 * The hot path is allocation-free. An event is a 24-byte POD: a
 * (when, seq) sort key plus a one-word payload that is either a
 * coroutine frame address or (tagged in the low bit) an index into a
 * reusable slab of the rare type-erased callbacks (tests, ad-hoc
 * hooks). Two arenas back the event queue:
 *
 *  - the "now queue": a FIFO of zero-delay events. Resumptions
 *    scheduled at the current timestamp (BoundedQueue hand-offs,
 *    DMA wakeups) are O(1) pushes that never touch the time-ordered
 *    heap;
 *  - the "far wheel": calendar buckets for events strictly in the
 *    future. Nodes live in a reusable slab and chain off an array of
 *    bucket heads indexed by floor(when / width); dispatch scans the
 *    current bucket (a handful of nodes) instead of sifting a
 *    thousands-deep comparison tree, making the per-event cost
 *    independent of how many events are pending. The bucket width
 *    self-tunes to a few mean dispatch gaps. Because floor(when /
 *    width) is monotone in `when` even under floating-point rounding,
 *    bucket order can never contradict (when, seq) order — the scan
 *    always finds the exact global minimum;
 *  - "completion streams": FIFO rings of waits whose timestamps are
 *    non-decreasing (everything queued behind one bandwidth-limited
 *    resource completes in reservation order). Only the head of each
 *    stream sits in the far heap, so the heap stays shallow and the
 *    events behind the head cost O(1). A wait that would break a
 *    stream's monotonicity (possible only through floating-point
 *    rounding of delayUntil arithmetic) silently falls back to a
 *    plain heap event, so ordering never depends on the assumption.
 *
 * Determinism contract: every event is stamped with a global sequence
 * number at schedule time, and run() always dispatches the minimum
 * (when, seq) across all arenas, so the observable order is exactly
 * the seed engine's single-priority-queue order.
 *
 * Critical-path tracking: every event also carries the length of the
 * dependency chain that produced it — an event scheduled while
 * dispatching an event of depth d gets depth d+1 (events scheduled
 * outside run(), i.e. from setup code, start a chain at depth 1).
 * The maximum depth ever dispatched is the event-graph critical path:
 * no execution order, sequential or parallel, can finish in fewer
 * dependent steps. Resource-queueing delays (BandwidthResource
 * reservations) are deliberately *not* edges in this graph — they are
 * contention, not dataflow — so comparing total events to the
 * critical path separates "the algorithm ran out of parallelism"
 * from "a resource saturated". The cost is one integer store per
 * dispatch and one per schedule, cheap enough to stay always-on
 * (same budget class as the PR 6 remote-access counters).
 */
#ifndef PGCN_SIM_ENGINE_HPP
#define PGCN_SIM_ENGINE_HPP

#include <algorithm>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "sim/diagnostics.hpp"
#include "sim/ring.hpp"

namespace pgcn::sim {

/** Simulated time in nanoseconds. */
using SimTime = double;

/**
 * A detached simulation process. Any function returning Process and
 * containing co_await runs as an independent simulated agent; it
 * starts executing immediately on call and parks itself in the event
 * queue whenever it awaits. Lifetime is self-managed (the coroutine
 * frame is destroyed when the body returns).
 */
struct Process
{
    struct promise_type
    {
        Process get_return_object() noexcept { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };
};

/**
 * The event-driven simulation engine: a time-ordered queue of
 * coroutine resumptions (and rare callbacks) with a deterministic
 * FIFO tie-break at equal timestamps.
 */
class Engine
{
  public:
    /**
     * A passive telemetry observer: run() calls onSample() the first
     * time dispatch reaches each requested simulated timestamp.
     * Observers must only *read* simulation state — scheduling events
     * or mutating agents from a hook would break the determinism
     * contract. Compiled out entirely under PGCN_NO_TELEMETRY; when
     * compiled in but not attached, the cost is one predictable
     * branch per dispatched event.
     */
    struct Observer
    {
        virtual ~Observer() = default;

        /**
         * Called with the engine's current time once dispatch first
         * reaches the requested sample point. Returns the next
         * simulated time at which to be called (must be > @p now).
         */
        virtual SimTime onSample(SimTime now, Engine &engine) = 0;
    };

    /**
     * A blocking primitive (e.g. BoundedQueue) that can hold suspended
     * coroutines *outside* the event queue. Registered instances are
     * consulted when the event queue drains: any remaining blocked
     * waiter means the simulation deadlocked rather than finished, and
     * run() reports every waiter instead of returning silently.
     */
    struct Waitable
    {
        virtual ~Waitable() = default;

        /** Number of coroutines currently suspended on this primitive. */
        virtual size_t blockedCount() const = 0;

        /** Append one BlockedAgent record per suspended coroutine. */
        virtual void appendBlocked(std::vector<BlockedAgent> &out) const = 0;
    };

    /** Per-run watchdog budgets; 0 means unlimited. */
    struct RunLimits
    {
        /// Abort once simulated time exceeds this many nanoseconds.
        SimTime maxSimTimeNs = 0.0;
        /// Abort once the host has spent this long inside run().
        double maxWallSeconds = 0.0;
        /// Abort after dispatching this many events.
        uint64_t maxEvents = 0;
    };

    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Destroy any coroutine frames still parked in the event arenas.
     * After a clean run() this is a no-op; after a SimDeadlockError or
     * SimLimitError it releases the frames of every agent that never
     * finished (frames suspended on a Waitable are destroyed by that
     * Waitable — the two sets are disjoint because a coroutine is
     * suspended at exactly one point).
     */
    ~Engine()
    {
        for (size_t i = nowHead_; i < nowQ_.size(); ++i)
            destroyFramePayload(nowQ_[i].payload);
        for (const int32_t head : slotHeads_)
            for (int32_t n = head; n >= 0; n = farArena_[n].next)
                destroyFramePayload(farArena_[n].payload);
        for (Stream &st : streams_)
            while (!st.fifo.empty())
                std::coroutine_handle<>::from_address(
                    st.fifo.pop_front().frame)
                    .destroy();
    }

    /** Track @p waitable for deadlock reporting. */
    void registerWaitable(Waitable *waitable)
    {
        waitables_.push_back(waitable);
    }

    /** Stop tracking @p waitable (no-op when not registered). */
    void
    unregisterWaitable(Waitable *waitable)
    {
        const auto it =
            std::find(waitables_.begin(), waitables_.end(), waitable);
        if (it != waitables_.end())
            waitables_.erase(it);
    }

    /**
     * Re-point a registration after the waitable moved (keeps
     * registration valid across e.g. vector reallocation of the
     * owning object).
     */
    void
    replaceWaitable(Waitable *old_waitable, Waitable *new_waitable)
    {
        std::replace(waitables_.begin(), waitables_.end(), old_waitable,
                     new_waitable);
    }

    /**
     * Awaitable that names the calling agent for diagnostics
     * (deadlock reports, snapshots). Never suspends and schedules no
     * event, so it cannot perturb event counts or dispatch order:
     * `co_await engine.announce("core0.dma");`
     */
    auto
    announce(std::string name)
    {
        struct Awaiter
        {
            Engine &engine;
            std::string name;

            bool await_ready() const noexcept { return false; }
            bool
            await_suspend(std::coroutine_handle<> h)
            {
                engine.nameAgent(h.address(), std::move(name));
                return false; // resume immediately; no event scheduled
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, std::move(name)};
    }

    /** Record a diagnostic name for the agent whose frame is @p frame. */
    void
    nameAgent(void *frame, std::string name)
    {
        agentNames_[frame] = std::move(name);
    }

    /**
     * Diagnostic name of the agent whose coroutine frame is @p frame;
     * a frame-address placeholder when it never announced itself.
     */
    std::string
    agentName(void *frame) const
    {
        const auto it = agentNames_.find(frame);
        if (it != agentNames_.end())
            return it->second;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "agent@%p", frame);
        return buf;
    }

    /**
     * Arm (or, with a default-constructed RunLimits, disarm) the
     * watchdog budgets for subsequent run() calls. The wall clock
     * starts counting here.
     */
    void
    setRunLimits(const RunLimits &limits)
    {
        limits_ = limits;
        limitsActive_ = limits.maxSimTimeNs > 0.0 ||
                        limits.maxWallSeconds > 0.0 ||
                        limits.maxEvents > 0;
        wallStart_ = std::chrono::steady_clock::now();
        wallCheckCountdown_ = kWallCheckPeriod;
    }

    /**
     * Human-readable dump of the engine state: time, event counters,
     * arena occupancies, and the blocked-agent table. Attached to
     * SimLimitError and usable ad hoc when debugging a wedged model.
     */
    std::string
    snapshot() const
    {
        std::ostringstream os;
        os << "--- engine snapshot ---\n"
           << "simulated time: " << now_ << " ns\n"
           << "events dispatched: " << eventsProcessed_ << " (coroutine "
           << coroutineEvents_ << ", callback " << callbackEvents_
           << ")\n"
           << "pending events: " << pending_ << " (now-queue "
           << (nowQ_.size() - nowHead_) << ", far wheel " << farCount_
           << "; peak " << peakQueueDepth_ << ")\n";
        size_t stream_waits = 0;
        for (const Stream &st : streams_)
            stream_waits += st.fifo.size();
        os << "completion streams: " << streams_.size() << " ("
           << stream_waits << " parked waits)\n"
           << "far-wheel buckets: " << slotHeads_.size() << " (width "
           << wheelWidth_ << " ns)\n"
           << "arena growths: " << arenaGrowths_ << "\n";
        std::vector<BlockedAgent> blocked;
        for (const Waitable *w : waitables_)
            w->appendBlocked(blocked);
        os << "blocked agents: " << blocked.size();
        for (const BlockedAgent &a : blocked) {
            os << "\n  - '" << a.agent << "' on '" << a.resource
               << "' since t=" << a.blockedSinceNs << " ns";
        }
        return os.str();
    }

    /**
     * Attach @p observer, to be first invoked when simulated time
     * reaches @p first_sample. Pass nullptr to detach. No-op when
     * telemetry is compiled out.
     */
    void
    attachObserver(Observer *observer, SimTime first_sample)
    {
#ifndef PGCN_NO_TELEMETRY
        observer_ = observer;
        observerNext_ = first_sample;
#else
        (void)observer;
        (void)first_sample;
#endif
    }

    /** Current simulated time (ns). */
    SimTime now() const { return now_; }

    /** Total events dispatched so far. */
    uint64_t eventsProcessed() const { return eventsProcessed_; }

    /** Dispatched events that resumed a coroutine directly. */
    uint64_t coroutineEvents() const { return coroutineEvents_; }

    /** Dispatched events that went through the callback slab. */
    uint64_t callbackEvents() const { return callbackEvents_; }

    /**
     * Times any event arena (now queue, far-wheel slab, callback
     * slab) had to grow its backing storage. Stays O(log events) from cold and
     * zero after reserveEvents() sized the arenas — the per-event hot
     * path itself never allocates.
     */
    uint64_t arenaGrowths() const { return arenaGrowths_; }

    /** Largest number of pending events observed. */
    size_t peakQueueDepth() const { return peakQueueDepth_; }

    /**
     * Length (in events) of the longest dependency chain dispatched
     * so far — the event-graph critical path. eventsProcessed() /
     * criticalPathEvents() is the run's available parallelism: an
     * upper bound on the speedup any execution of this event graph
     * can achieve.
     */
    uint64_t criticalPathEvents() const { return maxDepth_; }

    /** Events currently pending (all arenas). */
    size_t queueDepth() const { return pending_; }

    /**
     * Pre-size the event arenas so a run of known magnitude never
     * reallocates: @p far bounds concurrent future events (roughly
     * the number of live agents), @p zero bounds concurrent
     * zero-delay events.
     */
    void
    reserveEvents(size_t far, size_t zero = 0)
    {
        farArena_.reserve(far);
        nowQ_.reserve(zero ? zero : far);
    }

    /**
     * Schedule the resumption of @p h at @p delay ns from now — the
     * allocation-free fast path every awaitable uses. Negative delays
     * are a bug in the caller.
     */
    void
    schedule(SimTime delay, std::coroutine_handle<> h)
    {
        push(delay, reinterpret_cast<uintptr_t>(h.address()));
    }

    /**
     * Schedule @p fn to run @p delay ns from now. The type-erased
     * payload parks in the callback slab (reused across events); use
     * the coroutine overload on hot paths.
     */
    void
    schedule(SimTime delay, std::function<void()> fn)
    {
        uintptr_t slot;
        if (!freeCallbackSlots_.empty()) {
            slot = freeCallbackSlots_.back();
            freeCallbackSlots_.pop_back();
            callbackSlab_[slot] = std::move(fn);
        } else {
            slot = callbackSlab_.size();
            if (callbackSlab_.size() == callbackSlab_.capacity())
                ++arenaGrowths_;
            callbackSlab_.push_back(std::move(fn));
        }
        push(delay, (slot << 2) | kCallbackTag);
    }

    /**
     * Run until the event queue drains. Returns the final simulated
     * time.
     *
     * @throws SimDeadlockError if the queue drained while agents were
     *         still suspended on a registered Waitable (the model
     *         wedged rather than finished).
     * @throws SimLimitError if an armed RunLimits budget was breached.
     */
    SimTime
    run()
    {
        for (;;) {
            Event ev{};
            if (nowHead_ < nowQ_.size()) {
                // Zero-delay events share now_'s timestamp; a far
                // event dispatches first only if it carries the same
                // timestamp with an earlier sequence number.
                const Event &nf = nowQ_[nowHead_];
                if (farCount_ > 0 &&
                    before(farMinKey(), Key{nf.when, nf.seq})) {
                    ev = farPop();
                } else {
                    ev = nf;
                    if (++nowHead_ == nowQ_.size()) {
                        nowQ_.clear();
                        nowHead_ = 0;
                    }
                }
            } else if (farCount_ > 0) {
                ev = farPop();
            } else {
                break;
            }

            // Monotonicity is the bedrock invariant: delays are
            // non-negative, so the global minimum can never precede
            // the current time. A violation means arena corruption.
            PGCN_ASSERT(ev.when >= now_,
                        "simulated time ran backwards: dispatching t="
                            << ev.when << " at t=" << now_);
            now_ = ev.when;
            if (limitsActive_) [[unlikely]]
                enforceLimits();
#ifndef PGCN_NO_TELEMETRY
            // Telemetry sampling rides the dispatch loop instead of
            // scheduling its own events, so an attached observer can
            // never alter event order or keep the queue alive.
            if (observer_ != nullptr && now_ >= observerNext_)
                [[unlikely]]
                observerNext_ = observer_->onSample(now_, *this);
#endif
            ++eventsProcessed_;
            --pending_;
            const uintptr_t tag = ev.payload & kTagMask;
            if (tag == 0) {
                ++coroutineEvents_;
                curDepth_ = ev.depth;
                maxDepth_ = std::max<uint64_t>(maxDepth_, ev.depth);
                std::coroutine_handle<>::from_address(
                    reinterpret_cast<void *>(ev.payload))
                    .resume();
            } else if (tag == kStreamTag) {
                Stream &st = streams_[ev.payload >> 2];
                const StreamEvent se = st.fifo.pop_front();
                PGCN_ASSERT(se.when == ev.when && se.seq == ev.seq,
                            "stream head out of sync");
                // Re-arm the stream's next wait before resuming: the
                // resumed coroutine may append to this stream. The far
                // node carries the parked wait's own depth (dispatch
                // reads it back from the FIFO, but keeping the copies
                // consistent costs nothing).
                if (!st.fifo.empty()) {
                    const StreamEvent &nx = st.fifo.front();
                    farPush(Key{nx.when, nx.seq}, ev.payload, nx.depth);
                }
                ++coroutineEvents_;
                curDepth_ = se.depth;
                maxDepth_ = std::max<uint64_t>(maxDepth_, se.depth);
                std::coroutine_handle<>::from_address(se.frame).resume();
            } else {
                ++callbackEvents_;
                curDepth_ = ev.depth;
                maxDepth_ = std::max<uint64_t>(maxDepth_, ev.depth);
                const size_t slot = ev.payload >> 2;
                // Move out before invoking: the callback may schedule
                // further events and recycle slab slots.
                std::function<void()> fn = std::move(callbackSlab_[slot]);
                callbackSlab_[slot] = nullptr;
                freeCallbackSlots_.push_back(slot);
                fn();
            }
        }
        // The queue drained — but "no events" only means "finished"
        // if no agent is still suspended on a blocking primitive.
        size_t blocked = 0;
        for (const Waitable *w : waitables_)
            blocked += w->blockedCount();
        if (blocked > 0) [[unlikely]] {
            std::vector<BlockedAgent> agents;
            for (const Waitable *w : waitables_)
                w->appendBlocked(agents);
            throw SimDeadlockError(now_, std::move(agents));
        }
        return now_;
    }

    /**
     * Awaitable suspension for @p ns simulated nanoseconds.
     * Usage inside a Process coroutine: `co_await engine.delay(10.0);`
     */
    auto
    delay(SimTime ns)
    {
        struct Awaiter
        {
            Engine &engine;
            SimTime ns;

            bool await_ready() const noexcept { return ns <= 0.0; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                engine.schedule(ns, h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, ns};
    }

    /**
     * Awaitable suspension until absolute simulated time @p when
     * (no-op if @p when is in the past).
     */
    auto
    delayUntil(SimTime when)
    {
        return delay(when - now_);
    }

    /** Identifies one completion stream; see createStream(). */
    using StreamId = uint32_t;

    /**
     * Register a completion stream: a wait channel whose resume times
     * are expected to be non-decreasing (e.g. all waiters queued on
     * one BandwidthResource). Waits on a stream are O(1); only the
     * stream's earliest wait occupies the far heap.
     */
    StreamId
    createStream()
    {
        streams_.emplace_back();
        return static_cast<StreamId>(streams_.size() - 1);
    }

    /**
     * Stream counterpart of delay(): identical timing and dispatch
     * order, cheaper when many waits share the stream.
     */
    auto
    streamDelay(StreamId sid, SimTime ns)
    {
        struct Awaiter
        {
            Engine &engine;
            StreamId sid;
            SimTime ns;

            bool await_ready() const noexcept { return ns <= 0.0; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                engine.scheduleOnStream(sid, ns, h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, sid, ns};
    }

    /** Stream counterpart of delayUntil(). */
    auto
    streamDelayUntil(StreamId sid, SimTime when)
    {
        return streamDelay(sid, when - now_);
    }

  private:
    /**
     * Enforce armed RunLimits; called once per dispatched event
     * behind the single limitsActive_ branch. The wall clock is only
     * sampled every kWallCheckPeriod events so the watchdog adds no
     * syscall-class cost to the hot loop.
     */
    void
    enforceLimits()
    {
        if (limits_.maxSimTimeNs > 0.0 && now_ > limits_.maxSimTimeNs) {
            std::ostringstream os;
            os << "simulated-time budget exceeded: t=" << now_
               << " ns > limit " << limits_.maxSimTimeNs << " ns";
            throw SimLimitError(os.str(), snapshot());
        }
        if (limits_.maxEvents > 0 && eventsProcessed_ >= limits_.maxEvents) {
            std::ostringstream os;
            os << "event budget exceeded: " << eventsProcessed_
               << " events dispatched >= limit " << limits_.maxEvents;
            throw SimLimitError(os.str(), snapshot());
        }
        if (limits_.maxWallSeconds > 0.0 && --wallCheckCountdown_ == 0) {
            wallCheckCountdown_ = kWallCheckPeriod;
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wallStart_)
                    .count();
            if (elapsed > limits_.maxWallSeconds) {
                std::ostringstream os;
                os << "wall-clock budget exceeded: " << elapsed
                   << " s > limit " << limits_.maxWallSeconds << " s";
                throw SimLimitError(os.str(), snapshot());
            }
        }
    }

    /** Destroy the coroutine frame behind a frame-tagged payload. */
    static void
    destroyFramePayload(uintptr_t p)
    {
        if ((p & kTagMask) == 0 && p != 0) {
            std::coroutine_handle<>::from_address(
                reinterpret_cast<void *>(p))
                .destroy();
        }
    }

    /**
     * What a dispatched event does, in one word. Coroutine frames are
     * new-aligned, so the address's low bits are free for a tag:
     * 0 resumes the frame at this address, kCallbackTag runs
     * callback-slab entry payload >> 2, kStreamTag dispatches the
     * head of stream payload >> 2.
     */
    using Payload = uintptr_t;

    static constexpr uintptr_t kTagMask = 3;
    static constexpr uintptr_t kCallbackTag = 1;
    static constexpr uintptr_t kStreamTag = 2;

    /** A wait parked on a completion stream. */
    struct StreamEvent
    {
        SimTime when;
        uint64_t seq;
        void *frame;
        uint32_t depth; ///< dependency-chain length of this event
    };

    /** One completion stream: (when, seq)-sorted FIFO of waits. */
    struct Stream
    {
        Ring<StreamEvent> fifo;
    };

    /** The 16-byte sort key; keys are stored contiguously. */
    struct Key
    {
        SimTime when;
        uint64_t seq;
    };

    /** A materialised event (now-queue slot / heapPop result). */
    struct Event
    {
        SimTime when;
        uint64_t seq;
        Payload payload;
        uint32_t depth; ///< dependency-chain length of this event
    };

    /** Strict (when, seq) dispatch order — the determinism contract. */
    static bool
    before(const Key &a, const Key &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void
    push(SimTime delay, Payload p)
    {
        PGCN_ASSERT(delay >= 0.0, "negative event delay " << delay);
        const SimTime when = now_ + delay;
        const uint64_t seq = nextSeq_++;
        const uint32_t depth = curDepth_ + 1;
        if (delay == 0.0) {
            // Invariant: with non-negative delays every pending event
            // has when >= now_, so zero-delay events are always ready
            // and FIFO-ordered among themselves — a plain queue slot.
            if (nowQ_.size() == nowQ_.capacity())
                ++arenaGrowths_;
            nowQ_.push_back(Event{when, seq, p, depth});
        } else {
            farPush(Key{when, seq}, p, depth);
        }
        ++pending_;
        peakQueueDepth_ = std::max(peakQueueDepth_, pending_);
    }

    /**
     * Park @p h on stream @p sid, to resume @p ns from now. Timing and
     * global dispatch order are identical to schedule(): the event is
     * stamped with the next global sequence number, and the stream's
     * minimum (when, seq) is always present in the far heap. Appends
     * that would sort before the stream's tail (floating-point
     * rounding artefacts) fall back to plain heap events.
     */
    void
    scheduleOnStream(StreamId sid, SimTime ns, std::coroutine_handle<> h)
    {
        PGCN_ASSERT(ns > 0.0, "stream wait must be in the future");
        const SimTime when = now_ + ns;
        const uint64_t seq = nextSeq_++;
        const uint32_t depth = curDepth_ + 1;
        Stream &st = streams_[sid];
        if (!st.fifo.empty() && when < st.fifo.back().when) {
            farPush(Key{when, seq},
                    reinterpret_cast<uintptr_t>(h.address()), depth);
        } else {
            if (st.fifo.empty()) {
                farPush(Key{when, seq},
                        (static_cast<uintptr_t>(sid) << 2) | kStreamTag,
                        depth);
            }
            st.fifo.push_back(StreamEvent{when, seq, h.address(), depth});
        }
        ++pending_;
        peakQueueDepth_ = std::max(peakQueueDepth_, pending_);
    }

    /** Absolute calendar-bucket index of @p when. Monotone in when. */
    uint64_t
    bucketOf(SimTime when) const
    {
        return static_cast<uint64_t>(when * wheelInvWidth_);
    }

    /** File an event in the far wheel. O(1), allocation-free once the
     *  slab has reached its high-water mark. */
    void
    farPush(const Key &k, Payload p, uint32_t depth)
    {
        int32_t n;
        if (farFree_ >= 0) {
            n = farFree_;
            farFree_ = farArena_[n].next;
        } else {
            if (farArena_.size() == farArena_.capacity())
                ++arenaGrowths_;
            farArena_.emplace_back();
            n = static_cast<int32_t>(farArena_.size() - 1);
        }
        const uint64_t bucket = bucketOf(k.when);
        const size_t slot = static_cast<size_t>(bucket) & slotMask_;
        farArena_[n] = FarNode{k.when, k.seq, p, slotHeads_[slot], depth};
        slotHeads_[slot] = n;
        // The dispatch cursor may have scanned ahead of now_ while
        // locating a minimum that lost the merge against the now
        // queue; a push landing behind it pulls it back so the new
        // event is seen (bucketOf is monotone, so bucket >= the
        // current time's bucket always holds).
        if (bucket < curBucket_)
            curBucket_ = bucket;
        // The cached minimum survives only pushes that can't precede
        // it: a push into an earlier-or-equal bucket may be the new
        // minimum, and one aliasing the cached slot stales the cached
        // predecessor link.
        if (minValid_ && (bucket <= minBucket_ || slot == minSlot_))
            minValid_ = false;
        ++farCount_;
    }

    /**
     * Locate the pending event with the smallest (when, seq) and
     * cache its position. Every live node's bucket is >= curBucket_
     * (events are never scheduled in the past), so the first bucket
     * holding a non-aliased node contains the global minimum.
     */
    void
    farLocateMin()
    {
        if (minValid_)
            return;
        PGCN_ASSERT(farCount_ > 0, "min of an empty far wheel");
        size_t advanced = 0;
        for (;;) {
            const size_t slot =
                static_cast<size_t>(curBucket_) & slotMask_;
            int32_t best = -1;
            int32_t best_prev = -1;
            for (int32_t prev = -1, i = slotHeads_[slot]; i >= 0;
                 prev = i, i = farArena_[i].next) {
                const FarNode &nd = farArena_[i];
                if (bucketOf(nd.when) != curBucket_)
                    continue; // a later revolution aliasing this slot
                if (best < 0 ||
                    before(Key{nd.when, nd.seq},
                           Key{farArena_[best].when,
                               farArena_[best].seq})) {
                    best = i;
                    best_prev = prev;
                }
            }
            if (best >= 0) {
                minValid_ = true;
                minNode_ = best;
                minPrev_ = best_prev;
                minSlot_ = slot;
                minBucket_ = curBucket_;
                return;
            }
            ++curBucket_;
            if (++advanced == slotHeads_.size()) {
                // A full revolution of empty buckets: everything
                // pending is over one wheel span ahead. Jump straight
                // to the earliest occupied bucket.
                uint64_t min_bucket = ~uint64_t{0};
                for (const int32_t head : slotHeads_)
                    for (int32_t i = head; i >= 0; i = farArena_[i].next)
                        min_bucket =
                            std::min(min_bucket, bucketOf(farArena_[i].when));
                curBucket_ = min_bucket;
                advanced = 0;
            }
        }
    }

    /** Sort key of the earliest pending far event. */
    Key
    farMinKey()
    {
        farLocateMin();
        const FarNode &nd = farArena_[minNode_];
        return Key{nd.when, nd.seq};
    }

    /** Remove and return the earliest pending far event. */
    Event
    farPop()
    {
        farLocateMin();
        FarNode &nd = farArena_[minNode_];
        const Event ev{nd.when, nd.seq, nd.payload, nd.depth};
        if (minPrev_ < 0)
            slotHeads_[minSlot_] = nd.next;
        else
            farArena_[minPrev_].next = nd.next;
        nd.next = farFree_;
        farFree_ = minNode_;
        minValid_ = false;
        --farCount_;
        // Track the mean dispatch gap so the bucket width can follow
        // the workload's event density.
        gapEma_ += (ev.when - lastFarWhen_ - gapEma_) * (1.0 / 32.0);
        lastFarWhen_ = ev.when;
        if (++farPopsSinceRetune_ >= kRetunePeriod) {
            farPopsSinceRetune_ = 0;
            maybeRetune();
        }
        return ev;
    }

    /**
     * Re-tune the wheel: aim the bucket width at a few mean dispatch
     * gaps and the bucket count at twice the pending population, so a
     * bucket scan touches O(1) nodes regardless of workload. Runs at
     * most every kRetunePeriod far dispatches; a rebuild relinks the
     * live nodes in place (no node is copied or reallocated).
     */
    void
    maybeRetune()
    {
        const double target =
            std::clamp(3.0 * gapEma_, 1e-6, 1e9);
        size_t nb = slotHeads_.size();
        while (nb < 2 * farCount_ && nb < kMaxSlots)
            nb *= 2;
        if (nb == slotHeads_.size() && target < 2.0 * wheelWidth_ &&
            target > 0.5 * wheelWidth_)
            return;
        retuneScratch_.clear();
        for (const int32_t head : slotHeads_)
            for (int32_t i = head; i >= 0; i = farArena_[i].next)
                retuneScratch_.push_back(i);
        wheelWidth_ = target;
        wheelInvWidth_ = 1.0 / target;
        slotHeads_.assign(nb, -1);
        slotMask_ = nb - 1;
        curBucket_ = bucketOf(now_);
        for (const int32_t i : retuneScratch_) {
            const size_t slot =
                static_cast<size_t>(bucketOf(farArena_[i].when)) &
                slotMask_;
            farArena_[i].next = slotHeads_[slot];
            slotHeads_[slot] = i;
        }
        minValid_ = false;
    }

    /** One far event: sort key, payload, and intrusive bucket link.
     *  The depth field occupies what was padding — FarNode stays 32
     *  bytes, so critical-path tracking costs the far wheel nothing. */
    struct FarNode
    {
        SimTime when;
        uint64_t seq;
        Payload payload;
        int32_t next; ///< next node in bucket chain / free list (-1 end)
        uint32_t depth; ///< dependency-chain length of this event
    };

    static constexpr size_t kInitialSlots = 1024;
    static constexpr size_t kMaxSlots = size_t{1} << 18;
    static constexpr uint32_t kRetunePeriod = 1024;

    std::vector<FarNode> farArena_;     ///< far-wheel node slab
    std::vector<int32_t> slotHeads_ =
        std::vector<int32_t>(kInitialSlots, -1); ///< bucket chain heads
    std::vector<int32_t> retuneScratch_; ///< live-node list for rebuilds
    size_t slotMask_ = kInitialSlots - 1;
    int32_t farFree_ = -1;              ///< slab free-list head
    size_t farCount_ = 0;               ///< live far events
    uint64_t curBucket_ = 0;            ///< dispatch scan position
    double wheelWidth_ = 1.0;           ///< bucket width (ns)
    double wheelInvWidth_ = 1.0;
    double gapEma_ = 1.0;               ///< mean far dispatch gap (ns)
    SimTime lastFarWhen_ = 0.0;
    uint32_t farPopsSinceRetune_ = 0;
    bool minValid_ = false;             ///< cached-minimum fields valid?
    int32_t minNode_ = -1;
    int32_t minPrev_ = -1;
    size_t minSlot_ = 0;
    uint64_t minBucket_ = 0;            ///< absolute bucket of cached min
    std::vector<Event> nowQ_;           ///< FIFO of zero-delay events
    size_t nowHead_ = 0;                ///< dispatch cursor into nowQ_
    std::vector<std::function<void()>> callbackSlab_;
    std::vector<size_t> freeCallbackSlots_;
    std::vector<Stream> streams_;       ///< completion streams
#ifndef PGCN_NO_TELEMETRY
    Observer *observer_ = nullptr;      ///< telemetry sample hook
    SimTime observerNext_ = 0.0;        ///< next requested sample time
#endif
    std::vector<Waitable *> waitables_; ///< deadlock-report registry
    std::unordered_map<void *, std::string> agentNames_;
    RunLimits limits_{};
    bool limitsActive_ = false;
    std::chrono::steady_clock::time_point wallStart_{};
    uint32_t wallCheckCountdown_ = kWallCheckPeriod;
    static constexpr uint32_t kWallCheckPeriod = 4096;
    SimTime now_ = 0.0;
    uint64_t nextSeq_ = 0;
    uint32_t curDepth_ = 0;  ///< depth of the event being dispatched
    uint64_t maxDepth_ = 0;  ///< longest dependency chain seen (critical path)
    uint64_t eventsProcessed_ = 0;
    uint64_t coroutineEvents_ = 0;
    uint64_t callbackEvents_ = 0;
    uint64_t arenaGrowths_ = 0;
    size_t pending_ = 0;
    size_t peakQueueDepth_ = 0;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_ENGINE_HPP
