/**
 * @file
 * Discrete-event simulation core.
 *
 * The PIUMA timing model is built on this engine: simulated hardware
 * agents (MTP threads, DMA engines) are C++20 coroutines that
 * co_await simulated time (Engine::delay) and shared resources
 * (BandwidthResource, BoundedQueue). The engine is single-threaded
 * and fully deterministic: events at equal timestamps fire in
 * schedule order.
 */
#ifndef PGCN_SIM_ENGINE_HPP
#define PGCN_SIM_ENGINE_HPP

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hpp"

namespace pgcn::sim {

/** Simulated time in nanoseconds. */
using SimTime = double;

/**
 * A detached simulation process. Any function returning Process and
 * containing co_await runs as an independent simulated agent; it
 * starts executing immediately on call and parks itself in the event
 * queue whenever it awaits. Lifetime is self-managed (the coroutine
 * frame is destroyed when the body returns).
 */
struct Process
{
    struct promise_type
    {
        Process get_return_object() noexcept { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };
};

/**
 * The event-driven simulation engine: a time-ordered queue of
 * callbacks with a deterministic FIFO tie-break at equal timestamps.
 */
class Engine
{
  public:
    /** Current simulated time (ns). */
    SimTime now() const { return now_; }

    /** Total events dispatched so far. */
    uint64_t eventsProcessed() const { return eventsProcessed_; }

    /**
     * Schedule @p fn to run @p delay ns from now. Negative delays are
     * a bug in the caller.
     */
    void
    schedule(SimTime delay, std::function<void()> fn)
    {
        PGCN_ASSERT(delay >= 0.0, "negative event delay " << delay);
        queue_.push(Event{now_ + delay, nextSeq_++, std::move(fn)});
    }

    /**
     * Run until the event queue drains. Returns the final simulated
     * time.
     */
    SimTime
    run()
    {
        while (!queue_.empty()) {
            // The comparator orders by (when, seq); top() is const, so
            // move out via a copy of the handler only.
            const Event &top = queue_.top();
            now_ = top.when;
            auto fn = std::move(const_cast<Event &>(top).fn);
            queue_.pop();
            ++eventsProcessed_;
            fn();
        }
        return now_;
    }

    /**
     * Awaitable suspension for @p ns simulated nanoseconds.
     * Usage inside a Process coroutine: `co_await engine.delay(10.0);`
     */
    auto
    delay(SimTime ns)
    {
        struct Awaiter
        {
            Engine &engine;
            SimTime ns;

            bool await_ready() const noexcept { return ns <= 0.0; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                engine.schedule(ns, [h] { h.resume(); });
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, ns};
    }

    /**
     * Awaitable suspension until absolute simulated time @p when
     * (no-op if @p when is in the past).
     */
    auto
    delayUntil(SimTime when)
    {
        return delay(when - now_);
    }

  private:
    struct Event
    {
        SimTime when;
        uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    SimTime now_ = 0.0;
    uint64_t nextSeq_ = 0;
    uint64_t eventsProcessed_ = 0;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_ENGINE_HPP
