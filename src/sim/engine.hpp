/**
 * @file
 * Discrete-event simulation core.
 *
 * The PIUMA timing model is built on this engine: simulated hardware
 * agents (MTP threads, DMA engines) are C++20 coroutines that
 * co_await simulated time (Engine::delay) and shared resources
 * (BandwidthResource, BoundedQueue). The engine is single-threaded
 * and fully deterministic: events at equal timestamps fire in
 * schedule order.
 *
 * The hot path is allocation-free. An event is a 24-byte POD: a
 * (when, seq) sort key plus a one-word payload that is either a
 * coroutine frame address or (tagged in the low bit) an index into a
 * reusable slab of the rare type-erased callbacks (tests, ad-hoc
 * hooks). Two arenas back the event queue:
 *
 *  - the "now queue": a FIFO of zero-delay events. Resumptions
 *    scheduled at the current timestamp (BoundedQueue hand-offs,
 *    DMA wakeups) are O(1) pushes that never touch the time-ordered
 *    heap;
 *  - the "far wheel": calendar buckets for events strictly in the
 *    future. Nodes live in a reusable slab and chain off an array of
 *    bucket heads indexed by floor(when / width); dispatch scans the
 *    current bucket (a handful of nodes) instead of sifting a
 *    thousands-deep comparison tree, making the per-event cost
 *    independent of how many events are pending. The bucket width
 *    self-tunes to a few mean dispatch gaps. Because floor(when /
 *    width) is monotone in `when` even under floating-point rounding,
 *    bucket order can never contradict (when, seq) order — the scan
 *    always finds the exact global minimum;
 *  - "completion streams": FIFO rings of waits whose timestamps are
 *    non-decreasing (everything queued behind one bandwidth-limited
 *    resource completes in reservation order). Only the head of each
 *    stream sits in the far heap, so the heap stays shallow and the
 *    events behind the head cost O(1). A wait that would break a
 *    stream's monotonicity (possible only through floating-point
 *    rounding of delayUntil arithmetic) silently falls back to a
 *    plain heap event, so ordering never depends on the assumption.
 *
 * Determinism contract: every event is stamped with a global sequence
 * number at schedule time, and run() always dispatches the minimum
 * (when, seq) across all arenas, so the observable order is exactly
 * the seed engine's single-priority-queue order.
 *
 * Sharded event domains (sim/domain.hpp): several Engine instances
 * can be bound to one SharedState — a shared clock, sequence counter
 * and stat block — while each keeps its own event arenas. A DomainSet
 * then either merges the shards deterministically (dispatching the
 * global minimum (when, seq) each step, bit-identical to a single
 * engine by the contract above) or runs them on real threads under a
 * conservative-lookahead window protocol. The hooks this needs —
 * hasPending()/runUntil() plus the private peek/pop/dispatch/inject
 * primitives — are exactly the old run() loop split at its seams; a
 * solo engine's run() composes them back into the identical loop.
 *
 * Critical-path tracking: every event also carries the length of the
 * dependency chain that produced it — an event scheduled while
 * dispatching an event of depth d gets depth d+1 (events scheduled
 * outside run(), i.e. from setup code, start a chain at depth 1).
 * The maximum depth ever dispatched is the event-graph critical path:
 * no execution order, sequential or parallel, can finish in fewer
 * dependent steps. Resource-queueing delays (BandwidthResource
 * reservations) are deliberately *not* edges in this graph — they are
 * contention, not dataflow — so comparing total events to the
 * critical path separates "the algorithm ran out of parallelism"
 * from "a resource saturated". The cost is one integer store per
 * dispatch and one per schedule, cheap enough to stay always-on
 * (same budget class as the PR 6 remote-access counters).
 */
#ifndef PGCN_SIM_ENGINE_HPP
#define PGCN_SIM_ENGINE_HPP

#include <algorithm>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "sim/diagnostics.hpp"
#include "sim/ring.hpp"

namespace pgcn::sim {

/** Simulated time in nanoseconds. */
using SimTime = double;

class DomainSet;

/**
 * A detached simulation process. Any function returning Process and
 * containing co_await runs as an independent simulated agent; it
 * starts executing immediately on call and parks itself in the event
 * queue whenever it awaits. Lifetime is self-managed (the coroutine
 * frame is destroyed when the body returns).
 */
struct Process
{
    struct promise_type
    {
        Process get_return_object() noexcept { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };
};

/**
 * The event-driven simulation engine: a time-ordered queue of
 * coroutine resumptions (and rare callbacks) with a deterministic
 * FIFO tie-break at equal timestamps.
 */
class Engine
{
  public:
    /**
     * A passive telemetry observer: run() calls onSample() the first
     * time dispatch reaches each requested simulated timestamp.
     * Observers must only *read* simulation state — scheduling events
     * or mutating agents from a hook would break the determinism
     * contract. Compiled out entirely under PGCN_NO_TELEMETRY; when
     * compiled in but not attached, the cost is one predictable
     * branch per dispatched event.
     */
    struct Observer
    {
        virtual ~Observer() = default;

        /**
         * Called with the engine's current time once dispatch first
         * reaches the requested sample point. Returns the next
         * simulated time at which to be called (must be > @p now).
         */
        virtual SimTime onSample(SimTime now, Engine &engine) = 0;
    };

    /**
     * A blocking primitive (e.g. BoundedQueue) that can hold suspended
     * coroutines *outside* the event queue. Registered instances are
     * consulted when the event queue drains: any remaining blocked
     * waiter means the simulation deadlocked rather than finished, and
     * run() reports every waiter instead of returning silently.
     */
    struct Waitable
    {
        virtual ~Waitable() = default;

        /** Number of coroutines currently suspended on this primitive. */
        virtual size_t blockedCount() const = 0;

        /** Append one BlockedAgent record per suspended coroutine. */
        virtual void appendBlocked(std::vector<BlockedAgent> &out) const = 0;
    };

    /** Per-run watchdog budgets; 0 means unlimited. */
    struct RunLimits
    {
        /// Abort once simulated time exceeds this many nanoseconds.
        SimTime maxSimTimeNs = 0.0;
        /// Abort once the host has spent this long inside run().
        double maxWallSeconds = 0.0;
        /// Abort after dispatching this many events.
        uint64_t maxEvents = 0;
    };

    /**
     * The per-run mutable state that must be *common* to every shard
     * of a sharded simulation for bit-identity: the clock, the global
     * sequence counter, the critical-path/dispatch counters, and the
     * observer/watchdog hooks (sampling and budget checks must fire at
     * the same global event no matter which shard dispatches it).
     * A standalone engine owns a private instance; DomainSet binds all
     * of its shards to one (sequenced mode) or leaves each shard its
     * own (parallel mode, aggregated at the end).
     */
    struct SharedState
    {
        static constexpr uint32_t kWallCheckPeriod = 4096;

        SimTime now = 0.0;
        uint64_t nextSeq = 0;
        uint32_t curDepth = 0; ///< depth of the event being dispatched
        uint64_t maxDepth = 0; ///< longest dependency chain (critical path)
        uint64_t eventsProcessed = 0;
        uint64_t coroutineEvents = 0;
        uint64_t callbackEvents = 0;
        size_t pending = 0;
        size_t peakQueueDepth = 0;
#ifndef PGCN_NO_TELEMETRY
        Observer *observer = nullptr; ///< telemetry sample hook
        SimTime observerNext = 0.0;   ///< next requested sample time
#endif
        RunLimits limits{};
        bool limitsActive = false;
        std::chrono::steady_clock::time_point wallStart{};
        uint32_t wallCheckCountdown = kWallCheckPeriod;
    };

    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Destroy any coroutine frames still parked in the event arenas.
     * After a clean run() this is a no-op; after a SimDeadlockError or
     * SimLimitError it releases the frames of every agent that never
     * finished (frames suspended on a Waitable are destroyed by that
     * Waitable — the two sets are disjoint because a coroutine is
     * suspended at exactly one point).
     */
    ~Engine()
    {
        for (size_t i = nowHead_; i < nowQ_.size(); ++i)
            destroyFramePayload(nowQ_[i].payload);
        for (const int32_t head : slotHeads_)
            for (int32_t n = head; n >= 0; n = farArena_[n].next)
                destroyFramePayload(farArena_[n].payload);
        for (Stream &st : streams_)
            while (!st.fifo.empty())
                std::coroutine_handle<>::from_address(
                    st.fifo.pop_front().frame)
                    .destroy();
    }

    /**
     * Bind this engine to an external SharedState (sharded operation;
     * see DomainSet). Must be called before anything is scheduled —
     * the engine's own (now abandoned) state block must be untouched.
     */
    void
    bindShared(SharedState &shared)
    {
        PGCN_ASSERT(own_.nextSeq == 0 && own_.eventsProcessed == 0 &&
                        own_.pending == 0,
                    "bindShared() after events were scheduled");
        ctx_ = &shared;
    }

    /** The state block this engine dispatches against. */
    const SharedState &shared() const { return *ctx_; }

    /** Track @p waitable for deadlock reporting. */
    void registerWaitable(Waitable *waitable)
    {
        waitables_.push_back(waitable);
    }

    /** Stop tracking @p waitable (no-op when not registered). */
    void
    unregisterWaitable(Waitable *waitable)
    {
        const auto it =
            std::find(waitables_.begin(), waitables_.end(), waitable);
        if (it != waitables_.end())
            waitables_.erase(it);
    }

    /**
     * Re-point a registration after the waitable moved (keeps
     * registration valid across e.g. vector reallocation of the
     * owning object).
     */
    void
    replaceWaitable(Waitable *old_waitable, Waitable *new_waitable)
    {
        std::replace(waitables_.begin(), waitables_.end(), old_waitable,
                     new_waitable);
    }

    /**
     * Awaitable that names the calling agent for diagnostics
     * (deadlock reports, snapshots). Never suspends and schedules no
     * event, so it cannot perturb event counts or dispatch order:
     * `co_await engine.announce("core0.dma");`
     */
    auto
    announce(std::string name)
    {
        struct Awaiter
        {
            Engine &engine;
            std::string name;

            bool await_ready() const noexcept { return false; }
            bool
            await_suspend(std::coroutine_handle<> h)
            {
                engine.nameAgent(h.address(), std::move(name));
                return false; // resume immediately; no event scheduled
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, std::move(name)};
    }

    /** Record a diagnostic name for the agent whose frame is @p frame. */
    void
    nameAgent(void *frame, std::string name)
    {
        agentNames_[frame] = std::move(name);
    }

    /**
     * Diagnostic name of the agent whose coroutine frame is @p frame;
     * a frame-address placeholder when it never announced itself.
     */
    std::string
    agentName(void *frame) const
    {
        const auto it = agentNames_.find(frame);
        if (it != agentNames_.end())
            return it->second;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "agent@%p", frame);
        return buf;
    }

    /**
     * Arm (or, with a default-constructed RunLimits, disarm) the
     * watchdog budgets for subsequent run() calls. The wall clock
     * starts counting here. Under a shared state block the budgets
     * are global: any shard's dispatch can trip them.
     */
    void
    setRunLimits(const RunLimits &limits)
    {
        ctx_->limits = limits;
        ctx_->limitsActive = limits.maxSimTimeNs > 0.0 ||
                             limits.maxWallSeconds > 0.0 ||
                             limits.maxEvents > 0;
        ctx_->wallStart = std::chrono::steady_clock::now();
        ctx_->wallCheckCountdown = SharedState::kWallCheckPeriod;
    }

    /**
     * Human-readable dump of the engine state: time, event counters,
     * arena occupancies, and the blocked-agent table. Attached to
     * SimLimitError and usable ad hoc when debugging a wedged model.
     */
    std::string
    snapshot() const
    {
        std::ostringstream os;
        os << "--- engine snapshot ---\n"
           << "simulated time: " << ctx_->now << " ns\n"
           << "events dispatched: " << ctx_->eventsProcessed
           << " (coroutine " << ctx_->coroutineEvents << ", callback "
           << ctx_->callbackEvents << ")\n"
           << "pending events: " << ctx_->pending << " (now-queue "
           << (nowQ_.size() - nowHead_) << ", far wheel " << farCount_
           << "; peak " << ctx_->peakQueueDepth << ")\n";
        size_t stream_waits = 0;
        for (const Stream &st : streams_)
            stream_waits += st.fifo.size();
        os << "completion streams: " << streams_.size() << " ("
           << stream_waits << " parked waits)\n"
           << "far-wheel buckets: " << slotHeads_.size() << " (width "
           << wheelWidth_ << " ns)\n"
           << "arena growths: " << arenaGrowths_ << "\n";
        std::vector<BlockedAgent> blocked;
        for (const Waitable *w : waitables_)
            w->appendBlocked(blocked);
        os << "blocked agents: " << blocked.size();
        for (const BlockedAgent &a : blocked) {
            os << "\n  - '" << a.agent << "' on '" << a.resource
               << "' since t=" << a.blockedSinceNs << " ns";
        }
        return os.str();
    }

    /**
     * Attach @p observer, to be first invoked when simulated time
     * reaches @p first_sample. Pass nullptr to detach. No-op when
     * telemetry is compiled out.
     */
    void
    attachObserver(Observer *observer, SimTime first_sample)
    {
#ifndef PGCN_NO_TELEMETRY
        ctx_->observer = observer;
        ctx_->observerNext = first_sample;
#else
        (void)observer;
        (void)first_sample;
#endif
    }

    /** Current simulated time (ns). */
    SimTime now() const { return ctx_->now; }

    /** Total events dispatched so far. */
    uint64_t eventsProcessed() const { return ctx_->eventsProcessed; }

    /** Dispatched events that resumed a coroutine directly. */
    uint64_t coroutineEvents() const { return ctx_->coroutineEvents; }

    /** Dispatched events that went through the callback slab. */
    uint64_t callbackEvents() const { return ctx_->callbackEvents; }

    /**
     * Times any event arena (now queue, far-wheel slab, callback
     * slab) had to grow its backing storage. Stays O(log events) from cold and
     * zero after reserveEvents() sized the arenas — the per-event hot
     * path itself never allocates.
     */
    uint64_t arenaGrowths() const { return arenaGrowths_; }

    /** Largest number of pending events observed. */
    size_t peakQueueDepth() const { return ctx_->peakQueueDepth; }

    /**
     * Length (in events) of the longest dependency chain dispatched
     * so far — the event-graph critical path. eventsProcessed() /
     * criticalPathEvents() is the run's available parallelism: an
     * upper bound on the speedup any execution of this event graph
     * can achieve.
     */
    uint64_t criticalPathEvents() const { return ctx_->maxDepth; }

    /** Events currently pending (all arenas). */
    size_t queueDepth() const { return ctx_->pending; }

    /** Events pending in *this* engine's local arenas. */
    bool
    hasPending() const
    {
        return nowHead_ < nowQ_.size() || farCount_ > 0;
    }

    /**
     * Pre-size the event arenas so a run of known magnitude never
     * reallocates: @p far bounds concurrent future events (roughly
     * the number of live agents), @p zero bounds concurrent
     * zero-delay events.
     */
    void
    reserveEvents(size_t far, size_t zero = 0)
    {
        farArena_.reserve(far);
        nowQ_.reserve(zero ? zero : far);
    }

    /**
     * Schedule the resumption of @p h at @p delay ns from now — the
     * allocation-free fast path every awaitable uses. Negative delays
     * are a bug in the caller.
     */
    void
    schedule(SimTime delay, std::coroutine_handle<> h)
    {
        push(delay, reinterpret_cast<uintptr_t>(h.address()));
    }

    /**
     * Schedule @p fn to run @p delay ns from now. The type-erased
     * payload parks in the callback slab (reused across events); use
     * the coroutine overload on hot paths.
     */
    void
    schedule(SimTime delay, std::function<void()> fn)
    {
        push(delay, internCallback(std::move(fn)));
    }

    /**
     * Run until the event queue drains. Returns the final simulated
     * time.
     *
     * @throws SimDeadlockError if the queue drained while agents were
     *         still suspended on a registered Waitable (the model
     *         wedged rather than finished).
     * @throws SimLimitError if an armed RunLimits budget was breached.
     */
    SimTime
    run()
    {
        while (hasPending())
            dispatchEvent(popMinLocal());
        // The queue drained — but "no events" only means "finished"
        // if no agent is still suspended on a blocking primitive.
        if (blockedWaiters() > 0) [[unlikely]] {
            std::vector<BlockedAgent> agents;
            appendBlockedAgents(agents);
            throw SimDeadlockError(ctx_->now, std::move(agents));
        }
        return ctx_->now;
    }

    /**
     * Dispatch local events strictly before @p horizon, then stop
     * (the conservative-lookahead window of a parallel domain; see
     * DomainSet). Events this window schedules inside the horizon are
     * dispatched too. Returns the clock after the last dispatch.
     */
    SimTime
    runUntil(SimTime horizon)
    {
        while (hasPending()) {
            const Key k = peekMinKey();
            if (!(k.when < horizon))
                break;
            dispatchEvent(popMinLocal());
        }
        return ctx_->now;
    }

    /** Coroutines suspended on this engine's registered Waitables. */
    size_t
    blockedWaiters() const
    {
        size_t blocked = 0;
        for (const Waitable *w : waitables_)
            blocked += w->blockedCount();
        return blocked;
    }

    /** Append every blocked agent on this engine's Waitables. */
    void
    appendBlockedAgents(std::vector<BlockedAgent> &out) const
    {
        for (const Waitable *w : waitables_)
            w->appendBlocked(out);
    }

    /**
     * Awaitable suspension for @p ns simulated nanoseconds.
     * Usage inside a Process coroutine: `co_await engine.delay(10.0);`
     */
    auto
    delay(SimTime ns)
    {
        struct Awaiter
        {
            Engine &engine;
            SimTime ns;

            bool await_ready() const noexcept { return ns <= 0.0; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                engine.schedule(ns, h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, ns};
    }

    /**
     * Awaitable suspension until absolute simulated time @p when
     * (no-op if @p when is in the past).
     */
    auto
    delayUntil(SimTime when)
    {
        return delay(when - ctx_->now);
    }

    /** Identifies one completion stream; see createStream(). */
    using StreamId = uint32_t;

    /**
     * Register a completion stream: a wait channel whose resume times
     * are expected to be non-decreasing (e.g. all waiters queued on
     * one BandwidthResource). Waits on a stream are O(1); only the
     * stream's earliest wait occupies the far heap.
     */
    StreamId
    createStream()
    {
        streams_.emplace_back();
        return static_cast<StreamId>(streams_.size() - 1);
    }

    /**
     * Stream counterpart of delay(): identical timing and dispatch
     * order, cheaper when many waits share the stream.
     */
    auto
    streamDelay(StreamId sid, SimTime ns)
    {
        struct Awaiter
        {
            Engine &engine;
            StreamId sid;
            SimTime ns;

            bool await_ready() const noexcept { return ns <= 0.0; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                engine.scheduleOnStream(sid, ns, h);
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this, sid, ns};
    }

    /** Stream counterpart of delayUntil(). */
    auto
    streamDelayUntil(StreamId sid, SimTime when)
    {
        return streamDelay(sid, when - ctx_->now);
    }

  private:
    friend class DomainSet;

    /**
     * Enforce armed RunLimits; called once per dispatched event
     * behind the single limitsActive branch. The wall clock is only
     * sampled every kWallCheckPeriod events so the watchdog adds no
     * syscall-class cost to the hot loop.
     */
    void
    enforceLimits()
    {
        if (ctx_->limits.maxSimTimeNs > 0.0 &&
            ctx_->now > ctx_->limits.maxSimTimeNs) {
            std::ostringstream os;
            os << "simulated-time budget exceeded: t=" << ctx_->now
               << " ns > limit " << ctx_->limits.maxSimTimeNs << " ns";
            throw SimLimitError(os.str(), snapshot());
        }
        if (ctx_->limits.maxEvents > 0 &&
            ctx_->eventsProcessed >= ctx_->limits.maxEvents) {
            std::ostringstream os;
            os << "event budget exceeded: " << ctx_->eventsProcessed
               << " events dispatched >= limit " << ctx_->limits.maxEvents;
            throw SimLimitError(os.str(), snapshot());
        }
        if (ctx_->limits.maxWallSeconds > 0.0 &&
            --ctx_->wallCheckCountdown == 0) {
            ctx_->wallCheckCountdown = SharedState::kWallCheckPeriod;
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - ctx_->wallStart)
                    .count();
            if (elapsed > ctx_->limits.maxWallSeconds) {
                std::ostringstream os;
                os << "wall-clock budget exceeded: " << elapsed
                   << " s > limit " << ctx_->limits.maxWallSeconds << " s";
                throw SimLimitError(os.str(), snapshot());
            }
        }
    }

    /** Destroy the coroutine frame behind a frame-tagged payload. */
    static void
    destroyFramePayload(uintptr_t p)
    {
        if ((p & kTagMask) == 0 && p != 0) {
            std::coroutine_handle<>::from_address(
                reinterpret_cast<void *>(p))
                .destroy();
        }
    }

    /**
     * What a dispatched event does, in one word. Coroutine frames are
     * new-aligned, so the address's low bits are free for a tag:
     * 0 resumes the frame at this address, kCallbackTag runs
     * callback-slab entry payload >> 2, kStreamTag dispatches the
     * head of stream payload >> 2.
     */
    using Payload = uintptr_t;

    static constexpr uintptr_t kTagMask = 3;
    static constexpr uintptr_t kCallbackTag = 1;
    static constexpr uintptr_t kStreamTag = 2;

    /** A wait parked on a completion stream. */
    struct StreamEvent
    {
        SimTime when;
        uint64_t seq;
        void *frame;
        uint32_t depth; ///< dependency-chain length of this event
    };

    /** One completion stream: (when, seq)-sorted FIFO of waits. */
    struct Stream
    {
        Ring<StreamEvent> fifo;
    };

    /** The 16-byte sort key; keys are stored contiguously. */
    struct Key
    {
        SimTime when;
        uint64_t seq;
    };

    /** A materialised event (now-queue slot / heapPop result). */
    struct Event
    {
        SimTime when;
        uint64_t seq;
        Payload payload;
        uint32_t depth; ///< dependency-chain length of this event
    };

    /** Strict (when, seq) dispatch order — the determinism contract. */
    static bool
    before(const Key &a, const Key &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** Park @p fn in the callback slab; returns its tagged payload. */
    Payload
    internCallback(std::function<void()> fn)
    {
        uintptr_t slot;
        if (!freeCallbackSlots_.empty()) {
            slot = freeCallbackSlots_.back();
            freeCallbackSlots_.pop_back();
            callbackSlab_[slot] = std::move(fn);
        } else {
            slot = callbackSlab_.size();
            if (callbackSlab_.size() == callbackSlab_.capacity())
                ++arenaGrowths_;
            callbackSlab_.push_back(std::move(fn));
        }
        return (slot << 2) | kCallbackTag;
    }

    void
    push(SimTime delay, Payload p)
    {
        PGCN_ASSERT(delay >= 0.0, "negative event delay " << delay);
        const SimTime when = ctx_->now + delay;
        const uint64_t seq = ctx_->nextSeq++;
        const uint32_t depth = ctx_->curDepth + 1;
        if (delay == 0.0) {
            // Invariant: with non-negative delays every pending event
            // has when >= now, so zero-delay events are always ready
            // and FIFO-ordered among themselves — a plain queue slot.
            if (nowQ_.size() == nowQ_.capacity())
                ++arenaGrowths_;
            nowQ_.push_back(Event{when, seq, p, depth});
        } else {
            farPush(Key{when, seq}, p, depth);
        }
        ++ctx_->pending;
        ctx_->peakQueueDepth = std::max(ctx_->peakQueueDepth, ctx_->pending);
    }

    /**
     * File an event at *absolute* time @p when with an explicit depth
     * — the cross-domain injection path (DomainSet). The event takes
     * the next sequence number from the bound state block, exactly as
     * a local push would; under a shared block this is what keeps a
     * sequenced merge bit-identical to the serial engine.
     */
    void
    injectAbsolute(SimTime when, Payload p, uint32_t depth)
    {
        PGCN_ASSERT(when >= ctx_->now,
                    "cross-domain event at t=" << when
                        << " is behind the clock t=" << ctx_->now);
        const uint64_t seq = ctx_->nextSeq++;
        if (when == ctx_->now) {
            if (nowQ_.size() == nowQ_.capacity())
                ++arenaGrowths_;
            nowQ_.push_back(Event{when, seq, p, depth});
        } else {
            farPush(Key{when, seq}, p, depth);
        }
        ++ctx_->pending;
        ctx_->peakQueueDepth = std::max(ctx_->peakQueueDepth, ctx_->pending);
    }

    /**
     * File an event at absolute time @p when carrying a
     * *caller-chosen* sequence number — the keyed-message path
     * (DomainSet::postKeyed). Banded keys (sim/domain.hpp) make the
     * equal-timestamp dispatch order a property of the message itself
     * instead of the scheduling history, which is what keeps the
     * sequenced merge and the threaded Parallel mode bit-identical
     * for the memory request/response protocol. Always files into
     * the far wheel: the now queue's FIFO is only correct when seq
     * order equals insertion order, which carried keys deliberately
     * violate (farPush pulls the dispatch cursor back for when==now).
     */
    void
    injectKeyed(SimTime when, Payload p, uint64_t seq, uint32_t depth)
    {
        PGCN_ASSERT(when >= ctx_->now,
                    "keyed event at t=" << when
                        << " is behind the clock t=" << ctx_->now);
        farPush(Key{when, seq}, p, depth);
        ++ctx_->pending;
        ctx_->peakQueueDepth = std::max(ctx_->peakQueueDepth, ctx_->pending);
    }

    /**
     * Sort key of this engine's earliest local event (now queue vs far
     * wheel). Requires hasPending().
     */
    Key
    peekMinKey()
    {
        if (nowHead_ < nowQ_.size()) {
            const Event &nf = nowQ_[nowHead_];
            const Key nk{nf.when, nf.seq};
            if (farCount_ > 0) {
                const Key fk = farMinKey();
                if (before(fk, nk))
                    return fk;
            }
            return nk;
        }
        return farMinKey();
    }

    /**
     * Remove and return this engine's earliest local event — the
     * now-queue head unless a far event carries the same timestamp
     * with an earlier sequence number. Requires hasPending().
     */
    Event
    popMinLocal()
    {
        if (nowHead_ < nowQ_.size()) {
            // Zero-delay events share the clock's timestamp; a far
            // event dispatches first only if it carries the same
            // timestamp with an earlier sequence number.
            const Event &nf = nowQ_[nowHead_];
            if (farCount_ > 0 && before(farMinKey(), Key{nf.when, nf.seq}))
                return farPop();
            const Event ev = nf;
            if (++nowHead_ == nowQ_.size()) {
                nowQ_.clear();
                nowHead_ = 0;
            }
            return ev;
        }
        return farPop();
    }

    /**
     * Advance the clock to @p ev and execute it: the body of the old
     * monolithic run() loop, shared verbatim by run(), runUntil() and
     * the DomainSet sequenced merge.
     */
    void
    dispatchEvent(const Event &ev)
    {
        // Monotonicity is the bedrock invariant: delays are
        // non-negative, so the global minimum can never precede
        // the current time. A violation means arena corruption.
        PGCN_ASSERT(ev.when >= ctx_->now,
                    "simulated time ran backwards: dispatching t="
                        << ev.when << " at t=" << ctx_->now);
        ctx_->now = ev.when;
        if (ctx_->limitsActive) [[unlikely]]
            enforceLimits();
#ifndef PGCN_NO_TELEMETRY
        // Telemetry sampling rides the dispatch loop instead of
        // scheduling its own events, so an attached observer can
        // never alter event order or keep the queue alive.
        if (ctx_->observer != nullptr && ctx_->now >= ctx_->observerNext)
            [[unlikely]]
            ctx_->observerNext = ctx_->observer->onSample(ctx_->now, *this);
#endif
        ++ctx_->eventsProcessed;
        --ctx_->pending;
        const uintptr_t tag = ev.payload & kTagMask;
        if (tag == 0) {
            ++ctx_->coroutineEvents;
            ctx_->curDepth = ev.depth;
            ctx_->maxDepth = std::max<uint64_t>(ctx_->maxDepth, ev.depth);
            std::coroutine_handle<>::from_address(
                reinterpret_cast<void *>(ev.payload))
                .resume();
        } else if (tag == kStreamTag) {
            Stream &st = streams_[ev.payload >> 2];
            const StreamEvent se = st.fifo.pop_front();
            PGCN_ASSERT(se.when == ev.when && se.seq == ev.seq,
                        "stream head out of sync");
            // Re-arm the stream's next wait before resuming: the
            // resumed coroutine may append to this stream. The far
            // node carries the parked wait's own depth (dispatch
            // reads it back from the FIFO, but keeping the copies
            // consistent costs nothing).
            if (!st.fifo.empty()) {
                const StreamEvent &nx = st.fifo.front();
                farPush(Key{nx.when, nx.seq}, ev.payload, nx.depth);
            }
            ++ctx_->coroutineEvents;
            ctx_->curDepth = se.depth;
            ctx_->maxDepth = std::max<uint64_t>(ctx_->maxDepth, se.depth);
            std::coroutine_handle<>::from_address(se.frame).resume();
        } else {
            ++ctx_->callbackEvents;
            ctx_->curDepth = ev.depth;
            ctx_->maxDepth = std::max<uint64_t>(ctx_->maxDepth, ev.depth);
            const size_t slot = ev.payload >> 2;
            // Move out before invoking: the callback may schedule
            // further events and recycle slab slots.
            std::function<void()> fn = std::move(callbackSlab_[slot]);
            callbackSlab_[slot] = nullptr;
            freeCallbackSlots_.push_back(slot);
            fn();
        }
    }

    /**
     * Park @p h on stream @p sid, to resume @p ns from now. Timing and
     * global dispatch order are identical to schedule(): the event is
     * stamped with the next global sequence number, and the stream's
     * minimum (when, seq) is always present in the far heap. Appends
     * that would sort before the stream's tail (floating-point
     * rounding artefacts) fall back to plain heap events.
     */
    void
    scheduleOnStream(StreamId sid, SimTime ns, std::coroutine_handle<> h)
    {
        PGCN_ASSERT(ns > 0.0, "stream wait must be in the future");
        const SimTime when = ctx_->now + ns;
        const uint64_t seq = ctx_->nextSeq++;
        const uint32_t depth = ctx_->curDepth + 1;
        Stream &st = streams_[sid];
        if (!st.fifo.empty() && when < st.fifo.back().when) {
            farPush(Key{when, seq},
                    reinterpret_cast<uintptr_t>(h.address()), depth);
        } else {
            if (st.fifo.empty()) {
                farPush(Key{when, seq},
                        (static_cast<uintptr_t>(sid) << 2) | kStreamTag,
                        depth);
            }
            st.fifo.push_back(StreamEvent{when, seq, h.address(), depth});
        }
        ++ctx_->pending;
        ctx_->peakQueueDepth = std::max(ctx_->peakQueueDepth, ctx_->pending);
    }

    /** Absolute calendar-bucket index of @p when. Monotone in when. */
    uint64_t
    bucketOf(SimTime when) const
    {
        return static_cast<uint64_t>(when * wheelInvWidth_);
    }

    /** File an event in the far wheel. O(1), allocation-free once the
     *  slab has reached its high-water mark. */
    void
    farPush(const Key &k, Payload p, uint32_t depth)
    {
        int32_t n;
        if (farFree_ >= 0) {
            n = farFree_;
            farFree_ = farArena_[n].next;
        } else {
            if (farArena_.size() == farArena_.capacity())
                ++arenaGrowths_;
            farArena_.emplace_back();
            n = static_cast<int32_t>(farArena_.size() - 1);
        }
        const uint64_t bucket = bucketOf(k.when);
        const size_t slot = static_cast<size_t>(bucket) & slotMask_;
        farArena_[n] = FarNode{k.when, k.seq, p, slotHeads_[slot], depth};
        slotHeads_[slot] = n;
        // The dispatch cursor may have scanned ahead of now while
        // locating a minimum that lost the merge against the now
        // queue; a push landing behind it pulls it back so the new
        // event is seen (bucketOf is monotone, so bucket >= the
        // current time's bucket always holds).
        if (bucket < curBucket_)
            curBucket_ = bucket;
        // The cached minimum survives only pushes that can't precede
        // it: a push into an earlier-or-equal bucket may be the new
        // minimum, and one aliasing the cached slot stales the cached
        // predecessor link.
        if (minValid_ && (bucket <= minBucket_ || slot == minSlot_))
            minValid_ = false;
        ++farCount_;
    }

    /**
     * Locate the pending event with the smallest (when, seq) and
     * cache its position. Every live node's bucket is >= curBucket_
     * (events are never scheduled in the past), so the first bucket
     * holding a non-aliased node contains the global minimum.
     */
    void
    farLocateMin()
    {
        if (minValid_)
            return;
        PGCN_ASSERT(farCount_ > 0, "min of an empty far wheel");
        size_t advanced = 0;
        for (;;) {
            const size_t slot =
                static_cast<size_t>(curBucket_) & slotMask_;
            int32_t best = -1;
            int32_t best_prev = -1;
            for (int32_t prev = -1, i = slotHeads_[slot]; i >= 0;
                 prev = i, i = farArena_[i].next) {
                const FarNode &nd = farArena_[i];
                if (bucketOf(nd.when) != curBucket_)
                    continue; // a later revolution aliasing this slot
                if (best < 0 ||
                    before(Key{nd.when, nd.seq},
                           Key{farArena_[best].when,
                               farArena_[best].seq})) {
                    best = i;
                    best_prev = prev;
                }
            }
            if (best >= 0) {
                minValid_ = true;
                minNode_ = best;
                minPrev_ = best_prev;
                minSlot_ = slot;
                minBucket_ = curBucket_;
                return;
            }
            ++curBucket_;
            if (++advanced == slotHeads_.size()) {
                // A full revolution of empty buckets: everything
                // pending is over one wheel span ahead. Jump straight
                // to the earliest occupied bucket.
                uint64_t min_bucket = ~uint64_t{0};
                for (const int32_t head : slotHeads_)
                    for (int32_t i = head; i >= 0; i = farArena_[i].next)
                        min_bucket =
                            std::min(min_bucket, bucketOf(farArena_[i].when));
                curBucket_ = min_bucket;
                advanced = 0;
            }
        }
    }

    /** Sort key of the earliest pending far event. */
    Key
    farMinKey()
    {
        farLocateMin();
        const FarNode &nd = farArena_[minNode_];
        return Key{nd.when, nd.seq};
    }

    /** Remove and return the earliest pending far event. */
    Event
    farPop()
    {
        farLocateMin();
        FarNode &nd = farArena_[minNode_];
        const Event ev{nd.when, nd.seq, nd.payload, nd.depth};
        if (minPrev_ < 0)
            slotHeads_[minSlot_] = nd.next;
        else
            farArena_[minPrev_].next = nd.next;
        nd.next = farFree_;
        farFree_ = minNode_;
        minValid_ = false;
        --farCount_;
        // Track the mean dispatch gap so the bucket width can follow
        // the workload's event density.
        gapEma_ += (ev.when - lastFarWhen_ - gapEma_) * (1.0 / 32.0);
        lastFarWhen_ = ev.when;
        if (++farPopsSinceRetune_ >= kRetunePeriod) {
            farPopsSinceRetune_ = 0;
            maybeRetune();
        }
        return ev;
    }

    /**
     * Re-tune the wheel: aim the bucket width at a few mean dispatch
     * gaps and the bucket count at twice the pending population, so a
     * bucket scan touches O(1) nodes regardless of workload. Runs at
     * most every kRetunePeriod far dispatches; a rebuild relinks the
     * live nodes in place (no node is copied or reallocated).
     */
    void
    maybeRetune()
    {
        const double target =
            std::clamp(3.0 * gapEma_, 1e-6, 1e9);
        size_t nb = slotHeads_.size();
        while (nb < 2 * farCount_ && nb < kMaxSlots)
            nb *= 2;
        if (nb == slotHeads_.size() && target < 2.0 * wheelWidth_ &&
            target > 0.5 * wheelWidth_)
            return;
        retuneScratch_.clear();
        for (const int32_t head : slotHeads_)
            for (int32_t i = head; i >= 0; i = farArena_[i].next)
                retuneScratch_.push_back(i);
        wheelWidth_ = target;
        wheelInvWidth_ = 1.0 / target;
        slotHeads_.assign(nb, -1);
        slotMask_ = nb - 1;
        curBucket_ = bucketOf(ctx_->now);
        for (const int32_t i : retuneScratch_) {
            const size_t slot =
                static_cast<size_t>(bucketOf(farArena_[i].when)) &
                slotMask_;
            farArena_[i].next = slotHeads_[slot];
            slotHeads_[slot] = i;
        }
        minValid_ = false;
    }

    /** One far event: sort key, payload, and intrusive bucket link.
     *  The depth field occupies what was padding — FarNode stays 32
     *  bytes, so critical-path tracking costs the far wheel nothing. */
    struct FarNode
    {
        SimTime when;
        uint64_t seq;
        Payload payload;
        int32_t next; ///< next node in bucket chain / free list (-1 end)
        uint32_t depth; ///< dependency-chain length of this event
    };

    static constexpr size_t kInitialSlots = 1024;
    static constexpr size_t kMaxSlots = size_t{1} << 18;
    static constexpr uint32_t kRetunePeriod = 1024;

    std::vector<FarNode> farArena_;     ///< far-wheel node slab
    std::vector<int32_t> slotHeads_ =
        std::vector<int32_t>(kInitialSlots, -1); ///< bucket chain heads
    std::vector<int32_t> retuneScratch_; ///< live-node list for rebuilds
    size_t slotMask_ = kInitialSlots - 1;
    int32_t farFree_ = -1;              ///< slab free-list head
    size_t farCount_ = 0;               ///< live far events
    uint64_t curBucket_ = 0;            ///< dispatch scan position
    double wheelWidth_ = 1.0;           ///< bucket width (ns)
    double wheelInvWidth_ = 1.0;
    double gapEma_ = 1.0;               ///< mean far dispatch gap (ns)
    SimTime lastFarWhen_ = 0.0;
    uint32_t farPopsSinceRetune_ = 0;
    bool minValid_ = false;             ///< cached-minimum fields valid?
    int32_t minNode_ = -1;
    int32_t minPrev_ = -1;
    size_t minSlot_ = 0;
    uint64_t minBucket_ = 0;            ///< absolute bucket of cached min
    std::vector<Event> nowQ_;           ///< FIFO of zero-delay events
    size_t nowHead_ = 0;                ///< dispatch cursor into nowQ_
    std::vector<std::function<void()>> callbackSlab_;
    std::vector<size_t> freeCallbackSlots_;
    std::vector<Stream> streams_;       ///< completion streams
    std::vector<Waitable *> waitables_; ///< deadlock-report registry
    std::unordered_map<void *, std::string> agentNames_;
    uint64_t arenaGrowths_ = 0;
    /// Clock/sequence/counter block: private by default, shared when
    /// this engine is one shard of a DomainSet (see bindShared).
    SharedState own_{};
    SharedState *ctx_ = &own_;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_ENGINE_HPP
