/**
 * @file
 * Structured simulator failure reports.
 *
 * A simulation that stops making progress has historically been the
 * hardest class of model bug to debug: the engine's event queue
 * drains, run() returns, and the caller sees a half-finished makespan
 * with no indication of which agent never completed. The types here
 * turn those silent failures into structured errors:
 *
 *  - SimDeadlockError: the event queue drained while coroutine agents
 *    were still suspended on a blocking primitive (e.g. a BoundedQueue
 *    with no consumer). Carries one BlockedAgent record per suspended
 *    coroutine: who is blocked, on what resource, and since when.
 *  - SimLimitError: a watchdog budget (simulated time, wall-clock
 *    time, or event count — Engine::RunLimits) was exceeded. Carries a
 *    diagnostic snapshot of the engine state at the moment of breach.
 *  - SimFaultError: an injected hard fault exhausted its modeled
 *    retry budget (FaultConfig::maxRetries). The programs record the
 *    failure, drain the run cleanly, and the entry point throws this
 *    after Engine::run() returns — a coroutine must never throw
 *    through the engine, and an unrecoverable fault must surface as a
 *    typed error, never as a deadlock.
 */
#ifndef PGCN_SIM_DIAGNOSTICS_HPP
#define PGCN_SIM_DIAGNOSTICS_HPP

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace pgcn::sim {

/** One coroutine agent suspended on a blocking primitive. */
struct BlockedAgent
{
    /// Agent name (set via Engine::announce(), or a frame-address
    /// placeholder when the agent never announced itself).
    std::string agent;
    /// The resource it is waiting on and why ("core0.dma.queue
    /// (push: queue full)").
    std::string resource;
    /// Simulated time at which the agent suspended — its last point
    /// of progress.
    double blockedSinceNs = 0.0;
};

/**
 * The event queue drained with agents still blocked: every blocked
 * agent is waiting on a resource that only another blocked agent
 * could release.
 */
class SimDeadlockError : public SimError
{
  public:
    SimDeadlockError(double now, std::vector<BlockedAgent> blocked)
        : SimError(format(now, blocked)), blocked_(std::move(blocked)),
          whenNs_(now)
    {
    }

    /** The blocked-agent table, one entry per suspended coroutine. */
    const std::vector<BlockedAgent> &blocked() const { return blocked_; }

    /** Simulated time at which the queue drained. */
    double whenNs() const { return whenNs_; }

  private:
    static std::string
    format(double now, const std::vector<BlockedAgent> &blocked)
    {
        std::ostringstream os;
        os << "simulation deadlock at t=" << now << " ns: event queue "
           << "drained with " << blocked.size()
           << " agent(s) still blocked";
        for (const BlockedAgent &a : blocked) {
            os << "\n  - '" << a.agent << "' blocked on '" << a.resource
               << "' since t=" << a.blockedSinceNs << " ns";
        }
        return os.str();
    }

    std::vector<BlockedAgent> blocked_;
    double whenNs_ = 0.0;
};

/**
 * A run budget (Engine::RunLimits) was breached. what() includes the
 * exceeded budget and a full engine snapshot; snapshot() exposes the
 * snapshot on its own for log files.
 */
class SimLimitError : public SimError
{
  public:
    SimLimitError(const std::string &what_arg, std::string snapshot)
        : SimError(what_arg + "\n" + snapshot),
          snapshot_(std::move(snapshot))
    {
    }

    /** Engine diagnostic snapshot captured at the moment of breach. */
    const std::string &snapshot() const { return snapshot_; }

  private:
    std::string snapshot_;
};

/**
 * An injected hard fault was unrecoverable: the modeled recovery
 * protocol (timeout + exponential backoff) exhausted its retry budget
 * on one request/descriptor. Deterministic given (seed, workload) —
 * the same configuration fails at the same simulated time with the
 * same site string on every run.
 */
class SimFaultError : public SimError
{
  public:
    SimFaultError(std::string site, double when_ns, unsigned attempts)
        : SimError(format(site, when_ns, attempts)),
          site_(std::move(site)), whenNs_(when_ns), attempts_(attempts)
    {
    }

    /** The faulting site ("core3 feature read on slice 12"). */
    const std::string &site() const { return site_; }

    /** Simulated time at which the retry budget ran out. */
    double whenNs() const { return whenNs_; }

    /** Issue attempts consumed (retry budget + 1). */
    unsigned attempts() const { return attempts_; }

  private:
    static std::string
    format(const std::string &site, double when_ns, unsigned attempts)
    {
        std::ostringstream os;
        os << "unrecoverable fault at t=" << when_ns << " ns: " << site
           << " failed after " << attempts
           << " attempt(s); retry budget exhausted";
        return os.str();
    }

    std::string site_;
    double whenNs_ = 0.0;
    unsigned attempts_ = 0;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_DIAGNOSTICS_HPP
