/**
 * @file
 * A bounded FIFO queue with coroutine push/pop, used to model the
 * PIUMA DMA descriptor queue: producer MTP threads block when the
 * queue is full (hardware backpressure), the DMA engine consumer
 * blocks when it is empty.
 *
 * Hand-off is direct (a value moves straight from a waiting producer
 * to a consumer or vice versa) so there is no lost-wakeup re-check
 * loop; resumptions are scheduled through the engine at zero delay to
 * keep stack depth bounded and ordering deterministic. Zero-delay
 * wakeups land in the engine's allocation-free now-queue, so queue
 * hand-offs never touch the time-ordered far heap.
 */
#ifndef PGCN_SIM_QUEUE_HPP
#define PGCN_SIM_QUEUE_HPP

#include <algorithm>
#include <coroutine>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "sim/diagnostics.hpp"
#include "sim/engine.hpp"
#include "sim/ring.hpp"

namespace pgcn::sim {

/**
 * Bounded single-threaded (simulated-concurrency) FIFO.
 *
 * Registers with the engine as a Waitable: coroutines suspended on a
 * full/empty queue are invisible to the event arenas, so the queue
 * itself reports them when the engine needs to diagnose a drained
 * queue (SimDeadlockError) or dump a snapshot.
 *
 * @tparam T Element type; must be default-constructible and movable.
 */
template <typename T>
class BoundedQueue : public Engine::Waitable
{
  public:
    /**
     * @param engine Owning engine (used to schedule resumptions).
     * @param capacity Maximum buffered elements; must be positive.
     * @param name Diagnostic name used in deadlock reports.
     */
    BoundedQueue(Engine &engine, size_t capacity,
                 std::string name = "bounded-queue")
        : engine_(engine), capacity_(capacity), name_(std::move(name))
    {
        PGCN_ASSERT(capacity > 0, "queue capacity must be positive");
        engine_.registerWaitable(this);
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;
    BoundedQueue &operator=(BoundedQueue &&) = delete;

    /** Move keeps the engine's Waitable registration pointed here. */
    BoundedQueue(BoundedQueue &&other) noexcept
        : engine_(other.engine_), capacity_(other.capacity_),
          name_(std::move(other.name_)), items_(std::move(other.items_)),
          waitingProducers_(std::move(other.waitingProducers_)),
          waitingConsumers_(std::move(other.waitingConsumers_)),
          highWater_(other.highWater_)
    {
        engine_.replaceWaitable(&other, this);
    }

    /**
     * Destroy the frames of agents still suspended on this queue (an
     * aborted run leaves them parked here, outside the event arenas),
     * then drop the engine registration. No-op after a clean run.
     */
    ~BoundedQueue() override
    {
        while (!waitingProducers_.empty())
            waitingProducers_.pop_front().handle.destroy();
        while (!waitingConsumers_.empty())
            waitingConsumers_.pop_front().handle.destroy();
        engine_.unregisterWaitable(this);
    }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** Coroutines currently suspended on this queue. */
    size_t
    blockedCount() const override
    {
        return waitingProducers_.size() + waitingConsumers_.size();
    }

    /** Report every suspended producer/consumer for diagnostics. */
    void
    appendBlocked(std::vector<BlockedAgent> &out) const override
    {
        for (size_t i = 0; i < waitingProducers_.size(); ++i) {
            const PendingPush &p = waitingProducers_.at(i);
            out.push_back(
                BlockedAgent{engine_.agentName(p.handle.address()),
                             name_ + " (push: queue full)", p.since});
        }
        for (size_t i = 0; i < waitingConsumers_.size(); ++i) {
            const PendingPop &p = waitingConsumers_.at(i);
            out.push_back(
                BlockedAgent{engine_.agentName(p.handle.address()),
                             name_ + " (pop: queue empty)", p.since});
        }
    }

    /** Elements currently buffered. */
    size_t size() const { return items_.size(); }

    /** True if no elements are buffered. */
    bool empty() const { return items_.empty(); }

    /** Largest buffered occupancy observed. */
    size_t highWater() const { return highWater_; }

    /**
     * Awaitable push. Completes immediately if space is available or
     * a consumer is waiting; otherwise suspends until a pop frees a
     * slot. FIFO fairness among blocked producers.
     */
    auto
    push(T value)
    {
        struct Awaiter
        {
            BoundedQueue &q;
            T value;

            bool
            await_ready()
            {
                if (!q.waitingConsumers_.empty()) {
                    // Direct hand-off to the oldest waiting consumer.
                    auto waiter = q.waitingConsumers_.pop_front();
                    waiter.slot->emplace(std::move(value));
                    q.engine_.schedule(0.0, waiter.handle);
                    return true;
                }
                if (q.items_.size() < q.capacity_) {
                    q.items_.push_back(std::move(value));
                    q.highWater_ =
                        std::max(q.highWater_, q.items_.size());
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                q.waitingProducers_.push_back(
                    PendingPush{h, std::move(value), q.engine_.now()});
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this, std::move(value)};
    }

    /**
     * Awaitable pop. Completes immediately if an element is buffered;
     * otherwise suspends until a push arrives. Returns the element.
     */
    auto
    pop()
    {
        struct Awaiter
        {
            BoundedQueue &q;
            std::optional<T> slot;

            bool
            await_ready()
            {
                if (!q.items_.empty()) {
                    slot.emplace(q.items_.pop_front());
                    q.admitWaitingProducer();
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                q.waitingConsumers_.push_back(
                    PendingPop{h, &slot, q.engine_.now()});
            }

            T
            await_resume()
            {
                PGCN_ASSERT(slot.has_value(),
                            "queue pop resumed without a value");
                return std::move(*slot);
            }
        };
        return Awaiter{*this, std::nullopt};
    }

  private:
    struct PendingPush
    {
        std::coroutine_handle<> handle;
        T value;
        SimTime since = 0.0; ///< when the producer suspended
    };

    struct PendingPop
    {
        std::coroutine_handle<> handle;
        std::optional<T> *slot;
        SimTime since = 0.0; ///< when the consumer suspended
    };

    /** After a pop freed a slot, move one blocked producer's value in. */
    void
    admitWaitingProducer()
    {
        if (waitingProducers_.empty())
            return;
        auto pending = waitingProducers_.pop_front();
        items_.push_back(std::move(pending.value));
        highWater_ = std::max(highWater_, items_.size());
        engine_.schedule(0.0, pending.handle);
    }

    Engine &engine_;
    size_t capacity_;
    std::string name_;
    Ring<T> items_;
    Ring<PendingPush> waitingProducers_;
    Ring<PendingPop> waitingConsumers_;
    size_t highWater_ = 0;
};

} // namespace pgcn::sim

#endif // PGCN_SIM_QUEUE_HPP
