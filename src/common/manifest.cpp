#include "manifest.hpp"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"

namespace pgcn {

namespace {

constexpr uint64_t kFnv1aPrime = 1099511628211ull;

/** JSON-escape a string (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/** Shortest round-trippable decimal for a double. */
std::string
jsonNumber(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    // %.17g can produce "nan"/"inf", which are not JSON; clamp to null.
    if (std::strchr(buf, 'n') != nullptr || std::strchr(buf, 'i') != nullptr)
        return "null";
    return buf;
}

} // namespace

uint64_t
fnv1a64(const void *data, size_t len, uint64_t hash)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= kFnv1aPrime;
    }
    return hash;
}

uint64_t
fnv1a64(const std::string &text, uint64_t hash)
{
    return fnv1a64(text.data(), text.size(), hash);
}

uint64_t
fnv1a64(double value, uint64_t hash)
{
    // Hash the bit pattern: distinguishes -0.0 from 0.0, which is fine
    // for digests whose only job is detecting any numeric drift.
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a64(&bits, sizeof(bits), hash);
}

uint64_t
fnv1a64(uint64_t value, uint64_t hash)
{
    return fnv1a64(&value, sizeof(value), hash);
}

std::string
hashHex(uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::string
nowIso8601()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc {};
    gmtime_r(&now, &utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
}

std::string
RunManifest::toJsonLine() const
{
    std::ostringstream os;
    os << "{\"bench\":\"" << jsonEscape(bench) << '"';
    os << ",\"timestamp\":\"" << jsonEscape(timestamp) << '"';
    os << ",\"git_sha\":\"" << jsonEscape(gitSha) << '"';
    os << ",\"git_dirty\":" << (gitDirty ? "true" : "false");
    os << ",\"build_type\":\"" << jsonEscape(buildType) << '"';
    os << ",\"compiler\":\"" << jsonEscape(compiler) << '"';
    os << ",\"telemetry_compiled\":" << (telemetryCompiled ? "true" : "false");
    os << ",\"simd_tier\":\"" << jsonEscape(simdTier) << '"';
    os << ",\"numa_nodes\":" << numaNodes;
    os << ",\"host_threads\":" << hostThreads;
    os << ",\"config_hash\":\"" << jsonEscape(configHash) << '"';
    os << ",\"graph_hash\":\"" << jsonEscape(graphHash) << '"';
    os << ",\"seed\":" << seed;
    os << ",\"counter_digest\":\"" << jsonEscape(counterDigest) << '"';
    os << ",\"metrics\":{";
    for (size_t i = 0; i < metrics.size(); ++i) {
        if (i != 0)
            os << ',';
        os << '"' << jsonEscape(metrics[i].first)
           << "\":" << jsonNumber(metrics[i].second);
    }
    os << "},\"extra\":{";
    for (size_t i = 0; i < extra.size(); ++i) {
        if (i != 0)
            os << ',';
        os << '"' << jsonEscape(extra[i].first) << "\":\""
           << jsonEscape(extra[i].second) << '"';
    }
    os << "}}";
    return os.str();
}

bool
RunManifest::appendTo(const std::string &path) const
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("could not append run manifest to " + path);
        return false;
    }
    out << toJsonLine() << '\n';
    if (!out) {
        warn("short write appending run manifest to " + path);
        return false;
    }
    return true;
}

} // namespace pgcn
