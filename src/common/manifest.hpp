/**
 * @file
 * Run provenance manifests for the benchmark history log.
 *
 * Every benchmark run emits one RunManifest describing exactly what
 * ran (bench name, config and graph digests, seed), on what (git SHA,
 * build type, compiler, SIMD tier, NUMA topology), and what came out
 * (headline metrics plus a digest of the deterministic simulation
 * counters). Manifests append as single JSON lines to
 * results/history.jsonl, so the file is a grep-able, diff-able
 * flight recorder: tools/pgcn_report.py folds it into scalability
 * reports and regression checks.
 *
 * This header sits in pgcn_common and deliberately knows nothing
 * about kernels, NUMA, or the simulator: callers (bench_util) fill
 * the platform fields from the layers they already link.
 */
#ifndef PGCN_COMMON_MANIFEST_HPP
#define PGCN_COMMON_MANIFEST_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pgcn {

/** FNV-1a 64-bit offset basis (the seed for an empty hash). */
inline constexpr uint64_t kFnv1aOffset = 14695981039346656037ull;

/**
 * Fold @p len bytes at @p data into a running FNV-1a 64-bit hash.
 * FNV-1a because digests here only need to be stable and cheap, not
 * cryptographic: they answer "same config/graph as last run?".
 *
 * @param data Bytes to fold in.
 * @param len Number of bytes.
 * @param hash Running hash (start from kFnv1aOffset).
 * @return The updated hash.
 */
uint64_t fnv1a64(const void *data, size_t len,
                 uint64_t hash = kFnv1aOffset);

/** Fold a string (content only, not its length) into a hash. */
uint64_t fnv1a64(const std::string &text, uint64_t hash = kFnv1aOffset);

/** Fold a double's byte representation into a hash. */
uint64_t fnv1a64(double value, uint64_t hash = kFnv1aOffset);

/** Fold an unsigned integer's byte representation into a hash. */
uint64_t fnv1a64(uint64_t value, uint64_t hash = kFnv1aOffset);

/** Render a 64-bit hash as fixed-width lowercase hex. */
std::string hashHex(uint64_t hash);

/**
 * Provenance record for one benchmark run. Plain data: fill what you
 * know, leave the rest at the defaults, then toJsonLine()/appendTo().
 */
struct RunManifest
{
    /** Benchmark name (bench_util derives it from argv[0]). */
    std::string bench;
    /** Wall-clock start of the run, ISO-8601 UTC (from nowIso8601()). */
    std::string timestamp;
    /** Short git SHA the binary was configured from. */
    std::string gitSha;
    /** Whether the work tree was dirty at configure time. */
    bool gitDirty = false;
    /** CMake build type (Release, RelWithDebInfo, ...). */
    std::string buildType;
    /** Compiler id and version. */
    std::string compiler;
    /** Whether telemetry hooks were compiled in (PGCN_TELEMETRY). */
    bool telemetryCompiled = true;
    /** Active SIMD dispatch tier ("scalar", "avx2", "avx512"). */
    std::string simdTier;
    /** NUMA nodes visible to the process (0 = unknown/no libnuma). */
    unsigned numaNodes = 0;
    /** Hardware threads on the host. */
    unsigned hostThreads = 0;
    /** Digest of the sweep/benchmark configuration (hex). */
    std::string configHash;
    /** Digest of the input graph structure (hex; empty if no graph). */
    std::string graphHash;
    /** RNG seed for synthetic inputs. */
    uint64_t seed = 0;
    /**
     * Digest over the deterministic simulation counters (hex). Bit
     * -identical runs agree on this; host-dependent metrics (wall
     * seconds, events/sec) are excluded by the caller.
     */
    std::string counterDigest;
    /** Headline metrics, e.g. {"fig8/des/cores=16/gflops", 12.5}. */
    std::vector<std::pair<std::string, double>> metrics;
    /** Free-form annotations, e.g. {"jobs", "8"}. */
    std::vector<std::pair<std::string, std::string>> extra;

    /**
     * Serialise to one line of JSON (no trailing newline). Key order
     * is fixed so textual diffs of history.jsonl stay readable.
     */
    std::string toJsonLine() const;

    /**
     * Append this manifest as one JSON line to @p path, creating the
     * file and parent directory if needed.
     *
     * @param path Destination JSONL file (e.g. results/history.jsonl).
     * @return True on success; false (with a warn()) on I/O failure.
     */
    bool appendTo(const std::string &path) const;
};

/** Current wall-clock time as ISO-8601 UTC ("2026-02-07T12:34:56Z"). */
std::string nowIso8601();

} // namespace pgcn

#endif // PGCN_COMMON_MANIFEST_HPP
