/**
 * @file
 * Aligned-text and CSV table emitters.
 *
 * Every bench binary reports its figure/table data through these so
 * that output is uniform: a human-readable aligned table on stdout,
 * and optionally a machine-readable CSV file for plotting.
 */
#ifndef PGCN_COMMON_TABLE_HPP
#define PGCN_COMMON_TABLE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pgcn {

/**
 * A simple column-aligned table builder. Cells are strings; numeric
 * convenience overloads format with sensible defaults. Rows must all
 * have the same arity as the header.
 */
class Table
{
  public:
    /**
     * Create a table with the given column headers.
     *
     * @param title Caption printed above the table.
     * @param headers Column names; arity fixes the row width.
     */
    Table(std::string title, std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a C-string cell to the current row. */
    Table &cell(const char *value);

    /**
     * Append a floating-point cell.
     *
     * @param value The number to format.
     * @param precision Digits after the decimal point.
     */
    Table &cell(double value, int precision = 3);

    /** Append an integer cell. */
    Table &cell(int64_t value);

    /** Append an unsigned integer cell. */
    Table &cell(uint64_t value);

    /** Number of data rows so far. */
    size_t rowCount() const { return rows_.size(); }

    /**
     * Render as an aligned text table.
     *
     * @param os Destination stream.
     */
    void print(std::ostream &os) const;

    /**
     * Render as CSV (RFC-4180-ish: cells containing commas or quotes
     * are quoted).
     *
     * @param os Destination stream.
     */
    void printCsv(std::ostream &os) const;

    /**
     * Write the CSV rendering to @p path, creating/truncating the file.
     * Fatal on I/O failure.
     */
    void writeCsv(const std::string &path) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Format a byte count with a binary-unit suffix (e.g. "1.50 GiB").
 */
std::string humanBytes(double bytes);

/**
 * Format a nanosecond duration with an adaptive unit (ns/us/ms/s).
 */
std::string humanTimeNs(double ns);

} // namespace pgcn

#endif // PGCN_COMMON_TABLE_HPP
