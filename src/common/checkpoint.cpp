#include "common/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn {

namespace {

/** Shortest decimal form that round-trips the exact double. */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Minimal JSON string escaping for sweep-point keys and quarantine
 *  messages (which, unlike keys, may carry newlines and tabs from
 *  multi-line error strings — a raw newline would tear the record). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
        case '\\':
            out.push_back('\\');
            out.push_back(c);
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            out.push_back(c);
        }
    }
    return out;
}

/**
 * Parse one checkpoint line of the restricted grammar this class
 * writes: {"key":"...","name":number,...} for completed points, or
 * {"key":"...","quarantined":"message"} for poisoned ones (in which
 * case @p quarantined is set and @p values left empty). Returns false
 * on any malformed content (most commonly the truncated last line of
 * a crashed run) so the caller can skip it.
 */
bool
parseLine(const std::string &line, std::string &key,
          JsonlCheckpoint::Values &values,
          std::optional<std::string> &quarantined)
{
    quarantined.reset();
    const char *p = line.c_str();
    auto skipWs = [&] {
        while (*p == ' ' || *p == '\t')
            ++p;
    };
    auto parseString = [&](std::string &out) {
        if (*p != '"')
            return false;
        ++p;
        out.clear();
        while (*p != '"') {
            if (*p == '\0')
                return false;
            if (*p == '\\') {
                ++p;
                switch (*p) {
                case '\0':
                    return false;
                case 'n':
                    out.push_back('\n');
                    ++p;
                    continue;
                case 't':
                    out.push_back('\t');
                    ++p;
                    continue;
                case 'r':
                    out.push_back('\r');
                    ++p;
                    continue;
                default:
                    break; // \" and \\ fall through verbatim
                }
            }
            out.push_back(*p++);
        }
        ++p; // closing quote
        return true;
    };

    skipWs();
    if (*p++ != '{')
        return false;
    skipWs();
    std::string name;
    if (!parseString(name) || name != "key")
        return false;
    skipWs();
    if (*p++ != ':')
        return false;
    skipWs();
    if (!parseString(key))
        return false;
    skipWs();
    values.clear();
    while (*p == ',') {
        ++p;
        skipWs();
        if (!parseString(name))
            return false;
        skipWs();
        if (*p++ != ':')
            return false;
        skipWs();
        if (*p == '"') {
            // The only string-valued field the grammar admits is a
            // quarantine message.
            std::string message;
            if (name != "quarantined" || !parseString(message))
                return false;
            quarantined = std::move(message);
            skipWs();
            continue;
        }
        char *end = nullptr;
        const double v = std::strtod(p, &end);
        if (end == p)
            return false;
        p = end;
        values[name] = v;
        skipWs();
    }
    if (*p++ != '}')
        return false;
    skipWs();
    return *p == '\0';
}

} // namespace

JsonlCheckpoint::JsonlCheckpoint(const std::string &path, bool resume)
    : path_(path)
{
    if (resume) {
        std::ifstream in(path);
        if (in) {
            std::string line;
            size_t line_no = 0;
            while (std::getline(in, line)) {
                ++line_no;
                if (line.empty())
                    continue;
                std::string key;
                Values values;
                std::optional<std::string> quarantined;
                if (parseLine(line, key, values, quarantined)) {
                    if (quarantined) {
                        // Poisoned point: remember the failure so a
                        // resume never re-runs it. Last line wins, so
                        // a quarantine supersedes an (impossible in
                        // practice) earlier success and vice versa.
                        points_.erase(key);
                        failures_[key] = std::move(*quarantined);
                    } else {
                        failures_.erase(key);
                        points_[key] = std::move(values);
                    }
                } else {
                    // Almost always the torn final line of a crashed
                    // run; the point is recomputed, nothing is lost.
                    warn("checkpoint " + path + ":" +
                         std::to_string(line_no) +
                         ": skipping unparsable line");
                }
            }
        }
    }
    out_.open(path, resume ? (std::ios::out | std::ios::app)
                           : (std::ios::out | std::ios::trunc));
    if (!out_)
        PGCN_THROW(IoError, "cannot open checkpoint file: " << path);
}

void
JsonlCheckpoint::record(const std::string &key, const Values &values)
{
    if (!enabled())
        return;
    out_ << "{\"key\":\"" << escapeJson(key) << "\"";
    for (const auto &[name, value] : values)
        out_ << ",\"" << escapeJson(name) << "\":" << formatDouble(value);
    out_ << "}\n";
    // Flush now: the whole point of the checkpoint is surviving a
    // crash immediately after this record.
    out_.flush();
    if (!out_)
        PGCN_THROW(IoError, "I/O error writing checkpoint: " << path_);
    failures_.erase(key); // a success lifts any standing quarantine
    points_[key] = values;
}

void
JsonlCheckpoint::quarantine(const std::string &key,
                            const std::string &message)
{
    if (!enabled())
        return;
    out_ << "{\"key\":\"" << escapeJson(key) << "\",\"quarantined\":\""
         << escapeJson(message) << "\"}\n";
    out_.flush();
    if (!out_)
        PGCN_THROW(IoError, "I/O error writing checkpoint: " << path_);
    points_.erase(key);
    failures_[key] = message;
}

void
JsonlCheckpoint::writeFinalJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        PGCN_THROW(IoError, "cannot open sweep JSON for writing: " << path);
    out << "{\n  \"points\": {\n";
    bool first_point = true;
    for (const auto &[key, values] : points_) {
        if (!first_point)
            out << ",\n";
        first_point = false;
        out << "    \"" << escapeJson(key) << "\": {";
        bool first_value = true;
        for (const auto &[name, value] : values) {
            if (!first_value)
                out << ", ";
            first_value = false;
            out << "\"" << escapeJson(name)
                << "\": " << formatDouble(value);
        }
        out << "}";
    }
    out << "\n  }";
    if (!failures_.empty()) {
        // Quarantined points are reported, not silently dropped: the
        // consolidated JSON names every configuration that never
        // produced values and why.
        out << ",\n  \"quarantined\": {\n";
        bool first = true;
        for (const auto &[key, message] : failures_) {
            if (!first)
                out << ",\n";
            first = false;
            out << "    \"" << escapeJson(key) << "\": \""
                << escapeJson(message) << "\"";
        }
        out << "\n  }";
    }
    out << "\n}\n";
    if (!out)
        PGCN_THROW(IoError, "I/O error writing sweep JSON: " << path);
}

OrderedCheckpointWriter::OrderedCheckpointWriter(JsonlCheckpoint &ckpt,
                                                size_t count)
    : ckpt_(ckpt), count_(count)
{
}

void
OrderedCheckpointWriter::commit(size_t index, const std::string &key,
                                JsonlCheckpoint::Values values)
{
    std::lock_guard<std::mutex> lock(mutex_);
    PGCN_ASSERT(index >= next_ && !pending_.count(index),
                "sweep point resolved twice");
    pending_[index] =
        Pending{Pending::Kind::Write, key, std::move(values), {}};
    flushLocked();
}

void
OrderedCheckpointWriter::skip(size_t index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    PGCN_ASSERT(index >= next_ && !pending_.count(index),
                "sweep point resolved twice");
    pending_[index] = Pending {};
    flushLocked();
}

void
OrderedCheckpointWriter::fail(size_t index, const std::string &key,
                              std::string message)
{
    std::lock_guard<std::mutex> lock(mutex_);
    PGCN_ASSERT(index >= next_ && !pending_.count(index),
                "sweep point resolved twice");
    pending_[index] =
        Pending{Pending::Kind::Quarantine, key, {}, std::move(message)};
    flushLocked();
}

size_t
OrderedCheckpointWriter::resolved() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return next_ + pending_.size();
}

bool
OrderedCheckpointWriter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return next_ == count_ && pending_.empty();
}

void
OrderedCheckpointWriter::flushLocked()
{
    auto it = pending_.begin();
    while (it != pending_.end() && it->first == next_) {
        switch (it->second.kind) {
        case Pending::Kind::Write:
            ckpt_.record(it->second.key, it->second.values);
            break;
        case Pending::Kind::Quarantine:
            ckpt_.quarantine(it->second.key, it->second.message);
            break;
        case Pending::Kind::Skip:
            break;
        }
        it = pending_.erase(it);
        ++next_;
    }
}

} // namespace pgcn
