/**
 * @file
 * Crash-resilient sweep checkpointing.
 *
 * Paper-scale sweeps (hundreds of DES runs) die for mundane reasons —
 * OOM killers, wall-clock limits on shared machines, a single
 * diverging configuration. JsonlCheckpoint makes them restartable:
 * every completed sweep point is appended to a JSON-Lines file and
 * flushed immediately, so a crashed sweep can be re-invoked with
 * --resume and recompute only the missing points. Values round-trip
 * through "%.17g", which strtod parses back to the exact same double,
 * so a resumed sweep's consolidated output is byte-identical to an
 * uninterrupted run's.
 *
 * File format: one object per line,
 *   {"key":"middle/cores=4","gflops":1.2345,...}
 * A truncated final line (the crash happened mid-write) is skipped
 * with a warning; that point is simply recomputed.
 */
#ifndef PGCN_COMMON_CHECKPOINT_HPP
#define PGCN_COMMON_CHECKPOINT_HPP

#include <fstream>
#include <map>
#include <string>

namespace pgcn {

/** Append-only JSONL checkpoint of completed sweep points. */
class JsonlCheckpoint
{
  public:
    /// Metric name -> value for one sweep point. Ordered so the
    /// serialised form is deterministic.
    using Values = std::map<std::string, double>;

    /** Disabled checkpoint: contains() is false, record() a no-op. */
    JsonlCheckpoint() = default;

    /**
     * Open @p path for appending. With @p resume true, previously
     * completed points are loaded first (a missing file is an empty
     * checkpoint); with @p resume false any existing file is
     * truncated and the sweep starts over.
     *
     * @throws IoError when the file cannot be opened for writing.
     */
    JsonlCheckpoint(const std::string &path, bool resume);

    /** True when constructed with a path. */
    bool enabled() const { return !path_.empty(); }

    /** Completed points loaded or recorded so far. */
    size_t size() const { return points_.size(); }

    /** The values of point @p key, or nullptr if not yet completed. */
    const Values *
    find(const std::string &key) const
    {
        const auto it = points_.find(key);
        return it == points_.end() ? nullptr : &it->second;
    }

    /**
     * Record a completed point: stores it and appends one flushed
     * JSONL line so the point survives a crash immediately after.
     * No-op on a disabled checkpoint. Re-recording an existing key
     * overwrites in memory and appends a superseding line (the loader
     * keeps the last occurrence).
     */
    void record(const std::string &key, const Values &values);

    /**
     * Write every completed point as one consolidated JSON document,
     * sorted by key. Because values survive the JSONL round-trip
     * bit-exactly, a resumed sweep writes a byte-identical file to an
     * uninterrupted one.
     *
     * @throws IoError on I/O failure.
     */
    void writeFinalJson(const std::string &path) const;

  private:
    std::string path_;
    std::map<std::string, Values> points_;
    std::ofstream out_;
};

} // namespace pgcn

#endif // PGCN_COMMON_CHECKPOINT_HPP
