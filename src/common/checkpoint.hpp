/**
 * @file
 * Crash-resilient sweep checkpointing.
 *
 * Paper-scale sweeps (hundreds of DES runs) die for mundane reasons —
 * OOM killers, wall-clock limits on shared machines, a single
 * diverging configuration. JsonlCheckpoint makes them restartable:
 * every completed sweep point is appended to a JSON-Lines file and
 * flushed immediately, so a crashed sweep can be re-invoked with
 * --resume and recompute only the missing points. Values round-trip
 * through "%.17g", which strtod parses back to the exact same double,
 * so a resumed sweep's consolidated output is byte-identical to an
 * uninterrupted run's.
 *
 * File format: one object per line,
 *   {"key":"middle/cores=4","gflops":1.2345,...}
 * A truncated final line (the crash happened mid-write) is skipped
 * with a warning; that point is simply recomputed.
 *
 * Poisoned points — configurations whose run fails permanently (e.g.
 * an unrecoverable injected fault) — are *quarantined* instead:
 *   {"key":"middle/cores=4","quarantined":"error message"}
 * A --resume run sees the quarantine record and never re-executes the
 * point, so one poisoned configuration cannot wedge every subsequent
 * resume. A later successful record() for the same key supersedes the
 * quarantine (the loader keeps the last occurrence).
 */
#ifndef PGCN_COMMON_CHECKPOINT_HPP
#define PGCN_COMMON_CHECKPOINT_HPP

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

namespace pgcn {

/** Append-only JSONL checkpoint of completed sweep points. */
class JsonlCheckpoint
{
  public:
    /// Metric name -> value for one sweep point. Ordered so the
    /// serialised form is deterministic.
    using Values = std::map<std::string, double>;

    /** Disabled checkpoint: contains() is false, record() a no-op. */
    JsonlCheckpoint() = default;

    /**
     * Open @p path for appending. With @p resume true, previously
     * completed points are loaded first (a missing file is an empty
     * checkpoint); with @p resume false any existing file is
     * truncated and the sweep starts over.
     *
     * @throws IoError when the file cannot be opened for writing.
     */
    JsonlCheckpoint(const std::string &path, bool resume);

    /** True when constructed with a path. */
    bool enabled() const { return !path_.empty(); }

    /** Completed points loaded or recorded so far (quarantined points
     *  are tracked separately; see quarantinedCount()). */
    size_t size() const { return points_.size(); }

    /** The values of point @p key, or nullptr if not yet completed. */
    const Values *
    find(const std::string &key) const
    {
        const auto it = points_.find(key);
        return it == points_.end() ? nullptr : &it->second;
    }

    /** The quarantine message of point @p key, or nullptr when the
     *  point is not quarantined. */
    const std::string *
    findFailure(const std::string &key) const
    {
        const auto it = failures_.find(key);
        return it == failures_.end() ? nullptr : &it->second;
    }

    /** Quarantined points loaded or recorded so far. */
    size_t quarantinedCount() const { return failures_.size(); }

    /**
     * Record a completed point: stores it and appends one flushed
     * JSONL line so the point survives a crash immediately after.
     * No-op on a disabled checkpoint. Re-recording an existing key
     * overwrites in memory and appends a superseding line (the loader
     * keeps the last occurrence).
     */
    void record(const std::string &key, const Values &values);

    /**
     * Quarantine a permanently failing point: appends one flushed
     * {"key":...,"quarantined":"message"} line so a --resume run skips
     * the point instead of re-running it into the same failure. No-op
     * on a disabled checkpoint. record()ing the same key later lifts
     * the quarantine.
     */
    void quarantine(const std::string &key, const std::string &message);

    /**
     * Write every completed point as one consolidated JSON document,
     * sorted by key. Because values survive the JSONL round-trip
     * bit-exactly, a resumed sweep writes a byte-identical file to an
     * uninterrupted one.
     *
     * @throws IoError on I/O failure.
     */
    void writeFinalJson(const std::string &path) const;

  private:
    std::string path_;
    std::map<std::string, Values> points_;
    /// Quarantined point -> error message (kept out of points_ so
    /// size()/find() keep meaning "completed").
    std::map<std::string, std::string> failures_;
    std::ofstream out_;
};

/**
 * Thread-safe, order-preserving commit front-end for a JsonlCheckpoint.
 *
 * A parallel sweep completes points in whatever order its workers
 * finish them, but the checkpoint file must look exactly like a serial
 * run's: otherwise resuming a --jobs=8 sweep with --jobs=1 (or
 * comparing their outputs) would depend on scheduling luck. This
 * writer restores determinism by buffering out-of-order completions
 * and appending to the underlying checkpoint strictly in
 * submission-index order.
 *
 * Protocol: the sweep assigns each point a dense index 0..n-1 in
 * submission order, then every point is eventually resolved exactly
 * once via commit() (computed successfully) or skip() (failed, or
 * already present from --resume). Each resolution is buffered under a
 * mutex and a flush loop drains the longest committed prefix into
 * JsonlCheckpoint::record(). Since record() flushes each line, the
 * crash-resilience guarantee is unchanged: at most the buffered
 * out-of-order suffix is lost, and a resumed run recomputes it.
 */
class OrderedCheckpointWriter
{
  public:
    /** @param ckpt Destination checkpoint; must outlive this writer.
     *  @param count Total number of sweep points to be resolved. */
    OrderedCheckpointWriter(JsonlCheckpoint &ckpt, size_t count);

    /** Resolve point @p index with computed @p values. Buffers and
     *  flushes every point whose predecessors are all resolved.
     *  Safe to call from any thread. */
    void commit(size_t index, const std::string &key, JsonlCheckpoint::Values values);

    /** Resolve point @p index without writing anything (failed point
     *  or resume hit): later points can flush past it. Safe to call
     *  from any thread. */
    void skip(size_t index);

    /** Resolve point @p index as permanently failed: a quarantine
     *  record is appended (in order) so --resume never re-runs it.
     *  Safe to call from any thread. */
    void fail(size_t index, const std::string &key, std::string message);

    /** Points flushed to the checkpoint or skipped so far. */
    size_t resolved() const;

    /** True once all @p count points have been resolved and flushed. */
    bool done() const;

  private:
    /// One buffered resolution.
    struct Pending
    {
        enum class Kind : uint8_t
        {
            Skip,       ///< write nothing
            Write,      ///< record key/values
            Quarantine, ///< quarantine key with message
        };
        Kind kind = Kind::Skip;
        std::string key;
        JsonlCheckpoint::Values values;
        std::string message;
    };

    /// Drain the contiguous resolved prefix starting at next_.
    /// Caller must hold mutex_.
    void flushLocked();

    JsonlCheckpoint &ckpt_;
    size_t count_;
    mutable std::mutex mutex_;
    size_t next_ = 0; ///< lowest unresolved submission index
    std::map<size_t, Pending> pending_; ///< resolved but unflushed
};

} // namespace pgcn

#endif // PGCN_COMMON_CHECKPOINT_HPP
