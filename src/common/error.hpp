/**
 * @file
 * Typed, recoverable error taxonomy.
 *
 * Library code signals user-recoverable failures by throwing one of
 * these exception types instead of calling fatal() (which terminates
 * the process). The split of responsibilities:
 *
 *  - PGCN_ASSERT / panic(): internal invariant violations — a bug in
 *    this library. Still terminates (abort, core dump).
 *  - PGCN_THROW(SomeError, ...): invalid input the *caller* can
 *    recover from — a malformed graph file, a non-physical config, a
 *    mismatched tensor shape, a simulation that deadlocked or blew
 *    its budget. Sweep drivers catch pgcn::Error, log the point, and
 *    move on instead of losing hours of completed work.
 *  - fatal(): reserved for program top levels (CLI argument errors in
 *    a binary's main) where exiting *is* the recovery.
 *
 * The hierarchy is intentionally shallow — callers usually catch
 * pgcn::Error; the subtypes exist so tests and drivers can tell input
 * classes apart:
 *
 *   Error
 *    +- ConfigError    non-physical / inconsistent configuration
 *    +- GraphIoError   malformed, corrupt, or truncated graph files
 *    +- IoError        non-graph file output failures (CSV, traces)
 *    +- ShapeError     mismatched tensor/kernel dimensions
 *    +- SimError       simulation-runtime failures (see sim/diagnostics.hpp
 *                      for SimDeadlockError and SimLimitError)
 */
#ifndef PGCN_COMMON_ERROR_HPP
#define PGCN_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace pgcn {

/** Base of all recoverable library errors. */
class Error : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A configuration is non-physical or internally inconsistent. */
class ConfigError : public Error
{
  public:
    using Error::Error;
};

/** A graph file is missing, malformed, corrupt, or truncated. */
class GraphIoError : public Error
{
  public:
    using Error::Error;
};

/** A non-graph file operation failed (CSV, trace, checkpoint). */
class IoError : public Error
{
  public:
    using Error::Error;
};

/** Tensor or kernel dimensions do not line up. */
class ShapeError : public Error
{
  public:
    using Error::Error;
};

/** A simulation failed at runtime (deadlock, watchdog breach). */
class SimError : public Error
{
  public:
    using Error::Error;
};

/**
 * Config-validation helpers. Each checks one field and throws
 * ConfigError naming it — NaN and infinity are always rejected, so a
 * bad parameter fails at validate() instead of surfacing as inf/NaN
 * simulated timings three layers downstream.
 */
namespace check {

/** @p value must be a finite number (rejects NaN and +/-inf). */
void finite(double value, const char *name);

/** @p value must be finite and strictly positive. */
void positive(double value, const char *name);

/** @p value must be finite and >= 0. */
void nonNegative(double value, const char *name);

/** @p value must be finite and inside (0, 1]. */
void unitInterval(double value, const char *name);

/** @p value must be finite and inside [0, 1] (a probability). */
void probability(double value, const char *name);

/** @p value (a count) must be non-zero. */
void nonZero(unsigned value, const char *name);

} // namespace check

} // namespace pgcn

/**
 * Throw a typed recoverable error with a streamed message.
 * Usage: PGCN_THROW(ConfigError, "bandwidth " << bw << " must be > 0");
 */
#define PGCN_THROW(ErrorType, msg)                                          \
    do {                                                                    \
        std::ostringstream pgcn_throw_oss_;                                 \
        pgcn_throw_oss_ << msg;                                             \
        throw ErrorType(pgcn_throw_oss_.str());                            \
    } while (0)

#endif // PGCN_COMMON_ERROR_HPP
