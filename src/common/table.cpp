#include "table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "error.hpp"
#include "logging.hpp"

namespace pgcn {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    PGCN_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    if (!rows_.empty()) {
        PGCN_ASSERT(rows_.back().size() == headers_.size(),
                    "row " << rows_.size() - 1 << " has "
                           << rows_.back().size() << " cells, expected "
                           << headers_.size());
    }
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    PGCN_ASSERT(!rows_.empty(), "cell() before row()");
    PGCN_ASSERT(rows_.back().size() < headers_.size(),
                "too many cells in row " << rows_.size() - 1);
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(const char *value)
{
    return cell(std::string(value));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

Table &
Table::cell(int64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(uint64_t value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    os << "\n";
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(cells[c]);
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        PGCN_THROW(IoError, "cannot open CSV output file: " << path);
    printCsv(out);
    if (!out)
        PGCN_THROW(IoError, "I/O error writing CSV output file: " << path);
}

std::string
humanBytes(double bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
    int idx = 0;
    while (bytes >= 1024.0 && idx < 5) {
        bytes /= 1024.0;
        ++idx;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes << " "
        << suffixes[idx];
    return oss.str();
}

std::string
humanTimeNs(double ns)
{
    static const char *suffixes[] = {"ns", "us", "ms", "s"};
    int idx = 0;
    while (ns >= 1000.0 && idx < 3) {
        ns /= 1000.0;
        ++idx;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(ns < 10 ? 2 : 1) << ns << " "
        << suffixes[idx];
    return oss.str();
}

} // namespace pgcn
