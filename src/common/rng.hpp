/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component (RMAT generation, feature initialisation,
 * workload shuffling) takes an explicit seed so that simulations and
 * benchmarks are bit-reproducible across runs. The generator is
 * xoshiro256**, seeded through SplitMix64 as its authors recommend.
 */
#ifndef PGCN_COMMON_RNG_HPP
#define PGCN_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace pgcn {

/**
 * SplitMix64 step: advances @p state and returns the next 64-bit output.
 * Used for seeding and as a cheap stateless hash.
 *
 * @param state The generator state; advanced in place.
 * @return The next pseudo-random 64-bit value.
 */
inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** pseudo-random generator. Satisfies the C++
 * UniformRandomBitGenerator requirements, so it composes with
 * <random> distributions, while being much faster than mt19937_64.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /**
     * Construct from a 64-bit seed, expanded via SplitMix64.
     *
     * @param seed Any value; equal seeds give equal sequences.
     */
    explicit Rng(uint64_t seed = 0x9052cafe1dea1ULL)
    {
        for (auto &word : state_)
            word = splitMix64(seed);
    }

    /** Smallest value next() can return. */
    static constexpr uint64_t min() { return 0; }
    /** Largest value next() can return. */
    static constexpr uint64_t max() { return ~0ULL; }

    /** Generate the next 64-bit pseudo-random value. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /**
     * Uniform double in [0, 1).
     */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /**
     * Uniform integer in [0, bound). Uses Lemire's multiply-shift
     * reduction; slight modulo bias is acceptable for workload
     * generation (bound << 2^64).
     *
     * @param bound Exclusive upper bound; must be non-zero.
     */
    uint64_t
    uniformInt(uint64_t bound)
    {
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
    }

    /**
     * Uniform double in [lo, hi).
     */
    double
    uniformRange(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state_;
};

} // namespace pgcn

#endif // PGCN_COMMON_RNG_HPP
