/**
 * @file
 * Error-reporting and status-message primitives.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors
 * (bad configuration, impossible parameters). Both terminate;
 * warn()/inform()/debug() never do.
 *
 * Non-fatal messages are severity-filtered: the PGCN_LOG environment
 * variable (error | warn | info | debug, case-insensitive) sets the
 * maximum severity printed, defaulting to info. The legacy PIUMA_LOG
 * name is honoured as a deprecated alias (with a one-time warning)
 * when PGCN_LOG is unset. panic/fatal output is never suppressed.
 */
#ifndef PGCN_COMMON_LOGGING_HPP
#define PGCN_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace pgcn {

/**
 * Terminate with an internal-bug diagnostic. Call when an invariant
 * that no user input should be able to violate has been violated.
 * Calls std::abort() so a core dump / debugger trap is possible.
 *
 * @param file Source file of the failure (use __FILE__).
 * @param line Source line of the failure (use __LINE__).
 * @param message Human-readable description of the violated invariant.
 */
[[noreturn]] void panic(const char *file, int line, const std::string &message);

/**
 * Terminate with a user-error diagnostic. Call when the simulation
 * cannot continue due to a configuration or argument error that is
 * the caller's fault. Exits with status 1 (no core dump).
 *
 * @param message Human-readable description of the user error.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Severity of a non-fatal log message, ordered from most to least
 * severe. The active level admits everything at or above it.
 */
enum class LogLevel
{
    Error = 0, ///< only panic/fatal diagnostics (never suppressed)
    Warn = 1,  ///< warn() and above
    Info = 2,  ///< inform() and above (the default)
    Debug = 3, ///< everything, including debug()
};

/**
 * The active log level. Initialised from the PGCN_LOG environment
 * variable (or its deprecated PIUMA_LOG alias) on first use;
 * overridable with setLogLevel().
 */
LogLevel logLevel();

/**
 * Override the active log level programmatically (takes precedence
 * over PGCN_LOG until refreshLogLevelFromEnv() is called).
 */
void setLogLevel(LogLevel level);

/**
 * Re-read PGCN_LOG (falling back to the deprecated PIUMA_LOG alias)
 * and make it the active level (missing or unparsable values fall
 * back to Info).
 */
void refreshLogLevelFromEnv();

/**
 * Parse a log-level name ("error", "warn"/"warning", "info",
 * "debug", case-insensitive) to its LogLevel.
 *
 * @param text The name to parse; may be null.
 * @param fallback Returned when @p text is null or unrecognised.
 */
LogLevel parseLogLevel(const char *text, LogLevel fallback);

/** Whether a message of @p severity passes the active filter. */
bool logEnabled(LogLevel severity);

/**
 * Print a non-fatal warning to stderr. Use when behaviour may be
 * surprising but execution can continue.
 *
 * @param message The warning text.
 */
void warn(const std::string &message);

/**
 * Print an informational status message to stderr.
 *
 * @param message The status text.
 */
void inform(const std::string &message);

/**
 * Print a debugging trace message to stderr; suppressed unless
 * PGCN_LOG=debug (or setLogLevel(LogLevel::Debug)).
 *
 * @param message The trace text.
 */
void debug(const std::string &message);

} // namespace pgcn

/**
 * Assert an internal invariant; on failure, panic with the stringified
 * condition and an optional message. Active in all build types because
 * simulator correctness bugs silently corrupt results otherwise.
 */
#define PGCN_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream pgcn_assert_oss_;                            \
            pgcn_assert_oss_ << "assertion `" #cond "` failed: " << msg;    \
            ::pgcn::panic(__FILE__, __LINE__, pgcn_assert_oss_.str());      \
        }                                                                   \
    } while (0)

/** Panic unconditionally with a streamed message. */
#define PGCN_PANIC(msg)                                                     \
    do {                                                                    \
        std::ostringstream pgcn_panic_oss_;                                 \
        pgcn_panic_oss_ << msg;                                             \
        ::pgcn::panic(__FILE__, __LINE__, pgcn_panic_oss_.str());           \
    } while (0)

/** Fatal user error with a streamed message. */
#define PGCN_FATAL(msg)                                                     \
    do {                                                                    \
        std::ostringstream pgcn_fatal_oss_;                                 \
        pgcn_fatal_oss_ << msg;                                             \
        ::pgcn::fatal(pgcn_fatal_oss_.str());                               \
    } while (0)

#endif // PGCN_COMMON_LOGGING_HPP
