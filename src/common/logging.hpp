/**
 * @file
 * Error-reporting and status-message primitives.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors
 * (bad configuration, impossible parameters). Both terminate;
 * warn()/inform() never do.
 */
#ifndef PGCN_COMMON_LOGGING_HPP
#define PGCN_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace pgcn {

/**
 * Terminate with an internal-bug diagnostic. Call when an invariant
 * that no user input should be able to violate has been violated.
 * Calls std::abort() so a core dump / debugger trap is possible.
 *
 * @param file Source file of the failure (use __FILE__).
 * @param line Source line of the failure (use __LINE__).
 * @param message Human-readable description of the violated invariant.
 */
[[noreturn]] void panic(const char *file, int line, const std::string &message);

/**
 * Terminate with a user-error diagnostic. Call when the simulation
 * cannot continue due to a configuration or argument error that is
 * the caller's fault. Exits with status 1 (no core dump).
 *
 * @param message Human-readable description of the user error.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Print a non-fatal warning to stderr. Use when behaviour may be
 * surprising but execution can continue.
 *
 * @param message The warning text.
 */
void warn(const std::string &message);

/**
 * Print an informational status message to stderr.
 *
 * @param message The status text.
 */
void inform(const std::string &message);

} // namespace pgcn

/**
 * Assert an internal invariant; on failure, panic with the stringified
 * condition and an optional message. Active in all build types because
 * simulator correctness bugs silently corrupt results otherwise.
 */
#define PGCN_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream pgcn_assert_oss_;                            \
            pgcn_assert_oss_ << "assertion `" #cond "` failed: " << msg;    \
            ::pgcn::panic(__FILE__, __LINE__, pgcn_assert_oss_.str());      \
        }                                                                   \
    } while (0)

/** Panic unconditionally with a streamed message. */
#define PGCN_PANIC(msg)                                                     \
    do {                                                                    \
        std::ostringstream pgcn_panic_oss_;                                 \
        pgcn_panic_oss_ << msg;                                             \
        ::pgcn::panic(__FILE__, __LINE__, pgcn_panic_oss_.str());           \
    } while (0)

/** Fatal user error with a streamed message. */
#define PGCN_FATAL(msg)                                                     \
    do {                                                                    \
        std::ostringstream pgcn_fatal_oss_;                                 \
        pgcn_fatal_oss_ << msg;                                             \
        ::pgcn::fatal(pgcn_fatal_oss_.str());                               \
    } while (0)

#endif // PGCN_COMMON_LOGGING_HPP
