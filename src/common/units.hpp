/**
 * @file
 * Physical-unit constants and conversions used by the timing models.
 *
 * All simulator time is kept in double-precision nanoseconds; all
 * data volumes in double-precision bytes. Helper constants make call
 * sites read like the paper's equations (GB/s, TB, ns).
 */
#ifndef PGCN_COMMON_UNITS_HPP
#define PGCN_COMMON_UNITS_HPP

#include <cstdint>

namespace pgcn::units {

/** Bytes per kibibyte/mebibyte/gibibyte (binary). */
constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;
constexpr double kTiB = 1024.0 * kGiB;

/** Bytes per decimal KB/MB/GB/TB (used for bandwidth specs). */
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;
constexpr double kTB = 1e12;

/** Nanoseconds per microsecond/millisecond/second. */
constexpr double kUs = 1e3;
constexpr double kMs = 1e6;
constexpr double kSec = 1e9;

/**
 * Convert a bandwidth in GB/s to bytes-per-nanosecond, the unit the
 * discrete-event simulator uses internally.
 *
 * @param gbps Bandwidth in decimal gigabytes per second.
 * @return The same bandwidth in bytes per nanosecond.
 */
constexpr double
gbPerSecToBytesPerNs(double gbps)
{
    return gbps; // 1 GB/s == 1e9 B / 1e9 ns == 1 B/ns
}

/**
 * Convert seconds to nanoseconds.
 */
constexpr double
secondsToNs(double seconds)
{
    return seconds * kSec;
}

/**
 * Convert nanoseconds to seconds.
 */
constexpr double
nsToSeconds(double ns)
{
    return ns / kSec;
}

/**
 * Compute GFLOP/s from a FLOP count and a duration in nanoseconds.
 *
 * @param flops Total floating-point operations.
 * @param ns Duration in nanoseconds; must be positive.
 */
constexpr double
gflops(double flops, double ns)
{
    return flops / ns; // FLOP/ns == GFLOP/s
}

} // namespace pgcn::units

#endif // PGCN_COMMON_UNITS_HPP
