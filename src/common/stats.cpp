#include "stats.hpp"

#include <algorithm>
#include <cmath>

#include "logging.hpp"

namespace pgcn {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets + 2, 0)
{
    PGCN_ASSERT(hi > lo, "histogram range [" << lo << ", " << hi
                                             << ") is empty");
    PGCN_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    size_t slot;
    if (x < lo_) {
        slot = 0;
    } else {
        const auto b = static_cast<size_t>((x - lo_) / width_);
        slot = std::min(b, numBuckets()) + 1; // clamps overflow
    }
    ++counts_[slot];
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::percentile(double p) const
{
    PGCN_ASSERT(count_ > 0, "percentile of an empty histogram");
    PGCN_ASSERT(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
    // Target rank in [1, count]; find the bucket whose cumulative
    // count first reaches it.
    const double rank =
        std::max(1.0, p / 100.0 * static_cast<double>(count_));
    uint64_t cum = 0;
    for (size_t slot = 0; slot < counts_.size(); ++slot) {
        if (counts_[slot] == 0)
            continue;
        const uint64_t prev = cum;
        cum += counts_[slot];
        if (static_cast<double>(cum) < rank)
            continue;
        // Bucket bounds; the open-ended outlier bins use the observed
        // extremes instead of +-inf.
        const double b_lo =
            slot == 0 ? min_
                      : lo_ + static_cast<double>(slot - 1) * width_;
        const double b_hi = slot + 1 == counts_.size()
                                ? max_
                                : lo_ + static_cast<double>(slot) * width_;
        const double frac = (rank - static_cast<double>(prev)) /
                            static_cast<double>(counts_[slot]);
        return std::clamp(b_lo + frac * (b_hi - b_lo), min_, max_);
    }
    return max_; // unreachable: cum == count_ >= rank by the last slot
}

Histogram &
Histogram::merge(const Histogram &other)
{
    PGCN_ASSERT(counts_.size() == other.counts_.size() &&
                    lo_ == other.lo_ && width_ == other.width_,
                "merging histograms of different shapes");
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    return *this;
}

double
percentile(std::vector<double> samples, double p)
{
    PGCN_ASSERT(!samples.empty(), "percentile of empty sample set");
    PGCN_ASSERT(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double
geomean(const std::vector<double> &samples)
{
    PGCN_ASSERT(!samples.empty(), "geomean of empty sample set");
    double log_sum = 0.0;
    for (double s : samples) {
        PGCN_ASSERT(s > 0.0, "geomean requires positive samples, got " << s);
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

} // namespace pgcn
