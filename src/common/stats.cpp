#include "stats.hpp"

#include <algorithm>
#include <cmath>

#include "logging.hpp"

namespace pgcn {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> samples, double p)
{
    PGCN_ASSERT(!samples.empty(), "percentile of empty sample set");
    PGCN_ASSERT(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double
geomean(const std::vector<double> &samples)
{
    PGCN_ASSERT(!samples.empty(), "geomean of empty sample set");
    double log_sum = 0.0;
    for (double s : samples) {
        PGCN_ASSERT(s > 0.0, "geomean requires positive samples, got " << s);
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

} // namespace pgcn
