#include "common/error.hpp"

#include <cmath>

namespace pgcn::check {

void
finite(double value, const char *name)
{
    if (!std::isfinite(value))
        PGCN_THROW(ConfigError, name << " must be finite, got " << value);
}

void
positive(double value, const char *name)
{
    finite(value, name);
    if (value <= 0.0)
        PGCN_THROW(ConfigError,
                   name << " must be > 0, got " << value);
}

void
nonNegative(double value, const char *name)
{
    finite(value, name);
    if (value < 0.0)
        PGCN_THROW(ConfigError,
                   name << " must be >= 0, got " << value);
}

void
unitInterval(double value, const char *name)
{
    finite(value, name);
    if (value <= 0.0 || value > 1.0)
        PGCN_THROW(ConfigError,
                   name << " must be in (0, 1], got " << value);
}

void
probability(double value, const char *name)
{
    finite(value, name);
    if (value < 0.0 || value > 1.0)
        PGCN_THROW(ConfigError,
                   name << " must be in [0, 1], got " << value);
}

void
nonZero(unsigned value, const char *name)
{
    if (value == 0)
        PGCN_THROW(ConfigError, name << " must be non-zero");
}

} // namespace pgcn::check
