#include "logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pgcn {

namespace {

/** The active severity filter (lazily initialised from PGCN_LOG).
 *  Atomic: sweep workers consult it concurrently, and the first log
 *  call may happen on any thread. */
std::atomic<LogLevel> g_level { LogLevel::Info };
std::atomic<bool> g_level_initialized { false };
/** One-time deprecation warning for the legacy PIUMA_LOG name. */
std::atomic<bool> g_alias_warned { false };

LogLevel
activeLevel()
{
    if (!g_level_initialized.load(std::memory_order_acquire))
        refreshLogLevelFromEnv();
    return g_level.load(std::memory_order_relaxed);
}

} // namespace

LogLevel
parseLogLevel(const char *text, LogLevel fallback)
{
    if (text == nullptr)
        return fallback;
    std::string lower;
    for (const char *p = text; *p != '\0'; ++p)
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
    if (lower == "error")
        return LogLevel::Error;
    if (lower == "warn" || lower == "warning")
        return LogLevel::Warn;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "debug")
        return LogLevel::Debug;
    return fallback;
}

LogLevel
logLevel()
{
    return activeLevel();
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
    g_level_initialized.store(true, std::memory_order_release);
}

void
refreshLogLevelFromEnv()
{
    // PGCN_LOG is the canonical knob (matching PGCN_SIMD / PGCN_NUMA /
    // PGCN_TELEMETRY); PIUMA_LOG remains as a deprecated alias.
    const char *text = std::getenv("PGCN_LOG");
    if (text == nullptr) {
        text = std::getenv("PIUMA_LOG");
        if (text != nullptr &&
            !g_alias_warned.exchange(true, std::memory_order_relaxed)) {
            std::fprintf(stderr,
                         "warn: PIUMA_LOG is deprecated; use PGCN_LOG\n");
        }
    }
    g_level.store(parseLogLevel(text, LogLevel::Info),
                  std::memory_order_relaxed);
    g_level_initialized.store(true, std::memory_order_release);
}

bool
logEnabled(LogLevel severity)
{
    return static_cast<int>(severity) <= static_cast<int>(activeLevel());
}

void
panic(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", message.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
warn(const std::string &message)
{
    if (logEnabled(LogLevel::Warn))
        std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
inform(const std::string &message)
{
    if (logEnabled(LogLevel::Info))
        std::fprintf(stderr, "info: %s\n", message.c_str());
}

void
debug(const std::string &message)
{
    if (logEnabled(LogLevel::Debug))
        std::fprintf(stderr, "debug: %s\n", message.c_str());
}

} // namespace pgcn
