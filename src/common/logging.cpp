#include "logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace pgcn {

void
panic(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", message.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
warn(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
inform(const std::string &message)
{
    std::fprintf(stderr, "info: %s\n", message.c_str());
}

} // namespace pgcn
