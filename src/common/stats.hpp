/**
 * @file
 * Small statistics helpers used by benches and tests: running
 * mean/variance (Welford), min/max tracking, and percentile extraction.
 */
#ifndef PGCN_COMMON_STATS_HPP
#define PGCN_COMMON_STATS_HPP

#include <cstddef>
#include <limits>
#include <vector>

namespace pgcn {

/**
 * Streaming scalar statistics using Welford's online algorithm.
 * Numerically stable for long accumulation runs.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added so far. */
    size_t count() const { return count_; }

    /** Mean of the samples; 0 if empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance; 0 if fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf if empty. */
    double min() const { return min_; }

    /** Largest sample; -inf if empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Return the p-th percentile (0..100) of @p samples using linear
 * interpolation between closest ranks. The input is copied and sorted.
 *
 * @param samples Sample set; must be non-empty.
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> samples, double p);

/**
 * Geometric mean of @p samples; all samples must be positive.
 *
 * @param samples Non-empty set of positive values.
 */
double geomean(const std::vector<double> &samples);

} // namespace pgcn

#endif // PGCN_COMMON_STATS_HPP
