/**
 * @file
 * Small statistics helpers used by benches and tests: running
 * mean/variance (Welford), min/max tracking, and percentile extraction.
 */
#ifndef PGCN_COMMON_STATS_HPP
#define PGCN_COMMON_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace pgcn {

/**
 * Streaming scalar statistics using Welford's online algorithm.
 * Numerically stable for long accumulation runs.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added so far. */
    size_t count() const { return count_; }

    /** Mean of the samples; 0 if empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance; 0 if fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf if empty. */
    double min() const { return min_; }

    /** Largest sample; -inf if empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A fixed-bucket histogram over [lo, hi): @p buckets equal-width bins
 * plus underflow/overflow bins, with O(1) insertion and approximate
 * percentile extraction by linear interpolation inside the covering
 * bucket. Unlike percentile() below it never stores samples, so it is
 * safe to feed from a simulator hot path (millions of observations).
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the bucketed range.
     * @param hi Upper bound of the bucketed range; must exceed @p lo.
     * @param buckets Number of equal-width buckets; must be positive.
     */
    Histogram(double lo, double hi, size_t buckets);

    /** Record one sample (any finite value; outliers hit the
     *  underflow/overflow bins). */
    void add(double x);

    /** Samples recorded so far. */
    uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Mean of the samples; 0 if empty. */
    double mean() const;

    /** Smallest sample; +inf if empty. */
    double min() const { return min_; }

    /** Largest sample; -inf if empty. */
    double max() const { return max_; }

    /**
     * Approximate p-th percentile (0..100): locate the bucket holding
     * the target rank and interpolate linearly inside it, clamped to
     * the observed [min, max]. Exact for p=0 and p=100; must not be
     * called on an empty histogram.
     */
    double percentile(double p) const;

    /** Number of equal-width buckets (excluding under/overflow). */
    size_t numBuckets() const { return counts_.size() - 2; }

    /** Lower bound of the bucketed range. */
    double lo() const { return lo_; }

    /** Upper bound of the bucketed range. */
    double
    hi() const
    {
        return lo_ + width_ * static_cast<double>(numBuckets());
    }

    /** Samples in bucket @p i (0-based, excluding under/overflow). */
    uint64_t bucketCount(size_t i) const { return counts_[i + 1]; }

    /** Samples below the bucketed range. */
    uint64_t underflow() const { return counts_.front(); }

    /** Samples at or above the bucketed range. */
    uint64_t overflow() const { return counts_.back(); }

    /** Fold @p other (same shape required) into this histogram. */
    Histogram &merge(const Histogram &other);

  private:
    double lo_;
    double width_; ///< bucket width, (hi - lo) / buckets
    std::vector<uint64_t> counts_; ///< [underflow, buckets..., overflow]
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Return the p-th percentile (0..100) of @p samples using linear
 * interpolation between closest ranks. The input is copied and sorted.
 *
 * @param samples Sample set; must be non-empty.
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> samples, double p);

/**
 * Geometric mean of @p samples; all samples must be positive.
 *
 * @param samples Non-empty set of positive values.
 */
double geomean(const std::vector<double> &samples);

} // namespace pgcn

#endif // PGCN_COMMON_STATS_HPP
