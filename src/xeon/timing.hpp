/**
 * @file
 * Analytical Xeon timing: the STREAM-style bandwidth-vs-threads curve
 * of Fig. 8 (left), a cache-reuse-corrected SpMM model, a Dense-MM
 * roofline and the element-wise glue cost. These reproduce the CPU
 * columns of Figs. 2, 3, 8 and 9.
 */
#ifndef PGCN_XEON_TIMING_HPP
#define PGCN_XEON_TIMING_HPP

#include "model/spmm_model.hpp"
#include "xeon/config.hpp"

namespace pgcn::telemetry {
class Registry;
} // namespace pgcn::telemetry

namespace pgcn::xeon {

/**
 * Route every subsequent Xeon model evaluation into @p registry:
 * spmmTimeNs / denseMmTimeNs / glueTimeNs accumulate into the
 * xeon.model.{spmm,dense,glue}_ns counters (plus a .calls counter
 * each), and spmmTrafficBytes into xeon.model.spmm_traffic_bytes.
 * Null detaches. The binding is per-thread: sweep workers each bind
 * their own session registry (telemetry::bindModelTelemetry does this
 * for all models at once), and unbound threads record nothing.
 */
void setTelemetryRegistry(telemetry::Registry *registry);

/**
 * Effective memory bandwidth (bytes/ns == GB/s) with @p threads
 * OpenMP threads spread evenly across sockets (the numactl placement
 * the paper uses). Rises ~linearly until the socket controllers
 * saturate, stays flat to the physical core count, then *decreases*
 * in the hyper-threading region because extra contexts contend on the
 * same controllers (the measured Fig. 8 left behaviour).
 *
 * @param cfg Machine description.
 * @param threads Active thread count (>= 1).
 */
double streamBandwidth(const XeonConfig &cfg, unsigned threads);

/**
 * Fraction of feature-row reads served by cache, for a working set of
 * @p num_vertices rows of @p k floats against the machine's combined
 * caches. Uniform graphs: hit rate ~ resident fraction. Skewed
 * graphs: hot vertices dominate the access stream, so the hit rate is
 * (resident fraction)^skewExponent — far higher than uniform, which
 * is how the CPU stays competitive on *products* in Fig. 8 (middle).
 *
 * @param skewed Whether the graph has a power-law degree profile.
 */
double featureCacheHitRate(const XeonConfig &cfg, uint64_t num_vertices,
                           uint64_t k, bool skewed = false);

/**
 * DRAM traffic (bytes) of one SpMM after cache-reuse correction:
 * every distinct feature row is read at least once (compulsory), and
 * the remaining (|E| - |V|) accesses miss at (1 - hit rate).
 */
double spmmTrafficBytes(const XeonConfig &cfg, const model::SpmmWorkload &w,
                        bool skewed = false);

/**
 * SpMM execution time (ns) with @p threads threads: corrected traffic
 * over gather-derated effective bandwidth.
 */
double spmmTimeNs(const XeonConfig &cfg, const model::SpmmWorkload &w,
                  unsigned threads, bool skewed = false);

/**
 * Dense update time (ns) for (|V| x k_in) * (k_in x k_out): roofline
 * over AVX-512 peak FLOPS and streaming bandwidth.
 */
double denseMmTimeNs(const XeonConfig &cfg, uint64_t num_vertices,
                     uint64_t k_in, uint64_t k_out, unsigned threads);

/**
 * Glue time (ns): one activation read-modify-write pass over the
 * |V| x k features plus the per-kernel framework overhead. When the
 * working set no longer fits in cache the traffic is uncacheable,
 * which is how the paper explains the growing Glue share on papers.
 */
double glueTimeNs(const XeonConfig &cfg, uint64_t num_vertices, uint64_t k,
                  unsigned threads);

/**
 * Random-walk throughput (steps/ns) for neighbourhood sampling: each
 * step is two dependent random DRAM accesses; each core overlaps a
 * handful of independent walks through its out-of-order window. The
 * paper's Section VI argument: this latency-bound kernel is where
 * PIUMA's 16K threads beat a CPU hardest.
 *
 * @param cfg Machine description.
 * @param threads Worker threads (capped at logical cores).
 */
double randomWalkStepsPerNs(const XeonConfig &cfg, unsigned threads);

} // namespace pgcn::xeon

#endif // PGCN_XEON_TIMING_HPP
