#include "xeon/timing.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "telemetry/model_bind.hpp"
#include "telemetry/registry.hpp"

namespace pgcn::xeon {

namespace {

/** Attached metric sink; null = model evaluations record nothing.
 *  Thread-local: sweep workers bind their own Session's registry via
 *  telemetry::bindModelTelemetry, so concurrent sweep points never
 *  share (or race on) a sink. */
thread_local telemetry::Registry *g_model_registry = nullptr;

/** Expose this TU's setter to the thread-binding rendezvous. */
[[maybe_unused]] const bool g_binder_registered =
    telemetry::registerModelTelemetryBinder(&setTelemetryRegistry);

/** Accumulate one model evaluation into the attached registry. */
double
recordModelValue(const char *metric, double value)
{
    if (g_model_registry != nullptr) {
        const std::string base = std::string("xeon.model.") + metric;
        g_model_registry->counter(base).add(value);
        g_model_registry->counter(base + "_calls").increment();
    }
    return value;
}

} // namespace

void
setTelemetryRegistry(telemetry::Registry *registry)
{
    g_model_registry = registry;
}

double
streamBandwidth(const XeonConfig &cfg, unsigned threads)
{
    cfg.validate();
    PGCN_ASSERT(threads >= 1, "bandwidth needs at least one thread");
    threads = std::min(threads, cfg.logicalCores());

    const double per_socket_threads =
        static_cast<double>(threads) / cfg.sockets;
    const double ramp =
        per_socket_threads * cfg.perThreadBandwidthGBps;
    double socket_bw = std::min(cfg.socketStreamBandwidthGBps, ramp);

    // Hyper-threading region: oversubscribed contexts thrash the
    // memory controllers; measured bandwidth drops toward
    // (1 - penalty) at full logical occupancy.
    const double physical = cfg.coresPerSocket;
    if (per_socket_threads > physical) {
        const double over =
            (per_socket_threads - physical) /
            (physical * (cfg.hyperThreadsPerCore - 1.0));
        socket_bw *= 1.0 - cfg.hyperThreadPenalty * std::min(1.0, over);
    }
    return socket_bw * cfg.sockets;
}

double
featureCacheHitRate(const XeonConfig &cfg, uint64_t num_vertices,
                    uint64_t k, bool skewed)
{
    const double working_set =
        static_cast<double>(num_vertices) * static_cast<double>(k) * 4.0;
    const double cache = cfg.cacheBytesPerSocket * cfg.sockets;
    if (working_set <= 0.0)
        return 1.0;
    const double resident = std::min(1.0, cache / working_set);
    if (!skewed || resident >= 1.0)
        return resident;
    // Power-law reuse: caching the hottest `resident` fraction of
    // rows covers a disproportionate share of edge endpoints.
    return std::pow(resident, cfg.cacheSkewExponent);
}

double
spmmTrafficBytes(const XeonConfig &cfg, const model::SpmmWorkload &w,
                 bool skewed)
{
    const model::ElementSizes sizes;
    const double v = static_cast<double>(w.numVertices);
    const double e = static_cast<double>(w.numEdges);
    const double k = static_cast<double>(w.embeddingDim);

    const double csr = (v + 1.0) * sizes.rowIndex + e * sizes.colIndex +
                       e * sizes.nonZero;
    const double hit =
        featureCacheHitRate(cfg, w.numVertices, w.embeddingDim, skewed);
    // Compulsory: each of the |V| rows is read once. Reuse: the
    // remaining (|E| - |V|) accesses hit with probability `hit`.
    const double reuse_accesses = std::max(0.0, e - v);
    const double feature =
        v * k * sizes.feature +
        reuse_accesses * k * sizes.feature * (1.0 - hit);
    const double write = v * k * sizes.feature;
    return recordModelValue("spmm_traffic_bytes", csr + feature + write);
}

double
spmmTimeNs(const XeonConfig &cfg, const model::SpmmWorkload &w,
           unsigned threads, bool skewed)
{
    const double bw =
        streamBandwidth(cfg, threads) * cfg.gatherEfficiency;
    // Cache-resident reuse is served from the LLC — cheaper than
    // DRAM, but 80 threads contending on a shared cache is not free.
    const double hit =
        featureCacheHitRate(cfg, w.numVertices, w.embeddingDim, skewed);
    const double reuse_accesses = std::max(
        0.0, static_cast<double>(w.numEdges) -
                 static_cast<double>(w.numVertices));
    const double cached_bytes = reuse_accesses *
                                static_cast<double>(w.embeddingDim) *
                                4.0 * hit;
    return recordModelValue("spmm_ns",
                            spmmTrafficBytes(cfg, w, skewed) / bw +
                                cached_bytes / cfg.llcBandwidthGBps +
                                cfg.frameworkOverheadNs);
}

double
denseMmTimeNs(const XeonConfig &cfg, uint64_t num_vertices, uint64_t k_in,
              uint64_t k_out, unsigned threads)
{
    const double v = static_cast<double>(num_vertices);
    const double flop =
        2.0 * v * static_cast<double>(k_in) * static_cast<double>(k_out);
    const double bytes =
        v * (static_cast<double>(k_in) + static_cast<double>(k_out)) * 4.0;
    const double peak =
        cfg.peakCoreGflops() * std::min(threads, cfg.physicalCores()) *
        cfg.denseEfficiency;
    return recordModelValue(
        "dense_ns", model::rooflineTimeNs(flop, bytes, peak,
                                          streamBandwidth(cfg, threads)) +
                        cfg.frameworkOverheadNs);
}

double
glueTimeNs(const XeonConfig &cfg, uint64_t num_vertices, uint64_t k,
           unsigned threads)
{
    const double bytes = 2.0 * static_cast<double>(num_vertices) *
                         static_cast<double>(k) * 4.0;
    // If the activations fit in cache the pass runs at cache speed
    // (approximated as 4x DRAM bandwidth); otherwise at DRAM speed.
    const double hit = featureCacheHitRate(cfg, num_vertices, k);
    const double bw = streamBandwidth(cfg, threads) * (1.0 + 3.0 * hit);
    return recordModelValue("glue_ns",
                            bytes / bw + cfg.frameworkOverheadNs);
}

double
randomWalkStepsPerNs(const XeonConfig &cfg, unsigned threads)
{
    cfg.validate();
    PGCN_ASSERT(threads >= 1, "random walk needs at least one thread");
    const double cores = std::min(threads, cfg.physicalCores());
    // Two dependent accesses per step; chasesOverlappedPerCore
    // independent walks in flight per core.
    const double per_core =
        cfg.chasesOverlappedPerCore /
        (2.0 * cfg.randomAccessLatencyNs);
    return cores * per_core;
}

} // namespace pgcn::xeon
