/**
 * @file
 * Xeon CPU platform description.
 *
 * Defaults model the paper's profiling machine: a dual-socket Intel
 * Xeon Platinum 8380 (Ice Lake, 40 cores/socket, AVX-512 with two FMA
 * units, 8-channel DDR4-3200, 512 GB). The container this library
 * builds in has one core, so multi-core CPU behaviour is modelled
 * analytically (bandwidth-saturation curve + cache-reuse correction);
 * the functional kernels in src/kernels validate the algorithms
 * themselves.
 */
#ifndef PGCN_XEON_CONFIG_HPP
#define PGCN_XEON_CONFIG_HPP

#include <cstdint>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn::xeon {

/** Static description of a Xeon system. */
struct XeonConfig
{
    unsigned sockets = 2;
    unsigned coresPerSocket = 40;
    unsigned hyperThreadsPerCore = 2;
    double clockGhz = 2.3;

    /// AVX-512: 2 FMA units x 16 fp32 lanes x 2 FLOP per FMA.
    unsigned fmaUnitsPerCore = 2;
    unsigned simdLanesFp32 = 16;

    /// Achievable STREAM bandwidth per socket (GB/s); 8-channel
    /// DDR4-3200 peaks at 204.8, STREAM reaches ~85%.
    double socketStreamBandwidthGBps = 175.0;
    /// Bandwidth a single thread can extract (GB/s).
    double perThreadBandwidthGBps = 14.0;
    /// Fractional bandwidth loss at full hyper-threading (the paper's
    /// Fig. 8 left: >80 threads reduce measured bandwidth).
    double hyperThreadPenalty = 0.15;

    /// Effective cache per socket available for feature-row reuse
    /// (LLC + aggregate L2).
    double cacheBytesPerSocket = 60.0 * 1024 * 1024;

    /// Fraction of STREAM bandwidth a gather-dominated SpMM achieves
    /// (torch-sparse-class kernels on 80 threads).
    double gatherEfficiency = 0.45;
    /// Aggregate LLC bandwidth serving cache-resident feature rows
    /// (GB/s): cached reuse is cheaper than DRAM but not free.
    double llcBandwidthGBps = 1500.0;
    /// Skew exponent for cache hit rates on power-law graphs: hot
    /// vertices are reused far more often than a uniform model
    /// predicts, so hit = (cache / working set)^skewExponent.
    double cacheSkewExponent = 0.45;
    /// Fraction of peak FLOPS the framework GEMM achieves on
    /// tall-skinny GCN updates across 80 threads.
    double denseEfficiency = 0.5;

    /// Per-kernel framework overhead (ns); the PyTorch "glue" of the
    /// paper's Section III-C includes wrapper and launch costs.
    double frameworkOverheadNs = 60000.0;

    /// Loaded random-access (pointer-chase) latency to DRAM (ns).
    double randomAccessLatencyNs = 90.0;
    /// Independent pointer chases one out-of-order core overlaps
    /// (bounded by the load queue / MSHRs on irregular streams).
    double chasesOverlappedPerCore = 6.0;

    /** Physical cores in the system. */
    unsigned physicalCores() const { return sockets * coresPerSocket; }

    /** Logical threads (with hyper-threading). */
    unsigned
    logicalCores() const
    {
        return physicalCores() * hyperThreadsPerCore;
    }

    /** Peak fp32 FLOPS of one core in GFLOP/s. */
    double
    peakCoreGflops() const
    {
        return clockGhz * fmaUnitsPerCore * simdLanesFp32 * 2.0;
    }

    /** Peak fp32 FLOPS of the whole system in GFLOP/s. */
    double
    peakSystemGflops() const
    {
        return peakCoreGflops() * physicalCores();
    }

    /** Aggregate STREAM bandwidth (GB/s == bytes/ns). */
    double
    peakBandwidth() const
    {
        return socketStreamBandwidthGBps * sockets;
    }

    /**
     * Validate every field; throws ConfigError naming the offending
     * parameter (NaN/inf/zero/negative are all rejected — e.g. a zero
     * STREAM bandwidth would otherwise produce infinite SpMM times).
     */
    void
    validate() const
    {
        if (sockets == 0 || coresPerSocket == 0) {
            PGCN_THROW(ConfigError,
                       "Xeon config requires non-zero sockets/cores");
        }
        check::nonZero(hyperThreadsPerCore, "xeon.hyperThreadsPerCore");
        check::positive(clockGhz, "xeon.clockGhz");
        check::nonZero(fmaUnitsPerCore, "xeon.fmaUnitsPerCore");
        check::nonZero(simdLanesFp32, "xeon.simdLanesFp32");
        check::positive(socketStreamBandwidthGBps,
                        "xeon.socketStreamBandwidthGBps");
        check::positive(perThreadBandwidthGBps,
                        "xeon.perThreadBandwidthGBps");
        check::nonNegative(hyperThreadPenalty, "xeon.hyperThreadPenalty");
        check::positive(cacheBytesPerSocket, "xeon.cacheBytesPerSocket");
        check::unitInterval(gatherEfficiency, "xeon.gatherEfficiency");
        check::positive(llcBandwidthGBps, "xeon.llcBandwidthGBps");
        check::positive(cacheSkewExponent, "xeon.cacheSkewExponent");
        check::unitInterval(denseEfficiency, "xeon.denseEfficiency");
        check::nonNegative(frameworkOverheadNs,
                           "xeon.frameworkOverheadNs");
        check::positive(randomAccessLatencyNs,
                        "xeon.randomAccessLatencyNs");
        check::positive(chasesOverlappedPerCore,
                        "xeon.chasesOverlappedPerCore");
    }

    /** The paper's dual-socket Platinum 8380 profiling machine. */
    static XeonConfig
    platinum8380()
    {
        return XeonConfig{};
    }
};

} // namespace pgcn::xeon

#endif // PGCN_XEON_CONFIG_HPP
