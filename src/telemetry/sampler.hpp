/**
 * @file
 * The time-series sampler: an Engine::Observer that snapshots every
 * registered gauge each sampling period of *simulated* time and
 * accumulates long-format rows (t_ns, metric, value) for CSV export,
 * mirroring each point into the trace as a Perfetto counter track.
 *
 * Rate gauges (GaugeKind::Rate) report the delta of a cumulative
 * quantity divided by the elapsed simulated interval, turning
 * busy-nanosecond accumulators into utilisations and byte counters
 * into GB/s — the bandwidth/occupancy timelines of the paper's
 * Figs. 6-8 discussions.
 */
#ifndef PGCN_TELEMETRY_SAMPLER_HPP
#define PGCN_TELEMETRY_SAMPLER_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace pgcn::telemetry {

/** Periodic gauge sampler (see file comment). */
class Sampler : public sim::Engine::Observer
{
  public:
    /**
     * @param registry Gauge source (and counter store).
     * @param trace Optional trace to mirror samples into as counter
     *        events; may be null.
     * @param period_ns Simulated nanoseconds between samples.
     */
    Sampler(Registry &registry, TraceWriter *trace, double period_ns);

    /** Simulated ns between samples. */
    double periodNs() const { return periodNs_; }

    /**
     * Establish the global-time offset of the upcoming run (each
     * kernel runs on a fresh engine starting at t=0; the session
     * concatenates them on one clock) and reset per-run gauge state.
     */
    void beginRun(double offset_ns);

    /** Engine::Observer hook: snapshot all gauges at @p now. */
    sim::SimTime onSample(sim::SimTime now, sim::Engine &engine) override;

    /** Rows recorded so far (across all runs). */
    size_t rowCount() const { return rows_.size(); }

    /**
     * Append @p other's recorded rows with @p prefix on every metric
     * name (worker-tagging, matching the trace counter tracks). Rows
     * keep their own timestamps; merged output groups rows by worker,
     * each group chronological.
     */
    void mergeFrom(const Sampler &other, std::string_view prefix);

    /**
     * Write all samples as long-format CSV (`t_ns,metric,value`
     * header included).
     */
    void writeCsv(std::ostream &os) const;

  private:
    /** One recorded sample. */
    struct Row
    {
        double tNs;
        double value;
        TraceWriter::NameId name;
    };

    Registry &registry_;
    TraceWriter *trace_;
    TraceWriter names_; ///< standalone interner when trace_ is null
    double periodNs_;
    double offsetNs_ = 0.0;   ///< global time of the current run's t=0
    double lastSampleNs_ = 0.0; ///< run-local time of previous sample
    std::vector<Row> rows_;

    TraceWriter &interner() { return trace_ ? *trace_ : names_; }
    const TraceWriter &interner() const { return trace_ ? *trace_ : names_; }
};

} // namespace pgcn::telemetry

#endif // PGCN_TELEMETRY_SAMPLER_HPP
