#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn::telemetry {

namespace {

/**
 * Shortest-round-trip decimal form of @p v: 17 significant digits
 * reproduce an IEEE double exactly, so traces are bit-reproducible
 * across runs while typical values ("2.5", "1024") stay readable.
 */
std::string
formatDouble(double v)
{
    char buf[32];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

/** JSON string escaping for event names (quotes, backslash, control). */
std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

TraceWriter::NameId
TraceWriter::intern(std::string_view name)
{
    const auto it = nameIds_.find(name);
    if (it != nameIds_.end())
        return it->second;
    const auto id = static_cast<NameId>(names_.size());
    names_.emplace_back(name);
    nameIds_.emplace(names_.back(), id);
    return id;
}

void
TraceWriter::setProcessName(std::string_view name)
{
    meta_.push_back(Meta{"process_name", std::string(name), 0});
}

void
TraceWriter::setThreadName(uint32_t tid, std::string_view name)
{
    meta_.push_back(Meta{"thread_name", std::string(name), tid});
}

void
TraceWriter::begin(double ts_ns, NameId name, uint32_t tid)
{
    events_.push_back(Event{ts_ns, 0.0, name, tid, 'B'});
}

void
TraceWriter::end(double ts_ns, NameId name, uint32_t tid)
{
    events_.push_back(Event{ts_ns, 0.0, name, tid, 'E'});
}

void
TraceWriter::counter(double ts_ns, NameId name, double value)
{
    events_.push_back(Event{ts_ns, value, name, 0, 'C'});
}

void
TraceWriter::mergeFrom(const TraceWriter &other, uint32_t tid_offset,
                       std::string_view track_prefix)
{
    for (const Meta &m : other.meta_) {
        if (m.name == "process_name")
            continue;
        meta_.push_back(
            Meta{m.name, std::string(track_prefix) + m.arg,
                 m.tid + tid_offset});
    }

    // Lazily remap interned names so a million-event detailed trace
    // pays one intern per distinct name, not per event.
    constexpr NameId kUnmapped = UINT32_MAX;
    std::vector<NameId> plain(other.names_.size(), kUnmapped);
    std::vector<NameId> prefixed(other.names_.size(), kUnmapped);
    events_.reserve(events_.size() + other.events_.size());
    for (const Event &e : other.events_) {
        if (e.phase == 'C') {
            NameId &id = prefixed[e.name];
            if (id == kUnmapped)
                id = intern(std::string(track_prefix) +
                            other.names_[e.name]);
            events_.push_back(Event{e.tsNs, e.value, id, e.tid, 'C'});
        } else {
            NameId &id = plain[e.name];
            if (id == kUnmapped)
                id = intern(other.names_[e.name]);
            events_.push_back(
                Event{e.tsNs, e.value, id, e.tid + tid_offset, e.phase});
        }
    }
}

void
TraceWriter::write(std::ostream &os) const
{
    std::vector<Event> sorted(events_);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event &a, const Event &b) {
                         return a.tsNs < b.tsNs;
                     });

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };
    for (const Meta &m : meta_) {
        sep();
        os << "{\"name\":\"" << m.name
           << "\",\"ph\":\"M\",\"pid\":0,\"tid\":" << m.tid
           << ",\"args\":{\"name\":\"" << escapeJson(m.arg) << "\"}}";
    }
    for (const Event &e : sorted) {
        sep();
        os << "{\"name\":\"" << escapeJson(names_[e.name])
           << "\",\"ph\":\"" << e.phase
           << "\",\"ts\":" << formatDouble(e.tsNs / 1000.0)
           << ",\"pid\":0,\"tid\":" << e.tid;
        if (e.phase == 'C')
            os << ",\"args\":{\"value\":" << formatDouble(e.value) << "}";
        os << "}";
    }
    os << "\n]}\n";
}

void
TraceWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        PGCN_THROW(IoError, "cannot open trace output file: " << path);
    write(out);
}

} // namespace pgcn::telemetry
