#include "telemetry/session.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn::telemetry {

namespace {

/** Emit one `t_ns,metric,value` CSV row. */
void
csvRow(std::ostream &os, double t_ns, const std::string &metric, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g,", t_ns);
    os << buf << metric << ",";
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    os << buf << "\n";
}

} // namespace

Session::Session() : Session(Options()) {}

Session::Session(Options options)
    : options_(options),
      sampler_(registry_, &trace_,
               options.samplePeriodNs > 0.0 ? options.samplePeriodNs : 1.0)
{
    trace_.setProcessName("pgcn-sim");
    trace_.setThreadName(tracks::kKernels, "kernels");
}

double
Session::beginKernel(std::string_view name)
{
    PGCN_ASSERT(!kernelOpen_, "beginKernel() while a kernel span is open");
    // Gauges registered by the previous run reference component state
    // that no longer exists; the new run re-registers its own.
    registry_.clearGauges();
    currentKernel_ = trace_.intern(name);
    trace_.begin(offsetNs_, currentKernel_, tracks::kKernels);
    sampler_.beginRun(offsetNs_);
    kernelOpen_ = true;
    return offsetNs_;
}

void
Session::endKernel(double makespan_ns)
{
    PGCN_ASSERT(kernelOpen_, "endKernel() without a matching beginKernel()");
    PGCN_ASSERT(makespan_ns >= 0.0, "negative makespan " << makespan_ns);
    trace_.end(offsetNs_ + makespan_ns, currentKernel_, tracks::kKernels);
    offsetNs_ += makespan_ns;
    kernelOpen_ = false;
}

void
Session::mergeWorker(const Session &worker, size_t worker_index)
{
    PGCN_ASSERT(!kernelOpen_ && !worker.kernelOpen_,
                "mergeWorker() with an open kernel span");
    const std::string prefix = "w" + std::to_string(worker_index) + "/";
    const uint32_t tid_offset =
        static_cast<uint32_t>(worker_index + 1) * tracks::kWorkerStride;
    trace_.mergeFrom(worker.trace_, tid_offset, prefix);
    sampler_.mergeFrom(worker.sampler_, prefix);
    registry_.mergeFrom(worker.registry_);
    // Final-counter rows in the metrics CSV stamp at the end of the
    // longest worker timeline.
    offsetNs_ = std::max(offsetNs_, worker.offsetNs_);
}

void
Session::writeTrace(const std::string &path) const
{
    trace_.writeFile(path);
}

void
Session::writeMetricsCsv(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        PGCN_THROW(IoError, "cannot open metrics CSV for writing: " << path);

    // Time series first (includes the header row), ...
    sampler_.writeCsv(os);

    // ... then final counter values and histogram summaries, stamped
    // at the end of the global timeline.
    const double end = offsetNs_;
    registry_.forEachCounter(
        [&](const std::string &name, const Counter &counter) {
            csvRow(os, end, name, static_cast<double>(counter.value()));
        });
    registry_.forEachHistogram(
        [&](const std::string &name, const Histogram &hist) {
            csvRow(os, end, name + ".count",
                   static_cast<double>(hist.count()));
            if (hist.count() == 0)
                return;
            csvRow(os, end, name + ".sum", hist.sum());
            csvRow(os, end, name + ".min", hist.min());
            csvRow(os, end, name + ".max", hist.max());
            csvRow(os, end, name + ".p50", hist.percentile(50.0));
            csvRow(os, end, name + ".p95", hist.percentile(95.0));
            csvRow(os, end, name + ".p99", hist.percentile(99.0));
        });
}

} // namespace pgcn::telemetry
