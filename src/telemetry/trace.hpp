/**
 * @file
 * Chrome-trace-event exporter: accumulates duration (B/E), counter
 * (C) and metadata (M) events in memory and serialises them as the
 * JSON object format that chrome://tracing and https://ui.perfetto.dev
 * load directly.
 *
 * Timestamps are simulated nanoseconds converted to the format's
 * microsecond unit at write time. Events may be recorded out of
 * timestamp order (a span's end is often known before a later span's
 * begin is recorded); write() stable-sorts by timestamp, so the file
 * is monotonic and equal-timestamp events keep recording order —
 * which, because recording follows the engine's deterministic
 * dispatch order, makes the serialised trace bit-reproducible.
 *
 * Event names are interned: recording stores a 4-byte id, so a
 * million-descriptor detailed trace does not copy a million strings.
 */
#ifndef PGCN_TELEMETRY_TRACE_HPP
#define PGCN_TELEMETRY_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pgcn::telemetry {

/** Accumulates trace events and writes Chrome-trace JSON. */
class TraceWriter
{
  public:
    /** Interned event-name handle. */
    using NameId = uint32_t;

    /** Intern @p name, returning a stable id (idempotent). */
    NameId intern(std::string_view name);

    /** The string interned as @p id. */
    const std::string &
    nameOf(NameId id) const
    {
        return names_[id];
    }

    /** Name the process track (one metadata event; call once). */
    void setProcessName(std::string_view name);

    /** Name thread track @p tid (one metadata event per tid). */
    void setThreadName(uint32_t tid, std::string_view name);

    /** Open a duration span at @p ts_ns on track @p tid. */
    void begin(double ts_ns, NameId name, uint32_t tid);

    /** Close the innermost span of @p name at @p ts_ns on @p tid. */
    void end(double ts_ns, NameId name, uint32_t tid);

    /** Record one point of counter series @p name at @p ts_ns. */
    void counter(double ts_ns, NameId name, double value);

    /** Convenience overloads interning on the fly (setup paths). */
    void
    begin(double ts_ns, std::string_view name, uint32_t tid)
    {
        begin(ts_ns, intern(name), tid);
    }
    void
    end(double ts_ns, std::string_view name, uint32_t tid)
    {
        end(ts_ns, intern(name), tid);
    }
    void
    counter(double ts_ns, std::string_view name, double value)
    {
        counter(ts_ns, intern(name), value);
    }

    /** Events recorded so far (metadata + spans + counters). */
    size_t eventCount() const { return meta_.size() + events_.size(); }

    /**
     * Fold @p other's events into this writer on worker-tagged
     * tracks: span/metadata tids are shifted by @p tid_offset and
     * thread-track names prefixed with @p track_prefix; counter
     * events — whose Perfetto track identity is the *name*, not the
     * tid — get the prefix on the name instead, so each worker's
     * series stays a separate counter track. @p other's process_name
     * metadata is dropped (the destination owns the process track).
     * Merging workers in index order keeps the combined trace
     * deterministic: equal-timestamp events keep merge order under
     * write()'s stable sort.
     */
    void mergeFrom(const TraceWriter &other, uint32_t tid_offset,
                   std::string_view track_prefix);

    /**
     * Serialise everything as a Chrome-trace JSON object. Metadata
     * events come first, then all other events stable-sorted by
     * timestamp. The writer is left intact (write() can be repeated).
     */
    void write(std::ostream &os) const;

    /** write() into @p path; fatal if the file cannot be opened. */
    void writeFile(const std::string &path) const;

  private:
    /** One recorded non-metadata event. */
    struct Event
    {
        double tsNs;
        double value; ///< counter value (C events only)
        NameId name;
        uint32_t tid;
        char phase; ///< 'B', 'E' or 'C'
    };

    /** One metadata event (process/thread naming). */
    struct Meta
    {
        std::string name; ///< "process_name" / "thread_name"
        std::string arg;  ///< the human-readable track name
        uint32_t tid;
    };

    std::vector<std::string> names_;
    std::map<std::string, NameId, std::less<>> nameIds_;
    std::vector<Event> events_;
    std::vector<Meta> meta_;
};

} // namespace pgcn::telemetry

#endif // PGCN_TELEMETRY_TRACE_HPP
