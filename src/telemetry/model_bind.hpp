/**
 * @file
 * Thread-local binding of analytic-model telemetry sinks.
 *
 * The closed-form performance models (xeon/timing, piuma/node_model)
 * record each evaluation into an attached telemetry Registry through a
 * file-local pointer. That pointer is thread_local, because sweep
 * points run on pool workers that each own a private Session; a
 * process-global pointer would make model counters race and land in
 * whichever worker's registry bound last.
 *
 * This module is the rendezvous: each model translation unit
 * registers its setter at static-initialisation time, and the sweep
 * machinery calls bindModelTelemetry() on every thread that should
 * record model evaluations (pool workers bind their worker session;
 * the bench main thread binds the caller session). Threads that never
 * bind record nothing, which is the correct default.
 */
#ifndef PGCN_TELEMETRY_MODEL_BIND_HPP
#define PGCN_TELEMETRY_MODEL_BIND_HPP

namespace pgcn::telemetry {

class Registry;

/** A model TU's thread-local sink setter (e.g. setTelemetryRegistry). */
using ModelTelemetryBinder = void (*)(Registry *);

/**
 * Register a model sink setter. Called from namespace-scope
 * initialisers in the model translation units; idempotent per binder.
 *
 * @return true (so registration can seed a namespace-scope constant).
 */
bool registerModelTelemetryBinder(ModelTelemetryBinder binder);

/**
 * Point every registered model at @p registry on the CALLING thread
 * (null detaches). Other threads' bindings are untouched.
 */
void bindModelTelemetry(Registry *registry);

} // namespace pgcn::telemetry

#endif // PGCN_TELEMETRY_MODEL_BIND_HPP
