#include "telemetry/registry.hpp"

namespace pgcn::telemetry {

Counter &
Registry::counter(std::string_view name)
{
    const auto it = counters_.find(name);
    if (it != counters_.end())
        return it->second;
    return counters_.emplace(std::string(name), Counter{}).first->second;
}

Histogram &
Registry::histogram(std::string_view name, double lo, double hi,
                    size_t buckets)
{
    const auto it = histograms_.find(name);
    if (it != histograms_.end())
        return it->second;
    return histograms_
        .emplace(std::string(name), Histogram(lo, hi, buckets))
        .first->second;
}

void
Registry::registerGauge(std::string name, GaugeKind kind,
                        std::function<double()> fn)
{
    gauges_.push_back(Gauge{std::move(name), kind, std::move(fn), 0.0});
}

void
Registry::clearGauges()
{
    gauges_.clear();
}

double
Registry::counterValue(std::string_view name) const
{
    const auto it = counters_.find(name);
    return it != counters_.end() ? it->second.value() : 0.0;
}

const Histogram *
Registry::findHistogram(std::string_view name) const
{
    const auto it = histograms_.find(name);
    return it != histograms_.end() ? &it->second : nullptr;
}

void
Registry::mergeFrom(const Registry &other)
{
    for (const auto &[name, c] : other.counters_)
        counter(name).add(c.value());
    for (const auto &[name, h] : other.histograms_)
        histogram(name, h.lo(), h.hi(), h.numBuckets()).merge(h);
}

} // namespace pgcn::telemetry
