#include "telemetry/sampler.hpp"

#include <cstdio>
#include <ostream>

#include "common/logging.hpp"

namespace pgcn::telemetry {

Sampler::Sampler(Registry &registry, TraceWriter *trace, double period_ns)
    : registry_(registry), trace_(trace), periodNs_(period_ns)
{
    PGCN_ASSERT(period_ns > 0.0,
                "sample period must be positive, got " << period_ns);
}

void
Sampler::beginRun(double offset_ns)
{
    offsetNs_ = offset_ns;
    lastSampleNs_ = 0.0;
    for (Gauge &g : registry_.gauges())
        g.lastValue = 0.0;
}

sim::SimTime
Sampler::onSample(sim::SimTime now, sim::Engine &engine)
{
    (void)engine;
    const double dt = now - lastSampleNs_;
    for (Gauge &g : registry_.gauges()) {
        const double raw = g.fn();
        double out = raw;
        if (g.kind == GaugeKind::Rate) {
            out = dt > 0.0 ? (raw - g.lastValue) / dt : 0.0;
            g.lastValue = raw;
        }
        const TraceWriter::NameId id = interner().intern(g.name);
        rows_.push_back(Row{offsetNs_ + now, out, id});
        if (trace_ != nullptr)
            trace_->counter(offsetNs_ + now, id, out);
    }
    lastSampleNs_ = now;
    // Skip ahead past any quiet gap so one long event jump does not
    // trigger a burst of catch-up samples.
    return now + periodNs_;
}

void
Sampler::mergeFrom(const Sampler &other, std::string_view prefix)
{
    rows_.reserve(rows_.size() + other.rows_.size());
    // Lazy per-name remap: one intern per distinct metric, not per row.
    constexpr TraceWriter::NameId kUnmapped = UINT32_MAX;
    std::vector<TraceWriter::NameId> remap;
    for (const Row &r : other.rows_) {
        if (r.name >= remap.size())
            remap.resize(r.name + 1, kUnmapped);
        TraceWriter::NameId &id = remap[r.name];
        if (id == kUnmapped)
            id = interner().intern(std::string(prefix) +
                                   other.interner().nameOf(r.name));
        rows_.push_back(Row{r.tNs, r.value, id});
    }
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "t_ns,metric,value\n";
    char buf[64];
    for (const Row &r : rows_) {
        std::snprintf(buf, sizeof(buf), "%.9g,", r.tNs);
        os << buf << interner().nameOf(r.name) << ",";
        std::snprintf(buf, sizeof(buf), "%.9g", r.value);
        os << buf << "\n";
    }
}

} // namespace pgcn::telemetry
