/**
 * @file
 * The metric registry: named monotonic counters, sampled gauges, and
 * fixed-bucket histograms shared by every instrumented component.
 *
 * Names are hierarchical dot-paths (`piuma.core3.dma.queue_depth`),
 * so downstream tooling can group by prefix. The registration path
 * (map lookup) runs once per component per run; instrumented hot
 * paths hold a Counter* / Histogram* and pay one pointer-null check
 * plus an add when telemetry is enabled, nothing when it is not.
 *
 * Thread-safety: none. The simulator is single-threaded by design
 * (see sim/engine.hpp); the registry inherits that contract.
 */
#ifndef PGCN_TELEMETRY_REGISTRY_HPP
#define PGCN_TELEMETRY_REGISTRY_HPP

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace pgcn::telemetry {

/**
 * A named monotonic counter. Components accumulate into it directly;
 * consumers read the cumulative value (or deltas between reads).
 */
class Counter
{
  public:
    /** Accumulate @p delta (negative deltas are a caller bug). */
    void add(double delta) { value_ += delta; }

    /** Accumulate 1. */
    void increment() { value_ += 1.0; }

    /** Cumulative value since registration. */
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * How the time-series sampler interprets a gauge callback's value.
 */
enum class GaugeKind
{
    /** An instantaneous level (queue depth, live threads). */
    Value,
    /**
     * A cumulative quantity (busy nanoseconds, bytes moved); the
     * sampler reports its delta divided by the elapsed simulated time
     * — e.g. busy-ns becomes utilisation, bytes becomes GB/s.
     */
    Rate,
};

/** A registered gauge: name, sampling interpretation, callback. */
struct Gauge
{
    std::string name;
    GaugeKind kind;
    std::function<double()> fn;
    double lastValue = 0.0; ///< sampler state for Rate gauges
};

/**
 * The registry. Counters and histograms live for the registry's
 * lifetime and merge across simulation runs; gauges reference
 * run-local component state and are cleared between kernel runs (see
 * Session::beginKernel).
 */
class Registry
{
  public:
    /**
     * Find-or-create the counter called @p name. The returned
     * reference is stable for the registry's lifetime.
     */
    Counter &counter(std::string_view name);

    /**
     * Find-or-create a histogram. The bucket shape is fixed by the
     * first registration; later calls with the same name return the
     * existing histogram regardless of the requested shape.
     *
     * @param name Metric name.
     * @param lo Lower bound of the bucketed range.
     * @param hi Upper bound of the bucketed range.
     * @param buckets Bucket count (excluding under/overflow).
     */
    Histogram &histogram(std::string_view name, double lo, double hi,
                         size_t buckets = 64);

    /**
     * Register a gauge for periodic sampling. Callbacks must be pure
     * observers: the sampler runs between simulated events, and a
     * callback that mutated simulation state would break the
     * determinism contract.
     */
    void registerGauge(std::string name, GaugeKind kind,
                       std::function<double()> fn);

    /** Drop all gauges (their component owners are being destroyed). */
    void clearGauges();

    /** Value of counter @p name, or 0 if it was never registered. */
    double counterValue(std::string_view name) const;

    /** Histogram @p name, or nullptr if never registered. */
    const Histogram *findHistogram(std::string_view name) const;

    /** Visit (name, counter) in lexicographic name order. */
    template <typename Fn>
    void
    forEachCounter(Fn &&fn) const
    {
        for (const auto &[name, c] : counters_)
            fn(name, c);
    }

    /** Visit (name, histogram) in lexicographic name order. */
    template <typename Fn>
    void
    forEachHistogram(Fn &&fn) const
    {
        for (const auto &[name, h] : histograms_)
            fn(name, h);
    }

    /**
     * Fold @p other into this registry: counters are summed,
     * histograms merged bucket-wise (shape is taken from @p other on
     * first sight of a name). Gauges are not merged — they reference
     * @p other's component state. Used to consolidate per-worker
     * registries after a parallel sweep.
     */
    void mergeFrom(const Registry &other);

    /** The live gauges, in registration order (sampler access). */
    std::vector<Gauge> &gauges() { return gauges_; }

    /** Number of registered counters. */
    size_t counterCount() const { return counters_.size(); }

  private:
    // Node-based maps: references handed to components stay valid as
    // the registry grows. Lexicographic iteration keeps every CSV /
    // summary dump deterministic.
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Histogram, std::less<>> histograms_;
    std::vector<Gauge> gauges_;
};

} // namespace pgcn::telemetry

#endif // PGCN_TELEMETRY_REGISTRY_HPP
