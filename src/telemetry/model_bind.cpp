#include "telemetry/model_bind.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

namespace pgcn::telemetry {

namespace {

/** Registered binders behind a Meyers singleton: model TUs register
 *  during static initialisation, whose cross-TU order is unspecified,
 *  so the container must construct on first use. The mutex covers the
 *  (unlikely but legal) case of a binder registering after threads
 *  exist, e.g. a dlopen'd extension. */
struct BinderList
{
    std::mutex mutex;
    std::vector<ModelTelemetryBinder> binders;
};

BinderList &
binderList()
{
    static BinderList list;
    return list;
}

} // namespace

bool
registerModelTelemetryBinder(ModelTelemetryBinder binder)
{
    if (binder == nullptr)
        return true;
    BinderList &list = binderList();
    std::lock_guard<std::mutex> lock(list.mutex);
    if (std::find(list.binders.begin(), list.binders.end(), binder) ==
        list.binders.end())
        list.binders.push_back(binder);
    return true;
}

void
bindModelTelemetry(Registry *registry)
{
    BinderList &list = binderList();
    std::lock_guard<std::mutex> lock(list.mutex);
    for (ModelTelemetryBinder binder : list.binders)
        binder(registry);
}

} // namespace pgcn::telemetry
