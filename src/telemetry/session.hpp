/**
 * @file
 * A telemetry session: the registry + sampler + trace writer bundle a
 * bench binary (or test) owns for one invocation. Instrumented
 * simulation entry points accept `Session *` (null = telemetry off,
 * the default) and record into it; the owner writes the trace JSON
 * and metrics CSV when done.
 *
 * The session also runs the global clock: every kernel executes on a
 * fresh engine starting at t=0, and beginKernel()/endKernel()
 * concatenate those runs on one timeline so a multi-kernel bench
 * (e.g. a fig8 sweep) loads into Perfetto as consecutive spans.
 */
#ifndef PGCN_TELEMETRY_SESSION_HPP
#define PGCN_TELEMETRY_SESSION_HPP

#include <string>
#include <string_view>

#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace.hpp"

namespace pgcn::telemetry {

/** Track ids used in emitted traces. */
namespace tracks {
/** The kernel-span track. */
constexpr uint32_t kKernels = 0;
/** Per-core DMA-engine tracks: kDmaBase + core. */
constexpr uint32_t kDmaBase = 1000;
/** Sweep-worker tid stride: worker w's tracks live at
 *  (w + 1) * kWorkerStride + original tid (see Session::mergeWorker). */
constexpr uint32_t kWorkerStride = 1u << 16;
} // namespace tracks

/** One bench invocation's telemetry context (see file comment). */
class Session
{
  public:
    /** Construction-time knobs. */
    struct Options
    {
        /**
         * Simulated ns between gauge samples; 0 disables periodic
         * sampling entirely (counters and spans still record).
         */
        double samplePeriodNs = 1000.0;
        /**
         * Emit per-descriptor DMA spans. Invaluable in Perfetto for
         * small runs, but O(descriptors) trace size — leave off for
         * full sweeps.
         */
        bool detailedTrace = false;
    };

    /** Session with default options. */
    Session();

    explicit Session(Options options);

    /** The metric registry. */
    Registry &registry() { return registry_; }

    /** The trace accumulator. */
    TraceWriter &trace() { return trace_; }
    const TraceWriter &trace() const { return trace_; }

    /** The periodic gauge sampler (meaningful when periodNs > 0). */
    Sampler &sampler() { return sampler_; }

    /** Simulated ns between gauge samples (0 = sampling disabled). */
    double samplePeriodNs() const { return options_.samplePeriodNs; }

    /** Whether per-descriptor DMA spans were requested. */
    bool detailedTrace() const { return options_.detailedTrace; }

    /**
     * Open a kernel span named @p name and return the global-time
     * offset of the run's t=0. Clears stale gauges from the previous
     * run (their owning components are gone).
     */
    double beginKernel(std::string_view name);

    /**
     * Close the current kernel span after a run of @p makespan_ns and
     * advance the global clock past it.
     */
    void endKernel(double makespan_ns);

    /** Global-time offset of the currently running kernel. */
    double runOffsetNs() const { return offsetNs_; }

    /**
     * Fold a sweep worker's session into this one: trace events move
     * to worker-tagged tracks ("w<index>/" prefix, tids shifted by
     * (index + 1) * tracks::kWorkerStride), sampler rows get the same
     * prefix on their metric names, and registry counters/histograms
     * are summed/merged. Call after the worker has finished (no open
     * kernel span); merge workers in index order for a deterministic
     * combined trace.
     */
    void mergeWorker(const Session &worker, size_t worker_index);

    /** Write the Chrome-trace JSON to @p path. */
    void writeTrace(const std::string &path) const;

    /**
     * Write the metrics CSV to @p path: the sampler's time series
     * followed by final counter values and histogram summaries
     * (count/sum/min/max/p50/p95/p99), all in `t_ns,metric,value`
     * long format.
     */
    void writeMetricsCsv(const std::string &path) const;

  private:
    Options options_;
    Registry registry_;
    TraceWriter trace_;
    Sampler sampler_;
    double offsetNs_ = 0.0;
    TraceWriter::NameId currentKernel_ = 0;
    bool kernelOpen_ = false;
};

} // namespace pgcn::telemetry

#endif // PGCN_TELEMETRY_SESSION_HPP
