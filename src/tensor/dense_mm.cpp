#include "tensor/dense_mm.hpp"

#include <algorithm>

#include "kernels/simd.hpp"

namespace pgcn::tensor {

namespace {

void
checkGemmShapes(const DenseMatrix &a, const DenseMatrix &b)
{
    PGCN_ASSERT(a.cols() == b.rows(),
                "gemm shape mismatch: " << a.rows() << "x" << a.cols()
                                        << " * " << b.rows() << "x"
                                        << b.cols());
}

/**
 * Per-thread pack scratch, reused across GEMM calls so repeated
 * layer updates do not re-allocate (and re-fault) panel storage.
 */
float *
packScratch(uint64_t elems)
{
    thread_local kernels::simd::AlignedBuffer buf;
    thread_local uint64_t buf_elems = 0;
    if (elems > buf_elems) {
        buf = kernels::simd::makeAlignedBuffer(elems);
        buf_elems = elems;
    }
    return buf.get();
}

} // namespace

void
denseMmReference(const DenseMatrix &a, const DenseMatrix &b,
                 DenseMatrix &out)
{
    checkGemmShapes(a, b);
    out.resize(a.rows(), b.cols());
    for (uint64_t i = 0; i < a.rows(); ++i) {
        for (uint64_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const auto brow = b.row(k);
            auto orow = out.row(i);
            for (uint64_t j = 0; j < b.cols(); ++j)
                orow[j] += aik * brow[j];
        }
    }
}

void
denseMmBlocked(const DenseMatrix &a, const DenseMatrix &b, DenseMatrix &out,
               uint64_t block)
{
    (void)block;
    checkGemmShapes(a, b);
    const uint64_t m = a.rows();
    const uint64_t kk = a.cols();
    const uint64_t n = b.cols();
    out.resizeForOverwrite(m, n);
    if (m == 0 || n == 0)
        return;

    const auto &ops = kernels::simd::ops();
    float *pack = packScratch(kernels::simd::gemmPackBufferElems(n, kk));
    ops.gemmPackB(b.data(), n, n, kk, pack);
    ops.gemmPrepacked(a.data(), kk, pack, out.data(), n, m, n, kk,
                      /*accumulate=*/false);
}

void
denseMmBlockedScalar(const DenseMatrix &a, const DenseMatrix &b,
                     DenseMatrix &out, uint64_t block)
{
    checkGemmShapes(a, b);
    PGCN_ASSERT(block > 0, "gemm block must be positive");
    const uint64_t m = a.rows();
    const uint64_t kk = a.cols();
    const uint64_t n = b.cols();
    out.resize(m, n);

    for (uint64_t i0 = 0; i0 < m; i0 += block) {
        const uint64_t i1 = std::min(i0 + block, m);
        for (uint64_t k0 = 0; k0 < kk; k0 += block) {
            const uint64_t k1 = std::min(k0 + block, kk);
            for (uint64_t i = i0; i < i1; ++i) {
                auto orow = out.row(i);
                for (uint64_t k = k0; k < k1; ++k) {
                    const float aik = a.at(i, k);
                    const auto brow = b.row(k);
                    for (uint64_t j = 0; j < n; ++j)
                        orow[j] += aik * brow[j];
                }
            }
        }
    }
}

void
reluInPlace(DenseMatrix &m)
{
    kernels::simd::ops().relu(m.data(), m.size());
}

void
addBiasInPlace(DenseMatrix &m, std::span<const float> bias)
{
    PGCN_ASSERT(bias.size() == m.cols(),
                "bias length " << bias.size() << " != cols " << m.cols());
    kernels::simd::ops().addBias(m.data(), bias.data(), m.rows(), m.cols());
}

} // namespace pgcn::tensor
