#include "tensor/dense_mm.hpp"

#include <algorithm>

namespace pgcn::tensor {

void
denseMmReference(const DenseMatrix &a, const DenseMatrix &b,
                 DenseMatrix &out)
{
    PGCN_ASSERT(a.cols() == b.rows(),
                "gemm shape mismatch: " << a.rows() << "x" << a.cols()
                                        << " * " << b.rows() << "x"
                                        << b.cols());
    out = DenseMatrix(a.rows(), b.cols());
    for (uint64_t i = 0; i < a.rows(); ++i) {
        for (uint64_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const auto brow = b.row(k);
            auto orow = out.row(i);
            for (uint64_t j = 0; j < b.cols(); ++j)
                orow[j] += aik * brow[j];
        }
    }
}

void
denseMmBlocked(const DenseMatrix &a, const DenseMatrix &b, DenseMatrix &out,
               uint64_t block)
{
    PGCN_ASSERT(a.cols() == b.rows(),
                "gemm shape mismatch: " << a.rows() << "x" << a.cols()
                                        << " * " << b.rows() << "x"
                                        << b.cols());
    PGCN_ASSERT(block > 0, "gemm block must be positive");
    const uint64_t m = a.rows();
    const uint64_t kk = a.cols();
    const uint64_t n = b.cols();
    out = DenseMatrix(m, n);

    for (uint64_t i0 = 0; i0 < m; i0 += block) {
        const uint64_t i1 = std::min(i0 + block, m);
        for (uint64_t k0 = 0; k0 < kk; k0 += block) {
            const uint64_t k1 = std::min(k0 + block, kk);
            for (uint64_t i = i0; i < i1; ++i) {
                auto orow = out.row(i);
                for (uint64_t k = k0; k < k1; ++k) {
                    const float aik = a.at(i, k);
                    const auto brow = b.row(k);
                    for (uint64_t j = 0; j < n; ++j)
                        orow[j] += aik * brow[j];
                }
            }
        }
    }
}

void
reluInPlace(DenseMatrix &m)
{
    float *p = m.data();
    for (uint64_t i = 0; i < m.size(); ++i)
        p[i] = std::max(p[i], 0.0f);
}

void
addBiasInPlace(DenseMatrix &m, std::span<const float> bias)
{
    PGCN_ASSERT(bias.size() == m.cols(),
                "bias length " << bias.size() << " != cols " << m.cols());
    for (uint64_t r = 0; r < m.rows(); ++r) {
        auto row = m.row(r);
        for (uint64_t c = 0; c < m.cols(); ++c)
            row[c] += bias[c];
    }
}

} // namespace pgcn::tensor
