#include "tensor/dense_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.hpp"

namespace pgcn::tensor {

DenseMatrix::DenseMatrix(uint64_t rows, uint64_t cols,
                         const std::vector<float> &data)
{
    PGCN_ASSERT(data.size() == rows * cols,
                "dense data size " << data.size() << " != " << rows << "x"
                                   << cols);
    resize(rows, cols);
    if (!data.empty())
        std::memcpy(data_.get(), data.data(), data.size() * sizeof(float));
}

DenseMatrix::DenseMatrix(const DenseMatrix &other)
    : rows_(other.rows_), cols_(other.cols_), capacity_(other.size()),
      data_(kernels::simd::makeAlignedBuffer(other.size()))
{
    if (capacity_ > 0)
        std::memcpy(data_.get(), other.data_.get(),
                    capacity_ * sizeof(float));
}

DenseMatrix &
DenseMatrix::operator=(const DenseMatrix &other)
{
    if (this == &other)
        return *this;
    const uint64_t n = other.size();
    if (n > capacity_) {
        data_ = kernels::simd::makeAlignedBuffer(n);
        capacity_ = n;
    }
    rows_ = other.rows_;
    cols_ = other.cols_;
    if (n > 0)
        std::memcpy(data_.get(), other.data_.get(), n * sizeof(float));
    return *this;
}

DenseMatrix::DenseMatrix(DenseMatrix &&other) noexcept
    : rows_(other.rows_), cols_(other.cols_), capacity_(other.capacity_),
      data_(std::move(other.data_))
{
    other.rows_ = 0;
    other.cols_ = 0;
    other.capacity_ = 0;
}

DenseMatrix &
DenseMatrix::operator=(DenseMatrix &&other) noexcept
{
    if (this == &other)
        return *this;
    rows_ = other.rows_;
    cols_ = other.cols_;
    capacity_ = other.capacity_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
    other.capacity_ = 0;
    return *this;
}

void
DenseMatrix::resize(uint64_t rows, uint64_t cols)
{
    resizeForOverwrite(rows, cols);
    const uint64_t n = rows * cols;
    if (n > 0)
        std::memset(data_.get(), 0, n * sizeof(float));
}

void
DenseMatrix::resizeForOverwrite(uint64_t rows, uint64_t cols)
{
    const uint64_t n = rows * cols;
    if (n > capacity_) {
        data_ = kernels::simd::makeAlignedBuffer(n);
        capacity_ = n;
    }
    rows_ = rows;
    cols_ = cols;
}

void
DenseMatrix::fill(float value)
{
    std::fill(data_.get(), data_.get() + size(), value);
}

void
DenseMatrix::fillRandom(uint64_t seed, float scale)
{
    Rng rng(seed);
    float *p = data_.get();
    const uint64_t n = size();
    for (uint64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.uniformRange(-scale, scale));
}

bool
allClose(const DenseMatrix &a, const DenseMatrix &b, float rel_tol,
         float abs_tol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    const float *pa = a.data();
    const float *pb = b.data();
    for (uint64_t i = 0; i < a.size(); ++i) {
        const float diff = std::fabs(pa[i] - pb[i]);
        const float bound =
            abs_tol + rel_tol * std::max(std::fabs(pa[i]), std::fabs(pb[i]));
        if (diff > bound)
            return false;
    }
    return true;
}

float
maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b)
{
    PGCN_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                "maxAbsDiff shape mismatch");
    float worst = 0.0f;
    const float *pa = a.data();
    const float *pb = b.data();
    for (uint64_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(pa[i] - pb[i]));
    return worst;
}

} // namespace pgcn::tensor
