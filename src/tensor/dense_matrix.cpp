#include "tensor/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace pgcn::tensor {

void
DenseMatrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
DenseMatrix::fillRandom(uint64_t seed, float scale)
{
    Rng rng(seed);
    for (float &x : data_)
        x = static_cast<float>(rng.uniformRange(-scale, scale));
}

bool
allClose(const DenseMatrix &a, const DenseMatrix &b, float rel_tol,
         float abs_tol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    const float *pa = a.data();
    const float *pb = b.data();
    for (uint64_t i = 0; i < a.size(); ++i) {
        const float diff = std::fabs(pa[i] - pb[i]);
        const float bound =
            abs_tol + rel_tol * std::max(std::fabs(pa[i]), std::fabs(pb[i]));
        if (diff > bound)
            return false;
    }
    return true;
}

float
maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b)
{
    PGCN_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                "maxAbsDiff shape mismatch");
    float worst = 0.0f;
    const float *pa = a.data();
    const float *pb = b.data();
    for (uint64_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(pa[i] - pb[i]));
    return worst;
}

} // namespace pgcn::tensor
