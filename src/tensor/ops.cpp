#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace pgcn::tensor {

void
softmaxRowsInPlace(DenseMatrix &m)
{
    for (uint64_t r = 0; r < m.rows(); ++r) {
        auto row = m.row(r);
        if (row.empty())
            continue;
        const float max_val = *std::max_element(row.begin(), row.end());
        float sum = 0.0f;
        for (float &x : row) {
            x = std::exp(x - max_val);
            sum += x;
        }
        for (float &x : row)
            x /= sum;
    }
}

std::vector<uint64_t>
argmaxRows(const DenseMatrix &m)
{
    std::vector<uint64_t> out(m.rows());
    for (uint64_t r = 0; r < m.rows(); ++r) {
        auto row = m.row(r);
        PGCN_ASSERT(!row.empty(), "argmax of zero-width matrix");
        out[r] = static_cast<uint64_t>(std::distance(
            row.begin(), std::max_element(row.begin(), row.end())));
    }
    return out;
}

std::vector<float>
rowL2Norms(const DenseMatrix &m)
{
    std::vector<float> out(m.rows());
    for (uint64_t r = 0; r < m.rows(); ++r) {
        double sum = 0.0;
        for (float x : m.row(r))
            sum += static_cast<double>(x) * x;
        out[r] = static_cast<float>(std::sqrt(sum));
    }
    return out;
}

void
scaleRowsInPlace(DenseMatrix &m, std::span<const float> factors)
{
    PGCN_ASSERT(factors.size() == m.rows(),
                "factor count " << factors.size() << " != rows "
                                << m.rows());
    for (uint64_t r = 0; r < m.rows(); ++r) {
        for (float &x : m.row(r))
            x *= factors[r];
    }
}

float
mean(const DenseMatrix &m)
{
    if (m.size() == 0)
        return 0.0f;
    double sum = 0.0;
    for (uint64_t i = 0; i < m.size(); ++i)
        sum += m.data()[i];
    return static_cast<float>(sum / static_cast<double>(m.size()));
}

} // namespace pgcn::tensor
