/**
 * @file
 * Row-wise tensor operations used around GCN inference: numerically
 * stable softmax, argmax (label prediction), L2 norms and row
 * scaling. These are the "glue" operations of the paper's breakdown
 * beyond the activation itself.
 */
#ifndef PGCN_TENSOR_OPS_HPP
#define PGCN_TENSOR_OPS_HPP

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.hpp"

namespace pgcn::tensor {

/**
 * In-place numerically stable row-wise softmax: each row becomes a
 * probability distribution (subtract row max, exponentiate,
 * normalise).
 */
void softmaxRowsInPlace(DenseMatrix &m);

/**
 * Index of the largest element per row (ties broken towards the
 * lower index) — the predicted class of each vertex.
 */
std::vector<uint64_t> argmaxRows(const DenseMatrix &m);

/** Euclidean norm of each row. */
std::vector<float> rowL2Norms(const DenseMatrix &m);

/**
 * Scale each row by the corresponding factor.
 *
 * @param m Matrix to scale.
 * @param factors One factor per row.
 */
void scaleRowsInPlace(DenseMatrix &m, std::span<const float> factors);

/** Mean of all elements. */
float mean(const DenseMatrix &m);

} // namespace pgcn::tensor

#endif // PGCN_TENSOR_OPS_HPP
