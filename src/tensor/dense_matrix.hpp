/**
 * @file
 * Row-major dense matrix of float32, the feature/weight container for
 * GCN layers. Row-major layout matters: SpMM reads whole rows
 * (feature vectors) per edge, exactly the access pattern the paper's
 * traffic equations assume.
 */
#ifndef PGCN_TENSOR_DENSE_MATRIX_HPP
#define PGCN_TENSOR_DENSE_MATRIX_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.hpp"

namespace pgcn::tensor {

/**
 * A dense rows x cols matrix of float, stored row-major in one
 * contiguous allocation.
 */
class DenseMatrix
{
  public:
    /** Create an empty 0 x 0 matrix. */
    DenseMatrix() = default;

    /**
     * Create a zero-initialised matrix.
     *
     * @param rows Row count.
     * @param cols Column count.
     */
    DenseMatrix(uint64_t rows, uint64_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {
    }

    /**
     * Create from explicit data (row-major, size rows*cols).
     */
    DenseMatrix(uint64_t rows, uint64_t cols, std::vector<float> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        PGCN_ASSERT(data_.size() == rows_ * cols_,
                    "dense data size " << data_.size() << " != " << rows_
                                       << "x" << cols_);
    }

    /** Row count. */
    uint64_t rows() const { return rows_; }
    /** Column count. */
    uint64_t cols() const { return cols_; }
    /** Total element count. */
    uint64_t size() const { return data_.size(); }

    /** Element access (bounds-checked via assertion). */
    float &
    at(uint64_t r, uint64_t c)
    {
        PGCN_ASSERT(r < rows_ && c < cols_,
                    "dense index (" << r << "," << c << ") out of "
                                    << rows_ << "x" << cols_);
        return data_[r * cols_ + c];
    }

    /** Const element access. */
    float
    at(uint64_t r, uint64_t c) const
    {
        PGCN_ASSERT(r < rows_ && c < cols_,
                    "dense index (" << r << "," << c << ") out of "
                                    << rows_ << "x" << cols_);
        return data_[r * cols_ + c];
    }

    /** Mutable view of row @p r. */
    std::span<float>
    row(uint64_t r)
    {
        PGCN_ASSERT(r < rows_, "row " << r << " out of " << rows_);
        return {data_.data() + r * cols_, static_cast<size_t>(cols_)};
    }

    /** Const view of row @p r. */
    std::span<const float>
    row(uint64_t r) const
    {
        PGCN_ASSERT(r < rows_, "row " << r << " out of " << rows_);
        return {data_.data() + r * cols_, static_cast<size_t>(cols_)};
    }

    /** Raw contiguous storage. */
    float *data() { return data_.data(); }
    /** Raw contiguous storage (const). */
    const float *data() const { return data_.data(); }

    /** Set all elements to @p value. */
    void fill(float value);

    /**
     * Fill with deterministic pseudo-random values in [-scale, scale].
     *
     * @param seed RNG seed.
     * @param scale Half-width of the value range.
     */
    void fillRandom(uint64_t seed, float scale = 1.0f);

    /** Total storage footprint in bytes. */
    uint64_t bytes() const { return data_.size() * sizeof(float); }

  private:
    uint64_t rows_ = 0;
    uint64_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * Elementwise approximate equality with a mixed absolute/relative
 * tolerance, for verifying kernels against references.
 *
 * @param a First matrix.
 * @param b Second matrix (same shape required).
 * @param rel_tol Relative tolerance.
 * @param abs_tol Absolute tolerance.
 * @return true if every element pair is within tolerance.
 */
bool allClose(const DenseMatrix &a, const DenseMatrix &b,
              float rel_tol = 1e-4f, float abs_tol = 1e-5f);

/**
 * Largest absolute elementwise difference between two same-shape
 * matrices.
 */
float maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b);

} // namespace pgcn::tensor

#endif // PGCN_TENSOR_DENSE_MATRIX_HPP
