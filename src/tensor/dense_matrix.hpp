/**
 * @file
 * Row-major dense matrix of float32, the feature/weight container for
 * GCN layers. Row-major layout matters: SpMM reads whole rows
 * (feature vectors) per edge, exactly the access pattern the paper's
 * traffic equations assume.
 *
 * Storage is 64-byte aligned (cache-line / widest-SIMD-register) so
 * the vectorized kernels can use aligned blocks, and resize() keeps
 * the existing allocation whenever it is large enough — repeated
 * kernel launches (one per GCN layer, or per benchmark iteration)
 * reuse warm pages instead of paying a fresh allocation + page-fault
 * storm per call.
 */
#ifndef PGCN_TENSOR_DENSE_MATRIX_HPP
#define PGCN_TENSOR_DENSE_MATRIX_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.hpp"
#include "kernels/simd.hpp"

namespace pgcn::tensor {

/**
 * A dense rows x cols matrix of float, stored row-major in one
 * contiguous 64-byte-aligned allocation.
 */
class DenseMatrix
{
  public:
    /** Create an empty 0 x 0 matrix. */
    DenseMatrix() = default;

    /**
     * Create a zero-initialised matrix.
     *
     * @param rows Row count.
     * @param cols Column count.
     */
    DenseMatrix(uint64_t rows, uint64_t cols) { resize(rows, cols); }

    /**
     * Create from explicit data (row-major, size rows*cols). The data
     * is copied into aligned storage.
     */
    DenseMatrix(uint64_t rows, uint64_t cols, const std::vector<float> &data);

    /** Deep copy (exact-size allocation). */
    DenseMatrix(const DenseMatrix &other);
    DenseMatrix &operator=(const DenseMatrix &other);

    /** Move; the source is left empty. */
    DenseMatrix(DenseMatrix &&other) noexcept;
    DenseMatrix &operator=(DenseMatrix &&other) noexcept;

    /** Row count. */
    uint64_t rows() const { return rows_; }
    /** Column count. */
    uint64_t cols() const { return cols_; }
    /** Total element count. */
    uint64_t size() const { return rows_ * cols_; }
    /** Elements the current allocation can hold without reallocating. */
    uint64_t capacity() const { return capacity_; }

    /**
     * Reshape to rows x cols and zero the contents. Keeps the current
     * allocation when it already has the capacity (the common case
     * for kernel output buffers reused across calls/layers), so no
     * allocation happens on repeat invocations with same-or-smaller
     * shapes.
     */
    void resize(uint64_t rows, uint64_t cols);

    /**
     * Reshape without the zero-fill. Only for callers with full
     * overwrite semantics (every element is written before any read):
     * the vectorized SpMM/GEMM entry points store into every output
     * slot, so zeroing first would just double the write traffic.
     * Contents are unspecified after the call.
     */
    void resizeForOverwrite(uint64_t rows, uint64_t cols);

    /** Element access (bounds-checked via assertion). */
    float &
    at(uint64_t r, uint64_t c)
    {
        PGCN_ASSERT(r < rows_ && c < cols_,
                    "dense index (" << r << "," << c << ") out of "
                                    << rows_ << "x" << cols_);
        return data_[r * cols_ + c];
    }

    /** Const element access. */
    float
    at(uint64_t r, uint64_t c) const
    {
        PGCN_ASSERT(r < rows_ && c < cols_,
                    "dense index (" << r << "," << c << ") out of "
                                    << rows_ << "x" << cols_);
        return data_[r * cols_ + c];
    }

    /** Mutable view of row @p r. */
    std::span<float>
    row(uint64_t r)
    {
        PGCN_ASSERT(r < rows_, "row " << r << " out of " << rows_);
        return {data_.get() + r * cols_, static_cast<size_t>(cols_)};
    }

    /** Const view of row @p r. */
    std::span<const float>
    row(uint64_t r) const
    {
        PGCN_ASSERT(r < rows_, "row " << r << " out of " << rows_);
        return {data_.get() + r * cols_, static_cast<size_t>(cols_)};
    }

    /** Raw contiguous storage (64-byte aligned). */
    float *data() { return data_.get(); }
    /** Raw contiguous storage (const). */
    const float *data() const { return data_.get(); }

    /** Set all elements to @p value. */
    void fill(float value);

    /**
     * Fill with deterministic pseudo-random values in [-scale, scale].
     *
     * @param seed RNG seed.
     * @param scale Half-width of the value range.
     */
    void fillRandom(uint64_t seed, float scale = 1.0f);

    /** Total storage footprint in bytes (live elements). */
    uint64_t bytes() const { return size() * sizeof(float); }

  private:
    uint64_t rows_ = 0;
    uint64_t cols_ = 0;
    uint64_t capacity_ = 0;
    kernels::simd::AlignedBuffer data_;
};

/**
 * Elementwise approximate equality with a mixed absolute/relative
 * tolerance, for verifying kernels against references.
 *
 * @param a First matrix.
 * @param b Second matrix (same shape required).
 * @param rel_tol Relative tolerance.
 * @param abs_tol Absolute tolerance.
 * @return true if every element pair is within tolerance.
 */
bool allClose(const DenseMatrix &a, const DenseMatrix &b,
              float rel_tol = 1e-4f, float abs_tol = 1e-5f);

/**
 * Largest absolute elementwise difference between two same-shape
 * matrices.
 */
float maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b);

} // namespace pgcn::tensor

#endif // PGCN_TENSOR_DENSE_MATRIX_HPP
