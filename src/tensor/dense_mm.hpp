/**
 * @file
 * Dense matrix multiplication (the GCN "update" phase, (.)W in the
 * paper) and elementwise activations (the "glue" sigma).
 *
 * The production GEMM is a packed, register-tiled kernel dispatched
 * through the runtime SIMD layer (kernels/simd.hpp): B is packed into
 * NR-column panels and the inner microkernel computes a ~6 x 16
 * register tile of C with FMA. The previous cache-blocked scalar loop
 * is kept as denseMmBlockedScalar for A/B benchmarking and as a
 * second correctness oracle.
 */
#ifndef PGCN_TENSOR_DENSE_MM_HPP
#define PGCN_TENSOR_DENSE_MM_HPP

#include "tensor/dense_matrix.hpp"

namespace pgcn::tensor {

/**
 * Reference triple-loop GEMM: out = a * b. Simple and obviously
 * correct; used to validate the optimized kernels.
 *
 * @param a Left operand (m x k).
 * @param b Right operand (k x n).
 * @param out Result (m x n); resized (capacity kept) by the call.
 */
void denseMmReference(const DenseMatrix &a, const DenseMatrix &b,
                      DenseMatrix &out);

/**
 * Production dense-update GEMM: packed, register-tiled, SIMD-
 * dispatched (AVX-512 / AVX2 / scalar chosen at runtime). B is
 * packed once per call into panel scratch reused across calls on the
 * same thread.
 *
 * @param a Left operand (m x k).
 * @param b Right operand (k x n).
 * @param out Result (m x n); resized (capacity kept) by the call.
 * @param block Unused legacy parameter, kept so existing call sites
 *        compile; cache blocking is now internal (KC panels).
 */
void denseMmBlocked(const DenseMatrix &a, const DenseMatrix &b,
                    DenseMatrix &out, uint64_t block = 64);

/**
 * The previous cache-blocked scalar GEMM (i-k-j inner ordering).
 * Kept as a comparison baseline for the packed kernel's speedup and
 * as an independent oracle in tests.
 */
void denseMmBlockedScalar(const DenseMatrix &a, const DenseMatrix &b,
                          DenseMatrix &out, uint64_t block = 64);

/** In-place ReLU: x = max(x, 0). Vectorized via the SIMD layer. */
void reluInPlace(DenseMatrix &m);

/**
 * In-place row-wise bias add: m[r, :] += bias. Vectorized via the
 * SIMD layer.
 *
 * @param m Matrix to update.
 * @param bias Bias vector of length m.cols().
 */
void addBiasInPlace(DenseMatrix &m, std::span<const float> bias);

} // namespace pgcn::tensor

#endif // PGCN_TENSOR_DENSE_MM_HPP
