/**
 * @file
 * Dense matrix multiplication (the GCN "update" phase, (.)W in the
 * paper) and elementwise activations (the "glue" sigma).
 */
#ifndef PGCN_TENSOR_DENSE_MM_HPP
#define PGCN_TENSOR_DENSE_MM_HPP

#include "tensor/dense_matrix.hpp"

namespace pgcn::tensor {

/**
 * Reference triple-loop GEMM: out = a * b. Simple and obviously
 * correct; used to validate the blocked kernel.
 *
 * @param a Left operand (m x k).
 * @param b Right operand (k x n).
 * @param out Result (m x n); resized/zeroed by the call.
 */
void denseMmReference(const DenseMatrix &a, const DenseMatrix &b,
                      DenseMatrix &out);

/**
 * Cache-blocked GEMM with an i-k-j inner ordering so the innermost
 * loop streams rows of b and out. This is the production dense-update
 * kernel for the CPU platform.
 *
 * @param a Left operand (m x k).
 * @param b Right operand (k x n).
 * @param out Result (m x n); resized/zeroed by the call.
 * @param block Cache-block edge in elements (default tuned for L1/L2).
 */
void denseMmBlocked(const DenseMatrix &a, const DenseMatrix &b,
                    DenseMatrix &out, uint64_t block = 64);

/** In-place ReLU: x = max(x, 0). */
void reluInPlace(DenseMatrix &m);

/**
 * In-place row-wise bias add: m[r, :] += bias.
 *
 * @param m Matrix to update.
 * @param bias Bias vector of length m.cols().
 */
void addBiasInPlace(DenseMatrix &m, std::span<const float> bias);

} // namespace pgcn::tensor

#endif // PGCN_TENSOR_DENSE_MM_HPP
