/**
 * @file
 * Runtime SIMD dispatch: CPUID probing, PGCN_SIMD env override, and
 * the active-Ops pointer the kernels call through.
 */
#include "kernels/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/error.hpp"
#include "common/logging.hpp"
#include "kernels/simd_backend.inc.hpp"
#include "kernels/simd_backends.hpp"

namespace pgcn::kernels::simd {

namespace {

/** CPU support for a tier, independent of what was compiled. */
bool
cpuSupports(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
    case Tier::Avx2:
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
    case Tier::Avx512:
        return __builtin_cpu_supports("avx512f");
#else
    case Tier::Avx2:
    case Tier::Avx512:
        return false;
#endif
    }
    return false;
}

/** Whether a backend for @p tier was compiled into this binary. */
bool
compiledIn(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
        return true;
    case Tier::Avx2:
#ifdef PGCN_SIMD_HAVE_AVX2
        return true;
#else
        return false;
#endif
    case Tier::Avx512:
#ifdef PGCN_SIMD_HAVE_AVX512
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
tierUsable(Tier tier)
{
    return compiledIn(tier) && cpuSupports(tier);
}

const Ops &
tableFor(Tier tier)
{
    switch (tier) {
#ifdef PGCN_SIMD_HAVE_AVX512
    case Tier::Avx512:
        return avx512Ops();
#endif
#ifdef PGCN_SIMD_HAVE_AVX2
    case Tier::Avx2:
        return avx2Ops();
#endif
    default:
        return scalarOps();
    }
}

/** Env-requested tier, or best-available when unset/auto/invalid. */
Tier
resolveInitialTier()
{
    const char *env = std::getenv("PGCN_SIMD");
    if (env != nullptr && *env != '\0') {
        const std::string v(env);
        if (v == "scalar")
            return Tier::Scalar;
        if (v == "avx2" && tierUsable(Tier::Avx2))
            return Tier::Avx2;
        if (v == "avx512" && tierUsable(Tier::Avx512))
            return Tier::Avx512;
        if (v != "auto") {
            warn("PGCN_SIMD=" + v +
                 " is not available on this host; using auto dispatch");
        }
    }
    return detectBestTier();
}

std::atomic<const Ops *> g_active{nullptr};

const Ops *
resolveActive()
{
    const Ops *table = &tableFor(resolveInitialTier());
    const Ops *expected = nullptr;
    // First resolver wins; any concurrent resolution picks the same
    // table anyway (env + CPUID are stable within a process).
    g_active.compare_exchange_strong(expected, table);
    return g_active.load(std::memory_order_acquire);
}

} // namespace

const char *
tierName(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
        return "scalar";
    case Tier::Avx2:
        return "avx2";
    case Tier::Avx512:
        return "avx512";
    }
    return "unknown";
}

uint64_t
gemmPackBufferElems(uint64_t n, uint64_t kk)
{
    const uint64_t n_rounded =
        (n + detail::kGemmNrMax - 1) / detail::kGemmNrMax *
        detail::kGemmNrMax;
    return n_rounded * kk;
}

std::vector<Tier>
availableTiers()
{
    std::vector<Tier> tiers;
    for (Tier t : {Tier::Scalar, Tier::Avx2, Tier::Avx512}) {
        if (tierUsable(t))
            tiers.push_back(t);
    }
    return tiers;
}

Tier
detectBestTier()
{
    if (tierUsable(Tier::Avx512))
        return Tier::Avx512;
    if (tierUsable(Tier::Avx2))
        return Tier::Avx2;
    return Tier::Scalar;
}

Tier
activeTier()
{
    return ops().tier;
}

void
forceTier(Tier tier)
{
    if (!compiledIn(tier)) {
        PGCN_THROW(ConfigError, "SIMD tier " << tierName(tier)
                                             << " was not compiled into "
                                                "this binary");
    }
    if (!cpuSupports(tier)) {
        PGCN_THROW(ConfigError, "SIMD tier "
                                    << tierName(tier)
                                    << " is not supported by this CPU");
    }
    g_active.store(&tableFor(tier), std::memory_order_release);
}

void
resetTier()
{
    g_active.store(nullptr, std::memory_order_release);
}

const Ops &
ops()
{
    const Ops *table = g_active.load(std::memory_order_acquire);
    if (table == nullptr) [[unlikely]]
        table = resolveActive();
    return *table;
}

const Ops &
opsFor(Tier tier)
{
    if (!tierUsable(tier)) {
        PGCN_THROW(ConfigError, "SIMD tier " << tierName(tier)
                                             << " is unavailable on this "
                                                "host");
    }
    return tableFor(tier);
}

float *
alignedAlloc(uint64_t n)
{
    if (n == 0)
        return nullptr;
    // Buffers at or above one huge page get 2 MiB placement so the
    // kernel can back them with huge pages (THP is madvise-gated on
    // most distros). The gather side of SpMM touches a random 64-byte
    // line per edge; 4 KiB pages make every one of those a potential
    // TLB miss, and run-to-run page placement then dominates the
    // measured variance.
    constexpr uint64_t kHugePage = 2ull << 20;
    uint64_t bytes = n * sizeof(float);
    const uint64_t align = bytes >= kHugePage ? kHugePage : 64;
    bytes = (bytes + align - 1) / align * align;
    void *p = std::aligned_alloc(align, bytes);
    if (p == nullptr)
        throw std::bad_alloc{};
#if defined(__linux__)
    if (align == kHugePage)
        ::madvise(p, bytes, MADV_HUGEPAGE);
#endif
    return static_cast<float *>(p);
}

void
alignedFree(float *p)
{
    std::free(p);
}

AlignedBuffer
makeAlignedBuffer(uint64_t n)
{
    return AlignedBuffer(alignedAlloc(n));
}

} // namespace pgcn::kernels::simd
