/**
 * @file
 * Scalar kernel backend: the one-lane instantiation of the shared
 * backend template. Compiled with the project's default flags on
 * every platform, it is both the portable fallback and the oracle
 * the property tests pin via forceTier(Tier::Scalar).
 */
#include "kernels/simd_backends.hpp"

#include "kernels/simd_backend.inc.hpp"

namespace pgcn::kernels::simd {

namespace {

struct ScalarPolicy
{
    static constexpr uint64_t W = 1;
    using V = float;
    static V load(const float *p) { return *p; }
    static void store(float *p, V v) { *p = v; }
    static V set1(float x) { return x; }
    static V zero() { return 0.0f; }
    static V fma(V a, V b, V c) { return a * b + c; }
    static V add(V a, V b) { return a + b; }
    static V max0(V a) { return a < 0.0f ? 0.0f : a; }
};

} // namespace

const Ops &
scalarOps()
{
    static const Ops table = detail::makeOps<ScalarPolicy>(Tier::Scalar);
    return table;
}

} // namespace pgcn::kernels::simd
