/**
 * @file
 * AVX-512F kernel backend: 16-lane fp32 instantiation of the shared
 * backend template. Compiled with -mavx512f (per-file flags set in
 * CMake) and reached only through the dispatch table after a CPUID
 * check, so the binary still runs on narrower machines.
 */
#include "kernels/simd_backends.hpp"

#ifdef PGCN_SIMD_HAVE_AVX512

#include <immintrin.h>

#include "kernels/simd_backend.inc.hpp"

namespace pgcn::kernels::simd {

namespace {

struct Avx512Policy
{
    static constexpr uint64_t W = 16;
    using V = __m512;
    static V load(const float *p) { return _mm512_loadu_ps(p); }
    static void store(float *p, V v) { _mm512_storeu_ps(p, v); }
    static V set1(float x) { return _mm512_set1_ps(x); }
    static V zero() { return _mm512_setzero_ps(); }
    static V fma(V a, V b, V c) { return _mm512_fmadd_ps(a, b, c); }
    static V add(V a, V b) { return _mm512_add_ps(a, b); }
    static V max0(V a) { return _mm512_max_ps(a, _mm512_setzero_ps()); }
};

} // namespace

const Ops &
avx512Ops()
{
    static const Ops table = detail::makeOps<Avx512Policy>(Tier::Avx512);
    return table;
}

} // namespace pgcn::kernels::simd

#endif // PGCN_SIMD_HAVE_AVX512
