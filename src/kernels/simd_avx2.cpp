/**
 * @file
 * AVX2+FMA kernel backend: 8-lane fp32 instantiation of the shared
 * backend template. This translation unit is compiled with
 * -mavx2 -mfma (per-file flags set in CMake); its code is only ever
 * reached through the dispatch table after a CPUID check, so linking
 * it into a binary that runs on a non-AVX2 machine is safe.
 */
#include "kernels/simd_backends.hpp"

#ifdef PGCN_SIMD_HAVE_AVX2

#include <immintrin.h>

#include "kernels/simd_backend.inc.hpp"

namespace pgcn::kernels::simd {

namespace {

struct Avx2Policy
{
    static constexpr uint64_t W = 8;
    using V = __m256;
    static V load(const float *p) { return _mm256_loadu_ps(p); }
    static void store(float *p, V v) { _mm256_storeu_ps(p, v); }
    static V set1(float x) { return _mm256_set1_ps(x); }
    static V zero() { return _mm256_setzero_ps(); }
    static V fma(V a, V b, V c) { return _mm256_fmadd_ps(a, b, c); }
    static V add(V a, V b) { return _mm256_add_ps(a, b); }
    static V max0(V a) { return _mm256_max_ps(a, _mm256_setzero_ps()); }
};

} // namespace

const Ops &
avx2Ops()
{
    static const Ops table = detail::makeOps<Avx2Policy>(Tier::Avx2);
    return table;
}

} // namespace pgcn::kernels::simd

#endif // PGCN_SIMD_HAVE_AVX2
