/**
 * @file
 * Internal: accessors for the per-tier Ops tables. Which backends
 * exist is decided at configure time (PGCN_SIMD_HAVE_* definitions on
 * the pgcn_simd target); the dispatcher in simd.cpp only references
 * the ones that were compiled.
 */
#ifndef PGCN_KERNELS_SIMD_BACKENDS_HPP
#define PGCN_KERNELS_SIMD_BACKENDS_HPP

#include "kernels/simd.hpp"

namespace pgcn::kernels::simd {

/** Scalar backend; always compiled. */
const Ops &scalarOps();

#ifdef PGCN_SIMD_HAVE_AVX2
/** AVX2+FMA backend (x86 builds whose compiler accepts -mavx2). */
const Ops &avx2Ops();
#endif

#ifdef PGCN_SIMD_HAVE_AVX512
/** AVX-512F backend (x86 builds whose compiler accepts -mavx512f). */
const Ops &avx512Ops();
#endif

} // namespace pgcn::kernels::simd

#endif // PGCN_KERNELS_SIMD_BACKENDS_HPP
