/**
 * @file
 * Portable SIMD kernel layer with runtime ISA dispatch.
 *
 * The host kernels (SpMM, packed GEMM, activations) are compiled
 * three times from one templated implementation — scalar, AVX2+FMA
 * and AVX-512 — each in its own translation unit built with the
 * matching -m flags, so the library links and runs on any x86 host
 * (and on non-x86, where only the scalar tier exists). At runtime a
 * CPUID probe picks the widest tier the machine supports; the
 * PGCN_SIMD environment variable (scalar | avx2 | avx512 | auto) or
 * forceTier() narrows it, which is how tests pin the scalar path.
 *
 * All entry points are reached through the Ops function-pointer
 * table, never called directly, so ISA-specific code cannot be
 * inlined into translation units compiled for a narrower ISA.
 */
#ifndef PGCN_KERNELS_SIMD_HPP
#define PGCN_KERNELS_SIMD_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pgcn::kernels::simd {

/** Instruction-set tier of a kernel backend. */
enum class Tier
{
    Scalar, ///< plain C++, always compiled, runs anywhere
    Avx2,   ///< 8-lane fp32 with FMA
    Avx512, ///< 16-lane fp32 with FMA and masked tails
};

/** Human-readable tier name ("scalar", "avx2", "avx512"). */
const char *tierName(Tier tier);

/**
 * Function table of one kernel backend. All pointers are always
 * non-null. Row-major layouts throughout; `k` is the feature width.
 */
struct Ops
{
    /** Tier this table implements. */
    Tier tier;
    /** fp32 lanes per vector register (1, 8 or 16). */
    uint64_t width;

    /** y[0..k) += w * x[0..k). */
    void (*axpy)(float *y, const float *x, float w, uint64_t k);

    /**
     * CSR row-range SpMM with *overwrite* semantics: for every row
     * u in [row_begin, row_end),
     *   out[(u - out_row_base) * k .. ) = sum_e vals[e] * h_in[cols[e] * k ..)
     * over e in [offsets[u], offsets[u+1]). Rows with no non-zeros
     * are set to zero. The feature dimension is processed in
     * register-resident accumulator blocks (multi-accumulator inner
     * loop), so `out` is written exactly once per row.
     *
     * @param out_row_base Row index of out's first row (0 for a full
     *        |V|-row output; the fused path passes a tile base so a
     *        small scratch tile can receive global row indices).
     */
    void (*spmmRowRange)(float *out, const float *h_in, uint64_t k,
                         const uint64_t *offsets, const uint32_t *cols,
                         const float *vals, uint64_t row_begin,
                         uint64_t row_end, uint64_t out_row_base);

    /**
     * Gathered-row SpMM with *accumulate* semantics, for column-tiled
     * operators: tile-local row i in [i_begin, i_end) accumulates
     *   out[row_ids[i] * k ..) += sum_e vals[e] * h_in[cols[e] * k ..)
     * over e in [offsets[i], offsets[i+1]) (offsets are tile-local).
     */
    void (*spmmGatherRows)(float *out, const float *h_in, uint64_t k,
                           const uint32_t *row_ids, const uint64_t *offsets,
                           const uint32_t *cols, const float *vals,
                           uint64_t i_begin, uint64_t i_end);

    /** p[0..n) = max(p[0..n), 0). */
    void (*relu)(float *p, uint64_t n);

    /** m[r * cols + c] += bias[c] for all rows x cols. */
    void (*addBias)(float *m, const float *bias, uint64_t rows,
                    uint64_t cols);

    /**
     * Pack B (kk x n, leading dimension ldb) into NR-column panels
     * laid out p-major, zero-padded to the tier's panel width, ready
     * for gemmPrepacked. pack_buf must hold gemmPackBufferElems(n, kk)
     * floats and be 64-byte aligned.
     */
    void (*gemmPackB)(const float *b, uint64_t ldb, uint64_t n,
                      uint64_t kk, float *pack_buf);

    /**
     * Register-tiled GEMM on a pre-packed B: C (m x n, leading
     * dimension ldc) (+)= A (m x kk, leading dimension lda) * B.
     * accumulate=false overwrites C, true adds into it. The inner
     * microkernel is an MR x NR register tile (MR = 6 rows, NR = two
     * vector registers of columns) fed by B panels from pack_buf.
     */
    void (*gemmPrepacked)(const float *a, uint64_t lda,
                          const float *packed_b, float *c, uint64_t ldc,
                          uint64_t m, uint64_t n, uint64_t kk,
                          bool accumulate);
};

/**
 * Elements of pack-buffer space gemmPackB needs for a kk x n B
 * operand, valid for every tier (sized for the widest panel).
 */
uint64_t gemmPackBufferElems(uint64_t n, uint64_t kk);

/** Tiers compiled into this binary AND supported by this CPU. */
std::vector<Tier> availableTiers();

/** Widest available tier (what auto-dispatch selects). */
Tier detectBestTier();

/**
 * Tier currently dispatched to. Resolves lazily on first use from
 * PGCN_SIMD (scalar | avx2 | avx512 | auto); unrecognised or
 * unsupported values fall back to auto with a warning.
 */
Tier activeTier();

/**
 * Pin dispatch to @p tier (tests, A/B benchmarks).
 *
 * @throws pgcn::ConfigError if the tier is not available on this
 *         host or was not compiled in.
 */
void forceTier(Tier tier);

/** Return to automatic (env + CPUID) dispatch. */
void resetTier();

/** Function table of the active tier. */
const Ops &ops();

/**
 * Function table of a specific tier.
 *
 * @throws pgcn::ConfigError if unavailable.
 */
const Ops &opsFor(Tier tier);

/** Allocate @p n floats with 64-byte alignment (not zero-filled). */
float *alignedAlloc(uint64_t n);

/** Free a pointer from alignedAlloc. */
void alignedFree(float *p);

/** Deleter so aligned allocations can live in unique_ptr. */
struct AlignedDeleter
{
    void
    operator()(float *p) const
    {
        alignedFree(p);
    }
};

/** Owning handle for a 64-byte-aligned float buffer. */
using AlignedBuffer = std::unique_ptr<float[], AlignedDeleter>;

/** Allocate an owning aligned buffer of @p n floats. */
AlignedBuffer makeAlignedBuffer(uint64_t n);

} // namespace pgcn::kernels::simd

#endif // PGCN_KERNELS_SIMD_HPP
