/**
 * @file
 * Fused SpMM -> GEMM GCN layer: H_out = act((A~ H_in) W) in one pass.
 *
 * The unfused (A H) W pipeline materialises the |V| x K_in aggregate,
 * writes it to memory, then streams it straight back in for the dense
 * transform — 2 * |V| * K_in * 4 B of pure traffic. The fused path
 * instead hands each thread an NNZ-balanced chunk of rows and walks it
 * in small row tiles: the SpMM output tile lands in a per-thread
 * scratch buffer (L1/L2-resident), the register-tiled GEMM consumes it
 * immediately against a pre-packed W panel, and the optional ReLU runs
 * on the freshly written output rows while they are still hot. The
 * aggregate never exists in memory at full size.
 */
#ifndef PGCN_KERNELS_FUSED_GCN_HPP
#define PGCN_KERNELS_FUSED_GCN_HPP

#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dense_matrix.hpp"

namespace pgcn::kernels {

/**
 * Compute h_out = act((A h_in) W) without materialising A h_in.
 *
 * W is packed once into the SIMD GEMM panel layout; threads then
 * process NNZ-balanced row chunks in @p tile_rows -row sub-tiles
 * (SpMM into pool-owned scratch, prepacked GEMM into the output,
 * optional in-place ReLU on the hot rows).
 *
 * @param a Sparse |V| x |V| matrix.
 * @param h_in Dense |V| x K_in input features.
 * @param w Dense K_in x K_out weights.
 * @param h_out Dense |V| x K_out output; reshaped by the call
 *        (capacity is reused when sufficient).
 * @param pool Thread pool to run on.
 * @param apply_relu Apply ReLU to the output rows while cache-hot.
 * @param tile_rows Rows per fused sub-tile; the scratch tile is
 *        tile_rows * K_in floats and should fit L2.
 */
void fusedSpmmGemm(const graph::Csr &a, const tensor::DenseMatrix &h_in,
                   const tensor::DenseMatrix &w,
                   tensor::DenseMatrix &h_out, parallel::ThreadPool &pool,
                   bool apply_relu, uint64_t tile_rows = 64);

} // namespace pgcn::kernels

#endif // PGCN_KERNELS_FUSED_GCN_HPP
