/**
 * @file
 * Functional CPU SpMM kernels: H_out = A~ * H_in (paper Algorithm 1).
 *
 * Four implementations, all but the reference vectorized along the
 * feature dimension through the runtime SIMD layer (kernels/simd.hpp)
 * with register-resident multi-accumulator inner loops:
 *
 *  - spmmReference: sequential scalar loop, obviously correct oracle.
 *  - spmmVertexParallel: the paper's optimized CPU baseline — one
 *    vertex (output row) per task, dynamic load balancing, no atomics.
 *  - spmmEdgeParallel: the paper's Algorithm 2 — non-zeros split
 *    evenly across threads, binary search for the starting row,
 *    atomic writeback at row boundaries. Rows fully owned by one
 *    thread take the vectorized no-atomic path; only the (at most
 *    two) rows shared with neighbouring threads go through the
 *    per-thread accumulator + atomic flush. On CPUs this still loses
 *    to vertex-parallel because of the atomics (Section V-A); on
 *    PIUMA the same algorithm wins thanks to hardware remote atomics.
 *  - spmmNnzBalanced: static equal-work partitioning — a prefix-sum
 *    (the CSR row-offset array) split into one row-aligned chunk of
 *    ~|E|/T non-zeros per thread, so skewed graphs balance without
 *    dynamic scheduling or atomics.
 */
#ifndef PGCN_KERNELS_SPMM_HPP
#define PGCN_KERNELS_SPMM_HPP

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dense_matrix.hpp"

namespace pgcn::kernels {

/**
 * Split rows into @p parts contiguous chunks of approximately equal
 * non-zero count, via binary search over the CSR prefix sums.
 *
 * @param row_offsets CSR row-offset array (size rows + 1, monotone).
 * @param parts Number of chunks (>= 1).
 * @return parts + 1 monotone row boundaries; chunk p is
 *         [result[p], result[p + 1]). Chunks may be empty when a
 *         single row holds more than |E| / parts non-zeros.
 */
std::vector<graph::VertexId>
nnzBalancedRowChunks(std::span<const graph::EdgeId> row_offsets,
                     unsigned parts);

/**
 * Like nnzBalancedRowChunks, but every chunk boundary is snapped to
 * the nearest island boundary (by non-zero count), so no island is
 * ever split across two chunks. With islandized orderings this keeps
 * each worker's feature working set equal to a whole number of
 * cache-sized islands instead of straddling two of them.
 *
 * @param row_offsets CSR row-offset array (size rows + 1, monotone).
 * @param boundaries  Monotone island row boundaries, 0 .. rows
 *                    inclusive (islandOrder / uniformIslands format).
 * @param parts Number of chunks (>= 1).
 * @return parts + 1 monotone row boundaries, each an element of
 *         @p boundaries (except that result[0] = 0 and
 *         result[parts] = rows always hold). Chunks may be empty when
 *         there are fewer islands than parts or one island dominates
 *         the non-zero count.
 */
std::vector<graph::VertexId>
nnzBalancedRowChunksAligned(std::span<const graph::EdgeId> row_offsets,
                            std::span<const graph::VertexId> boundaries,
                            unsigned parts);

/**
 * Sequential reference SpMM.
 *
 * @param a Sparse |V| x |V| matrix.
 * @param h_in Dense |V| x K input features.
 * @param h_out Dense |V| x K output; reshaped by the call (capacity
 *        is reused when sufficient).
 */
void spmmReference(const graph::Csr &a, const tensor::DenseMatrix &h_in,
                   tensor::DenseMatrix &h_out);

/**
 * Vertex-parallel SpMM: each output row is produced by exactly one
 * thread, scheduled dynamically in @p chunk_rows batches for load
 * balance on skewed graphs.
 *
 * @param a Sparse matrix.
 * @param h_in Input features (|V| x K).
 * @param h_out Output features; reshaped by the call.
 * @param pool Thread pool to run on.
 * @param chunk_rows Dynamic-scheduling chunk (rows per grab).
 */
void spmmVertexParallel(const graph::Csr &a,
                        const tensor::DenseMatrix &h_in,
                        tensor::DenseMatrix &h_out,
                        parallel::ThreadPool &pool,
                        uint64_t chunk_rows = 64);

/**
 * Edge-parallel SpMM (paper Algorithm 2): the |E| non-zeros are split
 * into one contiguous span per thread; each thread binary-searches the
 * row containing its first non-zero. Shared boundary rows accumulate
 * into per-thread scratch (owned by the pool, no per-call allocation)
 * and flush with atomic adds; interior rows take the vectorized
 * exclusive-ownership path.
 *
 * @param a Sparse matrix.
 * @param h_in Input features (|V| x K).
 * @param h_out Output features; reshaped by the call.
 * @param pool Thread pool to run on.
 */
void spmmEdgeParallel(const graph::Csr &a, const tensor::DenseMatrix &h_in,
                      tensor::DenseMatrix &h_out,
                      parallel::ThreadPool &pool);

/**
 * NNZ-balanced SpMM: one statically-assigned, row-aligned, equal-work
 * chunk per thread (see nnzBalancedRowChunks). No atomics, no
 * scheduling overhead; the partition itself absorbs degree skew.
 *
 * @param a Sparse matrix.
 * @param h_in Input features (|V| x K).
 * @param h_out Output features; reshaped by the call.
 * @param pool Thread pool to run on.
 */
void spmmNnzBalanced(const graph::Csr &a, const tensor::DenseMatrix &h_in,
                     tensor::DenseMatrix &h_out,
                     parallel::ThreadPool &pool);

/**
 * Island-aligned SpMM: identical to spmmNnzBalanced except the static
 * per-thread chunks are snapped to island boundaries
 * (nnzBalancedRowChunksAligned), so each thread streams a whole
 * number of islands and its input working set is the islands' own
 * neighbourhoods. Only pays off when the CSR is actually islandized;
 * with uniform boundaries it degrades gracefully to a slightly
 * coarser nnz balance.
 *
 * @param a Sparse matrix (rows in island order).
 * @param boundaries Island row boundaries (0 .. |V| inclusive).
 * @param h_in Input features (|V| x K).
 * @param h_out Output features; reshaped by the call.
 * @param pool Thread pool to run on.
 */
void spmmIslandBalanced(const graph::Csr &a,
                        std::span<const graph::VertexId> boundaries,
                        const tensor::DenseMatrix &h_in,
                        tensor::DenseMatrix &h_out,
                        parallel::ThreadPool &pool);

} // namespace pgcn::kernels

#endif // PGCN_KERNELS_SPMM_HPP
