/**
 * @file
 * Functional CPU SpMM kernels: H_out = A~ * H_in (paper Algorithm 1).
 *
 * Three implementations:
 *  - spmmReference: sequential, obviously correct oracle.
 *  - spmmVertexParallel: the paper's optimized CPU baseline — one
 *    vertex (output row) per task, dynamic load balancing, no atomics.
 *  - spmmEdgeParallel: the paper's Algorithm 2 — non-zeros split
 *    evenly across threads, binary search for the starting row,
 *    atomic writeback at row boundaries. On CPUs this loses to
 *    vertex-parallel because of atomic overhead (Section V-A); on
 *    PIUMA the same algorithm wins thanks to hardware remote atomics.
 */
#ifndef PGCN_KERNELS_SPMM_HPP
#define PGCN_KERNELS_SPMM_HPP

#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dense_matrix.hpp"

namespace pgcn::kernels {

/**
 * Sequential reference SpMM.
 *
 * @param a Sparse |V| x |V| matrix.
 * @param h_in Dense |V| x K input features.
 * @param h_out Dense |V| x K output; resized/zeroed by the call.
 */
void spmmReference(const graph::Csr &a, const tensor::DenseMatrix &h_in,
                   tensor::DenseMatrix &h_out);

/**
 * Vertex-parallel SpMM: each output row is produced by exactly one
 * thread, scheduled dynamically in @p chunk_rows batches for load
 * balance on skewed graphs.
 *
 * @param a Sparse matrix.
 * @param h_in Input features (|V| x K).
 * @param h_out Output features; resized/zeroed by the call.
 * @param pool Thread pool to run on.
 * @param chunk_rows Dynamic-scheduling chunk (rows per grab).
 */
void spmmVertexParallel(const graph::Csr &a,
                        const tensor::DenseMatrix &h_in,
                        tensor::DenseMatrix &h_out,
                        parallel::ThreadPool &pool,
                        uint64_t chunk_rows = 64);

/**
 * Edge-parallel SpMM (paper Algorithm 2): the |E| non-zeros are split
 * into one contiguous span per thread; each thread binary-searches the
 * row containing its first non-zero, accumulates into a private K-wide
 * buffer, and flushes with atomic adds at every row boundary (rows can
 * be shared between adjacent threads).
 *
 * @param a Sparse matrix.
 * @param h_in Input features (|V| x K).
 * @param h_out Output features; resized/zeroed by the call.
 * @param pool Thread pool to run on.
 */
void spmmEdgeParallel(const graph::Csr &a, const tensor::DenseMatrix &h_in,
                      tensor::DenseMatrix &h_out,
                      parallel::ThreadPool &pool);

} // namespace pgcn::kernels

#endif // PGCN_KERNELS_SPMM_HPP
